//! End-to-end tests of the persistent artifact store behind `plimd
//! --store`: warm restarts serve byte-identical artifacts from disk, and
//! corrupted store files degrade to cache misses — never a panic, never a
//! wrong answer.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::JoinHandle;

use plim_service::client;
use plim_service::pipeline::{self, CompileSpec, InputFormat};
use plim_service::protocol::{CompileRequest, Request, Response};
use plim_service::server::{Server, ServerConfig};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique, test-owned store directory under the system temp dir.
fn store_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "plim-store-test-{}-{tag}-{seq}",
        std::process::id()
    ))
}

fn start_server(store: &Path) -> (String, JoinHandle<Result<(), String>>) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        cache_bytes: 1 << 20,
        store: Some(store.to_string_lossy().into_owned()),
        log: false,
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind on a free port");
    let addr = server.local_addr().expect("resolved address").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shut_down(addr: &str, handle: JoinHandle<Result<(), String>>) {
    let response = client::send(addr, &Request::Shutdown).expect("shutdown round-trip");
    assert_eq!(response, Response::Shutdown);
    handle.join().expect("server thread").expect("clean exit");
}

fn compile_request(source: &str) -> Request {
    Request::Compile(CompileRequest {
        format: InputFormat::Mig,
        source: source.to_string(),
        spec: CompileSpec::default(),
        emit: "listing".to_string(),
    })
}

fn offline_listing(source: &str) -> String {
    let mig = pipeline::parse_network(InputFormat::Mig, source).unwrap();
    let artifacts = pipeline::execute(&mig, &CompileSpec::default()).unwrap();
    pipeline::emit("listing", &artifacts).unwrap()
}

fn compile(addr: &str, source: &str) -> plim_service::protocol::CompileResponse {
    match client::send(addr, &compile_request(source)).expect("compile round-trip") {
        Response::Compile(response) => response,
        other => panic!("unexpected response: {other:?}"),
    }
}

fn store_counters(addr: &str) -> plim_compiler::StoreCounters {
    match client::send(addr, &Request::Stats).expect("stats round-trip") {
        Response::Stats(stats) => stats.store.expect("daemon runs with --store"),
        other => panic!("unexpected stats response: {other:?}"),
    }
}

/// The on-disk path of an artifact, derived from the key hex a compile
/// response reports: `<root>/<hex[..2]>/<hex>.artifact`.
fn artifact_path(root: &Path, key_hex: &str) -> PathBuf {
    root.join(&key_hex[..2]).join(format!("{key_hex}.artifact"))
}

const SOURCE: &str = "inputs a b c d\n\
                      x = maj(0, a, b)\n\
                      y = maj(1, c, d)\n\
                      z = maj(x, y, d)\n\
                      output f = !z\n";

#[test]
fn a_restarted_daemon_serves_repeats_warm_from_the_store() {
    let dir = store_dir("restart");
    let expected = offline_listing(SOURCE);

    // First daemon: cold compile, written through to disk.
    let (addr, handle) = start_server(&dir);
    let cold = compile(&addr, SOURCE);
    assert!(!cold.cached);
    assert_eq!(cold.output, expected);
    let counters = store_counters(&addr);
    assert_eq!(counters.writes, 1, "compile must write through to disk");
    assert!(
        artifact_path(&dir, &cold.key).is_file(),
        "artifact file missing at the content address"
    );
    shut_down(&addr, handle);

    // Second daemon, same store: the very first repeat is a warm hit —
    // no parse, no compile — and byte-identical.
    let (addr, handle) = start_server(&dir);
    let warm = compile(&addr, SOURCE);
    assert!(warm.cached, "restart must serve the repeat from the store");
    assert_eq!(warm.key, cold.key, "content address must be stable");
    assert_eq!(warm.output, expected, "store round-trip must be byte-exact");
    let counters = store_counters(&addr);
    assert!(counters.hits >= 1, "store hits: {counters:?}");
    assert_eq!(counters.corrupt, 0);
    shut_down(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_store_files_degrade_to_misses() {
    let dir = store_dir("truncated");
    let (addr, handle) = start_server(&dir);
    let cold = compile(&addr, SOURCE);
    shut_down(&addr, handle);

    // Truncate the artifact mid-file: the checksum no longer matches.
    let path = artifact_path(&dir, &cold.key);
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();

    let (addr, handle) = start_server(&dir);
    let repeat = compile(&addr, SOURCE);
    assert!(!repeat.cached, "a corrupt load must be a miss, not a hit");
    assert_eq!(repeat.output, cold.output, "recompile must still be exact");
    let counters = store_counters(&addr);
    assert!(counters.corrupt >= 1, "store counters: {counters:?}");
    // The recompile re-wrote a good artifact over the corrupt one, so a
    // third daemon serves it warm again.
    shut_down(&addr, handle);
    let (addr, handle) = start_server(&dir);
    assert!(compile(&addr, SOURCE).cached, "repaired artifact must hit");
    shut_down(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn bit_flipped_store_files_degrade_to_misses() {
    let dir = store_dir("bitflip");
    let (addr, handle) = start_server(&dir);
    let cold = compile(&addr, SOURCE);
    shut_down(&addr, handle);

    // Flip one bit deep in the payload: the file still parses shallowly,
    // but the checksum catches the damage.
    let path = artifact_path(&dir, &cold.key);
    let mut bytes = std::fs::read(&path).unwrap();
    let index = bytes.len() - 8;
    bytes[index] ^= 0x40;
    std::fs::write(&path, &bytes).unwrap();

    let (addr, handle) = start_server(&dir);
    let repeat = compile(&addr, SOURCE);
    assert!(!repeat.cached, "a bit flip must never be served");
    assert_eq!(repeat.output, cold.output);
    assert!(store_counters(&addr).corrupt >= 1);
    shut_down(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_store_files_degrade_to_misses() {
    let dir = store_dir("garbage");
    let (addr, handle) = start_server(&dir);
    let cold = compile(&addr, SOURCE);
    shut_down(&addr, handle);

    // Replace the artifact wholesale with non-UTF-8 garbage.
    let path = artifact_path(&dir, &cold.key);
    std::fs::write(&path, [0xFFu8, 0xFE, 0x00, 0x01, 0x02]).unwrap();

    let (addr, handle) = start_server(&dir);
    let repeat = compile(&addr, SOURCE);
    assert!(!repeat.cached);
    assert_eq!(repeat.output, cold.output);
    assert!(store_counters(&addr).corrupt >= 1);
    shut_down(&addr, handle);

    let _ = std::fs::remove_dir_all(&dir);
}
