//! RM3 through the backend trait is the pre-refactor compiler, byte for
//! byte.
//!
//! The emit layer was redesigned around the `Backend` trait; this suite is
//! the refactor's no-regression proof. The committed goldens in
//! `tests/golden/` were captured from the single-step translator before
//! the IR split and have pinned `-O0` output ever since — here they pin
//! the trait path too — and a full schedule × allocator × opt-level matrix
//! checks the trait emission against the direct compiler on every
//! combination.

use plim_backends::install;
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::{
    compile_full, AllocatorStrategy, CompilerOptions, OperandSelection, OptLevel, ScheduleOrder,
    Target,
};

/// `Target::RM3` emission reproduces the committed pre-refactor goldens.
#[test]
fn rm3_through_the_trait_matches_the_pre_refactor_goldens() {
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
    for circuit in ["dec", "int2float"] {
        let mig = suite::build(circuit, Scale::Reduced).expect("suite circuit");
        let optimized = mig::rewrite::rewrite(&mig, 4);
        let compilation = compile_full(&optimized, CompilerOptions::new());
        let artifact = Target::RM3.backend().emit(&compilation.ir);
        let listing = std::fs::read_to_string(format!("{golden}/{circuit}.O0.listing"))
            .expect("committed golden listing");
        assert_eq!(
            artifact.listing(),
            listing,
            "{circuit}: trait emission diverged from the pre-refactor compiler"
        );
    }
}

/// Trait emission equals direct compilation at every schedule × allocator
/// × `-O` level — same listing, same stats, registered backends present.
#[test]
fn rm3_trait_emission_equals_direct_compilation_on_the_full_matrix() {
    install(); // extra registered backends must not disturb the RM3 path
    for circuit in ["ctrl", "dec", "router"] {
        let mig = suite::build(circuit, Scale::Reduced).expect("suite circuit");
        let optimized = mig::rewrite::rewrite(&mig, 2);
        for schedule in ScheduleOrder::ALL {
            for allocator in AllocatorStrategy::ALL {
                for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
                    let options = CompilerOptions::new()
                        .schedule(schedule)
                        .operands(OperandSelection::Smart)
                        .allocator(allocator)
                        .opt(opt);
                    let compilation = compile_full(&optimized, options);
                    let artifact = options.target.backend().emit(&compilation.ir);
                    let context = format!("{circuit} @ {}", options.spec());
                    assert_eq!(
                        artifact.listing(),
                        compilation.compiled.program.to_string(),
                        "{context}: trait listing diverged"
                    );
                    let cost = artifact.cost();
                    let stats = &compilation.compiled.stats;
                    assert_eq!(cost.instructions, stats.instructions, "{context}");
                    assert_eq!(cost.footprint, stats.rams, "{context}");
                    assert_eq!(cost.wear, stats.max_cell_writes, "{context}");
                }
            }
        }
    }
}

/// At `-O0` no pass consults the cost model, so the target cannot perturb
/// lowering: an `ambit`-targeted compilation carries the exact IR — and
/// therefore the exact RM3 reference program — of the default one. (At
/// `-O1`+ the pipeline deliberately scores edits with the active backend's
/// model, so divergence there is a feature, not a bug.)
#[test]
fn target_choice_does_not_perturb_lowering() {
    install();
    let ambit = Target::parse("ambit").expect("registered");
    let mig = suite::build("int2float", Scale::Reduced).expect("suite circuit");
    let rm3 = compile_full(&mig, CompilerOptions::new());
    let other = compile_full(&mig, CompilerOptions::new().target(ambit));
    assert_eq!(
        rm3.ir.dump(),
        other.ir.dump(),
        "target choice leaked into lowering"
    );
    assert_eq!(
        rm3.compiled.program.to_string(),
        other.compiled.program.to_string()
    );
}
