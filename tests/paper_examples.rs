//! The paper's worked examples as regression tests.

use mig::rewrite::rewrite;
use mig::{Mig, Signal};
use plim_compiler::{compile, verify::verify, CompilerOptions};

/// Fig. 1: the AOIG-style MIG of `⟨x y z⟩`-like logic optimized to a
/// smaller, shallower MIG. We reproduce the structural claim: the
/// AOIG-transposed construction of `maj(x, y, z)` (4 AND/OR nodes, depth 3)
/// is functionally the single majority node.
#[test]
fn fig1_majority_from_aoig_collapses() {
    let mut aoig = Mig::new();
    let x = aoig.add_input("x");
    let y = aoig.add_input("y");
    let z = aoig.add_input("z");
    // (x ∧ y) ∨ (x ∧ z) ∨ (y ∧ z), AOIG style.
    let xy = aoig.and(x, y);
    let xz = aoig.and(x, z);
    let yz = aoig.and(y, z);
    let or1 = aoig.or(xy, xz);
    let top = aoig.or(or1, yz);
    aoig.add_output("f", top);
    assert_eq!(aoig.num_majority_nodes(), 5);
    assert_eq!(aoig.depth(), 3);

    // The optimal MIG is one node; our rewriting is a greedy pipeline, not
    // exact synthesis, so only require equivalence plus no growth…
    let rewritten = rewrite(&aoig, 4);
    assert!(mig::equiv::check_equivalence(&aoig, &rewritten, 8, 1)
        .unwrap()
        .holds());
    assert!(rewritten.num_majority_nodes() <= 5);

    // …and verify the claim itself by constructing the optimal form.
    let mut optimal = Mig::new();
    let x = optimal.add_input("x");
    let y = optimal.add_input("y");
    let z = optimal.add_input("z");
    let m = optimal.maj(x, y, z);
    optimal.add_output("f", m);
    assert!(mig::equiv::check_equivalence(&aoig, &optimal, 8, 1)
        .unwrap()
        .holds());
    assert_eq!(optimal.num_majority_nodes(), 1);
    assert_eq!(optimal.depth(), 1);
}

/// Fig. 3(a): rewriting shrinks the two-node example from 6 instructions /
/// 2 RRAMs to 4 / 1 under the (index-order, smart-translation) baseline.
#[test]
fn fig3a_rewriting_saves_instructions_and_rrams() {
    let mut mig = Mig::new();
    let i1 = mig.add_input("i1");
    let i2 = mig.add_input("i2");
    let i3 = mig.add_input("i3");
    let i4 = mig.add_input("i4");
    let n1 = mig.maj(i1, !i2, !i3);
    let n2 = mig.maj(i2, !i4, !n1);
    mig.add_output("f", n2);

    let before = compile(&mig, CompilerOptions::naive());
    assert_eq!(before.stats.instructions, 6, "paper: 6 instructions before");
    assert_eq!(before.stats.rams, 2, "paper: 2 RRAMs before");
    verify(&mig, &before, 4, 0).unwrap();

    let rewritten = rewrite(&mig, 4);
    let after = compile(&rewritten, CompilerOptions::naive());
    assert_eq!(after.stats.instructions, 4, "paper: 4 instructions after");
    assert_eq!(after.stats.rams, 1, "paper: 1 RRAM after");
    verify(&rewritten, &after, 4, 0).unwrap();
}

fn fig3b() -> Mig {
    let mut mig = Mig::new();
    let i1 = mig.add_input("i1");
    let i2 = mig.add_input("i2");
    let i3 = mig.add_input("i3");
    let n1 = mig.maj(Signal::FALSE, i1, i2);
    let n2 = mig.maj(Signal::TRUE, !i2, i3);
    let n3 = mig.maj(i1, i2, i3);
    let n4 = mig.maj(Signal::TRUE, n1, i3);
    let n5 = mig.maj(n1, !n2, n3);
    let n6 = mig.maj(n4, !n5, n1);
    mig.add_output("f", n6);
    mig
}

/// Fig. 3(b): the smart compiler hits the paper's 15 instructions and
/// 4 RRAMs exactly.
#[test]
fn fig3b_smart_compilation_matches_paper_counts() {
    let mig = fig3b();
    let smart = compile(&mig, CompilerOptions::new());
    assert_eq!(smart.stats.instructions, 15, "paper: 15 instructions");
    assert_eq!(smart.stats.rams, 4, "paper: 4 RRAMs");
    verify(&mig, &smart, 4, 0).unwrap();
}

/// Fig. 3(b): the naive order is strictly worse on both metrics.
#[test]
fn fig3b_naive_is_strictly_worse() {
    let mig = fig3b();
    let naive = compile(
        &mig,
        CompilerOptions::naive().operands(plim_compiler::OperandSelection::ChildOrder),
    );
    let smart = compile(&mig, CompilerOptions::new());
    assert!(naive.stats.instructions > smart.stats.instructions);
    assert!(naive.stats.rams > smart.stats.rams);
    verify(&mig, &naive, 4, 0).unwrap();
}

/// The §2.2 RM3 semantics table: `Z ← ⟨A B̄ Z⟩` for every combination.
#[test]
fn rm3_truth_table_from_section2() {
    use plim::{Instruction, Machine, Operand, RamAddr};
    for a in [false, true] {
        for b in [false, true] {
            for z in [false, true] {
                let mut machine = Machine::new();
                machine.ensure_cells(1);
                machine.write_cell(RamAddr(0), z);
                machine
                    .step(Instruction::new(
                        Operand::Const(a),
                        Operand::Const(b),
                        RamAddr(0),
                    ))
                    .unwrap();
                let expected = [a, !b, z].iter().filter(|&&v| v).count() >= 2;
                assert_eq!(machine.cell(RamAddr(0)).unwrap(), expected);
            }
        }
    }
}
