//! Write-counter accounting: the machine's per-cell endurance counters
//! after executing a compiled program must equal the histogram of the
//! program's instruction destinations (every RM3 instruction writes exactly
//! its `Z` cell, and nothing else writes).

use plim::endurance::EnduranceStats;
use plim::Machine;
use plim_benchmarks::suite::{build, Scale};
use plim_compiler::{compile, CompilerOptions};

/// Histogram of instruction destinations, recomputed independently of
/// `Rm3Program::static_write_counts`.
fn destination_histogram(program: &plim::Program) -> Vec<u64> {
    let mut counts = vec![0u64; program.num_rams() as usize];
    for instruction in program.instructions() {
        counts[instruction.z.index()] += 1;
    }
    counts
}

#[test]
fn machine_counters_equal_destination_histogram() {
    for name in ["adder", "ctrl", "i2c", "router"] {
        let mig = build(name, Scale::Reduced).unwrap();
        let compiled = compile(&mig, CompilerOptions::new());
        let histogram = destination_histogram(&compiled.program);
        assert_eq!(
            compiled.static_write_counts(),
            histogram,
            "{name}: static accounting disagrees with the instruction stream"
        );

        let inputs = vec![false; mig.num_inputs()];
        let mut machine = Machine::new();
        machine.run(&compiled.program, &inputs).unwrap();
        assert_eq!(
            machine.write_counts(),
            histogram.as_slice(),
            "{name}: machine counters disagree with the instruction stream"
        );
        assert_eq!(
            machine.cycles(),
            compiled.stats.instructions as u64,
            "{name}"
        );
    }
}

#[test]
fn counters_accumulate_across_executions() {
    let mig = build("int2float", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let histogram = destination_histogram(&compiled.program);

    let mut machine = Machine::new();
    let mut rng = mig::simulate::XorShift64::new(0xE4D0);
    for run in 1..=3u64 {
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.next_bool()).collect();
        machine.run(&compiled.program, &inputs).unwrap();
        let expected: Vec<u64> = histogram.iter().map(|&c| c * run).collect();
        assert_eq!(
            machine.write_counts(),
            expected.as_slice(),
            "counters must accumulate linearly (run {run})"
        );
    }
}

#[test]
fn endurance_stats_match_counter_vector() {
    let mig = build("priority", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let inputs = vec![true; mig.num_inputs()];
    let mut machine = Machine::new();
    machine.run(&compiled.program, &inputs).unwrap();

    let from_machine = machine.endurance();
    let from_counts = EnduranceStats::from_counts(machine.write_counts());
    assert_eq!(from_machine, from_counts);

    // Inputs never change which cells are written — the wear profile of a
    // single run is static.
    assert_eq!(from_machine, compiled.static_endurance());
    assert_eq!(
        from_machine.total_writes,
        compiled.stats.instructions as u64
    );
}

#[test]
fn direct_cell_writes_count_toward_endurance() {
    use plim::RamAddr;
    let mut machine = Machine::new();
    machine.write_cell(RamAddr(2), true);
    machine.write_cell(RamAddr(2), false);
    machine.write_cell(RamAddr(0), true);
    assert_eq!(machine.write_counts(), &[1, 0, 2]);
    assert_eq!(machine.endurance().max_writes, 2);
    // Standard-RAM-mode writes are not LiM cycles.
    assert_eq!(machine.cycles(), 0);
}
