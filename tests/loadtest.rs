//! The acceptance gate for the reactor rewrite: an in-process daemon must
//! sustain ≥1000 concurrent pipelined connections with every response
//! byte-identical to the offline pipeline.

use plim_service::loadtest::{self, Circuit, LoadtestConfig};
use plim_service::server::{Server, ServerConfig};

const CIRCUITS: [(&str, &str); 3] = [
    ("maj3", "inputs a b c\nn = maj(a, b, c)\noutput f = n\n"),
    (
        "and-or",
        "inputs a b c d\nx = maj(0, a, b)\ny = maj(1, c, d)\nz = maj(0, x, y)\noutput f = z\n",
    ),
    (
        "chain",
        "inputs a b c d e\np = maj(a, b, c)\nq = maj(p, c, d)\nr = maj(q, d, e)\noutput f = r\n",
    ),
];

#[test]
fn a_thousand_pipelined_connections_get_byte_identical_responses() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_bytes: 1 << 20,
        log: false,
        ..ServerConfig::default()
    })
    .expect("bind on a free port");
    let addr = server.local_addr().expect("resolved address").to_string();
    let handle = std::thread::spawn(move || server.run());

    let mut config = LoadtestConfig {
        addr: addr.clone(),
        connections: 1000,
        pipeline: 4,
        requests_per_conn: 4,
        circuits: Vec::new(),
    };
    for (name, source) in CIRCUITS {
        config.circuits.push(Circuit {
            name: name.to_string(),
            source: source.to_string(),
            expected: loadtest::offline_expected(source).expect("offline compile"),
        });
    }

    let report = loadtest::run(&config).expect("loadtest run");
    assert_eq!(report.requests, 4000, "{report}");
    assert_eq!(report.responses, 4000, "{report}");
    assert_eq!(report.errors, 0, "{report}");
    assert_eq!(report.mismatches, 0, "{report}");
    assert!(report.passed(), "{report}");
    // 3 circuits × 1 fingerprint: everything past the first compile of
    // each circuit is served from the cache.
    assert!(report.cached >= 4000 - 100, "{report}");
    assert!(report.throughput() > 0.0);

    let response = plim_service::client::send(&addr, &plim_service::protocol::Request::Shutdown)
        .expect("shutdown");
    assert_eq!(response, plim_service::protocol::Response::Shutdown);
    handle.join().expect("server thread").expect("clean exit");
}
