//! Property-based tests over randomly generated MIGs: rewriting preserves
//! functions, compilation is correct under every option combination, and
//! the allocator invariants hold.

use proptest::prelude::*;

use mig::equiv::check_equivalence;
use mig::rewrite::{pass_associativity, pass_distributivity_rl, pass_inverter_reduce, rewrite};
use plim_benchmarks::random::{random_arithmetic, random_logic, RandomLogicSpec};
use plim_compiler::{
    compile, verify::verify, AllocatorStrategy, CompilerOptions, OperandSelection, ScheduleOrder,
};

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..10, 1usize..8, 10usize..120, any::<u64>()).prop_map(
        |(inputs, outputs, nodes, seed)| RandomLogicSpec::new(inputs, outputs, nodes, seed),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rewriting_preserves_random_functions(spec in spec_strategy(), effort in 1usize..5) {
        let mig = random_logic(&spec);
        let rewritten = rewrite(&mig, effort);
        prop_assert!(check_equivalence(&mig, &rewritten, 8, spec.seed)
            .expect("same interface")
            .holds());
        prop_assert!(rewritten.num_majority_nodes() <= mig.num_majority_nodes());
    }

    #[test]
    fn each_pass_preserves_random_functions(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let (d, _) = pass_distributivity_rl(&mig);
        prop_assert!(check_equivalence(&mig, &d, 8, 1).expect("iface").holds());
        let (a, _) = pass_associativity(&mig);
        prop_assert!(check_equivalence(&mig, &a, 8, 2).expect("iface").holds());
        let (i, _) = pass_inverter_reduce(&mig);
        prop_assert!(check_equivalence(&mig, &i, 8, 3).expect("iface").holds());
    }

    #[test]
    fn inverter_pass_reaches_single_complement_form(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let (once, _) = pass_inverter_reduce(&mig);
        let (twice, _) = pass_inverter_reduce(&once);
        for id in twice.majority_ids() {
            let children = twice.node(id).children().expect("majority");
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            prop_assert!(real <= 1, "node {id} keeps {real} complemented children");
        }
    }

    #[test]
    fn compilation_is_correct_on_random_logic(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::new());
        prop_assert!(verify(&mig, &compiled, 2, spec.seed).is_ok());
    }

    #[test]
    fn compilation_is_correct_under_all_options(
        spec in spec_strategy(),
        schedule in 0usize..ScheduleOrder::ALL.len(),
        smart_operands: bool,
        allocator in 0usize..AllocatorStrategy::ALL.len(),
    ) {
        let mig = random_logic(&spec);
        let opts = CompilerOptions::new()
            .schedule(ScheduleOrder::ALL[schedule])
            .operands(if smart_operands { OperandSelection::Smart } else { OperandSelection::ChildOrder })
            .allocator(AllocatorStrategy::ALL[allocator]);
        let compiled = compile(&mig, opts);
        prop_assert!(verify(&mig, &compiled, 2, spec.seed).is_ok());
    }

    #[test]
    fn compilation_is_correct_on_arithmetic(inputs in 4usize..12, seed: u64) {
        let mig = random_arithmetic(inputs, seed);
        let rewritten = rewrite(&mig, 2);
        prop_assert!(check_equivalence(&mig, &rewritten, 8, seed).expect("iface").holds());
        let compiled = compile(&rewritten, CompilerOptions::new());
        prop_assert!(verify(&rewritten, &compiled, 2, seed).is_ok());
    }

    #[test]
    fn stats_match_program_contents(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::new());
        prop_assert_eq!(compiled.stats.instructions, compiled.program.len());
        prop_assert_eq!(compiled.stats.rams, compiled.program.num_rams());
        prop_assert!(compiled.stats.peak_live as u32 <= compiled.stats.rams);
        // Every instruction writes one cell; static counts must sum to #I.
        let total: u64 = compiled.static_write_counts().iter().sum();
        prop_assert_eq!(total as usize, compiled.stats.instructions);
    }

    #[test]
    fn fresh_allocator_upper_bounds_reusing_allocators(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let fifo = compile(&mig, CompilerOptions::new());
        let lifo = compile(&mig, CompilerOptions::new().allocator(AllocatorStrategy::Lifo));
        let fresh = compile(&mig, CompilerOptions::new().allocator(AllocatorStrategy::Fresh));
        prop_assert!(fifo.stats.rams <= fresh.stats.rams);
        prop_assert!(lifo.stats.rams <= fresh.stats.rams);
        // Reuse policy cannot change the instruction count.
        prop_assert_eq!(fifo.stats.instructions, fresh.stats.instructions);
        prop_assert_eq!(lifo.stats.instructions, fresh.stats.instructions);
    }

    #[test]
    fn allocator_never_double_books(ops in proptest::collection::vec(any::<bool>(), 1..200)) {
        use plim_compiler::alloc::RramAllocator;
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let mut live = Vec::new();
        for request in ops {
            if request || live.is_empty() {
                let addr = alloc.request();
                prop_assert!(!live.contains(&addr), "double-booked {addr}");
                live.push(addr);
            } else {
                let addr = live.swap_remove(live.len() / 2);
                alloc.release(addr);
            }
            prop_assert_eq!(alloc.num_live(), live.len());
        }
    }

    #[test]
    fn io_roundtrip_on_random_graphs(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let text = mig::io::write_mig(&mig);
        let parsed = mig::io::parse_mig(&text).expect("own output parses");
        prop_assert!(check_equivalence(&mig, &parsed, 8, 9).expect("iface").holds());
    }

    #[test]
    fn levelized_preserves_function(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let levelized = mig.levelized();
        prop_assert!(check_equivalence(&mig, &levelized, 8, 11).expect("iface").holds());
        prop_assert_eq!(levelized.num_majority_nodes(), mig.cleaned().num_majority_nodes());
    }
}
