//! Differential tests: the bit-parallel [`WideMachine`] must be
//! indistinguishable from 64 (or 256) scalar [`Machine`] runs — same
//! outputs bit for bit, same lanes-adjusted write counters, same errors
//! on malformed programs — across every compiler option combination.

use proptest::prelude::*;

use plim::wide::{LaneWord, WideMachine, W256};
use plim::{Instruction, Machine, MachineError, Operand, Program, RamAddr};
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_compiler::{compile, AllocatorStrategy, CompilerOptions, OptLevel, ScheduleOrder};

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..10, 1usize..8, 10usize..100, any::<u64>()).prop_map(
        |(inputs, outputs, nodes, seed)| RandomLogicSpec::new(inputs, outputs, nodes, seed),
    )
}

/// Runs `program` through the scalar machine once per lane of the wide
/// input words, reusing one machine so its write counters accumulate to
/// the wide machine's lanes-adjusted totals.
fn scalar_reference<W: LaneWord>(
    program: &Program,
    wide_inputs: &[W],
) -> (Vec<Vec<bool>>, Machine) {
    let mut machine = Machine::new();
    let mut per_lane = Vec::with_capacity(W::LANES);
    for lane in 0..W::LANES {
        let inputs: Vec<bool> = wide_inputs.iter().map(|w| w.lane(lane)).collect();
        per_lane.push(machine.run(program, &inputs).unwrap());
    }
    (per_lane, machine)
}

/// Asserts wide outputs and counters equal the scalar reference on random
/// input words drawn from `seed`.
fn assert_wide_matches_scalar<W: LaneWord>(program: &Program, seed: u64) {
    let mut rng = mig::simulate::XorShift64::new(seed);
    let wide_inputs: Vec<W> = (0..program.num_inputs())
        .map(|_| W::from_blocks(|_| rng.next_word()))
        .collect();

    let (per_lane, scalar) = scalar_reference(program, &wide_inputs);
    let mut wide = WideMachine::<W>::new();
    let got = wide.run(program, &wide_inputs).unwrap();

    for (lane, scalar_outputs) in per_lane.iter().enumerate() {
        for (index, &expected) in scalar_outputs.iter().enumerate() {
            assert_eq!(
                got[index].lane(lane),
                expected,
                "output {index}, lane {lane}"
            );
        }
    }
    // One wide run = LANES scalar runs, so the lanes-adjusted write
    // counters must agree exactly. Cycles count machine *steps* (one wide
    // step executes all lanes), so the scalar machine takes LANES× more.
    assert_eq!(wide.write_counts(), scalar.write_counts());
    assert_eq!(wide.cycles() * W::LANES as u64, scalar.cycles());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wide64_matches_scalar_on_all_option_combos(
        spec in spec_strategy(),
        schedule in 0usize..ScheduleOrder::ALL.len(),
        allocator in 0usize..AllocatorStrategy::ALL.len(),
        opt in 0usize..OptLevel::ALL.len(),
    ) {
        let mig = random_logic(&spec);
        let options = CompilerOptions::new()
            .schedule(ScheduleOrder::ALL[schedule])
            .allocator(AllocatorStrategy::ALL[allocator])
            .opt(OptLevel::ALL[opt]);
        let compiled = compile(&mig, options);
        assert_wide_matches_scalar::<u64>(&compiled.program, spec.seed);
    }

    #[test]
    fn wide256_matches_scalar(spec in spec_strategy(), opt in 0usize..OptLevel::ALL.len()) {
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::new().opt(OptLevel::ALL[opt]));
        assert_wide_matches_scalar::<W256>(&compiled.program, spec.seed ^ 0xDAC);
    }

    #[test]
    fn naive_translations_are_lane_exact_too(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::naive());
        assert_wide_matches_scalar::<u64>(&compiled.program, spec.seed);
    }
}

#[test]
fn wide256_counters_are_four_times_wide64() {
    let spec = RandomLogicSpec::new(5, 3, 40, 99);
    let mig = random_logic(&spec);
    let compiled = compile(&mig, CompilerOptions::new());
    let n = compiled.program.num_inputs();

    let mut wide64 = WideMachine::<u64>::new();
    wide64.run(&compiled.program, &vec![0u64; n]).unwrap();
    let mut wide256 = WideMachine::<W256>::new();
    wide256
        .run(&compiled.program, &vec![W256::zero(); n])
        .unwrap();

    let quadrupled: Vec<u64> = wide64.write_counts().iter().map(|&c| 4 * c).collect();
    assert_eq!(wide256.write_counts(), &quadrupled[..]);
}

#[test]
fn malformed_programs_error_identically_on_both_machines() {
    // Input index out of range.
    let mut out_of_range = Program::new(1);
    out_of_range.push(Instruction::new(
        Operand::Input(7),
        Operand::Const(false),
        RamAddr(0),
    ));
    // Input count mismatch (program expects 2 inputs, given 1).
    let two_inputs = Program::new(2);

    let scalar_oor = Machine::new().run(&out_of_range, &[true]).unwrap_err();
    let wide_oor = WideMachine::<u64>::new()
        .run(&out_of_range, &[!0u64])
        .unwrap_err();
    assert_eq!(scalar_oor, wide_oor);
    assert_eq!(wide_oor, MachineError::InputOutOfRange { index: 7 });

    let scalar_count = Machine::new().run(&two_inputs, &[true]).unwrap_err();
    let wide_count = WideMachine::<W256>::new()
        .run(&two_inputs, &[W256::ones()])
        .unwrap_err();
    assert_eq!(scalar_count, wide_count);
    assert_eq!(
        wide_count,
        MachineError::InputCountMismatch {
            expected: 2,
            got: 1
        }
    );
}
