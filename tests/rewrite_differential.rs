//! Differential properties of the two rewrite engines: the in-place arena
//! engine (the default behind `mig::rewrite::rewrite`) must be functionally
//! equivalent to the rebuild reference engine, never produce more nodes on
//! the benchmark suite, and keep the batch pipeline byte-identical to
//! serial compilation.

use proptest::prelude::*;

use mig::arena::RewriteArena;
use mig::equiv::check_equivalence;
use mig::rewrite::{rewrite, rewrite_inplace_with_stats, rewrite_rebuild_with_stats};
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::batch::{format_row, measure, measure_suite, Circuit};
use plim_compiler::{compile, CompilerOptions};
use plim_parallel::Parallelism;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// On random MIGs both engines preserve the function, report consistent
    /// statistics, and the in-place engine reaches a size at least as small
    /// as its own input.
    #[test]
    fn inplace_and_rebuild_agree_on_random_logic(
        seed: u64,
        inputs in 2usize..9,
        outputs in 1usize..6,
        nodes in 10usize..150,
        effort in 1usize..5,
    ) {
        let spec = RandomLogicSpec::new(inputs, outputs, nodes, seed);
        let mig = random_logic(&spec);
        let (inplace, istats) = rewrite_inplace_with_stats(&mig, effort);
        let (rebuild, rstats) = rewrite_rebuild_with_stats(&mig, effort);

        prop_assert!(check_equivalence(&mig, &inplace, 16, seed).unwrap().holds(),
            "in-place engine changed the function");
        prop_assert!(check_equivalence(&mig, &rebuild, 16, seed).unwrap().holds(),
            "rebuild engine changed the function");
        prop_assert!(check_equivalence(&inplace, &rebuild, 16, seed).unwrap().holds());

        // Stats consistency: both saw the same input, and each reports the
        // node count of the graph it actually produced.
        prop_assert_eq!(istats.nodes_before, rstats.nodes_before);
        prop_assert_eq!(istats.nodes_after, inplace.num_majority_nodes());
        prop_assert_eq!(rstats.nodes_after, rebuild.num_majority_nodes());
        prop_assert!(istats.cycles >= 1);
        prop_assert!(istats.cycles <= effort);
        prop_assert_eq!(istats.size_per_cycle.len(), istats.cycles);
        prop_assert!(istats.nodes_after <= istats.nodes_before);
    }

    /// The in-place engine leaves no multi-complement nodes behind, exactly
    /// like the rebuild engine's Ω.I sweeps.
    #[test]
    fn inplace_engine_removes_multi_complement_nodes(
        seed: u64,
        inputs in 2usize..8,
        nodes in 10usize..120,
    ) {
        let spec = RandomLogicSpec::new(inputs, 3, nodes, seed);
        let mig = random_logic(&spec);
        let rewritten = rewrite(&mig, 4);
        for id in rewritten.majority_ids() {
            let children = rewritten.node(id).children().unwrap();
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            prop_assert!(real <= 1, "node {} kept {} complements", id, real);
        }
    }

    /// One reusable arena across many circuits produces exactly the same
    /// graphs as a fresh engine per circuit.
    #[test]
    fn reused_arena_matches_fresh_engine(
        seed: u64,
        inputs in 2usize..8,
        effort in 1usize..4,
    ) {
        let mut arena = RewriteArena::new();
        for round in 0..3u64 {
            let spec = RandomLogicSpec::new(inputs, 2, 40, seed ^ round);
            let mig = random_logic(&spec);
            let reused = arena.rewrite(&mig, effort);
            let fresh = rewrite(&mig, effort);
            prop_assert_eq!(mig::io::write_mig(&reused), mig::io::write_mig(&fresh));
        }
    }
}

/// On every Table 1 benchmark the in-place engine is equivalent to the
/// rebuild engine and produces a node count no worse.
#[test]
fn inplace_no_worse_than_rebuild_on_the_suite() {
    for &name in suite::ALL.iter() {
        let mig = suite::build(name, Scale::Reduced).unwrap();
        let (inplace, istats) = rewrite_inplace_with_stats(&mig, 4);
        let (rebuild, _) = rewrite_rebuild_with_stats(&mig, 4);
        assert!(
            check_equivalence(&mig, &inplace, 32, 0xDAC)
                .unwrap()
                .holds(),
            "{name}: in-place engine changed the function"
        );
        assert!(
            inplace.num_majority_nodes() <= rebuild.num_majority_nodes(),
            "{name}: in-place {} nodes vs rebuild {}",
            inplace.num_majority_nodes(),
            rebuild.num_majority_nodes()
        );
        assert_eq!(istats.nodes_before, mig.num_majority_nodes(), "{name}");
        assert_eq!(istats.nodes_after, inplace.num_majority_nodes(), "{name}");
    }
}

/// Batch compilation through the thread-local reusable arenas stays
/// byte-identical to serial compilation under the in-place engine.
#[test]
fn batch_stays_byte_identical_to_serial_under_the_inplace_engine() {
    let circuits: Vec<Circuit> = ["ctrl", "int2float", "router", "dec"]
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, Scale::Reduced).unwrap()))
        .collect();
    let run = measure_suite(&circuits, 4, Parallelism::Threads(4));
    for circuit in &circuits {
        let serial = measure(&circuit.name, &circuit.mig, 4);
        let batched = run.rows.iter().find(|r| r.name == circuit.name).unwrap();
        assert_eq!(
            format_row(&serial),
            format_row(batched),
            "{} diverged between serial and batch",
            circuit.name
        );
    }
    // The compiled programs themselves (not just the formatted rows) agree
    // with serial compilation of the same rewritten graph.
    for job in &run.report.jobs {
        let input = match job.spec.effort {
            plim_compiler::batch::RewriteEffort::Raw => circuits[job.spec.circuit].mig.clone(),
            plim_compiler::batch::RewriteEffort::Effort(e) => {
                rewrite(&circuits[job.spec.circuit].mig, e)
            }
        };
        let serial = compile(&input, job.spec.options);
        assert_eq!(job.compiled.program.to_string(), serial.program.to_string());
    }
}

/// The compaction happens exactly once per rewrite call: the arena retains
/// every dead slot of the run, so its length equals the peak, and a fresh
/// `load` is what resets it.
#[test]
fn single_compaction_per_rewrite_call() {
    let mig = suite::build("voter", Scale::Reduced).unwrap();
    let mut arena = RewriteArena::new();
    let (out, stats) = arena.rewrite_with_stats(&mig, 4);
    // No intermediate compaction: dead slots accumulate in the arena, so
    // the arena is never shorter than peak minus nothing — i.e. its final
    // length IS the peak length of the whole run.
    assert_eq!(arena.len(), arena.peak_arena_len());
    assert!(arena.live_majority_count() <= arena.len());
    // The compaction may only canonicalize further, never grow.
    assert!(out.num_majority_nodes() <= arena.live_majority_count());
    assert!(stats.nodes_after <= stats.nodes_before);
    // Compared to the rebuild engine, which allocates ~5 graphs per cycle,
    // the arena's total allocation footprint is bounded by one table.
    let naive = CompilerOptions::naive();
    let _ = compile(&out, naive); // the result is a valid compiler input
}
