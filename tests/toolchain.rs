//! Toolchain integration: the format converters, the architectural cost
//! model and the constrained driver, chained the way `plimc` chains them.

use mig::aiger::{parse_aiger, write_aiger};
use mig::equiv::check_equivalence;
use mig::resynth::rewrite_extended;
use mig::rewrite::rewrite;
use plim::asm::{parse_asm, write_asm};
use plim::controller::{Controller, CostModel};
use plim::Machine;
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{build, Scale};
use plim_compiler::constrained::compile_with_ram_limit;
use plim_compiler::report::CostReport;
use plim_compiler::{compile, verify::verify, CompilerOptions};
use proptest::prelude::*;

#[test]
fn aiger_import_feeds_the_full_pipeline() {
    // A 2:1 mux in AIGER: f = (s ∧ a) ∨ (¬s ∧ b) = ¬(¬(s∧a) ∧ ¬(¬s∧b)).
    let src = "aag 5 3 0 1 3\n2\n4\n6\n11\n8 2 4\n10 3 6\n11 9 11\n";
    // (deliberately malformed last AND: output literal reused) — parse must
    // reject it, then the corrected version must flow through.
    assert!(parse_aiger(src).is_err());
    let src = "aag 6 3 0 1 3\n2\n4\n6\n13\n8 2 4\n10 3 6\n12 9 11\n";
    let mig = parse_aiger(src).expect("well-formed");
    let optimized = rewrite(&mig, 4);
    assert!(check_equivalence(&mig, &optimized, 8, 0).unwrap().holds());
    let compiled = compile(&optimized, CompilerOptions::new());
    verify(&optimized, &compiled, 4, 0).unwrap();
}

#[test]
fn compiled_programs_roundtrip_through_asm() {
    let mig = build("int2float", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let text = write_asm(&compiled.program);
    let parsed = parse_asm(&text).expect("own asm parses");
    let mut m1 = Machine::new();
    let mut m2 = Machine::new();
    let mut rng = mig::simulate::XorShift64::new(77);
    for _ in 0..64 {
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.next_bool()).collect();
        assert_eq!(
            m1.run(&compiled.program, &inputs).unwrap(),
            m2.run(&parsed, &inputs).unwrap()
        );
    }
}

#[test]
fn controller_report_matches_static_analysis() {
    let mig = build("ctrl", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let report = CostReport::analyze(&compiled);
    let mut controller = Controller::new(CostModel::default());
    let inputs = vec![false; mig.num_inputs()];
    let (_, execution) = controller.execute(&compiled.program, &inputs).unwrap();
    assert_eq!(execution.instructions as usize, report.instructions);
    assert!((execution.latency_ns - report.latency_ns).abs() < 1e-9);
    assert!((execution.energy_pj - report.energy_pj).abs() < 1e-9);
}

#[test]
fn constrained_compilation_on_suite_circuits() {
    for name in ["adder", "priority", "router"] {
        let mig = rewrite(&build(name, Scale::Reduced).unwrap(), 4);
        let unconstrained = compile(&mig, CompilerOptions::new());
        let fitted = compile_with_ram_limit(&mig, unconstrained.stats.rams)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(fitted.stats.rams <= unconstrained.stats.rams);
        verify(&mig, &fitted, 4, 3).unwrap();
        assert!(compile_with_ram_limit(&mig, 0).is_err(), "{name}");
    }
}

#[test]
fn extended_rewriting_beats_plain_on_adders() {
    let mig = build("adder", Scale::Reduced).unwrap();
    let plain = rewrite(&mig, 4);
    let extended = rewrite_extended(&mig, 4);
    assert!(check_equivalence(&mig, &extended, 16, 1).unwrap().holds());
    assert!(
        extended.num_majority_nodes() <= plain.num_majority_nodes(),
        "resynthesis must not lose to plain rewriting ({} vs {})",
        extended.num_majority_nodes(),
        plain.num_majority_nodes()
    );
    // The compiled program of the extended graph must still verify.
    let compiled = compile(&extended, CompilerOptions::new());
    verify(&extended, &compiled, 4, 2).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn aiger_roundtrip_on_random_graphs(
        seed: u64,
        inputs in 2usize..8,
        nodes in 5usize..60,
    ) {
        let spec = RandomLogicSpec::new(inputs, 3, nodes, seed);
        let mig = random_logic(&spec);
        let text = write_aiger(&mig);
        let reparsed = parse_aiger(&text).expect("own AIGER parses");
        prop_assert!(check_equivalence(&mig, &reparsed, 8, seed).unwrap().holds());
    }

    #[test]
    fn asm_roundtrip_on_random_compilations(seed: u64, inputs in 2usize..8) {
        let spec = RandomLogicSpec::new(inputs, 2, 40, seed);
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::new());
        let parsed = parse_asm(&write_asm(&compiled.program)).expect("asm parses");
        prop_assert_eq!(parsed.instructions(), compiled.program.instructions());
        prop_assert_eq!(parsed.outputs(), compiled.program.outputs());
        prop_assert_eq!(parsed.num_inputs(), compiled.program.num_inputs());
    }

    #[test]
    fn extended_rewrite_preserves_random_functions(seed: u64, inputs in 2usize..8) {
        let spec = RandomLogicSpec::new(inputs, 3, 50, seed);
        let mig = random_logic(&spec);
        let extended = rewrite_extended(&mig, 3);
        prop_assert!(check_equivalence(&mig, &extended, 8, seed).unwrap().holds());
        prop_assert!(extended.num_majority_nodes() <= mig.num_majority_nodes());
    }
}
