//! Pinning tests for the §4.2.2 translation case analysis: each scenario
//! constructs a small MIG whose fanout/complement structure forces a
//! specific operand-B / destination-Z / operand-A case, and asserts the
//! exact instruction cost the paper's analysis predicts.
//!
//! All scenarios are also functionally verified on the machine.

use mig::{Mig, Signal};
use plim_compiler::{compile, verify::verify, CompilerOptions};

fn checked(mig: &Mig) -> plim_compiler::Rm3Program {
    let compiled = compile(mig, CompilerOptions::new());
    verify(mig, &compiled, 4, 0).expect("compiled program must be correct");
    compiled
}

/// Builds two computed feeder nodes `x = a∧b`, `y = c∧d` (single fanout
/// each) and returns them with the graph.
fn feeders() -> (Mig, Signal, Signal) {
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let c = mig.add_input("c");
    let d = mig.add_input("d");
    let x = mig.and(a, b);
    let y = mig.and(c, d);
    (mig, x, y)
}

#[test]
fn ideal_case_is_one_instruction_per_node() {
    // Top node ⟨x̄ y e⟩: B(a) takes x̄ directly, Z(b) overwrites the
    // single-fanout y, A reads e — the ideal one-instruction case.
    let (mut mig, x, y) = feeders();
    let e = mig.add_input("e");
    let top = mig.maj(!x, y, e);
    mig.add_output("f", top);
    let compiled = checked(&mig);
    // Feeders: 3 each (operand-B takes the inverse constant, the
    // destination copies a PI in 2 instructions, plus the RM3 — exactly
    // the paper's Fig. 3(b) N1 pattern). Top: 1 instruction only.
    assert_eq!(compiled.stats.instructions, 7);
    assert_eq!(compiled.stats.rams, 2);
}

#[test]
fn and_or_nodes_cost_init_plus_rm3() {
    // A single AND ⟨0 a b⟩ over primary inputs: B(c) takes the inverse
    // constant, the destination is a 2-instruction PI copy (PIs cannot be
    // overwritten), plus the RM3 — 3 total, matching the paper's smart
    // Fig. 3(b) listing for N1.
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let f = mig.and(a, b);
    mig.add_output("f", f);
    let compiled = checked(&mig);
    assert_eq!(compiled.stats.instructions, 3);
    assert_eq!(compiled.stats.rams, 1);
}

#[test]
fn complement_cache_is_reused_across_parents() {
    // Two parents both need x̄ as a *plain-edge* operand-B complement:
    // ⟨x p q⟩-style nodes with no complemented child and no constant.
    // The first parent materializes x̄ (B case g/h: +2 instructions and
    // +1 RRAM, cached); the second parent hits the cache (B case f: +0).
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let p = mig.add_input("p");
    let q = mig.add_input("q");
    let r = mig.add_input("r");
    let s = mig.add_input("s");
    let x = mig.and(a, b);
    let t1 = mig.maj(x, p, q);
    let t2 = mig.maj(x, r, s);
    mig.add_output("f", t1);
    mig.add_output("g", t2);
    let compiled = checked(&mig);
    // x: 3 (constant-B AND over PIs)
    // t1: B = x̄ materialized (2) + Z = copy of a PI (2) + RM3 = 5
    // t2: B = cached x̄ (0) + Z = copy of a PI (2) + RM3 = 3
    assert_eq!(compiled.stats.instructions, 11);
}

#[test]
fn without_cache_second_parent_would_pay_again() {
    // Contrast with the cache test: naive child-order translation has no
    // cache, so the same structure costs the materialization twice.
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let p = mig.add_input("p");
    let q = mig.add_input("q");
    let r = mig.add_input("r");
    let s = mig.add_input("s");
    let x = mig.and(a, b);
    let t1 = mig.maj(x, p, q);
    let t2 = mig.maj(x, r, s);
    mig.add_output("f", t1);
    mig.add_output("g", t2);
    let naive = compile(
        &mig,
        CompilerOptions::naive().operands(plim_compiler::OperandSelection::ChildOrder),
    );
    verify(&mig, &naive, 4, 0).unwrap();
    let smart = checked(&mig);
    assert!(
        naive.stats.instructions > smart.stats.instructions,
        "caching must save instructions: naive {} vs smart {}",
        naive.stats.instructions,
        smart.stats.instructions
    );
}

#[test]
fn constant_destination_costs_one_init() {
    // ⟨1 x̄ e⟩ with x̄ feeding B: the constant child becomes the
    // destination via one initialization (Z case c).
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let e = mig.add_input("e");
    let x = mig.and(a, b);
    let top = mig.maj(Signal::TRUE, !x, e);
    mig.add_output("f", top);
    let compiled = checked(&mig);
    // x: 3; top: Z init (1) + RM3 (1) = 2.
    assert_eq!(compiled.stats.instructions, 5);
    assert_eq!(compiled.stats.rams, 2);
}

#[test]
fn multi_fanout_destination_requires_copy() {
    // ⟨x̄ y e⟩ where y ALSO feeds an output: Z cannot overwrite y (it is
    // still needed), so the destination is a 2-instruction copy (Z case e).
    let (mut mig, x, y) = feeders();
    let e = mig.add_input("e");
    let top = mig.maj(!x, y, e);
    mig.add_output("f", top);
    mig.add_output("y_tap", y);
    let compiled = checked(&mig);
    // x: 3; y: 3; top: copy (2) + RM3 (1) = 3.
    assert_eq!(compiled.stats.instructions, 9);
    assert_eq!(compiled.stats.rams, 3);
}

#[test]
fn worst_case_node_costs_paper_maximum() {
    // §4.2.2: "In the worst case, six additional instructions and three
    // additional RRAMs are required" — B(h), Z(e)… approximated by a full
    // majority over three multi-fanout plain children: B materializes a
    // complement (+2), Z copies (+2), A reads plain, plus the RM3.
    let mut mig = Mig::new();
    let ins = mig.add_inputs("x", 6);
    let x = mig.and(ins[0], ins[1]);
    let y = mig.and(ins[2], ins[3]);
    let z = mig.and(ins[4], ins[5]);
    let top = mig.maj(x, y, z);
    mig.add_output("f", top);
    // Keep all three children alive past the top node.
    mig.add_output("tx", x);
    mig.add_output("ty", y);
    mig.add_output("tz", z);
    let compiled = checked(&mig);
    // Feeders: 3 × 3 = 9. Top: B complement (+2), Z copy (+2), RM3 (+1).
    assert_eq!(compiled.stats.instructions, 14);
    // Feeders 3 + B's cache cell + Z's copy cell.
    assert_eq!(compiled.stats.rams, 5);
}

#[test]
fn complemented_po_materializes_via_cache() {
    // A complemented primary output needs its complement in a cell: two
    // extra instructions and one extra RRAM at finalization.
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let x = mig.and(a, b);
    mig.add_output("f", !x);
    let compiled = checked(&mig);
    // x: 3; complement materialization at finalization: 2.
    assert_eq!(compiled.stats.instructions, 5);
    assert_eq!(compiled.stats.rams, 2);
}

#[test]
fn shared_po_and_complement_share_the_cell() {
    // Both polarities of the same node as outputs: the plain cell serves
    // one, the complement cache the other — no third cell.
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let x = mig.and(a, b);
    mig.add_output("f", x);
    mig.add_output("g", !x);
    let compiled = checked(&mig);
    assert_eq!(compiled.stats.instructions, 5);
    assert_eq!(compiled.stats.rams, 2);
}

#[test]
fn released_cells_are_recycled_fifo() {
    // A chain of ANDs: each stage overwrites its single-fanout child, so
    // the whole chain fits in one work cell per live value.
    let mut mig = Mig::new();
    let inputs = mig.add_inputs("x", 8);
    let mut acc = inputs[0];
    for &x in &inputs[1..] {
        acc = mig.and(acc, x);
    }
    mig.add_output("f", acc);
    let compiled = checked(&mig);
    // First AND copies a PI into one cell; each of the six later ANDs
    // overwrites it in place (Z case b) at one instruction per stage.
    assert_eq!(compiled.stats.rams, 1);
    assert_eq!(compiled.stats.instructions, 9); // 3 + 6 × 1
}
