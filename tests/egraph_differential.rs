//! Differential properties of the equality-saturation engine against the
//! arena and rebuild rewriters: functional equivalence (checked both at
//! the graph level and through the PLiM machine simulator), compiled cost
//! never worse than the arena result, and byte-identical determinism for
//! a fixed seed and budget.

use proptest::prelude::*;

use mig::equiv::check_equivalence;
use mig::rewrite::{rewrite, rewrite_rebuild};
use mig::Mig;
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::verify::verify;
use plim_compiler::{compile, CompilerOptions, OptLevel};
use plim_egraph::{optimize, optimize_with_stats, EgraphBudget, StopReason};

/// The options every compiled-cost comparison here runs under: the full
/// pass pipeline for the default RM3 target, exactly what the e-graph's
/// compiling cost function judges candidates with in `plimc bench`.
fn o2() -> CompilerOptions {
    CompilerOptions::new().opt(OptLevel::O2)
}

/// Lexicographic compiled cost (#I, #R, max cell writes) of `mig`.
fn compiled_cost(mig: &Mig) -> (u64, u64, u64) {
    let compiled = compile(mig, o2());
    (
        compiled.stats.instructions as u64,
        compiled.stats.rams as u64,
        compiled.stats.max_cell_writes as u64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On random MIGs the e-graph engine preserves the function and its
    /// compiled cost is admissible: no axis worse than the arena result.
    #[test]
    fn egraph_agrees_with_arena_and_rebuild_on_random_logic(
        seed: u64,
        inputs in 2usize..7,
        outputs in 1usize..4,
        nodes in 8usize..60,
        effort in 1usize..3,
    ) {
        let spec = RandomLogicSpec::new(inputs, outputs, nodes, seed);
        let raw = random_logic(&spec);
        let arena = rewrite(&raw, effort);
        let rebuild = rewrite_rebuild(&raw, effort);
        let chosen = optimize(&raw, &arena, effort, o2());

        prop_assert!(check_equivalence(&raw, &chosen, 16, seed).unwrap().holds(),
            "e-graph extraction changed the function");
        prop_assert!(check_equivalence(&rebuild, &chosen, 16, seed).unwrap().holds(),
            "engines disagree");

        let base = compiled_cost(&arena);
        let ours = compiled_cost(&chosen);
        prop_assert!(ours.0 <= base.0, "#I regressed: {ours:?} vs {base:?}");
        prop_assert!(ours.1 <= base.1, "#R regressed: {ours:?} vs {base:?}");
        prop_assert!(ours.2 <= base.2, "max writes regressed: {ours:?} vs {base:?}");
    }
}

/// Every reduced-suite circuit: equivalent to the source, admissible
/// against arena on all three cost axes, never more majority nodes, and
/// the compiled artifact simulates correctly on the machine model.
#[test]
fn egraph_is_equivalent_and_admissible_on_the_reduced_suite() {
    for &name in suite::ALL.iter() {
        let raw = suite::build(name, Scale::Reduced).expect("known benchmark");
        let arena = rewrite(&raw, 2);
        let (chosen, stats) = optimize_with_stats(&raw, &arena, 2, o2());

        assert!(
            check_equivalence(&raw, &chosen, 8, 0xDAC2016)
                .unwrap()
                .holds(),
            "{name}: function changed"
        );
        assert!(
            chosen.num_majority_nodes() <= arena.num_majority_nodes(),
            "{name}: more nodes than arena ({} > {})",
            chosen.num_majority_nodes(),
            arena.num_majority_nodes()
        );
        let base = compiled_cost(&arena);
        let ours = compiled_cost(&chosen);
        assert!(
            ours <= base,
            "{name}: compiled cost regressed {ours:?} vs {base:?}"
        );

        // The machine-level anchor: the compiled RM3 program for the
        // chosen graph must agree with direct MIG simulation.
        let compilation = plim_compiler::compile_full(&chosen, o2());
        verify(&chosen, &compilation.compiled, 4, 0xDAC2016)
            .unwrap_or_else(|e| panic!("{name}: machine simulation diverged: {e}"));

        // Saturation always reports a defined stop reason and real work.
        assert!(!stats.stop.name().is_empty(), "{name}");
        assert!(stats.final_enodes >= stats.initial_enodes, "{name}");
    }
}

/// Same seed, same budget ⇒ byte-identical extraction, across repeated
/// runs and across the stats/non-stats entry points.
#[test]
fn saturation_budget_determinism_is_byte_exact() {
    let raw = suite::build("router", Scale::Reduced).expect("known benchmark");
    let arena = rewrite(&raw, 2);
    let (first, first_stats) = optimize_with_stats(&raw, &arena, 2, o2());
    let (second, second_stats) = optimize_with_stats(&raw, &arena, 2, o2());
    let third = optimize(&raw, &arena, 2, o2());
    assert_eq!(
        mig::io::write_mig(&first),
        mig::io::write_mig(&second),
        "two runs under one budget diverged"
    );
    assert_eq!(mig::io::write_mig(&first), mig::io::write_mig(&third));
    assert_eq!(first_stats.final_enodes, second_stats.final_enodes);
    assert_eq!(first_stats.iterations, second_stats.iterations);
    assert_eq!(first_stats.stop, second_stats.stop);
}

/// Tight budgets stop saturation early but never change the safety
/// story: the result is still equivalent and admissible.
#[test]
fn starved_budgets_still_produce_admissible_results() {
    let raw = suite::build("dec", Scale::Reduced).expect("known benchmark");
    let arena = rewrite(&raw, 2);
    let budget = EgraphBudget {
        max_enodes: 64,
        max_iterations: 1,
        max_work: 2_000,
    };
    let mut g = plim_egraph::EGraph::from_mig(&arena);
    let (_, stop) = plim_egraph::saturate(&mut g, &budget);
    assert!(
        matches!(
            stop,
            StopReason::EnodeLimit | StopReason::WorkLimit | StopReason::IterationLimit
        ),
        "a starved budget must bind: {stop:?}"
    );
    // The full engine under effort 1 (the smallest budget) keeps every
    // guarantee.
    let chosen = optimize(&raw, &arena, 1, o2());
    assert!(check_equivalence(&raw, &chosen, 8, 7).unwrap().holds());
    assert!(compiled_cost(&chosen) <= compiled_cost(&arena));
}
