//! The alternative backends against the whole reduced suite.
//!
//! The acceptance bar of the backend seam: every suite circuit, both raw
//! and rewritten, compiles through the `ambit` backend at `-O0` and `-O2`,
//! and every circuit within the exhaustive bound is **proven** equal to
//! its source MIG through the artifact's own executor — the `magic` sketch
//! rides the same harness on the rewritten graphs.

use plim_backends::{annotate_bench, install, AMBIT, MAGIC};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::batch::{bench_suite, Circuit};
use plim_compiler::verify::{verify_exhaustive_artifact, EXHAUSTIVE_WIDE_LIMIT};
use plim_compiler::{compile_full, Backend, CompilerOptions, OptLevel, Target};
use plim_parallel::Parallelism;

/// Ambit compiles the full suite — raw and rewritten, `-O0` and `-O2` —
/// with an exhaustive equivalence proof on every circuit the 2²⁰-pattern
/// bound admits.
#[test]
fn ambit_compiles_the_whole_suite_with_exhaustive_proofs() {
    let mut proven = 0usize;
    for name in suite::ALL {
        let raw = suite::build(name, Scale::Reduced).expect("suite circuit");
        let rewritten = mig::rewrite::rewrite(&raw, 4);
        for mig in [&raw, &rewritten] {
            for opt in [OptLevel::O0, OptLevel::O2] {
                let compilation = compile_full(mig, CompilerOptions::new().opt(opt));
                let artifact = AMBIT.emit(&compilation.ir);
                assert!(
                    artifact.cost().instructions >= compilation.compiled.stats.instructions,
                    "{name}: row ops cannot undercut RM3 ops"
                );
                if mig.num_inputs() <= EXHAUSTIVE_WIDE_LIMIT {
                    verify_exhaustive_artifact(mig, artifact.as_ref())
                        .unwrap_or_else(|e| panic!("{name} ({opt:?}): {e}"));
                    proven += 1;
                }
            }
        }
    }
    assert!(
        proven >= 8,
        "the reduced suite must contain provable circuits (got {proven})"
    );
}

/// The MAGIC sketch proves out over the provable rewritten suite.
#[test]
fn magic_proves_out_on_the_provable_suite() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect("suite circuit");
        if mig.num_inputs() > EXHAUSTIVE_WIDE_LIMIT {
            continue;
        }
        let optimized = mig::rewrite::rewrite(&mig, 4);
        let compilation = compile_full(&optimized, CompilerOptions::new().opt(OptLevel::O2));
        let artifact = MAGIC.emit(&compilation.ir);
        verify_exhaustive_artifact(&optimized, artifact.as_ref())
            .unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

/// Targets thread through `CompilerOptions`: the 6-part spec round-trips
/// for the registered backends and compilation under a non-RM3 target
/// still produces the reference RM3 program (the target chooses the
/// emission, not the middle end's semantics).
#[test]
fn targets_thread_through_compiler_options() {
    install();
    let options = CompilerOptions::new()
        .opt(OptLevel::O2)
        .target(Target::parse("ambit").unwrap());
    assert_eq!(options.spec(), "priority+smart+fifo+o2+ambit+arena");
    let parsed = CompilerOptions::parse_spec(&options.spec()).unwrap();
    assert_eq!(parsed.target.name(), "ambit");

    let mig = suite::build("ctrl", Scale::Reduced).expect("suite circuit");
    let compilation = compile_full(&mig, options);
    let artifact = options.target.backend().emit(&compilation.ir);
    assert_eq!(artifact.target(), "ambit");
    verify_exhaustive_artifact(&mig, artifact.as_ref()).unwrap();
}

/// `annotate_bench` fills every per-target column from the already-compiled
/// IR, consistently with costing the backend directly.
#[test]
fn bench_annotation_fills_per_target_columns() {
    let circuits = [
        Circuit::new("ctrl", suite::build("ctrl", Scale::Reduced).unwrap()),
        Circuit::new("router", suite::build("router", Scale::Reduced).unwrap()),
    ];
    let mut run = bench_suite(&circuits, 2, Parallelism::Auto);
    for record in &run.records {
        assert_eq!(record.ambit_ops, 0, "columns start as the skip sentinel");
    }
    annotate_bench(&mut run);
    for (index, record) in run.records.iter().enumerate() {
        let ir = &run.circuit_jobs(index)[2].ir;
        let ambit = AMBIT.cost(ir);
        let magic = MAGIC.cost(ir);
        assert_eq!(record.ambit_ops, ambit.instructions as u64);
        assert_eq!(record.ambit_cost, ambit.units);
        assert_eq!(record.magic_ops, magic.instructions as u64);
        assert_eq!(record.magic_cost, magic.units);
        assert!(record.ambit_ops > 0 && record.magic_ops > 0);
        assert!(
            record.ambit_cost > record.ambit_ops,
            "activations > row ops"
        );
        assert_eq!(record.magic_cost, record.magic_ops, "1 pulse per op");
    }
}

/// The registry advertisement: every registered backend exposes a
/// non-empty instruction set with priced instructions, and parse errors
/// list all of them.
#[test]
fn registry_advertises_instruction_sets_and_names() {
    install();
    for target in Target::all() {
        let backend = target.backend();
        assert!(!backend.description().is_empty());
        assert!(!backend.instruction_set().is_empty());
        for info in backend.instruction_set() {
            assert!(info.cost > 0, "{}: free instructions", info.mnemonic);
            assert!(!info.summary.is_empty());
        }
    }
    let err = Target::parse("gpu").unwrap_err();
    for name in ["rm3", "ambit", "magic"] {
        assert!(err.contains(name), "{err}");
    }
}
