//! The static analyzer's contract, from both directions.
//!
//! Soundness on good artifacts: every compilation the pipeline produces —
//! the whole reduced suite swept across schedule × allocator × `-O`, plus
//! random MIGs — analyzes clean, and the certification replay re-derives
//! `#I`/`#R`/wear exactly. Sensitivity on bad ones: each lint `PA0001` …
//! `PA0008` has a hand-doctored stream that trips it (positive) and a
//! minimal variation that does not (negative).

use proptest::prelude::*;

use mig::NodeId;
use plim::RamAddr;
use plim_analysis::{analyze_artifact, analyze_events, certify, cross_check, AnalysisConfig, Lint};
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::ir::{CellId, Event, IrCell, IrOp, IrOutput, IrProgram, Value};
use plim_compiler::{
    compile_full, AllocatorStrategy, CompilerOptions, LifetimeClass, OptLevel, ScheduleOrder,
};

const SCHEDULES: [ScheduleOrder; 3] = [
    ScheduleOrder::Index,
    ScheduleOrder::Priority,
    ScheduleOrder::Lookahead,
];
const ALLOCATORS: [AllocatorStrategy; 5] = AllocatorStrategy::ALL;
const LEVELS: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

/// Asserts the full battery comes back clean and the certificate agrees
/// with the recorded stats on its own (not just through
/// `analyze_artifact`'s PA0008 path).
fn assert_artifact_clean(mig: &mig::Mig, options: CompilerOptions, context: &str) {
    let compilation = compile_full(mig, options);
    let diags = analyze_artifact(&compilation, options.opt);
    assert!(
        diags.is_empty(),
        "{context}: expected a clean artifact, got:\n{}",
        diags
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
    let certificate = certify(&compilation.ir).expect("clean stream certifies");
    let stats = &compilation.compiled.stats;
    assert_eq!(
        certificate.instructions, stats.instructions,
        "{context}: #I"
    );
    assert_eq!(certificate.rams, stats.rams, "{context}: #R");
    assert_eq!(
        certificate.max_cell_writes, stats.max_cell_writes,
        "{context}: max cell writes"
    );
}

/// Acceptance criterion: zero diagnostics and exact resource certification
/// on every reduced-suite circuit across the full schedule × allocator ×
/// `-O` sweep.
#[test]
fn reduced_suite_sweep_is_lint_clean() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect("known circuit");
        let rewritten = mig::rewrite::rewrite(&mig, 2);
        for schedule in SCHEDULES {
            for alloc in ALLOCATORS {
                for opt in LEVELS {
                    let options = CompilerOptions::new()
                        .schedule(schedule)
                        .allocator(alloc)
                        .opt(opt);
                    let context = format!("{name} {schedule:?}/{alloc:?}/{opt:?}");
                    assert_artifact_clean(&rewritten, options, &context);
                }
            }
        }
    }
}

/// The naive (Table 1 baseline) translator's artifacts are clean too.
#[test]
fn naive_translation_is_lint_clean() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect("known circuit");
        assert_artifact_clean(&mig, CompilerOptions::naive(), &format!("{name} naive"));
    }
}

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..10, 1usize..6, 10usize..90, any::<u64>()).prop_map(|(inputs, outputs, nodes, seed)| {
        RandomLogicSpec::new(inputs, outputs, nodes, seed)
    })
}

fn options_strategy() -> impl Strategy<Value = CompilerOptions> {
    (0usize..3, 0usize..5, 0usize..3).prop_map(|(schedule, alloc, opt)| {
        CompilerOptions::new()
            .schedule(SCHEDULES[schedule])
            .allocator(ALLOCATORS[alloc])
            .opt(LEVELS[opt])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random MIGs under random option combinations always produce clean
    /// artifacts — the analyzer never cries wolf on the compiler's own
    /// output.
    #[test]
    fn random_artifacts_are_lint_clean(
        spec in spec_strategy(),
        options in options_strategy(),
    ) {
        let mig = random_logic(&spec);
        let compilation = compile_full(&mig, options);
        let diags = analyze_artifact(&compilation, options.opt);
        prop_assert!(diags.is_empty(), "diagnostics on a random artifact: {diags:?}");
    }
}

// ---------------------------------------------------------------------------
// Hand-doctored streams: one positive and one negative case per lint.
// ---------------------------------------------------------------------------

const C0: CellId = CellId(0);
const C1: CellId = CellId(1);

fn cell(pinned: u32) -> IrCell {
    IrCell {
        pinned: RamAddr(pinned),
        hint: LifetimeClass::Short,
    }
}

fn reset(z: CellId) -> IrOp {
    IrOp {
        a: Value::Const(false),
        b: Value::Const(true),
        z,
        rhs: "0".to_string(),
        node: None,
    }
}

fn main_op(z: CellId, node: u32) -> IrOp {
    IrOp {
        a: Value::Input(0),
        b: Value::Input(1),
        z,
        rhs: format!("N{node}"),
        node: Some(NodeId::from_index(node as usize)),
    }
}

/// A minimal well-formed program: request %0, reset it, compute into it,
/// output it. Clean under every configuration.
fn base_program() -> IrProgram {
    IrProgram {
        num_inputs: 2,
        ops: vec![reset(C0), main_op(C0, 3)],
        cells: vec![cell(0)],
        events: vec![Event::Request(C0), Event::Op(0), Event::Op(1)],
        outputs: vec![("f".to_string(), IrOutput::Cell(C0))],
        mig_nodes: 1,
        allocator: AllocatorStrategy::Fifo,
    }
}

fn lints_of(ir: &IrProgram, config: &AnalysisConfig) -> Vec<Lint> {
    analyze_events(ir, config)
        .into_iter()
        .map(|d| d.lint)
        .collect()
}

fn structural() -> AnalysisConfig {
    AnalysisConfig::structural()
}

#[test]
fn base_program_is_clean_under_every_config() {
    let ir = base_program();
    assert!(ir.check().is_ok());
    for config in [
        structural(),
        AnalysisConfig::for_level(OptLevel::O0),
        AnalysisConfig::for_level(OptLevel::O1),
        AnalysisConfig::for_level(OptLevel::O2),
    ] {
        assert_eq!(lints_of(&ir, &config), vec![], "config {config:?}");
    }
}

#[test]
fn pa0001_use_before_init_fires_on_unreset_read() {
    let mut ir = base_program();
    // Drop the reset: the main op's non-masking destination read observes
    // a cell that holds no value yet.
    ir.events.remove(1);
    assert!(lints_of(&ir, &structural()).contains(&Lint::UseBeforeInit));
}

#[test]
fn pa0001_negative_masking_write_needs_no_init() {
    // A masking write IS the initialization; reset-then-compute is clean.
    assert_eq!(lints_of(&base_program(), &structural()), vec![]);
}

#[test]
fn pa0002_use_after_release_fires_on_released_write() {
    let mut ir = base_program();
    // Release %0 between the reset and the main op.
    ir.events.insert(2, Event::Release(C0));
    let lints = lints_of(&ir, &structural());
    assert!(lints.contains(&Lint::UseAfterRelease), "got {lints:?}");
}

#[test]
fn pa0002_negative_release_after_last_use_is_clean() {
    let mut ir = base_program();
    // Releasing after the last op is fine — but the output then reads a
    // non-live cell, so route the output to an input instead.
    ir.events.push(Event::Release(C0));
    ir.outputs = vec![(
        "f".to_string(),
        IrOutput::Input {
            index: 0,
            complemented: false,
        },
    )];
    assert_eq!(lints_of(&ir, &structural()), vec![]);
}

#[test]
fn pa0003_double_release_fires() {
    let mut ir = base_program();
    ir.events.push(Event::Release(C0));
    ir.events.push(Event::Release(C0));
    ir.outputs.clear();
    let lints = lints_of(&ir, &structural());
    assert_eq!(lints, vec![Lint::DoubleRelease]);
}

#[test]
fn pa0003_negative_single_release_is_clean() {
    let mut ir = base_program();
    ir.events.push(Event::Release(C0));
    ir.outputs.clear();
    assert_eq!(lints_of(&ir, &structural()), vec![]);
}

#[test]
fn pa0004_pinned_aliasing_fires_on_overlapping_lifetimes() {
    let mut ir = base_program();
    // A second virtual cell pinned to the same physical address, live
    // while %0 still is.
    ir.cells.push(cell(0));
    ir.ops.push(reset(C1));
    ir.events.push(Event::Request(C1));
    ir.events.push(Event::Op(2));
    let config = AnalysisConfig::for_level(OptLevel::O0);
    assert!(config.pinned_faithful);
    let lints = lints_of(&ir, &config);
    assert_eq!(lints, vec![Lint::PinnedAliasing]);
}

#[test]
fn pa0004_negative_aliasing_is_ignored_when_addresses_are_stale() {
    let mut ir = base_program();
    ir.cells.push(cell(0));
    ir.ops.push(reset(C1));
    ir.events.push(Event::Request(C1));
    ir.events.push(Event::Op(2));
    // `-O2` re-derives addresses at emission, so pinned overlap means
    // nothing there — and the structural config never checks it.
    assert!(
        !lints_of(&ir, &AnalysisConfig::for_level(OptLevel::O2)).contains(&Lint::PinnedAliasing)
    );
    assert_eq!(lints_of(&ir, &structural()), vec![]);
}

/// A program with the complement-materialization idiom: %0 holds node 3,
/// %1 caches ¬%0 (reset, then `⟨1 %0 0⟩` under node 3's provenance).
fn complement_program() -> IrProgram {
    let compl = IrOp {
        a: Value::Const(true),
        b: Value::Cell(C0),
        z: C1,
        rhs: "¬N3".to_string(),
        node: Some(NodeId::from_index(3)),
    };
    let consume = IrOp {
        a: Value::Cell(C1),
        b: Value::Input(0),
        z: C0,
        rhs: "N4".to_string(),
        node: Some(NodeId::from_index(4)),
    };
    IrProgram {
        num_inputs: 2,
        ops: vec![reset(C0), main_op(C0, 3), reset(C1), compl, consume],
        cells: vec![cell(0), cell(1)],
        events: vec![
            Event::Request(C0),
            Event::Op(0),
            Event::Op(1),
            Event::Request(C1),
            Event::Op(2),
            Event::Op(3),
            Event::Op(4),
        ],
        outputs: vec![("f".to_string(), IrOutput::Cell(C0))],
        mig_nodes: 2,
        allocator: AllocatorStrategy::Fifo,
    }
}

#[test]
fn pa0005_stale_complement_fires_on_recompute_before_use() {
    let mut ir = complement_program();
    // Recompute node 3 into %0 *between* materializing ¬%0 and consuming
    // it: the cached complement no longer matches.
    ir.events.insert(6, Event::Op(1));
    let lints = lints_of(&ir, &structural());
    assert!(lints.contains(&Lint::StaleComplement), "got {lints:?}");
}

#[test]
fn pa0005_negative_fresh_complement_is_clean() {
    assert_eq!(lints_of(&complement_program(), &structural()), vec![]);
}

#[test]
fn pa0006_dead_write_fires_in_optimized_streams() {
    let mut ir = base_program();
    // Nothing reads %0 once the output moves off it.
    ir.outputs = vec![("f".to_string(), IrOutput::Const(false))];
    let config = AnalysisConfig::for_level(OptLevel::O1);
    assert!(config.expect_optimized);
    let lints = lints_of(&ir, &config);
    assert_eq!(lints, vec![Lint::DeadWrite, Lint::DeadWrite]);
}

#[test]
fn pa0006_negative_unoptimized_streams_tolerate_dead_writes() {
    let mut ir = base_program();
    ir.outputs = vec![("f".to_string(), IrOutput::Const(false))];
    // `-O0` made no dead-write promise.
    assert_eq!(
        lints_of(&ir, &AnalysisConfig::for_level(OptLevel::O0)),
        vec![]
    );
}

#[test]
fn pa0007_release_never_requested_fires() {
    let mut ir = base_program();
    ir.events.insert(0, Event::Release(C0));
    let lints = lints_of(&ir, &structural());
    assert!(
        lints.contains(&Lint::ReleaseNeverRequested),
        "got {lints:?}"
    );
}

#[test]
fn pa0007_negative_release_of_requested_cell_is_clean() {
    let mut ir = base_program();
    ir.events.push(Event::Release(C0));
    ir.outputs.clear();
    assert!(!lints_of(&ir, &structural()).contains(&Lint::ReleaseNeverRequested));
}

#[test]
fn pa0008_stats_mismatch_fires_on_tampered_stats() {
    let mig = suite::build("adder4", Scale::Reduced)
        .or_else(|| suite::build(suite::ALL[0], Scale::Reduced))
        .expect("known circuit");
    let mut compilation = compile_full(&mig, CompilerOptions::new());
    compilation.compiled.stats.instructions += 1;
    compilation.compiled.stats.max_cell_writes += 1;
    let diags = analyze_artifact(&compilation, OptLevel::O0);
    let mismatches = diags
        .iter()
        .filter(|d| d.lint == Lint::StatsMismatch)
        .count();
    assert!(
        mismatches >= 2,
        "expected #I and wear mismatches, got {diags:?}"
    );
}

#[test]
fn pa0008_negative_honest_stats_certify() {
    let mig = suite::build(suite::ALL[0], Scale::Reduced).expect("known circuit");
    let compilation = compile_full(&mig, CompilerOptions::new().opt(OptLevel::O2));
    let certificate = certify(&compilation.ir).expect("clean stream certifies");
    assert_eq!(cross_check(&certificate, &compilation.compiled), vec![]);
}

/// The doctor's injection must be caught end to end through the full
/// artifact battery — the CI dry-run's in-process twin.
#[test]
fn doctored_write_after_release_fails_the_battery() {
    let mig = suite::build(suite::ALL[0], Scale::Reduced).expect("known circuit");
    let mut compilation = compile_full(&mig, CompilerOptions::new());
    assert!(analyze_artifact(&compilation, OptLevel::O0).is_empty());
    plim_analysis::doctor::inject_write_after_release(&mut compilation.ir).expect("stream has ops");
    let diags = analyze_artifact(&compilation, OptLevel::O0);
    assert!(
        diags.iter().any(|d| d.lint == Lint::UseAfterRelease),
        "expected PA0002, got {diags:?}"
    );
}
