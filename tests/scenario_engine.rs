//! Acceptance tests for the scenario engines.
//!
//! * **Exhaustive equivalence** — every ≤20-input reduced-suite circuit,
//!   compiled at `-O0` and `-O2` from its rewritten graph, is proven
//!   equal to the **raw** source MIG over the full input space (so the
//!   proof covers rewriting and compilation end to end), and a doctored
//!   program is rejected with a counterexample.
//! * **Fault injection** — reports are a pure function of the seed
//!   (identical across repeated runs and across thread counts), and a
//!   stuck-at fault on an output-feeding cell produces a nonzero error
//!   rate.
//! * **Lifetime** — wear-aware allocation must not shorten the device
//!   lifetime relative to FIFO on a wear-skewed workload.

use mig::rewrite::rewrite;
use plim::OutputLoc;
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::verify::{verify_exhaustive, VerifyError, EXHAUSTIVE_WIDE_LIMIT};
use plim_compiler::{compile, CompilerOptions, OptLevel};
use plim_parallel::Parallelism;
use plim_scenario::{
    compare_strategies, fault_sweep, simulate_lifetime, FaultModel, FaultScenario, LifetimeScenario,
};

/// Every ≤20-input circuit of the reduced Table 1 suite: the exhaustive
/// acceptance set. The suite must contain a meaningful number of them —
/// if a suite change drops below 10, the acceptance bar has eroded.
fn exhaustive_suite() -> Vec<(String, mig::Mig)> {
    let circuits: Vec<(String, mig::Mig)> = suite::ALL
        .iter()
        .map(|&name| {
            (
                name.to_string(),
                suite::build(name, Scale::Reduced).unwrap(),
            )
        })
        .filter(|(_, mig)| mig.num_inputs() <= EXHAUSTIVE_WIDE_LIMIT)
        .collect();
    assert!(
        circuits.len() >= 10,
        "only {} reduced-suite circuits are exhaustively provable",
        circuits.len()
    );
    circuits
}

#[test]
fn every_provable_suite_circuit_is_exhaustively_equivalent_at_o0_and_o2() {
    for (name, mig) in exhaustive_suite() {
        let rewritten = rewrite(&mig, 2);
        for opt in [OptLevel::O0, OptLevel::O2] {
            let compiled = compile(&rewritten, CompilerOptions::new().opt(opt));
            verify_exhaustive(&mig, &compiled).unwrap_or_else(|e| {
                panic!("{name} at {}: {e}", opt.name());
            });
        }
    }
}

#[test]
fn doctored_program_is_rejected_with_a_counterexample() {
    let mig = suite::build("dec", Scale::Reduced).unwrap();
    let mut compiled = compile(&mig, CompilerOptions::new());
    // Doctor one output to a constant: the proof must fail with a
    // concrete input pattern, not succeed or error out.
    let mut program = plim::Program::new(mig.num_inputs());
    for &instruction in compiled.program.instructions() {
        program.push(instruction);
    }
    for (index, (output, loc)) in compiled.program.outputs().iter().enumerate() {
        if index == 0 {
            program.add_output(output, OutputLoc::Const(false));
        } else {
            program.add_output(output, *loc);
        }
    }
    compiled.program = program;
    match verify_exhaustive(&mig, &compiled) {
        Err(VerifyError::Mismatch { inputs, .. }) => {
            assert_eq!(inputs.len(), mig.num_inputs());
        }
        other => panic!("doctored program not rejected: {other:?}"),
    }
}

/// The random-circuit generator feeds the fault sweep: reports must be
/// identical across repeated runs and across thread counts.
#[test]
fn fault_reports_are_seed_deterministic_across_runs_and_thread_counts() {
    for seed in [1u64, 42, 0xDAC2016] {
        let spec = RandomLogicSpec::new(6, 4, 60, seed);
        let mig = random_logic(&spec);
        let compiled = compile(&mig, CompilerOptions::new());
        let base = FaultScenario {
            model: FaultModel::drift(0.01),
            patterns: 2048,
            seed,
            parallelism: Parallelism::Serial,
        };
        let reference = fault_sweep(&compiled.program, &base).unwrap();
        // Repeated run, same configuration.
        assert_eq!(reference, fault_sweep(&compiled.program, &base).unwrap());
        // Same seed, different worker counts.
        for workers in [2, 3, 8] {
            let scenario = FaultScenario {
                parallelism: Parallelism::Threads(workers),
                ..base.clone()
            };
            assert_eq!(
                reference,
                fault_sweep(&compiled.program, &scenario).unwrap(),
                "seed {seed}, {workers} workers"
            );
        }
        // A different seed must actually change the sampled patterns.
        let other = FaultScenario {
            seed: seed ^ 0x5555,
            ..base.clone()
        };
        assert_ne!(
            reference,
            fault_sweep(&compiled.program, &other).unwrap(),
            "seed must matter"
        );
    }
}

#[test]
fn stuck_at_fault_on_an_output_cell_is_observable() {
    let mig = suite::build("ctrl", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    // Pick a cell that feeds a primary output directly.
    let output_cell = compiled
        .program
        .outputs()
        .iter()
        .find_map(|(_, loc)| match loc {
            OutputLoc::Ram(addr) => Some(*addr),
            _ => None,
        })
        .expect("ctrl has RAM-backed outputs");
    for level in [false, true] {
        let scenario = FaultScenario {
            model: FaultModel::stuck_at(output_cell, level),
            patterns: 4096,
            seed: 0xDAC2016,
            parallelism: Parallelism::Auto,
        };
        let report = fault_sweep(&compiled.program, &scenario).unwrap();
        assert!(
            report.error_rate() > 0.0,
            "stuck-at-{} on output cell @{} went unnoticed",
            u8::from(level),
            output_cell.0
        );
    }
}

#[test]
fn fault_free_sweep_of_a_correct_program_is_clean() {
    let mig = suite::build("int2float", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let report = fault_sweep(&compiled.program, &FaultScenario::default()).unwrap();
    assert_eq!(report.erroneous_patterns, 0);
    assert_eq!(report.erroneous_bits, 0);
}

#[test]
fn wear_aware_allocation_does_not_shorten_device_lifetime() {
    let mig = suite::build("ctrl", Scale::Reduced).unwrap();
    let scenario = LifetimeScenario {
        cell_endurance: 1_000_000,
        ..LifetimeScenario::default()
    };
    let results = compare_strategies(&mig, CompilerOptions::new(), &scenario, Parallelism::Auto);
    assert_eq!(results.len(), 5, "one report per allocation strategy");
    let lifetime_of = |name: &str| {
        results
            .iter()
            .find(|(strategy, _)| strategy.name() == name)
            .map(|(_, report)| report.invocations)
            .unwrap()
    };
    assert!(
        lifetime_of("wear") >= lifetime_of("fifo"),
        "wear-leveled allocation must not die before FIFO (wear {}, fifo {})",
        lifetime_of("wear"),
        lifetime_of("fifo")
    );
    for (strategy, report) in &results {
        assert!(
            report.invocations > 0,
            "{} died immediately",
            strategy.name()
        );
    }
}

#[test]
fn noisy_lifetimes_are_deterministic_and_no_longer_than_ideal() {
    let spec = RandomLogicSpec::new(5, 3, 50, 7);
    let mig = random_logic(&spec);
    let compiled = compile(&mig, CompilerOptions::new());
    let ideal = simulate_lifetime(
        &compiled.program,
        &LifetimeScenario {
            cell_endurance: 50_000,
            ..LifetimeScenario::default()
        },
    );
    let noisy_scenario = LifetimeScenario {
        cell_endurance: 50_000,
        write_noise: 0.1,
        ..LifetimeScenario::default()
    };
    let noisy = simulate_lifetime(&compiled.program, &noisy_scenario);
    assert!(noisy.invocations <= ideal.invocations);
    assert!(noisy.invocations > 0);
    assert_eq!(noisy, simulate_lifetime(&compiled.program, &noisy_scenario));
}
