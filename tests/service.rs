//! End-to-end tests of the `plimd` compile service: byte-identical
//! served-vs-offline output, cache hits across syntactically different
//! dumps, stats accounting, LRU eviction under a byte budget, error
//! paths, and graceful shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::thread::JoinHandle;

use plim_service::client::{self, Connection};
use plim_service::pipeline::{self, CompileSpec, InputFormat};
use plim_service::protocol::{CompileRequest, Request, Response};
use plim_service::server::{Server, ServerConfig};

fn start_server(threads: usize, cache_bytes: usize) -> (String, JoinHandle<Result<(), String>>) {
    start_server_with(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads,
        cache_bytes,
        log: false,
        ..ServerConfig::default()
    })
}

fn start_server_with(config: &ServerConfig) -> (String, JoinHandle<Result<(), String>>) {
    let server = Server::bind(config).expect("bind on a free port");
    let addr = server.local_addr().expect("resolved address").to_string();
    let handle = std::thread::spawn(move || server.run());
    (addr, handle)
}

fn shut_down(addr: &str, handle: JoinHandle<Result<(), String>>) {
    let response = client::send(addr, &Request::Shutdown).expect("shutdown round-trip");
    assert_eq!(response, Response::Shutdown);
    handle.join().expect("server thread").expect("clean exit");
}

fn compile_request(source: &str) -> Request {
    Request::Compile(CompileRequest {
        format: InputFormat::Mig,
        source: source.to_string(),
        spec: CompileSpec::default(),
        emit: "listing".to_string(),
    })
}

/// What offline `plimc` would print for the same source and options.
fn offline_listing(source: &str) -> String {
    offline_listing_with(source, &CompileSpec::default())
}

fn offline_listing_with(source: &str, spec: &CompileSpec) -> String {
    let mig = pipeline::parse_network(InputFormat::Mig, source).unwrap();
    let artifacts = pipeline::execute(&mig, spec).unwrap();
    pipeline::emit("listing", &artifacts).unwrap()
}

fn suite_source(name: &str) -> String {
    let mig = plim_benchmarks::suite::build(name, plim_benchmarks::suite::Scale::Reduced)
        .expect("known benchmark");
    mig::io::write_mig(&mig)
}

fn stats(addr: &str) -> plim_service::protocol::ServiceStats {
    match client::send(addr, &Request::Stats).expect("stats round-trip") {
        Response::Stats(stats) => stats,
        other => panic!("unexpected stats response: {other:?}"),
    }
}

#[test]
fn served_output_is_byte_identical_and_repeats_hit_the_cache() {
    let (addr, handle) = start_server(2, 1 << 20);
    for name in ["ctrl", "router"] {
        let source = suite_source(name);
        let expected = offline_listing(&source);

        let Response::Compile(cold) = client::send(&addr, &compile_request(&source)).unwrap()
        else {
            panic!("cold request failed");
        };
        assert!(!cold.cached, "{name}: first request cannot be cached");
        assert_eq!(cold.output, expected, "{name}: served != offline");

        let Response::Compile(warm) = client::send(&addr, &compile_request(&source)).unwrap()
        else {
            panic!("warm request failed");
        };
        assert!(warm.cached, "{name}: repeat must hit the cache");
        assert_eq!(warm.output, expected);
        assert_eq!(warm.key, cold.key, "cache key must be stable");
    }
    let totals = stats(&addr).totals();
    assert_eq!(totals.hits, 2, "one warm hit per circuit");
    assert_eq!(totals.misses, 2, "one cold miss per circuit");
    assert_eq!(totals.entries, 2);
    shut_down(&addr, handle);
}

#[test]
fn warm_hits_never_serve_a_different_opt_level() {
    use plim_compiler::OptLevel;
    // Regression: every CompilerOptions field — the new OptLevel included —
    // must reach the cache key. A warm hit after a -O0 compile must never
    // return the -O0 artifact for a -O2 request (or vice versa); `dec` is a
    // circuit where the levels genuinely differ, so serving a stale entry
    // would also be byte-visibly wrong.
    let (addr, handle) = start_server(1, 1 << 20);
    let source = suite_source("dec");
    let request_at = |level: OptLevel| {
        let mut spec = CompileSpec::default();
        spec.options = spec.options.opt(level);
        Request::Compile(CompileRequest {
            format: InputFormat::Mig,
            source: source.clone(),
            spec,
            emit: "listing".to_string(),
        })
    };

    let Response::Compile(cold_o0) = client::send(&addr, &request_at(OptLevel::O0)).unwrap() else {
        panic!("cold -O0 request failed");
    };
    assert!(!cold_o0.cached);

    // Same circuit, different level: must be a miss with its own key.
    let Response::Compile(cold_o2) = client::send(&addr, &request_at(OptLevel::O2)).unwrap() else {
        panic!("cold -O2 request failed");
    };
    assert!(!cold_o2.cached, "a different -O must never warm-hit");
    assert_ne!(cold_o2.key, cold_o0.key, "cache keys must differ per -O");
    assert_ne!(
        cold_o2.output, cold_o0.output,
        "dec compiles differently at -O2; identical output means a stale entry"
    );
    let mut spec_o2 = CompileSpec::default();
    spec_o2.options = spec_o2.options.opt(OptLevel::O2);
    assert_eq!(cold_o0.output, offline_listing(&source));
    assert_eq!(cold_o2.output, offline_listing_with(&source, &spec_o2));

    // Warm repeats of each level hit their own entries and stay distinct.
    for (level, cold) in [(OptLevel::O0, &cold_o0), (OptLevel::O2, &cold_o2)] {
        let Response::Compile(warm) = client::send(&addr, &request_at(level)).unwrap() else {
            panic!("warm request failed");
        };
        assert!(warm.cached, "repeat at the same -O must hit");
        assert_eq!(&warm.key, &cold.key);
        assert_eq!(&warm.output, &cold.output);
    }
    let totals = stats(&addr).totals();
    assert_eq!(totals.misses, 2, "one miss per level");
    assert_eq!(totals.hits, 2, "one hit per level");
    assert_eq!(totals.entries, 2, "one entry per level");
    shut_down(&addr, handle);
}

#[test]
fn warm_hits_never_serve_a_different_target() {
    use plim_compiler::Target;
    plim_backends::install();
    // Regression for the backend redesign: the target is part of the
    // options spec, so it must reach the cache key. A warm `ambit` request
    // after an RM3 compile of the same circuit must never be served the
    // RM3 listing (or vice versa) — the listings are byte-visibly
    // different formats, so a stale entry would also corrupt output.
    let (addr, handle) = start_server(1, 1 << 20);
    let source = suite_source("ctrl");
    let request_for = |target: Target| {
        let mut spec = CompileSpec::default();
        spec.options = spec.options.target(target);
        Request::Compile(CompileRequest {
            format: InputFormat::Mig,
            source: source.clone(),
            spec,
            emit: "listing".to_string(),
        })
    };
    let ambit = Target::parse("ambit").expect("registered");

    let Response::Compile(cold_rm3) = client::send(&addr, &request_for(Target::RM3)).unwrap()
    else {
        panic!("cold rm3 request failed");
    };
    assert!(!cold_rm3.cached);

    // Same circuit, different target: must be a miss with its own key.
    let Response::Compile(cold_ambit) = client::send(&addr, &request_for(ambit)).unwrap() else {
        panic!("cold ambit request failed");
    };
    assert!(!cold_ambit.cached, "a different target must never warm-hit");
    assert_ne!(
        cold_ambit.key, cold_rm3.key,
        "cache keys must differ per target"
    );
    assert!(cold_ambit.output.starts_with(".ambit v1\n"));
    assert!(!cold_rm3.output.starts_with(".ambit"));
    let mut ambit_spec = CompileSpec::default();
    ambit_spec.options = ambit_spec.options.target(ambit);
    assert_eq!(cold_rm3.output, offline_listing(&source));
    assert_eq!(
        cold_ambit.output,
        offline_listing_with(&source, &ambit_spec)
    );

    // Warm repeats of each target hit their own entries and stay distinct.
    for (target, cold) in [(Target::RM3, &cold_rm3), (ambit, &cold_ambit)] {
        let Response::Compile(warm) = client::send(&addr, &request_for(target)).unwrap() else {
            panic!("warm request failed");
        };
        assert!(warm.cached, "repeat at the same target must hit");
        assert_eq!(&warm.key, &cold.key);
        assert_eq!(&warm.output, &cold.output);
    }
    let totals = stats(&addr).totals();
    assert_eq!(totals.misses, 2, "one miss per target");
    assert_eq!(totals.hits, 2, "one hit per target");
    assert_eq!(totals.entries, 2, "one entry per target");
    shut_down(&addr, handle);
}

#[test]
fn warm_hits_never_serve_a_different_rewrite_mode() {
    use plim_compiler::RewriteMode;
    // Regression for the equality-saturation engine: the rewrite mode is
    // the sixth options-spec component, so it must reach the cache key. A
    // warm cache after an `arena` compile must never satisfy an `egraph`
    // request for the same circuit — the artifacts can legitimately
    // differ, so a stale hit would silently serve the wrong program.
    let (addr, handle) = start_server(1, 1 << 20);
    let source = suite_source("ctrl");
    let request_for = |mode: RewriteMode| {
        let mut spec = CompileSpec::default();
        spec.effort = 2;
        spec.options = spec.options.rewrite(mode);
        Request::Compile(CompileRequest {
            format: InputFormat::Mig,
            source: source.clone(),
            spec,
            emit: "listing".to_string(),
        })
    };

    let Response::Compile(cold_arena) =
        client::send(&addr, &request_for(RewriteMode::Arena)).unwrap()
    else {
        panic!("cold arena request failed");
    };
    assert!(!cold_arena.cached);

    // Same circuit, egraph engine: must be a miss with its own key.
    let Response::Compile(cold_egraph) =
        client::send(&addr, &request_for(RewriteMode::Egraph)).unwrap()
    else {
        panic!("cold egraph request failed");
    };
    assert!(
        !cold_egraph.cached,
        "a different rewrite mode must never warm-hit"
    );
    assert_ne!(
        cold_egraph.key, cold_arena.key,
        "cache keys must differ per rewrite mode"
    );
    let offline_for = |mode: RewriteMode| {
        let mut spec = CompileSpec::default();
        spec.effort = 2;
        spec.options = spec.options.rewrite(mode);
        offline_listing_with(&source, &spec)
    };
    plim_egraph::install();
    assert_eq!(cold_arena.output, offline_for(RewriteMode::Arena));
    assert_eq!(cold_egraph.output, offline_for(RewriteMode::Egraph));

    // Warm repeats of each mode hit their own entries and stay distinct.
    for (mode, cold) in [
        (RewriteMode::Arena, &cold_arena),
        (RewriteMode::Egraph, &cold_egraph),
    ] {
        let Response::Compile(warm) = client::send(&addr, &request_for(mode)).unwrap() else {
            panic!("warm request failed");
        };
        assert!(warm.cached, "repeat at the same rewrite mode must hit");
        assert_eq!(&warm.key, &cold.key);
        assert_eq!(&warm.output, &cold.output);
    }
    let totals = stats(&addr).totals();
    assert_eq!(totals.misses, 2, "one miss per rewrite mode");
    assert_eq!(totals.hits, 2, "one hit per rewrite mode");
    assert_eq!(totals.entries, 2, "one entry per rewrite mode");
    shut_down(&addr, handle);
}

#[test]
fn canonicalization_makes_permuted_dumps_share_an_entry() {
    let (addr, handle) = start_server(1, 1 << 20);
    // The same structure written three ways: reference, definitions
    // permuted (different arena order and node names), and with the Ω.I
    // identity moving complements across a node boundary.
    let reference = "inputs a b c d\n\
                     n1 = maj(0, a, b)\n\
                     n2 = maj(1, c, d)\n\
                     n3 = maj(n1, n2, d)\n\
                     output f = !n3\n";
    let permuted = "inputs a b c d\n\
                    or_cd = maj(1, c, d)\n\
                    and_ab = maj(0, a, b)\n\
                    top = maj(and_ab, or_cd, d)\n\
                    output f = !top\n";
    let inverted = "inputs a b c d\n\
                    n1 = maj(0, a, b)\n\
                    n2 = maj(1, c, d)\n\
                    n3 = maj(!n1, !n2, !d)\n\
                    output f = n3\n";

    let Response::Compile(first) = client::send(&addr, &compile_request(reference)).unwrap() else {
        panic!("reference request failed");
    };
    assert!(!first.cached);
    for variant in [permuted, inverted] {
        let Response::Compile(hit) = client::send(&addr, &compile_request(variant)).unwrap() else {
            panic!("variant request failed");
        };
        assert!(hit.cached, "structurally identical dump must hit");
        assert_eq!(hit.key, first.key);
        assert_eq!(hit.output, first.output);
    }
    // A structurally different dump (one complement moved) must miss.
    let different = reference.replace("maj(0, a, b)", "maj(0, !a, b)");
    let Response::Compile(miss) = client::send(&addr, &compile_request(&different)).unwrap() else {
        panic!("different request failed");
    };
    assert!(!miss.cached);
    assert_ne!(miss.key, first.key);
    shut_down(&addr, handle);
}

#[test]
fn option_changes_do_not_share_cache_entries() {
    let (addr, handle) = start_server(1, 1 << 20);
    let source = suite_source("int2float");
    let mut no_verify = compile_request(&source);
    let Request::Compile(request) = &mut no_verify else {
        unreachable!()
    };
    request.spec.verify = false;
    let Response::Compile(cold) = client::send(&addr, &no_verify).unwrap() else {
        panic!("cold request failed");
    };
    let Response::Compile(other_options) = client::send(&addr, &compile_request(&source)).unwrap()
    else {
        panic!("differing-options request failed");
    };
    assert!(
        !other_options.cached,
        "option changes must not share entries"
    );
    assert_ne!(cold.key, other_options.key);
    // Emit variants of the same circuit each cache their own artifact.
    let mut asm = compile_request(&source);
    let Request::Compile(request) = &mut asm else {
        unreachable!()
    };
    request.emit = "asm".to_string();
    let Response::Compile(asm_cold) = client::send(&addr, &asm).unwrap() else {
        panic!("asm request failed");
    };
    assert!(!asm_cold.cached);
    assert!(asm_cold.output.starts_with(".inputs"));
    let Response::Compile(asm_warm) = client::send(&addr, &asm).unwrap() else {
        panic!("asm repeat failed");
    };
    assert!(asm_warm.cached);
    shut_down(&addr, handle);
}

#[test]
fn byte_budget_evicts_least_recently_used_artifacts() {
    let a = suite_source("ctrl");
    let b = suite_source("router");
    let a_len = offline_listing(&a).len();
    let b_len = offline_listing(&b).len();
    // Budget: either artifact alone fits (plus the 64-byte overhead), both
    // together do not — inserting B evicts A.
    let budget = a_len.max(b_len) + 64 + 32;
    assert!(
        budget < a_len + b_len + 128,
        "artifacts too small for the test"
    );

    let (addr, handle) = start_server(1, budget);
    for _ in 0..2 {
        // A (miss, insert), B (miss, insert, evicts A), A again (miss).
        for source in [&a, &b] {
            let Response::Compile(response) =
                client::send(&addr, &compile_request(source)).unwrap()
            else {
                panic!("compile failed");
            };
            assert!(!response.cached, "budget must force an eviction cycle");
        }
    }
    let totals = stats(&addr).totals();
    assert!(totals.evictions >= 2, "evictions: {}", totals.evictions);
    assert_eq!(totals.hits, 0);
    assert_eq!(totals.entries, 1);
    assert!(totals.bytes <= budget);
    shut_down(&addr, handle);
}

#[test]
fn one_connection_can_carry_many_requests() {
    let (addr, handle) = start_server(2, 1 << 20);
    let mut connection = Connection::connect(&addr).unwrap();
    let source = suite_source("dec");
    let expected = offline_listing(&source);
    for round in 0..3 {
        let Response::Compile(response) = connection.roundtrip(&compile_request(&source)).unwrap()
        else {
            panic!("round {round} failed");
        };
        assert_eq!(response.cached, round > 0, "round {round}");
        assert_eq!(response.output, expected);
    }
    drop(connection);
    shut_down(&addr, handle);
}

#[test]
fn concurrent_clients_agree_and_the_cache_dedups() {
    let (addr, handle) = start_server(4, 1 << 20);
    let source = suite_source("i2c");
    let expected = offline_listing(&source);
    let workers: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let source = source.clone();
            std::thread::spawn(move || {
                match client::send(&addr, &compile_request(&source)).unwrap() {
                    Response::Compile(response) => response,
                    other => panic!("unexpected response: {other:?}"),
                }
            })
        })
        .collect();
    let responses: Vec<_> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    for response in &responses {
        assert_eq!(response.output, expected);
    }
    // All requests carry one key, whose pinned shard worker serializes
    // them: exactly one compile happened, everyone else was served from
    // the cache the first one filled.
    assert_eq!(
        responses.iter().filter(|r| !r.cached).count(),
        1,
        "exactly one compile per key"
    );
    let totals = stats(&addr).totals();
    assert_eq!(totals.entries, 1);
    shut_down(&addr, handle);
}

#[test]
fn malformed_requests_get_error_responses_not_hangups() {
    let (addr, handle) = start_server(1, 1 << 20);
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut expect_error = |line: &str, needle: &str| {
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"ok\":false"), "{line} → {response}");
        assert!(response.contains(needle), "{line} → {response}");
    };
    expect_error("this is not json", "bad request JSON");
    expect_error(r#"{"op":"frobnicate"}"#, "unknown op");
    expect_error(r#"{"op":"compile"}"#, "source");
    expect_error(r#"{"op":"compile","source":"garbage"}"#, "mig: line 1");
    expect_error(
        r#"{"op":"compile","source":"inputs a\noutput f = a\n","emit":"png"}"#,
        "unknown --emit",
    );
    expect_error(
        r#"{"op":"compile","source":"inputs a\noutput f = a\n","options":"bogus"}"#,
        "bad options spec",
    );
    // Invalid UTF-8 must get a diagnosis, not a silent hangup.
    stream.write_all(b"\xff\xfe garbage \xff\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("not valid UTF-8"), "{response}");
    // Deeply nested JSON is an error response, not a stack overflow.
    let mut deep = "[".repeat(100_000);
    deep.push('\n');
    stream.write_all(deep.as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("nesting deeper"), "{response}");
    // Drop BOTH halves: the socket only closes (and the server's
    // connection thread only exits) once reader and writer are gone.
    drop(stream);
    drop(reader);
    // The server survives all of it.
    let source = suite_source("ctrl");
    assert!(matches!(
        client::send(&addr, &compile_request(&source)).unwrap(),
        Response::Compile(_)
    ));
    shut_down(&addr, handle);
}

#[test]
fn same_bytes_under_another_format_do_not_hit_the_text_index() {
    let (addr, handle) = start_server(1, 1 << 20);
    let source = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
    // Compiles as MIG text…
    assert!(matches!(
        client::send(&addr, &compile_request(source)).unwrap(),
        Response::Compile(_)
    ));
    // …but the same bytes declared as AIGER must be a parse error, not a
    // cache hit served from the MIG entry.
    let mut as_aiger = compile_request(source);
    let Request::Compile(request) = &mut as_aiger else {
        unreachable!()
    };
    request.format = InputFormat::Aag;
    match client::send(&addr, &as_aiger).unwrap() {
        Response::Error(error) => {
            assert!(error.message.starts_with("aiger: "), "{}", error.message);
        }
        other => panic!("expected a parse error, got {other:?}"),
    }
    shut_down(&addr, handle);
}

#[test]
fn pipelined_requests_are_answered_in_request_order() {
    let (addr, handle) = start_server(2, 1 << 20);
    // A big circuit first, then tiny ones: the small compiles finish
    // before the big one, but the reactor must hold their responses until
    // the earlier request's answer is on the wire.
    let big = suite_source("i2c");
    let small_a = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
    let small_b = "inputs a b\nn = maj(1, a, b)\noutput f = n\n";
    let sources = [big.as_str(), small_a, small_b, small_a];
    let expected: Vec<String> = sources.iter().map(|s| offline_listing(s)).collect();

    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut batch = String::new();
    for source in sources {
        batch.push_str(&compile_request(source).to_json());
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for (index, expected) in expected.iter().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Response::Compile(response) = Response::from_json(&line).unwrap() else {
            panic!("response {index} is not a compile response: {line}");
        };
        assert_eq!(
            &response.output, expected,
            "response {index} out of order or wrong"
        );
    }
    shut_down(&addr, handle);
}

#[test]
fn backpressure_keeps_order_when_the_pipeline_window_overflows() {
    // A tiny window: the client floods 24 requests at once, the server
    // may only read 2 ahead of its slowest unanswered response. Every
    // response must still arrive, in order.
    let (addr, handle) = start_server_with(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_bytes: 1 << 20,
        max_pipeline: 2,
        log: false,
        ..ServerConfig::default()
    });
    let sources: Vec<String> = (0..24)
        .map(|i| {
            format!(
                "inputs a b c\nn = maj({}, a, b)\nm = maj(n, b, c)\noutput f = m\n",
                i % 2
            )
        })
        .collect();
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut batch = String::new();
    for source in &sources {
        batch.push_str(&compile_request(source).to_json());
        batch.push('\n');
    }
    // The flood is larger than the window; the write still completes
    // because the kernel buffers what the server has not yet read.
    stream.write_all(batch.as_bytes()).unwrap();
    let mut reader = BufReader::new(stream);
    for (index, source) in sources.iter().enumerate() {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let Response::Compile(response) = Response::from_json(&line).unwrap() else {
            panic!("response {index} is not a compile response: {line}");
        };
        assert_eq!(response.output, offline_listing(source), "response {index}");
    }
    shut_down(&addr, handle);
}

#[test]
fn v2_requests_get_structured_error_objects() {
    let (addr, handle) = start_server(1, 1 << 20);
    let mut stream = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut roundtrip = |line: &str| -> String {
        writeln!(stream, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response
    };
    // v2: errors are objects with a machine-readable code.
    let response = roundtrip(r#"{"v":2,"op":"frobnicate"}"#);
    assert!(
        response.contains(r#""error":{"code":"unknown_op""#),
        "{response}"
    );
    let response = roundtrip(r#"{"v":2,"op":"compile","source":"garbage"}"#);
    assert!(
        response.contains(r#""error":{"code":"parse_error""#),
        "{response}"
    );
    // A version this daemon does not speak is refused with its own code,
    // answered at the highest version it does speak.
    let response = roundtrip(r#"{"v":99,"op":"stats"}"#);
    assert!(
        response.contains(r#""error":{"code":"unsupported_version""#),
        "{response}"
    );
    // Versionless (v1) requests keep the flat error-string shape forever.
    let response = roundtrip(r#"{"op":"frobnicate"}"#);
    assert!(response.contains(r#""error":"unknown op"#), "{response}");
    assert!(!response.contains(r#""code""#), "{response}");
    shut_down(&addr, handle);
}

#[test]
fn idle_connections_are_reaped_but_active_ones_survive() {
    let (addr, handle) = start_server_with(&ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 1,
        cache_bytes: 1 << 20,
        idle_timeout: std::time::Duration::from_millis(400),
        log: false,
        ..ServerConfig::default()
    });
    // An idle connection is closed by the sweep (read_line returning 0
    // is EOF — the server hung up)…
    let idle = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(idle);
    let mut line = String::new();
    let n = reader.read_line(&mut line).unwrap();
    assert_eq!(n, 0, "idle connection must be closed, got: {line}");
    // …while the server keeps serving fresh connections.
    let source = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
    assert!(matches!(
        client::send(&addr, &compile_request(source)).unwrap(),
        Response::Compile(_)
    ));
    shut_down(&addr, handle);
}

#[test]
fn stats_report_one_shard_per_worker() {
    let (addr, handle) = start_server(3, 1 << 20);
    let snapshot = stats(&addr);
    // Binding the server registers the extra backends, so the stats
    // response advertises every target a `+target` spec may name.
    assert_eq!(snapshot.targets, ["rm3", "ambit", "magic"]);
    assert_eq!(snapshot.shards.len(), 3);
    for shard in &snapshot.shards {
        assert_eq!(shard.queue_depth, 0);
        assert_eq!(shard.cache.entries, 0);
    }
    shut_down(&addr, handle);
}
