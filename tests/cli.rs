//! Command-line driver regressions: format sniffing, diagnostics, and the
//! exit-code/stderr conventions that only manifest through the `plimc`
//! binary itself. Every user error must exit 1 with a one-line `plimc: …`
//! message on stderr — never a panic.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn plimc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_plimc"))
}

/// Runs `plimc` with the given arguments and asserts the user-error
/// convention: exit code 1 and exactly one stderr line containing
/// `expected`. Returns the stderr line for further checks.
fn assert_user_error(args: &[&str], expected: &str) -> String {
    let output = plimc().args(args).output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr).to_string();
    assert_eq!(output.status.code(), Some(1), "args {args:?}: {stderr}");
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "expected a one-line diagnostic for {args:?}: {stderr}"
    );
    assert!(
        stderr.starts_with("plimc: ") && stderr.contains(expected),
        "args {args:?}: unexpected diagnostic: {stderr}"
    );
    stderr
}

/// A tiny valid MIG document (f = a AND b) for end-to-end CLI runs.
const AND_MIG: &[u8] = b"inputs a b\nn = maj(0, a, b)\noutput f = n\n";

fn run_with_stdin(args: &[&str], stdin: &[u8]) -> Output {
    let mut child = plimc()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child.stdin.take().unwrap().write_all(stdin).unwrap();
    child.wait_with_output().unwrap()
}

/// A tiny binary AIGER document: the `aig` header followed by the
/// delta-encoded AND section (not valid UTF-8 in general; here the single
/// AND `6 4 2` — f = a AND b — encodes as the two delta bytes 2, 2).
fn binary_aiger_bytes() -> Vec<u8> {
    let mut bytes = b"aig 3 2 0 1 1\n6\n".to_vec();
    bytes.extend_from_slice(&[2u8, 2u8]);
    bytes
}

#[test]
fn binary_aiger_file_compiles_natively() {
    // Process-unique name: concurrent test runs must not race on the file.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("plimc_cli_test_binary_{}.aig", std::process::id()));
    std::fs::write(&path, binary_aiger_bytes()).unwrap();

    // Formerly this rejected the file with an `aigtoaig` conversion hint;
    // the sniff now dispatches into the native binary decoder, so the file
    // compiles and verifies like any other input.
    let output = plimc()
        .args([path.to_str().unwrap(), "--emit", "stats"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("instructions"), "stats missing: {stdout}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_aiger_on_stdin_compiles_too() {
    // Sniffing must run on stdin too, and win over the --format dispatch.
    let output = run_with_stdin(
        &["--format", "aag", "--emit", "stats", "-"],
        &binary_aiger_bytes(),
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("instructions"), "stats missing: {stdout}");
}

#[test]
fn corrupt_binary_aiger_gets_a_one_line_diagnostic() {
    // Truncate the AND section: the decoder must diagnose it as a binary
    // AIGER problem, not fall through to the MIG text parser or panic.
    let mut bytes = binary_aiger_bytes();
    bytes.truncate(bytes.len() - 2);
    let output = run_with_stdin(&["-"], &bytes);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");
    assert!(
        stderr.starts_with("plimc: ") && stderr.contains("binary AIGER"),
        "unexpected diagnostic: {stderr}"
    );
    assert!(stderr.contains("AND section"), "{stderr}");
}

#[test]
fn explicit_non_aiger_format_overrides_the_sniff() {
    // A MIG text document whose first line happens to start with `aig `
    // must still parse when the user explicitly forces --format mig.
    let mut child = plimc()
        .args(["--format", "mig", "--no-verify", "--emit", "mig", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aig = maj(0, 1, 0)\noutput f = aig\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stderr: {stderr}");
    assert!(
        !stderr.contains("binary AIGER"),
        "sniff ran anyway: {stderr}"
    );
}

#[test]
fn ascii_aiger_still_compiles_end_to_end() {
    // f = a AND NOT b, through the whole pipeline (rewrite + verify).
    let mut child = plimc()
        .args(["--format", "aag", "--emit", "stats", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 f\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("instructions"), "stats missing: {stdout}");
}

#[test]
fn every_rewrite_engine_compiles_and_verifies_end_to_end() {
    // All three engines must produce a verifying artifact for the same
    // input; `egraph` exercises the hook installed in main().
    for engine in ["arena", "rebuild", "egraph"] {
        let output = run_with_stdin(
            &[
                "--rewrite",
                engine,
                "--effort",
                "2",
                "-O2",
                "--emit",
                "stats",
                "-",
            ],
            AND_MIG,
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(output.status.success(), "{engine}: {stderr}");
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("instructions"), "{engine}: {stdout}");
    }
}

#[test]
fn user_errors_exit_one_with_a_one_line_diagnostic() {
    assert_user_error(&["--effort", "four", "-"], "--effort needs a number");
    // A format typo is diagnosed as such even for unreadable/binary
    // inputs (the name is validated before the file is touched).
    assert_user_error(&["--format", "agg", "x.aig"], "unknown format `agg`");
    assert_user_error(&["--effort"], "--effort requires a value");
    assert_user_error(&["--alloc", "zigzag", "-"], "unknown allocator `zigzag`");
    assert_user_error(&["--schedule", "random", "-"], "unknown schedule `random`");
    assert_user_error(&["-O7", "-"], "unknown opt level `o7`");
    assert_user_error(&["-Ofast", "-"], "unknown opt level `ofast`");
    // The --schedule/--alloc convention: the target diagnostic lists every
    // registered backend name.
    let stderr = assert_user_error(&["--target", "gpu", "-"], "unknown target `gpu`");
    for name in ["rm3", "ambit", "magic"] {
        assert!(stderr.contains(name), "valid names missing: {stderr}");
    }
    assert_user_error(
        &["--rewrite", "zigzag", "-"],
        "unknown rewrite mode `zigzag`",
    );
    assert_user_error(&["--frobnicate", "-"], "unknown option `--frobnicate`");
    assert_user_error(&["a.mig", "b.mig"], "multiple input files");
    assert_user_error(&[], "no input file");
    assert_user_error(
        &["/nonexistent/plimc-test-input.mig"],
        "reading /nonexistent/plimc-test-input.mig",
    );
    assert_user_error(
        &["--limit", "4", "--alloc", "lifo", "a.mig"],
        "--limit explores schedules/allocators itself",
    );
    assert_user_error(&["bench", "--frobnicate"], "unknown bench option");
    assert_user_error(&["bench-diff", "only-one.json"], "exactly two files");
    assert_user_error(
        &["bench-diff", "/nonexistent/a.json", "/nonexistent/b.json"],
        "reading /nonexistent/a.json",
    );
}

#[test]
fn unknown_emit_exits_one_after_compilation() {
    let output = run_with_stdin(&["--emit", "png", "--no-verify", "-"], AND_MIG);
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.contains("unknown --emit `png`"), "{stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");
}

#[test]
fn opt_levels_compile_end_to_end_and_o0_is_the_default() {
    let baseline = run_with_stdin(&["--emit", "listing", "-"], AND_MIG);
    assert!(baseline.status.success());
    for level in ["-O0", "-O1", "-O2"] {
        let output = run_with_stdin(&[level, "--emit", "listing", "-"], AND_MIG);
        assert!(
            output.status.success(),
            "{level}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        if level == "-O0" {
            assert_eq!(
                output.stdout, baseline.stdout,
                "-O0 must be the default level"
            );
        }
    }
}

/// `plimc --emit ir` prints the post-optimization IR in its stable text
/// form; golden files over two suite circuits pin the format.
#[test]
fn emit_ir_matches_the_golden_dumps() {
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
    for circuit in ["dec", "router"] {
        let dump = plimc()
            .args(["dump", circuit, "--reduced"])
            .output()
            .unwrap();
        assert!(dump.status.success());
        let output = run_with_stdin(&["-O2", "--emit", "ir", "-"], &dump.stdout);
        assert!(
            output.status.success(),
            "{circuit}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let expected =
            std::fs::read_to_string(format!("{golden}/{circuit}.O2.ir")).expect("golden dump");
        assert_eq!(
            String::from_utf8_lossy(&output.stdout),
            expected,
            "{circuit}: --emit ir diverged from the golden dump"
        );
    }
}

#[test]
fn new_schedule_and_allocator_options_compile_end_to_end() {
    for args in [
        ["--schedule", "lookahead", "--emit", "stats"],
        ["--alloc", "wear", "--emit", "stats"],
        ["--alloc", "binned", "--emit", "stats"],
    ] {
        let mut full = args.to_vec();
        full.push("-");
        let output = run_with_stdin(&full, AND_MIG);
        assert!(
            output.status.success(),
            "{args:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains("instructions"), "{args:?}: {stdout}");
    }
}

/// A BENCH.json document with one record, parameterized on `#I` (the
/// optimized columns track it so the opt-monotonicity rule stays green).
fn bench_json(instructions: u64) -> String {
    format!(
        "[{{\"circuit\": \"adder\", \"instructions\": {instructions}, \"rams\": 11, \
         \"max_writes\": 22, \"lookahead_rams\": 11, \"wear_max_writes\": 22, \
         \"o1_instructions\": {instructions}, \"o1_rams\": 11, \
         \"o2_instructions\": {instructions}, \"o2_rams\": 11, \"o2_max_writes\": 22, \
         \"ambit_ops\": 490, \"ambit_cost\": 1078, \"magic_ops\": 686, \"magic_cost\": 686, \
         \"egraph_instructions\": {instructions}, \"egraph_rams\": 11, \
         \"rewrite_ms\": 1.0, \"compile_ms\": 2.0, \"verified_exhaustive\": true, \
         \"fault_error_rate\": 0.0649, \"lifetime_invocations\": 45454, \
         \"lint_clean\": true}}]\n"
    )
}

#[test]
fn bench_diff_gates_on_opt_level_monotonicity() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let run = dir.join(format!("plimc_cli_optmono_{pid}.json"));
    // -O2 above -O0 on the *current* records: diffing the file against
    // itself proves the rule needs no baseline mismatch to fire.
    std::fs::write(
        &run,
        bench_json(98).replace("\"o2_instructions\": 98", "\"o2_instructions\": 99"),
    )
    .unwrap();
    let bad = plimc()
        .args(["bench-diff", run.to_str().unwrap(), run.to_str().unwrap()])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("-O2 produces more instructions than -O0"),
        "{stdout}"
    );
    std::fs::remove_file(&run).ok();
}

#[test]
fn bench_diff_gates_on_injected_instruction_regression() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let baseline = dir.join(format!("plimc_cli_baseline_{pid}.json"));
    let same = dir.join(format!("plimc_cli_same_{pid}.json"));
    let regressed = dir.join(format!("plimc_cli_regressed_{pid}.json"));
    std::fs::write(&baseline, bench_json(98)).unwrap();
    std::fs::write(&same, bench_json(98)).unwrap();
    std::fs::write(&regressed, bench_json(99)).unwrap();

    // Identical metrics: the gate is green and exits 0.
    let ok = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            same.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("bench gate: OK"));

    // One extra instruction: the gate fails with exit 1 and names the
    // regression on stdout plus a one-line summary on stderr.
    let bad = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            regressed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("REGRESSION: adder: #I regressed 98 → 99"),
        "{stdout}"
    );
    assert!(stderr.contains("bench gate failed"), "{stderr}");

    for path in [&baseline, &same, &regressed] {
        std::fs::remove_file(path).ok();
    }
}

/// The per-target columns gate like the RM3 ones: a costlier `ambit`
/// emission fails the gate, while a dropped annotation (the `0` sentinel)
/// is only a coverage note.
#[test]
fn bench_diff_gates_on_per_target_cost_regressions() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let baseline = dir.join(format!("plimc_cli_target_baseline_{pid}.json"));
    let regressed = dir.join(format!("plimc_cli_target_regressed_{pid}.json"));
    let skipped = dir.join(format!("plimc_cli_target_skipped_{pid}.json"));
    std::fs::write(&baseline, bench_json(98)).unwrap();
    std::fs::write(
        &regressed,
        bench_json(98).replace("\"ambit_cost\": 1078", "\"ambit_cost\": 1079"),
    )
    .unwrap();
    std::fs::write(
        &skipped,
        bench_json(98)
            .replace("\"ambit_ops\": 490", "\"ambit_ops\": 0")
            .replace("\"ambit_cost\": 1078", "\"ambit_cost\": 0"),
    )
    .unwrap();

    let bad = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            regressed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("REGRESSION: adder: ambit_cost regressed 1078 → 1079"),
        "{stdout}"
    );

    let note = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            skipped.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&note.stdout);
    assert!(note.status.success(), "stdout: {stdout}");
    assert!(
        stdout.contains("ambit_ops annotation coverage changed 490 → 0"),
        "{stdout}"
    );

    for path in [&baseline, &regressed, &skipped] {
        std::fs::remove_file(path).ok();
    }
}

/// The equality-saturation columns gate like the per-target ones, plus
/// the baseline-free rule: an annotated `egraph_instructions` above the
/// run's own `o2_instructions` fails even when the baseline agrees.
#[test]
fn bench_diff_gates_on_egraph_cost_regressions() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let baseline = dir.join(format!("plimc_cli_egraph_baseline_{pid}.json"));
    let regressed = dir.join(format!("plimc_cli_egraph_regressed_{pid}.json"));
    let worse_than_o2 = dir.join(format!("plimc_cli_egraph_worse_{pid}.json"));
    std::fs::write(&baseline, bench_json(98)).unwrap();
    std::fs::write(
        &regressed,
        bench_json(98).replace("\"egraph_rams\": 11", "\"egraph_rams\": 12"),
    )
    .unwrap();
    // Doctor only the egraph column above -O2; the baseline comparison for
    // it is identical-to-itself, so any failure comes from the current-run
    // rule alone.
    let doctored =
        bench_json(98).replace("\"egraph_instructions\": 98", "\"egraph_instructions\": 99");
    std::fs::write(&worse_than_o2, &doctored).unwrap();

    let bad = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            regressed.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("REGRESSION: adder: egraph_rams regressed 11 → 12"),
        "{stdout}"
    );

    let bad = plimc()
        .args([
            "bench-diff",
            worse_than_o2.to_str().unwrap(),
            worse_than_o2.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("egraph_instructions exceeds o2_instructions"),
        "{stdout}"
    );

    for path in [&baseline, &regressed, &worse_than_o2] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn bench_diff_time_gate_can_be_disabled_for_cross_machine_runs() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let baseline = dir.join(format!("plimc_cli_time_baseline_{pid}.json"));
    let slow = dir.join(format!("plimc_cli_time_slow_{pid}.json"));
    std::fs::write(&baseline, bench_json(98)).unwrap();
    // Same quality metrics, 100× the wall-clock.
    std::fs::write(
        &slow,
        bench_json(98).replace("\"compile_ms\": 2.0", "\"compile_ms\": 200.0"),
    )
    .unwrap();

    // The default 25 % time tolerance rejects the slowdown…
    let gated = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            slow.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&gated.stdout);
    assert_eq!(gated.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("tolerance"), "{stdout}");

    // …while --no-time-gate reports it as a note only (CI's cross-machine
    // mode) and still exits 0.
    let noted = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            slow.to_str().unwrap(),
            "--no-time-gate",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&noted.stdout);
    assert!(noted.status.success(), "stdout: {stdout}");
    assert!(stdout.contains("note: wall-clock"), "{stdout}");
    assert!(stdout.contains("time gate off"), "{stdout}");

    for path in [&baseline, &slow] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn bench_diff_names_the_missing_field_in_one_line() {
    // A baseline that is valid JSON but lacks a required field used to
    // surface as a bare parse error; now it must be a one-line
    // `plimc: <file>: missing field '<name>'` diagnostic.
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let incomplete = dir.join(format!("plimc_cli_incomplete_{pid}.json"));
    let complete = dir.join(format!("plimc_cli_complete_{pid}.json"));
    std::fs::write(
        &incomplete,
        "[{\"circuit\": \"adder\", \"instructions\": 98}]\n",
    )
    .unwrap();
    std::fs::write(&complete, bench_json(98)).unwrap();

    let stderr = assert_user_error(
        &[
            "bench-diff",
            incomplete.to_str().unwrap(),
            complete.to_str().unwrap(),
        ],
        "missing field 'rams'",
    );
    let prefix = format!("plimc: {}: missing field 'rams'", incomplete.display());
    assert!(stderr.starts_with(&prefix), "diagnostic shape: {stderr}");

    for path in [&incomplete, &complete] {
        std::fs::remove_file(path).ok();
    }
}

#[test]
fn dump_prints_suite_circuits_as_parseable_mig_text() {
    let output = plimc()
        .args(["dump", "ctrl", "--reduced"])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let text = String::from_utf8(output.stdout).unwrap();
    assert!(text.starts_with("# MIG"), "unexpected dump: {text}");
    // The dump round-trips through the compiler end to end.
    let compiled = run_with_stdin(&["--emit", "stats", "-"], text.as_bytes());
    assert!(
        compiled.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&compiled.stderr)
    );

    assert_user_error(&["dump", "bogus", "--reduced"], "unknown benchmark `bogus`");
    assert_user_error(&["dump"], "dump needs a circuit name");
    assert_user_error(&["dump", "ctrl", "voter"], "multiple circuits");
}

/// Full daemon round-trip through the real binaries: start `plimc serve`
/// on a free port, compare served output against offline output, check
/// the warm pass hits the cache, and shut the daemon down.
#[test]
fn serve_and_request_round_trip_byte_identically() {
    use std::io::BufRead as _;

    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let circuit = dir.join(format!("plimc_cli_serve_{pid}.mig"));
    std::fs::write(
        &circuit,
        b"inputs a b c\nn1 = maj(0, a, b)\nn2 = maj(n1, c, 1)\noutput f = !n2\n",
    )
    .unwrap();
    let circuit_path = circuit.to_str().unwrap();

    let mut daemon = plimc()
        .args(["serve", "--addr", "127.0.0.1:0", "--quiet"])
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // The listening line is printed as soon as the daemon is ready and
    // names the actual port (we asked for port 0).
    let mut stdout = std::io::BufReader::new(daemon.stdout.take().unwrap());
    let mut listening = String::new();
    stdout.read_line(&mut listening).unwrap();
    let addr = listening
        .split("listening on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("no address in: {listening}"))
        .to_string();

    let offline = plimc().arg(circuit_path).output().unwrap();
    assert!(offline.status.success());

    for pass in ["cold", "warm"] {
        let served = plimc()
            .args(["request", "--addr", &addr, circuit_path])
            .output()
            .unwrap();
        assert!(
            served.status.success(),
            "{pass}: {}",
            String::from_utf8_lossy(&served.stderr)
        );
        assert_eq!(
            served.stdout, offline.stdout,
            "{pass} pass must be byte-identical to offline output"
        );
    }

    let stats = plimc()
        .args(["request", "--addr", &addr, "--stats"])
        .output()
        .unwrap();
    let stats_line = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.status.success(), "{stats_line}");
    assert!(
        stats_line.contains("\"hits\":1") && stats_line.contains("\"misses\":1"),
        "warm pass must be a cache hit: {stats_line}"
    );

    let shutdown = plimc()
        .args(["request", "--addr", &addr, "--shutdown"])
        .output()
        .unwrap();
    assert!(shutdown.status.success());
    let status = daemon.wait().unwrap();
    assert!(status.success(), "daemon must exit cleanly on shutdown");
    std::fs::remove_file(&circuit).ok();
}

#[test]
fn request_against_a_dead_service_is_a_user_error() {
    // Port 1 on loopback is essentially never listening. The diagnostic is
    // the standard one-liner `plimc: cannot connect to <addr>: <cause>` at
    // exit 1 — not a raw io::Error.
    let stderr = assert_user_error(
        &["request", "--addr", "127.0.0.1:1", "--stats"],
        "cannot connect to 127.0.0.1:1",
    );
    assert!(
        stderr.trim_end().len() > "plimc: cannot connect to 127.0.0.1:1: ".len(),
        "the cause must follow the address: {stderr}"
    );
    // Compile requests hit the same path as --stats.
    let dir = std::env::temp_dir();
    let circuit = dir.join(format!("plimc_cli_dead_daemon_{}.mig", std::process::id()));
    std::fs::write(&circuit, AND_MIG).unwrap();
    assert_user_error(
        &[
            "request",
            "--addr",
            "127.0.0.1:1",
            circuit.to_str().unwrap(),
        ],
        "cannot connect to 127.0.0.1:1",
    );
    std::fs::remove_file(&circuit).ok();
    assert_user_error(
        &["request", "--stats", "--shutdown", "extra"],
        "take no further arguments",
    );
}

#[test]
fn request_timeout_and_retry_flags_are_validated_and_still_fail_cleanly() {
    assert_user_error(
        &["request", "--timeout", "abc", "--stats"],
        "--timeout needs a positive number of seconds",
    );
    assert_user_error(
        &["request", "--timeout", "0", "--stats"],
        "--timeout needs a positive number of seconds",
    );
    assert_user_error(
        &["request", "--retries", "many", "--stats"],
        "--retries needs a number",
    );
    // With valid values against a dead port, the retries run their course
    // (with backoff) and the result is still the standard one-liner.
    assert_user_error(
        &[
            "request",
            "--addr",
            "127.0.0.1:1",
            "--timeout",
            "0.5",
            "--retries",
            "1",
            "--stats",
        ],
        "cannot connect to 127.0.0.1:1",
    );
}

#[test]
fn loadtest_flags_are_validated() {
    assert_user_error(
        &["loadtest", "--connections", "0"],
        "--connections needs a positive number",
    );
    assert_user_error(
        &["loadtest", "--pipeline", "lots"],
        "--pipeline needs a positive number",
    );
    assert_user_error(&["loadtest", "--bogus"], "unknown loadtest option");
    // Against a dead port, the connect failure is a one-line user error.
    assert_user_error(
        &["loadtest", "--addr", "127.0.0.1:1", "--connections", "2"],
        "cannot connect to 127.0.0.1:1",
    );
}

/// End-to-end through the real binaries: a stored daemon survives a
/// loadtest, and after a restart on the same store directory the repeats
/// are served from disk (`"store":{"hits":…}` nonzero in `--stats`).
#[test]
fn loadtest_and_store_round_trip_through_the_binaries() {
    use std::io::BufRead as _;

    let pid = std::process::id();
    let store = std::env::temp_dir().join(format!("plimc_cli_store_{pid}"));
    let _ = std::fs::remove_dir_all(&store);

    // The stdout reader must outlive each daemon: dropping it closes the
    // pipe, and the daemon's next println! (the store banner) would die
    // on EPIPE.
    let spawn_daemon = || {
        let mut daemon = plimc()
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--store",
                store.to_str().unwrap(),
                "--quiet",
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .unwrap();
        let mut stdout = std::io::BufReader::new(daemon.stdout.take().unwrap());
        let mut listening = String::new();
        stdout.read_line(&mut listening).unwrap();
        let addr = listening
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .unwrap_or_else(|| panic!("no address in: {listening}"))
            .to_string();
        (daemon, addr, stdout)
    };
    let shutdown = |addr: &str, mut daemon: std::process::Child| {
        let response = plimc()
            .args(["request", "--addr", addr, "--shutdown"])
            .output()
            .unwrap();
        assert!(response.status.success());
        assert!(daemon.wait().unwrap().success());
    };

    // First daemon: the loadtest passes and fills the store.
    let (daemon, addr, _stdout) = spawn_daemon();
    let report = plimc()
        .args([
            "loadtest",
            "--addr",
            &addr,
            "--connections",
            "64",
            "--pipeline",
            "4",
            "--requests",
            "4",
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&report.stdout);
    assert!(
        report.status.success(),
        "stdout: {stdout} stderr: {}",
        String::from_utf8_lossy(&report.stderr)
    );
    assert!(stdout.contains("loadtest: OK"), "{stdout}");
    shutdown(&addr, daemon);

    // Second daemon, same store: repeats come off the disk, visible as
    // nonzero store hits in the stats response.
    let (daemon, addr, _stdout) = spawn_daemon();
    let rerun = plimc()
        .args(["loadtest", "--addr", &addr, "--connections", "8"])
        .output()
        .unwrap();
    assert!(
        rerun.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&rerun.stderr)
    );
    let stats = plimc()
        .args(["request", "--addr", &addr, "--stats"])
        .output()
        .unwrap();
    let stats_line = String::from_utf8_lossy(&stats.stdout);
    assert!(stats.status.success(), "{stats_line}");
    let hits = stats_line
        .split("\"store\":{\"hits\":")
        .nth(1)
        .and_then(|rest| rest.split([',', '}']).next())
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no store counters in: {stats_line}"));
    assert!(hits >= 1, "restart must hit the store: {stats_line}");
    shutdown(&addr, daemon);

    let _ = std::fs::remove_dir_all(&store);
}

/// `plimc verify` proves a suite circuit end to end and reports the proof
/// size; circuits beyond the exhaustive-input limit are a user error.
#[test]
fn verify_subcommand_proves_small_circuits_and_rejects_large_ones() {
    let dump = plimc()
        .args(["dump", "ctrl", "--reduced"])
        .output()
        .unwrap();
    assert!(dump.status.success());
    let output = run_with_stdin(&["verify", "-O2", "-"], &dump.stdout);
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("verified: all") && stdout.contains("2^7 input patterns"),
        "proof report missing: {stdout}"
    );

    // The reduced router has 60 primary inputs — far beyond the
    // exhaustive limit. The refusal is the standard one-line diagnostic at
    // exit 2, distinguishable from a disproof (exit 1): a caller that gets
    // 2 may fall back to sampled verification, one that gets 1 must stop.
    let router = plimc()
        .args(["dump", "router", "--reduced"])
        .output()
        .unwrap();
    assert!(router.status.success());
    let rejected = run_with_stdin(&["verify", "-"], &router.stdout);
    let stderr = String::from_utf8_lossy(&rejected.stderr);
    assert_eq!(rejected.status.code(), Some(2), "stderr: {stderr}");
    assert_eq!(stderr.trim_end().lines().count(), 1, "{stderr}");
    assert!(
        stderr.starts_with("plimc: verification:") && stderr.contains("supports at most 20"),
        "unexpected diagnostic: {stderr}"
    );
    // Ordinary user errors on the verify path still exit 1, so 2 really
    // does single out the too-wide refusal.
    assert_user_error(
        &["verify", "/nonexistent/input.mig"],
        "reading /nonexistent",
    );

    assert_user_error(
        &["verify", "--limit", "8", "x.mig"],
        "--limit is not supported by verify",
    );
}

/// `plimc targets` lists every registered backend with its instruction
/// set, and takes no arguments.
#[test]
fn targets_subcommand_lists_registered_backends() {
    let output = plimc().args(["targets"]).output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    let mut lines = stdout.lines();
    // rm3 is always first: it is the reference target.
    assert!(lines.next().unwrap().starts_with("rm3"), "{stdout}");
    for (name, mnemonic) in [("ambit", "tra"), ("magic", "nor")] {
        assert!(
            stdout.lines().any(|l| l.starts_with(name)),
            "{name} missing: {stdout}"
        );
        assert!(stdout.contains(mnemonic), "{mnemonic} missing: {stdout}");
    }
    assert_user_error(&["targets", "extra"], "takes no arguments");
}

/// `--target ambit` drives the whole pipeline through the non-RM3
/// backend: emission prints the backend's native listing and `verify`
/// proves the artifact through the backend's own executor.
#[test]
fn target_flag_compiles_and_verifies_through_the_backend() {
    let dump = plimc()
        .args(["dump", "ctrl", "--reduced"])
        .output()
        .unwrap();
    assert!(dump.status.success());
    let listing = run_with_stdin(
        &["--target", "ambit", "--emit", "listing", "-"],
        &dump.stdout,
    );
    assert!(
        listing.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&listing.stderr)
    );
    let stdout = String::from_utf8_lossy(&listing.stdout);
    assert!(stdout.starts_with(".ambit v1\n"), "{stdout}");

    let proof = run_with_stdin(&["verify", "--target", "ambit", "-O2", "-"], &dump.stdout);
    assert!(
        proof.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&proof.stderr)
    );
    let stdout = String::from_utf8_lossy(&proof.stdout);
    assert!(
        stdout.contains("verified [ambit]: all") && stdout.contains("2^7 input patterns"),
        "proof report missing: {stdout}"
    );
}

/// `plimc lint` gives clean artifacts a clean bill (exit 0, text and
/// JSON), fails doctored streams with the expected lint, and honors
/// `--deny`/`--allow`.
#[test]
fn lint_subcommand_gates_artifacts_end_to_end() {
    let dump = plimc()
        .args(["dump", "ctrl", "--reduced"])
        .output()
        .unwrap();
    assert!(dump.status.success());

    // Clean at every opt level, in both output formats.
    for level in ["-O0", "-O1", "-O2"] {
        let output = run_with_stdin(&["lint", level, "-"], &dump.stdout);
        assert!(
            output.status.success(),
            "{level}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        assert!(stdout.contains(": clean"), "{level}: {stdout}");
    }
    let json = run_with_stdin(&["lint", "-O2", "--json", "-"], &dump.stdout);
    assert!(json.status.success());
    let line = String::from_utf8_lossy(&json.stdout);
    assert!(
        line.contains("\"clean\":true") && line.contains("\"diagnostics\":[]"),
        "JSON report shape: {line}"
    );

    // The doctored stream must fail with PA0002 — the CI dry-run that
    // proves the gate can actually reject an artifact.
    let doctored = run_with_stdin(
        &["lint", "--doctor", "write-after-release", "-"],
        &dump.stdout,
    );
    let stdout = String::from_utf8_lossy(&doctored.stdout);
    let stderr = String::from_utf8_lossy(&doctored.stderr);
    assert_eq!(doctored.status.code(), Some(1), "stdout: {stdout}");
    assert!(stdout.contains("PA0002"), "{stdout}");
    assert!(stderr.contains("error-level finding"), "{stderr}");

    // --allow suppresses by code or name; the doctored artifact then
    // passes (certification is also silenced: the corrupted stream cannot
    // be replayed).
    let allowed = run_with_stdin(
        &[
            "lint",
            "--doctor",
            "write-after-release",
            "--allow",
            "PA0002",
            "--allow",
            "use-before-init",
            "--allow",
            "stats-mismatch",
            "-",
        ],
        &dump.stdout,
    );
    assert!(
        allowed.status.success(),
        "stdout: {} stderr: {}",
        String::from_utf8_lossy(&allowed.stdout),
        String::from_utf8_lossy(&allowed.stderr)
    );

    assert_user_error(
        &["lint", "--deny", "PA9999", "x.mig"],
        "unknown lint `PA9999`",
    );
    assert_user_error(
        &["lint", "--doctor", "bit-rot", "x.mig"],
        "unknown injection `bit-rot`",
    );
}

/// `plimc scenario` prints the seeded configuration header and one table
/// row per allocation strategy; malformed knobs are user errors.
#[test]
fn scenario_subcommand_sweeps_every_allocator() {
    let output = run_with_stdin(
        &[
            "scenario",
            "--patterns",
            "512",
            "--drift",
            "0.01",
            "--stuck",
            "0:1",
            "--endurance",
            "10000",
            "-",
        ],
        AND_MIG,
    );
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("scenario: 512 patterns, drift 0.01, stuck @0:1"),
        "header missing: {stdout}"
    );
    for strategy in ["fifo", "lifo", "fresh", "wear", "binned"] {
        assert!(
            stdout.lines().any(|line| line.starts_with(strategy)),
            "no row for `{strategy}`: {stdout}"
        );
    }

    assert_user_error(
        &["scenario", "--stuck", "3:2", "x.mig"],
        "--stuck needs ADDR:0 or ADDR:1",
    );
    assert_user_error(
        &["scenario", "--drift", "1.5", "x.mig"],
        "needs a probability in [0, 1]",
    );
    assert_user_error(
        &["scenario", "--patterns", "many", "x.mig"],
        "--patterns needs a number",
    );
}

/// The fidelity axis gates asymmetrically: `verified_exhaustive` flipping
/// true → false is a regression; measured-rate drift is a note.
#[test]
fn bench_diff_gates_on_lost_exhaustive_verification() {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let baseline = dir.join(format!("plimc_cli_fidelity_baseline_{pid}.json"));
    let unverified = dir.join(format!("plimc_cli_fidelity_lost_{pid}.json"));
    std::fs::write(&baseline, bench_json(98)).unwrap();
    std::fs::write(
        &unverified,
        bench_json(98).replace(
            "\"verified_exhaustive\": true",
            "\"verified_exhaustive\": false",
        ),
    )
    .unwrap();

    let bad = plimc()
        .args([
            "bench-diff",
            baseline.to_str().unwrap(),
            unverified.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&bad.stdout);
    assert_eq!(bad.status.code(), Some(1), "stdout: {stdout}");
    assert!(
        stdout.contains("verified_exhaustive regressed true → false"),
        "{stdout}"
    );

    // The reverse direction (false → true) is an improvement, not a gate.
    let ok = plimc()
        .args([
            "bench-diff",
            unverified.to_str().unwrap(),
            baseline.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "stdout: {}",
        String::from_utf8_lossy(&ok.stdout)
    );

    for path in [&baseline, &unverified] {
        std::fs::remove_file(path).ok();
    }
}

/// `--help` documents native binary-AIGER support, the rewrite-engine
/// flag, and both scenario subcommands.
#[test]
fn help_mentions_binary_aiger_and_the_scenario_subcommands() {
    let output = plimc().arg("--help").output().unwrap();
    assert!(output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("binary AIGER .aig is parsed natively"),
        "native .aig support missing from --help: {stderr}"
    );
    assert!(
        stderr.contains("--rewrite arena|rebuild|egraph"),
        "rewrite engines missing from --help: {stderr}"
    );
    assert!(stderr.contains("plimc verify"), "{stderr}");
    assert!(
        stderr.contains("2: too wide for an exhaustive proof"),
        "verify exit codes missing from --help: {stderr}"
    );
    assert!(stderr.contains("plimc lint"), "{stderr}");
    assert!(stderr.contains("plimc scenario"), "{stderr}");
    assert!(stderr.contains("plimc loadtest"), "{stderr}");
    assert!(stderr.contains("--store DIR"), "{stderr}");
    assert!(stderr.contains("--timeout SECS"), "{stderr}");
}

#[test]
fn aiger_parse_errors_carry_line_numbers_through_the_cli() {
    // Truncated document: the header promises more than the file holds.
    let mut child = plimc()
        .args(["--format", "aag", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aag 3 2 0 1 1\n2\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr.contains("line 2") && stderr.contains("unexpected end of file"),
        "EOF diagnostic must name the last line read: {stderr}"
    );
}
