//! Command-line driver regressions: format sniffing and diagnostics that
//! only manifest through the `plimc` binary itself.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn plimc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_plimc"))
}

/// A tiny binary AIGER document: the `aig` header followed by the
/// delta-encoded AND section (not valid UTF-8 in general; here the single
/// AND `6 4 2` encodes as the two delta bytes 2, 2).
fn binary_aiger_bytes() -> Vec<u8> {
    let mut bytes = b"aig 3 2 0 1 1\n4\n".to_vec();
    bytes.extend_from_slice(&[2u8, 2u8]);
    bytes
}

#[test]
fn binary_aiger_file_gets_a_clear_error() {
    // Process-unique name: concurrent test runs must not race on the file.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("plimc_cli_test_binary_{}.aig", std::process::id()));
    std::fs::write(&path, binary_aiger_bytes()).unwrap();

    let output = plimc().arg(path.to_str().unwrap()).output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("binary AIGER is not supported"),
        "unexpected diagnostic: {stderr}"
    );
    assert!(stderr.contains("aigtoaig"), "should suggest the converter");
    // The old behavior fell through to the MIG text parser.
    assert!(
        !stderr.contains("unrecognized line"),
        "must not reach the MIG parser: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn binary_aiger_on_stdin_gets_the_same_error() {
    // Sniffing must run on stdin too, and before the --format dispatch.
    let mut child = plimc()
        .args(["--format", "aag", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(&binary_aiger_bytes())
        .unwrap();
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1), "stderr: {stderr}");
    assert!(
        stderr.contains("binary AIGER is not supported"),
        "unexpected diagnostic: {stderr}"
    );
}

#[test]
fn explicit_non_aiger_format_overrides_the_sniff() {
    // A MIG text document whose first line happens to start with `aig `
    // must still parse when the user explicitly forces --format mig.
    let mut child = plimc()
        .args(["--format", "mig", "--no-verify", "--emit", "mig", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aig = maj(0, 1, 0)\noutput f = aig\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(output.status.success(), "stderr: {stderr}");
    assert!(
        !stderr.contains("binary AIGER"),
        "sniff ran anyway: {stderr}"
    );
}

#[test]
fn ascii_aiger_still_compiles_end_to_end() {
    // f = a AND NOT b, through the whole pipeline (rewrite + verify).
    let mut child = plimc()
        .args(["--format", "aag", "--emit", "stats", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 f\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("instructions"), "stats missing: {stdout}");
}

#[test]
fn aiger_parse_errors_carry_line_numbers_through_the_cli() {
    // Truncated document: the header promises more than the file holds.
    let mut child = plimc()
        .args(["--format", "aag", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .take()
        .unwrap()
        .write_all(b"aag 3 2 0 1 1\n2\n")
        .unwrap();
    let output = child.wait_with_output().unwrap();
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(output.status.code(), Some(1));
    assert!(
        stderr.contains("line 2") && stderr.contains("unexpected end of file"),
        "EOF diagnostic must name the last line read: {stderr}"
    );
}
