//! Property-based invariants of the pluggable RRAM allocator layer: no
//! strategy may ever double-book a live cell, `#R` accounting must count
//! exactly the fresh hand-outs, release/request must round-trip for every
//! reusing strategy, and compiled programs must verify under every
//! scheduling × allocation combination on random MIGs.

use proptest::prelude::*;

use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_compiler::alloc::RramAllocator;
use plim_compiler::{
    compile, verify::verify, AllocatorStrategy, CompilerOptions, LifetimeClass, ScheduleOrder,
};

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..8, 1usize..6, 10usize..90, any::<u64>()).prop_map(|(inputs, outputs, nodes, seed)| {
        RandomLogicSpec::new(inputs, outputs, nodes, seed)
    })
}

/// Replays a request/release/write trace against one strategy, checking the
/// shared invariants at every step. `ops` drives the choice: `true` requests
/// a cell, `false` releases one (requesting instead when nothing is live).
fn replay_trace(strategy: AllocatorStrategy, ops: &[(bool, bool, u8)]) {
    let mut alloc = RramAllocator::new(strategy);
    let mut live = Vec::new();
    let mut fresh_seen = 0u32;
    for &(request, long_hint, noise) in ops {
        if request || live.is_empty() {
            let hint = if long_hint {
                LifetimeClass::Long
            } else {
                LifetimeClass::Short
            };
            let addr = alloc.request_with_hint(hint);
            prop_assert!(!live.contains(&addr), "{strategy:?} double-booked {addr}");
            if addr.index() as u32 >= fresh_seen {
                prop_assert_eq!(
                    addr.index() as u32,
                    fresh_seen,
                    "fresh cells must be handed out densely"
                );
                fresh_seen += 1;
            }
            // Exercise the write counters so the wear-leveled pool has
            // something to rank cells by.
            for _ in 0..noise % 4 {
                alloc.note_write(addr);
            }
            live.push(addr);
        } else {
            let addr = live.swap_remove(noise as usize % live.len());
            alloc.release(addr);
        }
        prop_assert_eq!(alloc.num_live(), live.len());
        prop_assert_eq!(alloc.num_allocated(), fresh_seen);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn no_strategy_double_books_and_fresh_handouts_equal_num_allocated(
        ops in proptest::collection::vec((any::<bool>(), any::<bool>(), any::<u8>()), 1..250),
    ) {
        for strategy in AllocatorStrategy::ALL {
            replay_trace(strategy, &ops);
        }
    }

    #[test]
    fn release_then_request_round_trips_without_fresh_cells(
        count in 1usize..40,
        long_hint: bool,
    ) {
        let hint = if long_hint { LifetimeClass::Long } else { LifetimeClass::Short };
        for strategy in AllocatorStrategy::ALL {
            let mut alloc = RramAllocator::new(strategy);
            let cells: Vec<_> = (0..count).map(|_| alloc.request_with_hint(hint)).collect();
            prop_assert_eq!(alloc.num_allocated() as usize, count);
            for &cell in &cells {
                alloc.release(cell);
            }
            prop_assert_eq!(alloc.num_live(), 0);
            let again: Vec<_> = (0..count).map(|_| alloc.request_with_hint(hint)).collect();
            if strategy == AllocatorStrategy::Fresh {
                // The no-reuse upper bound allocates a fresh cell per request.
                prop_assert_eq!(alloc.num_allocated() as usize, 2 * count);
            } else {
                // Every reusing strategy serves the round trip from the pool…
                prop_assert_eq!(alloc.num_allocated() as usize, count, "{strategy:?}");
                // …with exactly the released cells, in some order.
                let mut sorted = again.clone();
                sorted.sort();
                let mut original = cells.clone();
                original.sort();
                prop_assert_eq!(sorted, original, "{strategy:?}");
            }
        }
    }

    #[test]
    fn wear_leveled_always_serves_a_minimally_written_free_cell(
        ops in proptest::collection::vec((any::<bool>(), any::<u8>()), 1..200),
    ) {
        let mut alloc = RramAllocator::new(AllocatorStrategy::WearLeveled);
        let mut live = Vec::new();
        let mut free = Vec::new();
        for (request, noise) in ops {
            if request || live.is_empty() {
                let served = alloc.request();
                if let Some(position) = free.iter().position(|f| *f == served) {
                    // Reuse: nothing on the free pool may have fewer writes.
                    let counts = alloc.write_counts();
                    let min = free
                        .iter()
                        .map(|f: &plim::RamAddr| counts[f.index()])
                        .min()
                        .expect("pool nonempty");
                    prop_assert_eq!(counts[served.index()], min);
                    free.swap_remove(position);
                } else {
                    prop_assert!(free.is_empty(), "fresh cell while the pool had cells");
                }
                for _ in 0..noise % 5 {
                    alloc.note_write(served);
                }
                live.push(served);
            } else {
                let addr = live.swap_remove(noise as usize % live.len());
                alloc.release(addr);
                free.push(addr);
            }
        }
    }

    #[test]
    fn compiled_programs_verify_under_every_schedule_and_strategy(
        spec in spec_strategy(),
    ) {
        let mig = random_logic(&spec);
        for schedule in ScheduleOrder::ALL {
            for strategy in AllocatorStrategy::ALL {
                let opts = CompilerOptions::new().schedule(schedule).allocator(strategy);
                let compiled = compile(&mig, opts);
                prop_assert!(
                    verify(&mig, &compiled, 2, spec.seed).is_ok(),
                    "{schedule:?} × {strategy:?} miscompiled"
                );
                // The allocator's write counters must agree with the program.
                prop_assert_eq!(
                    compiled.stats.max_cell_writes,
                    compiled.static_endurance().max_writes
                );
            }
        }
    }

    #[test]
    fn reusing_strategies_tie_on_rams_and_fresh_upper_bounds_them(
        spec in spec_strategy(),
    ) {
        let mig = random_logic(&spec);
        let fifo = compile(&mig, CompilerOptions::new());
        let fresh = compile(
            &mig,
            CompilerOptions::new().allocator(AllocatorStrategy::Fresh),
        );
        for strategy in [
            AllocatorStrategy::Lifo,
            AllocatorStrategy::WearLeveled,
            AllocatorStrategy::LifetimeBinned,
        ] {
            let other = compile(&mig, CompilerOptions::new().allocator(strategy));
            // A greedy reuse policy only changes *which* free cell is
            // served, never whether one is served: #R and #I must match
            // FIFO exactly.
            prop_assert_eq!(other.stats.rams, fifo.stats.rams, "{:?}", strategy);
            prop_assert_eq!(other.stats.instructions, fifo.stats.instructions, "{:?}", strategy);
        }
        prop_assert!(fifo.stats.rams <= fresh.stats.rams);
    }
}
