//! End-to-end integration: every benchmark-suite circuit is rewritten,
//! compiled (naive and smart), and executed on the PLiM machine simulator
//! against MIG simulation.

use mig::equiv::check_equivalence;
use mig::rewrite::rewrite;
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::{compile, verify::verify, CompilerOptions};

#[test]
fn every_benchmark_compiles_and_verifies_naive() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let compiled = compile(&mig, CompilerOptions::naive());
        verify(&mig, &compiled, 4, 0x5EED).unwrap_or_else(|e| panic!("{name} (naive): {e}"));
    }
}

#[test]
fn every_benchmark_compiles_and_verifies_smart() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let compiled = compile(&mig, CompilerOptions::new());
        verify(&mig, &compiled, 4, 0x5EED).unwrap_or_else(|e| panic!("{name} (smart): {e}"));
    }
}

#[test]
fn every_benchmark_survives_the_full_pipeline() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let rewritten = rewrite(&mig, 4);
        assert!(
            check_equivalence(&mig, &rewritten, 16, 0xDAC)
                .expect("same interface")
                .holds(),
            "{name}: rewriting changed the function"
        );
        let compiled = compile(&rewritten, CompilerOptions::new());
        verify(&rewritten, &compiled, 4, 0xDAC)
            .unwrap_or_else(|e| panic!("{name} (pipeline): {e}"));
    }
}

#[test]
fn rewriting_reduces_or_preserves_size_everywhere() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let rewritten = rewrite(&mig, 4);
        assert!(
            rewritten.num_majority_nodes() <= mig.num_majority_nodes(),
            "{name}: rewriting grew the graph ({} → {})",
            mig.num_majority_nodes(),
            rewritten.num_majority_nodes()
        );
    }
}

#[test]
fn rewriting_eliminates_multi_complement_nodes() {
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let rewritten = rewrite(&mig, 4);
        let stats = mig::analysis::MigStats::gather(&rewritten);
        // After Ω.I R→L(1–3) plus the final sweep, no node may keep two or
        // three complemented non-constant children... except nodes whose
        // complements point at constants; MigStats counts raw edges, so
        // recount precisely here.
        let mut multi = 0;
        for id in rewritten.majority_ids() {
            let children = rewritten.node(id).children().expect("majority");
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            if real >= 2 {
                multi += 1;
            }
        }
        assert_eq!(multi, 0, "{name}: {multi} multi-complement nodes remain");
        let _ = stats;
    }
}

#[test]
fn smart_compilation_never_uses_more_instructions() {
    for name in suite::ALL {
        let mig = rewrite(&suite::build(name, Scale::Reduced).expect(name), 4);
        let naive = compile(&mig, CompilerOptions::naive());
        let smart = compile(&mig, CompilerOptions::new());
        // Same translation cases, different order: instruction counts may
        // differ slightly through cache-hit luck, but never by much.
        let slack = naive.stats.instructions / 10 + 8;
        assert!(
            smart.stats.instructions <= naive.stats.instructions + slack,
            "{name}: smart {} vs naive {}",
            smart.stats.instructions,
            naive.stats.instructions
        );
    }
}

#[test]
fn programs_are_reusable_across_machine_runs() {
    // Running the same program twice on one machine (dirty cells) must give
    // the same answers — the compiler's init discipline guarantees it.
    let mig = suite::build("int2float", Scale::Reduced).unwrap();
    let compiled = compile(&mig, CompilerOptions::new());
    let mut machine = plim::Machine::new();
    let inputs_a = vec![true; mig.num_inputs()];
    let mut inputs_b = vec![false; mig.num_inputs()];
    inputs_b[3] = true;
    let first = machine.run(&compiled.program, &inputs_a).unwrap();
    let _ = machine.run(&compiled.program, &inputs_b).unwrap();
    let again = machine.run(&compiled.program, &inputs_a).unwrap();
    assert_eq!(first, again);
}

#[test]
fn table1_shape_holds_on_reduced_suite() {
    // The headline claims, at test scale: rewriting+compilation reduces
    // both total instructions and total RRAMs versus naive.
    let mut naive_i = 0usize;
    let mut naive_r = 0usize;
    let mut comp_i = 0usize;
    let mut comp_r = 0usize;
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect(name);
        let naive = compile(&mig, CompilerOptions::naive());
        let rewritten = rewrite(&mig, 4);
        let smart = compile(&rewritten, CompilerOptions::new());
        naive_i += naive.stats.instructions;
        naive_r += naive.stats.rams as usize;
        comp_i += smart.stats.instructions;
        comp_r += smart.stats.rams as usize;
    }
    assert!(
        comp_i < naive_i,
        "instructions must drop: {comp_i} vs {naive_i}"
    );
    assert!(comp_r < naive_r, "RRAMs must drop: {comp_r} vs {naive_r}");
}
