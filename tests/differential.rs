//! Differential properties of the batch-compilation pipeline: on random
//! MIGs, the naive and smart compilers and the batch driver must all agree
//! with the PLiM machine simulator, and a batch run must be byte-identical
//! to compiling the same specs serially.

use proptest::prelude::*;

use plim::Machine;
use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_compiler::batch::{
    format_row, measure, measure_suite, run_batch, Circuit, JobSpec, RewriteEffort,
};
use plim_compiler::{compile, verify::verify, CompilerOptions};
use plim_parallel::Parallelism;

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..10, 1usize..8, 10usize..120, any::<u64>()).prop_map(
        |(inputs, outputs, nodes, seed)| RandomLogicSpec::new(inputs, outputs, nodes, seed),
    )
}

/// Simulates `mig` and both programs on random input vectors and checks the
/// three agree bit-for-bit.
fn assert_programs_agree(
    mig: &mig::Mig,
    first: &plim_compiler::Rm3Program,
    second: &plim_compiler::Rm3Program,
    seed: u64,
) {
    let mut rng = mig::simulate::XorShift64::new(seed | 1);
    let mut m1 = Machine::new();
    let mut m2 = Machine::new();
    for _ in 0..8 {
        let inputs: Vec<bool> = (0..mig.num_inputs())
            .map(|_| rng.next_below(2) == 1)
            .collect();
        let golden = mig::simulate::evaluate(mig, &inputs);
        let out1 = m1.run(&first.program, &inputs).expect("first program runs");
        let out2 = m2
            .run(&second.program, &inputs)
            .expect("second program runs");
        assert_eq!(out1, golden, "first program disagrees with MIG simulation");
        assert_eq!(out2, golden, "second program disagrees with MIG simulation");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Naive, smart and batch-compiled programs all implement the same
    /// function as the source MIG (checked against the machine simulator).
    #[test]
    fn naive_smart_and_batch_agree_with_the_machine(
        spec in spec_strategy(),
        effort in 1usize..4,
    ) {
        let mig = random_logic(&spec);
        let naive = compile(&mig, CompilerOptions::naive());
        let smart = compile(&mig, CompilerOptions::new());
        prop_assert!(verify(&mig, &naive, 2, spec.seed).is_ok());
        prop_assert!(verify(&mig, &smart, 2, spec.seed).is_ok());
        assert_programs_agree(&mig, &naive, &smart, spec.seed);

        // The batch pipeline over the same (circuit, options) matrix must
        // reproduce the serial programs exactly.
        let circuits = [Circuit::new("random", mig.clone())];
        let specs = [
            JobSpec::new(0, RewriteEffort::Raw, CompilerOptions::naive()),
            JobSpec::new(0, RewriteEffort::Raw, CompilerOptions::new()),
            JobSpec::new(0, RewriteEffort::Effort(effort), CompilerOptions::new()),
        ];
        let report = run_batch(&circuits, &specs, Parallelism::Threads(4));
        prop_assert_eq!(report.jobs[0].compiled.program.to_string(), naive.program.to_string());
        prop_assert_eq!(report.jobs[1].compiled.program.to_string(), smart.program.to_string());
        prop_assert_eq!(report.jobs[0].compiled.stats, naive.stats);
        prop_assert_eq!(report.jobs[1].compiled.stats, smart.stats);

        // The rewritten job is byte-identical to serial compilation of the
        // rewritten graph, and agrees with the machine too.
        let rewritten = mig::rewrite::rewrite(&mig, effort);
        let serial_smart = compile(&rewritten, CompilerOptions::new());
        prop_assert_eq!(
            report.jobs[2].compiled.program.to_string(),
            serial_smart.program.to_string()
        );
        prop_assert!(verify(&rewritten, &report.jobs[2].compiled, 2, spec.seed).is_ok());
        assert_programs_agree(&rewritten, &report.jobs[2].compiled, &serial_smart, spec.seed);
    }

    /// A batch suite measurement is byte-identical (through the Table 1
    /// formatter) to the serial reference `measure`, independent of worker
    /// count.
    #[test]
    fn batch_rows_are_byte_identical_to_serial(
        spec in spec_strategy(),
        other in spec_strategy(),
        effort in 1usize..4,
        workers in 2usize..9,
    ) {
        let circuits = [
            Circuit::new("a", random_logic(&spec)),
            Circuit::new("b", random_logic(&other)),
        ];
        let run = measure_suite(&circuits, effort, Parallelism::Threads(workers));
        for circuit in &circuits {
            let serial = measure(&circuit.name, &circuit.mig, effort);
            let batched = run.rows.iter().find(|r| r.name == circuit.name).unwrap();
            prop_assert_eq!(format_row(&serial), format_row(batched));
        }
        // Three jobs per circuit, one shared rewrite pass per circuit.
        prop_assert_eq!(run.report.jobs.len(), 6);
        prop_assert_eq!(run.report.rewrites.len(), 2);
        prop_assert_eq!(run.report.rewrite_cache_hits, 2);
    }
}

/// Full-suite acceptance check: the batch pipeline reproduces serial rows
/// exactly, and its wall-clock speedup over serial compilation is reported.
/// The ≥ 2× speedup expected on ≥ 4 cores is only *asserted* when
/// `PLIM_REQUIRE_SPEEDUP=1` is set (debug builds on loaded or SMT-limited
/// CI runners make a hard wall-clock assertion flaky); the release-mode
/// demonstration lives in `cargo bench -p plim-bench`.
#[test]
fn batch_speedup_on_multicore_hosts() {
    use plim_benchmarks::suite::{self, Scale};
    let circuits: Vec<Circuit> = suite::ALL
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, Scale::Reduced).unwrap()))
        .collect();

    let clock = std::time::Instant::now();
    let serial_rows: Vec<_> = circuits
        .iter()
        .map(|c| measure(&c.name, &c.mig, 4))
        .collect();
    let serial = clock.elapsed();

    let run = measure_suite(&circuits, 4, Parallelism::Auto);
    let batch = run.report.elapsed;

    for (serial_row, batch_row) in serial_rows.iter().zip(&run.rows) {
        assert_eq!(format_row(serial_row), format_row(batch_row));
    }

    let cores = plim_parallel::available_threads();
    let speedup = serial.as_secs_f64() / batch.as_secs_f64().max(f64::EPSILON);
    eprintln!("suite compilation: serial {serial:.2?}, batch {batch:.2?} on {cores} cores ({speedup:.2}x)");
    if cores >= 4 && std::env::var_os("PLIM_REQUIRE_SPEEDUP").is_some_and(|v| v == "1") {
        assert!(
            speedup >= 2.0,
            "expected ≥ 2x speedup on {cores} cores, got {speedup:.2}x \
             (serial {serial:?}, batch {batch:?})"
        );
    }
}
