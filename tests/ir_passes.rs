//! Properties of the IR pass pipeline (`-O{0,1,2}`).
//!
//! Three invariants pin the lower → optimize → emit refactor:
//!
//! * **equivalence** — for random and suite MIGs, the optimized program
//!   verifies equivalent to the unoptimized one (and to the source MIG on
//!   the machine simulator) under every `schedule × allocator × opt-level`
//!   combination;
//! * **`-O0` byte-identity** — the default level reproduces the
//!   pre-refactor single-step translator exactly; golden listing/asm files
//!   captured from the pre-IR `plimc` pin this for two suite circuits, and
//!   the lowered-stream emit pins it structurally for random MIGs;
//! * **accounting** — the per-pass `#I` deltas reported by the
//!   `PassManager` sum to the end-to-end delta, and the emitted program
//!   matches the final IR instruction count.

use proptest::prelude::*;

use plim_benchmarks::random::{random_logic, RandomLogicSpec};
use plim_benchmarks::suite::{self, Scale};
use plim_compiler::ir;
use plim_compiler::{
    compile, compile_full, verify::verify, AllocatorStrategy, CompilerOptions, OptLevel,
    ScheduleOrder,
};

fn spec_strategy() -> impl Strategy<Value = RandomLogicSpec> {
    (2usize..10, 1usize..8, 10usize..100, any::<u64>()).prop_map(
        |(inputs, outputs, nodes, seed)| RandomLogicSpec::new(inputs, outputs, nodes, seed),
    )
}

/// Options sweep shared by the random and suite properties.
fn all_options(opt: OptLevel) -> impl Iterator<Item = CompilerOptions> {
    ScheduleOrder::ALL.into_iter().flat_map(move |schedule| {
        AllocatorStrategy::ALL.into_iter().map(move |allocator| {
            CompilerOptions::new()
                .schedule(schedule)
                .allocator(allocator)
                .opt(opt)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every optimized program is equivalent to the unoptimized one (same
    /// machine behavior, verified against the source MIG) under every
    /// schedule × allocator × opt-level combination, never costs
    /// instructions, and at `-O0` is byte-identical to the bare lowering.
    #[test]
    fn optimized_programs_verify_under_every_option_combination(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        for opt in OptLevel::ALL {
            for options in all_options(opt) {
                let compiled = compile(&mig, options);
                prop_assert!(
                    verify(&mig, &compiled, 2, spec.seed).is_ok(),
                    "{} fails verification", options.spec()
                );
                let baseline = compile(&mig, options.opt(OptLevel::O0));
                prop_assert!(
                    compiled.stats.instructions <= baseline.stats.instructions,
                    "{}: optimization added instructions", options.spec()
                );
                prop_assert!(compiled.stats.rams <= baseline.stats.rams);
                prop_assert!(compiled.stats.max_cell_writes <= baseline.stats.max_cell_writes);
            }
        }
    }

    /// `-O0` is the bare lowering: emitting the lowered IR with no pass
    /// run reproduces `compile` byte-for-byte (listing, asm, stats).
    #[test]
    fn o0_is_byte_identical_to_the_bare_lowering(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        for options in all_options(OptLevel::O0) {
            let compiled = compile(&mig, options);
            let lowered = ir::emit(&ir::lower(&mig, options));
            prop_assert_eq!(compiled.program.to_string(), lowered.program.to_string());
            prop_assert_eq!(
                plim::asm::write_asm(&compiled.program),
                plim::asm::write_asm(&lowered.program)
            );
            prop_assert_eq!(compiled.stats, lowered.stats);
        }
    }

    /// The `PassManager`'s per-pass `#I` deltas sum to the end-to-end
    /// delta between the lowered and the emitted program.
    #[test]
    fn per_pass_deltas_sum_to_the_end_to_end_delta(spec in spec_strategy()) {
        let mig = random_logic(&spec);
        for opt in OptLevel::ALL {
            let options = CompilerOptions::new().opt(opt);
            let lowered = ir::lower(&mig, options).num_instructions();
            let compilation = compile_full(&mig, options);
            let removed: usize = compilation.report.runs.iter().map(|run| run.removed()).sum();
            prop_assert_eq!(
                lowered - compilation.compiled.stats.instructions,
                removed,
                "per-pass deltas disagree with the end-to-end delta at {}",
                options.spec()
            );
            // Chained accounting: each run starts where the previous ended.
            let mut current = lowered;
            for run in &compilation.report.runs {
                prop_assert_eq!(run.instructions_before, current);
                current = run.instructions_after;
            }
            prop_assert_eq!(current, compilation.compiled.stats.instructions);
            prop_assert_eq!(compilation.report.total_removed(), removed);
            if opt == OptLevel::O0 {
                prop_assert!(compilation.report.runs.is_empty());
            }
        }
    }
}

/// `-O0` output is byte-identical to the pre-refactor `plimc`: the golden
/// listing and asm files were captured from the single-step translator
/// immediately before the IR split and are committed under `tests/golden/`.
#[test]
fn o0_matches_pre_refactor_goldens() {
    // This test is homed on the plim-compiler package, so golden paths are
    // relative to its manifest directory.
    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
    for circuit in ["dec", "int2float"] {
        let mig = suite::build(circuit, Scale::Reduced).expect("suite circuit");
        let optimized = mig::rewrite::rewrite(&mig, 4);
        let compiled = compile(&optimized, CompilerOptions::new());
        let listing = std::fs::read_to_string(format!("{golden}/{circuit}.O0.listing"))
            .expect("committed golden listing");
        assert_eq!(
            compiled.program.to_string(),
            listing,
            "{circuit}: -O0 listing diverged from the pre-refactor compiler"
        );
        let asm = std::fs::read_to_string(format!("{golden}/{circuit}.O0.asm"))
            .expect("committed golden asm");
        assert_eq!(
            plim::asm::write_asm(&compiled.program),
            asm,
            "{circuit}: -O0 asm diverged from the pre-refactor compiler"
        );
    }
}

/// The reduced suite under `-O2`: verified equivalent everywhere, at least
/// five circuits strictly below their `-O0` instruction count, and no
/// circuit worse in `#I`, `#R`, or max-cell-writes — the acceptance bar of
/// the pass pipeline.
#[test]
fn o2_strictly_improves_part_of_the_suite_without_regressions() {
    let mut strictly_better = 0;
    for name in suite::ALL {
        let mig = suite::build(name, Scale::Reduced).expect("suite circuit");
        let optimized = mig::rewrite::rewrite(&mig, 4);
        let baseline = compile(&optimized, CompilerOptions::new());
        let o2 = compile(&optimized, CompilerOptions::new().opt(OptLevel::O2));
        verify(&optimized, &o2, 2, 0xDAC2016).expect("optimized program verifies");
        assert!(
            o2.stats.instructions <= baseline.stats.instructions,
            "{name}: -O2 added instructions"
        );
        assert!(
            o2.stats.rams <= baseline.stats.rams,
            "{name}: -O2 added cells"
        );
        assert!(
            o2.stats.max_cell_writes <= baseline.stats.max_cell_writes,
            "{name}: -O2 wore cells harder"
        );
        if o2.stats.instructions < baseline.stats.instructions {
            strictly_better += 1;
        }
    }
    assert!(
        strictly_better >= 5,
        "-O2 strictly lowered #I on only {strictly_better} of {} circuits",
        suite::ALL.len()
    );
}

/// The IR dump is stable, self-consistent, and annotated: one instruction
/// per line with def/use, matching the emitted instruction count.
#[test]
fn ir_dump_lists_every_instruction_with_def_use() {
    let mig = suite::build("dec", Scale::Reduced).expect("suite circuit");
    let optimized = mig::rewrite::rewrite(&mig, 4);
    let compilation = compile_full(&optimized, CompilerOptions::new().opt(OptLevel::O2));
    let dump = compilation.ir.dump();
    let instruction_lines = dump
        .lines()
        .filter(|line| line.contains("rm3(") && line.contains("def %"))
        .count();
    assert_eq!(instruction_lines, compilation.compiled.stats.instructions);
    assert!(dump.starts_with(".ir v1\n"));
    assert!(dump.contains(".output"));
}
