//! Working with external logic descriptions: parse an MIG from its textual
//! interchange format, optimize and compile it, inspect the program, and
//! export the optimized graph to Graphviz.
//!
//! Run with `cargo run -p plim-compiler --example custom_logic`.

use mig::io::{parse_mig, write_mig};
use mig::rewrite::rewrite;
use plim_compiler::{compile, verify::verify, CompilerOptions};

/// A 2-bit magnitude comparator (`a > b`) in the MIG text format. The
/// structure is deliberately AIG-ish with De Morgan inverter pairs —
/// exactly the redundancy the rewriting pass removes.
const SOURCE: &str = "
# 2-bit magnitude comparator: gt = (a1 > b1) or (a1 = b1 and a0 > b0)
inputs a0 a1 b0 b1
hi   = maj(0, a1, !b1)     # a1 and not b1
lo1  = maj(0, !a1, b1)     # b1 and not a1
eqhi = maj(0, !hi, !lo1)   # a1 = b1 as not(hi) and not(lo1)
lo   = maj(0, a0, !b0)     # a0 and not b0
both = maj(0, eqhi, lo)
gt   = maj(1, hi, both)
output gt = gt
";

fn main() {
    let mig = parse_mig(SOURCE).expect("well-formed MIG source");
    println!(
        "parsed {} majority nodes over {} inputs",
        mig.num_majority_nodes(),
        mig.num_inputs()
    );

    let optimized = rewrite(&mig, 4);
    println!(
        "after rewriting: {} nodes (round-trip below)",
        optimized.num_majority_nodes()
    );
    print!("{}", write_mig(&optimized));

    let compiled = compile(&optimized, CompilerOptions::new());
    verify(&optimized, &compiled, 4, 0).expect("compilation is correct");
    println!(
        "\ncompiled to {} instructions / {} RRAMs:",
        compiled.stats.instructions, compiled.stats.rams
    );
    print!("{}", compiled.program);

    println!("\nGraphviz of the optimized MIG (pipe into `dot -Tsvg`):");
    print!("{}", mig::dot::to_dot(&optimized));
}
