//! Endurance analysis: RRAM cells tolerate a bounded number of writes, so
//! the allocator's reuse policy decides how long the array survives a
//! workload. This example compiles a 16-bit adder with the FIFO (paper),
//! LIFO and fresh-only allocators, executes a batch of additions on each,
//! and compares the wear profiles.
//!
//! Run with `cargo run --release -p plim-compiler --example adder_endurance`.

use mig::rewrite::rewrite;
use plim::Machine;
use plim_benchmarks::arith::adder;
use plim_compiler::{compile, AllocatorStrategy, CompilerOptions};

/// A commodity RRAM cell endures ~10^6 writes.
const CELL_ENDURANCE: u64 = 1_000_000;

fn main() {
    let mig = rewrite(&adder(16).levelized(), 4);

    println!(
        "{:<8} {:>6} {:>8} {:>10} {:>10} {:>12} {:>14}",
        "policy", "#R", "writes", "max/cell", "stddev", "imbalance", "lifetime(runs)"
    );
    for (name, strategy) in [
        ("fifo", AllocatorStrategy::Fifo),
        ("lifo", AllocatorStrategy::Lifo),
        ("fresh", AllocatorStrategy::Fresh),
    ] {
        let compiled = compile(&mig, CompilerOptions::new().allocator(strategy));

        // Execute a batch of random additions; wear accumulates in the
        // machine's per-cell write counters.
        let mut machine = Machine::new();
        let mut rng = mig::simulate::XorShift64::new(2016);
        for _ in 0..100 {
            let inputs: Vec<bool> = (0..mig.num_inputs()).map(|_| rng.next_bool()).collect();
            machine
                .run(&compiled.program, &inputs)
                .expect("execution succeeds");
        }
        let endurance = machine.endurance();
        let per_run = endurance.max_writes / 100;
        println!(
            "{:<8} {:>6} {:>8} {:>10} {:>10.2} {:>12.2} {:>14}",
            name,
            compiled.stats.rams,
            endurance.total_writes,
            endurance.max_writes,
            endurance.stddev_writes,
            endurance.imbalance(),
            CELL_ENDURANCE / per_run.max(1),
        );
    }
    println!();
    println!("fifo/lifo reuse released cells (small #R); fresh never reuses (large #R");
    println!("but minimal per-cell wear). The lifetime column estimates how many");
    println!("program executions the array survives at 10^6 writes per cell.");
    println!();
    println!("For a fixed program the write pattern is deterministic, so which reuse");
    println!("policy concentrates wear is circuit-dependent (compare the `max` and");
    println!("`priority` rows of the ablation harness, where FIFO wins). The paper");
    println!("adopts FIFO so that across a *varying* workload every cell takes turns");
    println!("resting — the space/lifetime trade-off is the row to take away here.");
}
