//! Quickstart: build a Boolean function as an MIG, optimize it for the
//! PLiM architecture, compile it to RM3 instructions, and execute the
//! program on the PLiM machine simulator.
//!
//! Run with `cargo run -p plim-compiler --example quickstart`.

use mig::rewrite::rewrite_with_stats;
use mig::Mig;
use plim::Machine;
use plim_compiler::{compile, verify::verify, CompilerOptions};

fn main() {
    // 1. Describe the function: a full adder.
    let mut mig = Mig::new();
    let a = mig.add_input("a");
    let b = mig.add_input("b");
    let cin = mig.add_input("cin");
    let sum = mig.xor3(a, b, cin);
    let cout = mig.maj(a, b, cin);
    mig.add_output("sum", sum);
    mig.add_output("cout", cout);
    println!(
        "built a full adder: {} majority nodes, depth {}",
        mig.num_majority_nodes(),
        mig.depth()
    );

    // 2. Rewrite the MIG for the PLiM cost model (Algorithm 1, effort 4).
    let (optimized, stats) = rewrite_with_stats(&mig, 4);
    println!(
        "rewriting: {} → {} nodes ({} inverter flips, {} distributivity applications)",
        stats.nodes_before, stats.nodes_after, stats.inverter_flips, stats.distributivity_applied
    );

    // 3. Compile to a PLiM program (Algorithm 2 with smart translation).
    let compiled = compile(&optimized, CompilerOptions::new());
    println!(
        "compiled: {} RM3 instructions using {} work RRAMs\n",
        compiled.stats.instructions, compiled.stats.rams
    );
    println!("program listing (RM3(A, B, Z): Z ← ⟨A B̄ Z⟩):");
    print!("{}", compiled.program);

    // 4. Verify the program against the MIG on the machine simulator.
    verify(&optimized, &compiled, 4, 0).expect("compiled program matches the MIG");
    println!("\nverified: program output matches MIG simulation on all 8 input patterns");

    // 5. Execute one addition: 1 + 1 + 0 = 10₂.
    let mut machine = Machine::new();
    let outputs = machine
        .run(&compiled.program, &[true, true, false])
        .expect("execution succeeds");
    println!(
        "run a=1 b=1 cin=0 → sum={} cout={} ({} write cycles)",
        outputs[0] as u8,
        outputs[1] as u8,
        machine.cycles()
    );
}
