//! In-memory majority voting — the workload the paper's introduction
//! motivates: fault-tolerant systems vote over replicated results, and a
//! PLiM array can do so without moving data to a CPU.
//!
//! This example builds an N-way majority voter, runs the full pipeline
//! (rewrite → compile → verify), and then simulates a triple-modular-
//! redundancy scenario where one replica starts glitching.
//!
//! Run with `cargo run --release -p plim-compiler --example voter_pipeline`.

use mig::rewrite::rewrite;
use plim::Machine;
use plim_benchmarks::control::voter;
use plim_compiler::{compile, verify::verify, CompilerOptions};

fn main() {
    // A 15-way voter (e.g. five sensors, triplicated).
    let replicas = 15;
    let mig = voter(replicas).levelized();
    let optimized = rewrite(&mig, 4);
    let compiled = compile(&optimized, CompilerOptions::new());
    println!(
        "{replicas}-way voter: {} nodes → {} RM3 instructions, {} RRAMs",
        optimized.num_majority_nodes(),
        compiled.stats.instructions,
        compiled.stats.rams
    );
    verify(&optimized, &compiled, 8, 7).expect("voter compiles correctly");
    println!("verified against MIG simulation (exhaustive over {replicas} inputs)\n");

    // TMR scenario: replicas should agree; inject faults into a minority
    // and a majority of them and watch the vote.
    let mut machine = Machine::new();
    for faulty in [0, 3, 7, 8, 12] {
        let mut inputs = vec![true; replicas];
        for bit in inputs.iter_mut().take(faulty) {
            *bit = false;
        }
        let vote = machine
            .run(&compiled.program, &inputs)
            .expect("execution succeeds")[0];
        println!(
            "{faulty:>2} of {replicas} replicas faulty → vote = {} ({})",
            vote as u8,
            if vote { "masked" } else { "outvoted" }
        );
    }
    println!(
        "\ntotal in-memory write cycles across the scenario: {}",
        machine.cycles()
    );
}
