//! # mig — Majority-Inverter Graphs
//!
//! A Majority-Inverter Graph (MIG) is a directed acyclic graph whose only
//! logic primitives are the 3-input majority function `⟨x y z⟩ = xy ∨ xz ∨ yz`
//! and edge inverters. MIGs subsume And-Or-Inverter Graphs (fixing one
//! majority input to a constant yields AND/OR) and come with a complete
//! Boolean algebra Ω that permits reaching any equivalent MIG structure by
//! axiomatic rewriting.
//!
//! This crate provides the MIG substrate used by the PLiM compiler
//! reproduction (Soeken et al., *An MIG-based Compiler for Programmable
//! Logic-in-Memory Architectures*, DAC 2016):
//!
//! * [`Mig`] — the graph: structural hashing, creation-time Ω.M
//!   simplification, logic-builder helpers;
//! * [`rewrite`] — the paper's Algorithm 1: size rewriting plus
//!   complement-edge redistribution targeted at the RM3 instruction;
//! * [`arena`] — the in-place rewriting engine behind [`rewrite::rewrite`]:
//!   a reusable arena with incremental re-strashing, generation-marked dead
//!   nodes, and a single end-of-rewrite compaction;
//! * [`simulate`] / [`equiv`] — bit-parallel simulation, truth tables, and
//!   equivalence checking;
//! * [`analysis`] — structural statistics (complement profile, depth);
//! * [`canon`] — canonical structural hashing (order-independent,
//!   Ω.I-normalized), the content-address of the compile-service cache;
//! * [`io`] / [`dot`] — a textual interchange format and Graphviz export.
//!
//! ## Quick example
//!
//! ```
//! use mig::{Mig, rewrite::rewrite, equiv::check_equivalence};
//!
//! let mut mig = Mig::new();
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let c = mig.add_input("c");
//! // An AOIG-style construction with redundant inverters.
//! let f = mig.maj(!a, !b, c);
//! mig.add_output("f", f);
//!
//! let optimized = rewrite(&mig, 4);
//! assert!(check_equivalence(&mig, &optimized, 16, 0)?.holds());
//! # Ok::<(), mig::equiv::InterfaceMismatch>(())
//! ```

pub mod aiger;
pub mod algebra;
pub mod analysis;
pub mod arena;
pub mod canon;
pub mod cut;
pub mod dot;
pub mod equiv;
mod graph;
pub mod io;
mod node;
pub mod resynth;
pub mod rewrite;
mod signal;
pub mod simulate;

pub use graph::Mig;
pub use node::MigNode;
pub use signal::{NodeId, Signal};
