//! Cut-based majority resynthesis.
//!
//! The axiomatic rewriting of [`crate::rewrite`] is purely structural: it
//! never discovers that a multi-node cone *functionally* equals a single
//! majority gate. This pass does — it enumerates 3-leaf cuts, matches each
//! cone's truth table against the NPN class of the majority function, and
//! collapses matching fanout-free cones into one `⟨· · ·⟩` node.
//!
//! This is the step that turns the paper's Fig. 1 AOIG-transposed majority
//! (five AND/OR nodes, depth 3) into the single majority node of Fig. 1(b).
//! It generalizes the paper's "fully exploiting the majority functionality"
//! remark into an automatic procedure; `rewrite_extended` interleaves it
//! with Algorithm 1.

use crate::cut::{cone_function, enumerate_cuts};
use crate::graph::Mig;
use crate::node::MigNode;
use crate::rewrite::{self, RewriteStats};
use crate::signal::{NodeId, Signal};
use crate::simulate::TruthTable;

/// A discovered majority match: `root = ⟨l₀^c₀ l₁^c₁ l₂^c₂⟩ ^ out`.
#[derive(Debug, Clone, Copy)]
struct MajorityMatch {
    leaves: [NodeId; 3],
    complements: [bool; 3],
    output_complement: bool,
    /// Interior nodes that disappear if the cone is replaced.
    gain: usize,
}

/// Tests whether `function` (a 3-variable table in the low 8 bits) is a
/// majority up to input/output complementation, returning the complement
/// assignment.
fn match_majority(function: u64) -> Option<([bool; 3], bool)> {
    let f = function & 0xFF;
    let vars = [
        TruthTable::variable(3, 0).blocks()[0],
        TruthTable::variable(3, 1).blocks()[0],
        TruthTable::variable(3, 2).blocks()[0],
    ];
    for mask in 0..8u32 {
        let w = |i: usize| {
            if mask >> i & 1 == 1 {
                !vars[i]
            } else {
                vars[i]
            }
        };
        let (a, b, c) = (w(0), w(1), w(2));
        let maj = ((a & b) | (a & c) | (b & c)) & 0xFF;
        if f == maj {
            return Some((
                [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1],
                false,
            ));
        }
        if f == !maj & 0xFF {
            return Some((
                [mask & 1 == 1, mask >> 1 & 1 == 1, mask >> 2 & 1 == 1],
                true,
            ));
        }
    }
    None
}

/// Counts the interior nodes of the cone (nodes strictly between the cut
/// leaves and the root, plus the root) and checks that all non-root
/// interior nodes are fanout-free (used only inside the cone).
fn cone_gain(mig: &Mig, root: NodeId, leaves: &[NodeId], fanout: &[u32]) -> Option<usize> {
    let mut interior = Vec::new();
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        if id.is_constant() || leaves.contains(&id) || interior.contains(&id) {
            continue;
        }
        let MigNode::Majority(children) = mig.node(id) else {
            return None;
        };
        interior.push(id);
        stack.extend(children.iter().map(|c| c.node()));
    }
    // A non-root interior node may be shared *within* the cone, but not
    // referenced from outside it — otherwise the replacement duplicates
    // logic instead of removing it.
    let mut internal_refs: Vec<u32> = vec![0; interior.len()];
    for &id in &interior {
        let MigNode::Majority(children) = mig.node(id) else {
            unreachable!("interior nodes are majorities");
        };
        for child in children {
            if let Some(pos) = interior.iter().position(|&n| n == child.node()) {
                internal_refs[pos] += 1;
            }
        }
    }
    for (pos, &id) in interior.iter().enumerate() {
        if id != root && fanout[id.index()] != internal_refs[pos] {
            return None;
        }
    }
    // Replacing `interior` nodes with one majority gains `len - 1`.
    (interior.len() > 1).then(|| interior.len() - 1)
}

/// One majority-resynthesis pass. Returns the new graph and the number of
/// collapsed cones.
pub fn pass_majority_resynthesis(mig: &Mig) -> (Mig, usize) {
    let cuts = enumerate_cuts(mig, 3, 12);
    let fanout = mig.fanout_counts();

    // Select the best match per node, bottom-up.
    let mut matches: Vec<Option<MajorityMatch>> = vec![None; mig.len()];
    for id in mig.majority_ids() {
        let mut best: Option<MajorityMatch> = None;
        for cut in cuts.of(id) {
            if cut.size() != 3 || cut.leaves() == [id] {
                continue;
            }
            let Some(function) = cone_function(mig, id, cut) else {
                continue;
            };
            let Some((complements, output_complement)) = match_majority(function) else {
                continue;
            };
            let Some(gain) = cone_gain(mig, id, cut.leaves(), &fanout) else {
                continue;
            };
            let leaves = [cut.leaves()[0], cut.leaves()[1], cut.leaves()[2]];
            let candidate = MajorityMatch {
                leaves,
                complements,
                output_complement,
                gain,
            };
            if best.is_none_or(|b| candidate.gain > b.gain) {
                best = Some(candidate);
            }
        }
        matches[id.index()] = best;
    }

    // Rebuild, applying matches at their roots.
    let mut new = Mig::with_capacity(mig.num_majority_nodes());
    let mut map: Vec<Option<Signal>> = vec![None; mig.len()];
    map[0] = Some(Signal::FALSE);
    for (k, &input) in mig.inputs().iter().enumerate() {
        map[input.index()] = Some(new.add_input(mig.input_name(k).to_string()));
    }
    let mut applied = 0;
    for id in mig.node_ids() {
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };
        let mapped = if let Some(m) = matches[id.index()] {
            // Leaves are always mapped already: they precede the root.
            let leaf = |k: usize| {
                map[m.leaves[k].index()]
                    .expect("leaves precede the root")
                    .complement_if(m.complements[k])
            };
            applied += 1;
            new.maj(leaf(0), leaf(1), leaf(2))
                .complement_if(m.output_complement)
        } else {
            let c: Vec<Signal> = children
                .iter()
                .map(|s| {
                    map[s.node().index()]
                        .expect("children precede parents")
                        .complement_if(s.is_complemented())
                })
                .collect();
            new.maj(c[0], c[1], c[2])
        };
        map[id.index()] = Some(mapped);
    }
    for (name, signal) in mig.outputs() {
        let mapped = map[signal.node().index()]
            .expect("outputs reachable")
            .complement_if(signal.is_complemented());
        new.add_output(name.clone(), mapped);
    }
    (new.cleaned(), applied)
}

/// Extended rewriting: Algorithm 1 cycles interleaved with majority
/// resynthesis. Strictly more powerful than [`rewrite::rewrite`] on graphs
/// that contain AOIG-expanded majorities (adder carry chains, voters, …).
pub fn rewrite_extended(mig: &Mig, effort: usize) -> Mig {
    rewrite_extended_with_stats(mig, effort).0
}

/// Like [`rewrite_extended`], also returning statistics (resynthesis
/// applications are added to `distributivity_applied`… no: reported in the
/// second tuple element).
pub fn rewrite_extended_with_stats(mig: &Mig, effort: usize) -> (Mig, RewriteStats, usize) {
    let mut current = mig.cleaned();
    let mut total_stats = RewriteStats {
        nodes_before: mig.num_majority_nodes(),
        ..RewriteStats::default()
    };
    let mut resynthesized = 0;
    for _ in 0..effort.max(1) {
        let size_before = current.num_majority_nodes();
        let (next, stats) = rewrite::rewrite_with_stats(&current, 1);
        total_stats.cycles += stats.cycles;
        total_stats.distributivity_applied += stats.distributivity_applied;
        total_stats.associativity_applied += stats.associativity_applied;
        total_stats.inverter_flips += stats.inverter_flips;
        current = next;
        let (next, applied) = pass_majority_resynthesis(&current);
        resynthesized += applied;
        current = next;
        total_stats
            .size_per_cycle
            .push(current.num_majority_nodes());
        if applied == 0 && current.num_majority_nodes() == size_before {
            break;
        }
    }
    total_stats.nodes_after = current.num_majority_nodes();
    (current, total_stats, resynthesized)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::check_equivalence;

    fn aoig_majority() -> Mig {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let xy = mig.and(x, y);
        let xz = mig.and(x, z);
        let yz = mig.and(y, z);
        let or1 = mig.or(xy, xz);
        let top = mig.or(or1, yz);
        mig.add_output("f", top);
        mig
    }

    #[test]
    fn match_majority_recognizes_all_polarities() {
        let vars = [
            TruthTable::variable(3, 0).blocks()[0],
            TruthTable::variable(3, 1).blocks()[0],
            TruthTable::variable(3, 2).blocks()[0],
        ];
        let maj = (vars[0] & vars[1]) | (vars[0] & vars[2]) | (vars[1] & vars[2]);
        assert_eq!(match_majority(maj), Some(([false; 3], false)));
        assert_eq!(match_majority(!maj & 0xFF), Some(([false; 3], true)));
        let flipped = (!vars[0] & vars[1]) | (!vars[0] & vars[2]) | (vars[1] & vars[2]);
        let m = match_majority(flipped & 0xFF).expect("majority with x̄");
        assert!(m.0[0]);
        // AND is not a majority of three variables.
        assert_eq!(match_majority(vars[0] & vars[1] & vars[2]), None);
    }

    #[test]
    fn fig1_aoig_collapses_to_single_node() {
        let mig = aoig_majority();
        assert_eq!(mig.num_majority_nodes(), 5);
        let (collapsed, applied) = pass_majority_resynthesis(&mig);
        assert!(applied >= 1);
        assert_eq!(collapsed.num_majority_nodes(), 1);
        assert_eq!(collapsed.depth(), 1);
        assert!(check_equivalence(&mig, &collapsed, 8, 1).unwrap().holds());
    }

    #[test]
    fn full_adder_carry_collapses_inside_extended_rewrite() {
        // carry = (a ∧ b) ∨ (c ∧ (a ⊕ b)) — functionally ⟨a b c⟩.
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let ab = mig.and(a, b);
        let axb = {
            let or = mig.or(a, b);
            mig.and(or, !ab)
        };
        let cx = mig.and(c, axb);
        let carry = mig.or(ab, cx);
        mig.add_output("cout", carry);
        let optimized = rewrite_extended(&mig, 4);
        assert!(check_equivalence(&mig, &optimized, 8, 2).unwrap().holds());
        assert_eq!(
            optimized.num_majority_nodes(),
            1,
            "carry must collapse to ⟨a b c⟩"
        );
    }

    #[test]
    fn shared_interior_nodes_are_not_duplicated() {
        let mut mig = aoig_majority();
        // Expose an interior node as an extra output: the cone is no longer
        // fanout-free, so the collapse must keep the graph consistent.
        let interior = mig.majority_ids().next().expect("has majority nodes");
        mig.add_output("tap", Signal::new(interior, false));
        let (collapsed, _) = pass_majority_resynthesis(&mig);
        assert!(check_equivalence(&mig, &collapsed, 8, 3).unwrap().holds());
        assert!(collapsed.num_majority_nodes() <= mig.num_majority_nodes());
    }

    #[test]
    fn carry_chain_collapses_to_majority_chain() {
        // A pure AOIG carry chain (no sum outputs): every per-bit cone is
        // fanout-free and must collapse to one majority per bit.
        let bits = 4;
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", bits);
        let ys = mig.add_inputs("y", bits);
        let cin = mig.add_input("cin");
        let mut carry = cin;
        for i in 0..bits {
            let ab = mig.and(xs[i], ys[i]);
            let axb = {
                let or = mig.or(xs[i], ys[i]);
                mig.and(or, !ab)
            };
            let cx = mig.and(carry, axb);
            carry = mig.or(ab, cx);
        }
        mig.add_output("cout", carry);
        let (optimized, stats, resynth) = rewrite_extended_with_stats(&mig, 4);
        assert!(check_equivalence(&mig, &optimized, 16, 4).unwrap().holds());
        assert_eq!(
            optimized.num_majority_nodes(),
            bits,
            "one majority per carry stage"
        );
        assert!(resynth >= bits, "every stage must be resynthesized");
        assert!(stats.nodes_after <= stats.nodes_before);
    }

    #[test]
    fn extended_rewrite_never_grows_shared_structures() {
        // A full AOIG ripple adder: the xor tower is shared between sum and
        // carry, so the carry cones are *not* fanout-free. Resynthesis must
        // leave the sharing intact (no duplication, no growth).
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 4);
        let ys = mig.add_inputs("y", 4);
        let mut carry = Signal::FALSE;
        for i in 0..4 {
            let axb = {
                let or = mig.or(xs[i], ys[i]);
                let and = mig.and(xs[i], ys[i]);
                mig.and(or, !and)
            };
            let sum = {
                let or = mig.or(axb, carry);
                let and = mig.and(axb, carry);
                mig.and(or, !and)
            };
            let ab = mig.and(xs[i], ys[i]);
            let cx = mig.and(carry, axb);
            carry = mig.or(ab, cx);
            mig.add_output(format!("s{i}"), sum);
        }
        mig.add_output("cout", carry);
        let (optimized, stats, _) = rewrite_extended_with_stats(&mig, 4);
        assert!(check_equivalence(&mig, &optimized, 16, 4).unwrap().holds());
        assert!(optimized.num_majority_nodes() <= mig.num_majority_nodes());
        assert!(stats.nodes_after <= stats.nodes_before);
    }

    #[test]
    fn resynthesis_is_idempotent_at_fixpoint() {
        let mig = aoig_majority();
        let (once, first) = pass_majority_resynthesis(&mig);
        assert!(first > 0);
        let (twice, second) = pass_majority_resynthesis(&once);
        assert_eq!(second, 0);
        assert_eq!(twice.num_majority_nodes(), once.num_majority_nodes());
    }
}
