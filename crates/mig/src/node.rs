//! MIG nodes.

use crate::signal::Signal;

/// A node of the Majority-Inverter Graph.
///
/// There are three kinds of nodes:
///
/// * the **constant** node (always node 0), representing Boolean 0;
/// * **primary inputs**, identified by their input index;
/// * **majority nodes**, computing the majority-of-three of their children
///   (taking edge complement attributes into account).
///
/// Nodes are created through [`crate::Mig`] and are immutable afterwards; all
/// restructuring happens by building new nodes and remapping references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MigNode {
    /// The constant-zero node.
    Constant,
    /// A primary input with its index into the graph's input list.
    Input(u32),
    /// A majority-of-three node with its three child signals.
    ///
    /// Children are stored in canonically sorted order (ascending raw signal
    /// value), which makes structural hashing independent of argument order —
    /// this bakes the commutativity axiom Ω.C into the representation.
    Majority([Signal; 3]),
}

impl MigNode {
    /// Returns the children of a majority node, or `None` otherwise.
    #[inline]
    pub fn children(&self) -> Option<&[Signal; 3]> {
        match self {
            MigNode::Majority(children) => Some(children),
            _ => None,
        }
    }

    /// Whether this node is a majority gate.
    #[inline]
    pub fn is_majority(&self) -> bool {
        matches!(self, MigNode::Majority(_))
    }

    /// Whether this node is a primary input.
    #[inline]
    pub fn is_input(&self) -> bool {
        matches!(self, MigNode::Input(_))
    }

    /// Whether this node is the constant node.
    #[inline]
    pub fn is_constant(&self) -> bool {
        matches!(self, MigNode::Constant)
    }

    /// Number of complemented child edges (0 for non-majority nodes).
    ///
    /// This is the key cost metric of the PLiM translation: the RM3
    /// instruction natively consumes exactly one complemented operand, so
    /// majority nodes with two or three complemented children require extra
    /// instructions and RRAMs.
    #[inline]
    pub fn complemented_child_count(&self) -> usize {
        match self {
            MigNode::Majority(children) => children.iter().filter(|c| c.is_complemented()).count(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::NodeId;

    fn sig(index: usize, compl: bool) -> Signal {
        Signal::new(NodeId::from_index(index), compl)
    }

    #[test]
    fn kind_predicates() {
        assert!(MigNode::Constant.is_constant());
        assert!(MigNode::Input(0).is_input());
        let n = MigNode::Majority([sig(1, false), sig(2, false), sig(3, false)]);
        assert!(n.is_majority());
        assert!(!n.is_input());
        assert!(!n.is_constant());
    }

    #[test]
    fn children_accessor() {
        let children = [sig(1, false), sig(2, true), sig(3, false)];
        let n = MigNode::Majority(children);
        assert_eq!(n.children(), Some(&children));
        assert_eq!(MigNode::Constant.children(), None);
        assert_eq!(MigNode::Input(1).children(), None);
    }

    #[test]
    fn complement_counting() {
        let n0 = MigNode::Majority([sig(1, false), sig(2, false), sig(3, false)]);
        let n1 = MigNode::Majority([sig(1, true), sig(2, false), sig(3, false)]);
        let n2 = MigNode::Majority([sig(1, true), sig(2, true), sig(3, false)]);
        let n3 = MigNode::Majority([sig(1, true), sig(2, true), sig(3, true)]);
        assert_eq!(n0.complemented_child_count(), 0);
        assert_eq!(n1.complemented_child_count(), 1);
        assert_eq!(n2.complemented_child_count(), 2);
        assert_eq!(n3.complemented_child_count(), 3);
        assert_eq!(MigNode::Input(0).complemented_child_count(), 0);
    }
}
