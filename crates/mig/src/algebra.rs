//! The MIG Boolean algebra Ω.
//!
//! The five primitive axioms of the MIG algebra (Amarù et al.):
//!
//! * **Ω.C — commutativity**: `⟨x y z⟩ = ⟨y x z⟩ = ⟨z y x⟩`.
//!   Baked into the representation: children are canonically sorted.
//! * **Ω.M — majority**: `⟨x x z⟩ = x` and `⟨x x̄ z⟩ = z`.
//!   Applied at node-creation time by [`crate::Mig::maj`].
//! * **Ω.A — associativity**: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`.
//! * **Ω.D — distributivity**: `⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩`.
//!   Applied right-to-left it saves one node.
//! * **Ω.I — inverter propagation**: `⟨x y z⟩ = ¬⟨x̄ ȳ z̄⟩`.
//!
//! This module provides the pattern-matching helpers shared by the rewriting
//! passes in [`crate::rewrite`], plus word-level reference implementations of
//! each axiom used by the test-suite to validate the rewrites semantically.

use crate::signal::Signal;

/// Result of matching the shared pair required by distributivity R→L on two
/// child triples: `⟨x y u⟩` and `⟨x y v⟩` share the pair `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPair {
    /// The two signals common to both triples.
    pub common: [Signal; 2],
    /// The non-shared signal of the first triple (`u`).
    pub rest_a: Signal,
    /// The non-shared signal of the second triple (`v`).
    pub rest_b: Signal,
}

/// Finds two signals shared between the (sorted) child triples `a` and `b`,
/// as required for the right-to-left distributivity rewrite
/// `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩`.
///
/// Signals must match exactly, including complement attributes. Returns
/// `None` if fewer than two signals are shared. When all three are shared
/// the triples are identical (strashing would have merged them), so this
/// situation cannot arise for distinct nodes.
pub fn find_shared_pair(a: &[Signal; 3], b: &[Signal; 3]) -> Option<SharedPair> {
    // Child triples are small; a quadratic scan beats anything clever.
    for i in 0..3 {
        for j in (i + 1)..3 {
            let x = a[i];
            let y = a[j];
            if let Some((bi, bj)) = find_two(b, x, y) {
                let rest_a = a[3 - i - j];
                let rest_b = b[3 - bi - bj];
                return Some(SharedPair {
                    common: [x, y],
                    rest_a,
                    rest_b,
                });
            }
        }
    }
    None
}

/// Pushes a complement through a majority node by Ω.I:
/// `!⟨a b c⟩ = ⟨ā b̄ c̄⟩`.
#[inline]
pub fn invert_triple(t: &[Signal; 3]) -> [Signal; 3] {
    [!t[0], !t[1], !t[2]]
}

/// Whether `⟨a b c⟩` simplifies without creating a node, i.e. the majority
/// axiom Ω.M applies because two of the signals reference the same node
/// (equal or complementary).
#[inline]
pub fn trivial_triple(a: Signal, b: Signal, c: Signal) -> bool {
    a.node() == b.node() || a.node() == c.node() || b.node() == c.node()
}

fn find_two(b: &[Signal; 3], x: Signal, y: Signal) -> Option<(usize, usize)> {
    let ix = b.iter().position(|&s| s == x)?;
    let iy = b.iter().enumerate().position(|(k, &s)| k != ix && s == y)?;
    Some((ix.min(iy), ix.max(iy)))
}

/// Finds a signal shared between triple `a` and triple `b` (exact match,
/// including complement), as required by associativity. Returns the index in
/// each triple.
pub fn find_shared_one(a: &[Signal; 3], b: &[Signal; 3]) -> Option<(usize, usize)> {
    for (i, &x) in a.iter().enumerate() {
        if let Some(j) = b.iter().position(|&s| s == x) {
            return Some((i, j));
        }
    }
    None
}

/// Word-level reference semantics of the majority operator, used to validate
/// the axioms in tests and documentation.
pub mod reference {
    /// `⟨a b c⟩` on 64 parallel bits.
    #[inline]
    pub fn maj(a: u64, b: u64, c: u64) -> u64 {
        (a & b) | (a & c) | (b & c)
    }

    /// Checks Ω.A on concrete words: `⟨x u ⟨y u z⟩⟩ = ⟨z u ⟨y u x⟩⟩`.
    pub fn associativity_holds(x: u64, u: u64, y: u64, z: u64) -> bool {
        maj(x, u, maj(y, u, z)) == maj(z, u, maj(y, u, x))
    }

    /// Checks Ω.D on concrete words:
    /// `⟨x y ⟨u v z⟩⟩ = ⟨⟨x y u⟩ ⟨x y v⟩ z⟩`.
    pub fn distributivity_holds(x: u64, y: u64, u: u64, v: u64, z: u64) -> bool {
        maj(x, y, maj(u, v, z)) == maj(maj(x, y, u), maj(x, y, v), z)
    }

    /// Checks Ω.I on concrete words: `¬⟨x y z⟩ = ⟨x̄ ȳ z̄⟩`.
    pub fn inverter_propagation_holds(x: u64, y: u64, z: u64) -> bool {
        !maj(x, y, z) == maj(!x, !y, !z)
    }

    /// Checks the extended Ω.I R→L(2) rule used by the PLiM rewriting:
    /// `⟨x̄ ȳ z⟩ = ¬⟨x y z̄⟩`.
    pub fn inverter_two_flip_holds(x: u64, y: u64, z: u64) -> bool {
        maj(!x, !y, z) == !maj(x, y, !z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::NodeId;

    fn sig(index: usize, compl: bool) -> Signal {
        Signal::new(NodeId::from_index(index), compl)
    }

    #[test]
    fn shared_pair_found_with_matching_polarity() {
        let a = [sig(1, false), sig(2, true), sig(5, false)];
        let b = [sig(1, false), sig(2, true), sig(7, false)];
        let m = find_shared_pair(&a, &b).expect("pair shared");
        assert_eq!(m.common, [sig(1, false), sig(2, true)]);
        assert_eq!(m.rest_a, sig(5, false));
        assert_eq!(m.rest_b, sig(7, false));
    }

    #[test]
    fn shared_pair_respects_complements() {
        let a = [sig(1, false), sig(2, false), sig(5, false)];
        let b = [sig(1, true), sig(2, false), sig(7, false)];
        // Only node 2 matches exactly; node 1 differs in polarity.
        assert_eq!(find_shared_pair(&a, &b), None);
    }

    #[test]
    fn shared_pair_absent() {
        let a = [sig(1, false), sig(2, false), sig(3, false)];
        let b = [sig(4, false), sig(5, false), sig(6, false)];
        assert_eq!(find_shared_pair(&a, &b), None);
    }

    #[test]
    fn shared_one_basics() {
        let a = [sig(1, false), sig(2, false), sig(3, false)];
        let b = [sig(9, false), sig(2, false), sig(8, false)];
        assert_eq!(find_shared_one(&a, &b), Some((1, 1)));
        let c = [sig(9, false), sig(10, false), sig(8, false)];
        assert_eq!(find_shared_one(&a, &c), None);
    }

    #[test]
    fn axioms_hold_on_random_words() {
        use crate::simulate::XorShift64;
        let mut rng = XorShift64::new(0xDAC2016);
        for _ in 0..200 {
            let (x, y, z) = (rng.next_word(), rng.next_word(), rng.next_word());
            let (u, v) = (rng.next_word(), rng.next_word());
            assert!(reference::associativity_holds(x, u, y, z));
            assert!(reference::distributivity_holds(x, y, u, v, z));
            assert!(reference::inverter_propagation_holds(x, y, z));
            assert!(reference::inverter_two_flip_holds(x, y, z));
        }
    }
}
