//! Bit-parallel simulation of MIGs.
//!
//! Simulation assigns each primary input a 64-bit word and propagates words
//! through the graph, evaluating 64 input patterns at once. This is the
//! workhorse behind equivalence checking and compiled-program verification.

use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::Signal;

/// Evaluates the majority of three words bitwise.
#[inline]
pub fn maj_word(a: u64, b: u64, c: u64) -> u64 {
    (a & b) | (a & c) | (b & c)
}

/// Simulates the graph for one block of 64 input patterns.
///
/// `input_words[i]` holds 64 values (one per bit position) for primary input
/// `i`. Returns one word per primary output.
///
/// # Panics
///
/// Panics if `input_words.len() != mig.num_inputs()`.
pub fn simulate(mig: &Mig, input_words: &[u64]) -> Vec<u64> {
    assert_eq!(
        input_words.len(),
        mig.num_inputs(),
        "one simulation word is required per primary input"
    );
    let values = node_values(mig, input_words);
    mig.outputs()
        .iter()
        .map(|(_, s)| signal_word(&values, *s))
        .collect()
}

/// Simulates the graph and returns the word of every node (indexed by node
/// arena index). Complement attributes of edges are *not* applied — these are
/// the raw node function values.
pub fn node_values(mig: &Mig, input_words: &[u64]) -> Vec<u64> {
    let mut values = vec![0u64; mig.len()];
    for id in mig.node_ids() {
        values[id.index()] = match mig.node(id) {
            MigNode::Constant => 0,
            MigNode::Input(pi) => input_words[*pi as usize],
            MigNode::Majority(children) => {
                let w = |s: &Signal| {
                    let v = values[s.node().index()];
                    if s.is_complemented() {
                        !v
                    } else {
                        v
                    }
                };
                maj_word(w(&children[0]), w(&children[1]), w(&children[2]))
            }
        };
    }
    values
}

/// Applies a signal's complement attribute to a simulated node-value table.
#[inline]
pub fn signal_word(values: &[u64], signal: Signal) -> u64 {
    let v = values[signal.node().index()];
    if signal.is_complemented() {
        !v
    } else {
        v
    }
}

/// Evaluates the graph on a single Boolean input assignment.
///
/// Convenience wrapper around [`simulate`] for one pattern.
///
/// # Panics
///
/// Panics if `inputs.len() != mig.num_inputs()`.
pub fn evaluate(mig: &Mig, inputs: &[bool]) -> Vec<bool> {
    let words: Vec<u64> = inputs.iter().map(|&b| if b { !0 } else { 0 }).collect();
    simulate(mig, &words).iter().map(|&w| w & 1 != 0).collect()
}

/// A truth table over `num_vars` variables, stored as packed 64-bit blocks.
///
/// Bit `i` of the table is the function value under the assignment whose
/// variable `v` equals bit `v` of `i`.
///
/// # Examples
///
/// ```
/// use mig::simulate::TruthTable;
///
/// let and2 = TruthTable::from_bits(2, 0b1000);
/// assert!(and2.bit(3));
/// assert!(!and2.bit(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    blocks: Vec<u64>,
}

impl TruthTable {
    /// Maximum variable count supported by [`TruthTable`] (the table for 24
    /// variables occupies 2 MiB).
    pub const MAX_VARS: usize = 24;

    /// Creates the all-zero table over `num_vars` variables.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > Self::MAX_VARS`.
    pub fn zero(num_vars: usize) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "too many truth table variables");
        TruthTable {
            num_vars,
            blocks: vec![0; Self::block_count(num_vars)],
        }
    }

    /// Creates a table over up to 6 variables from its low `2^num_vars` bits.
    pub fn from_bits(num_vars: usize, bits: u64) -> Self {
        assert!(num_vars <= 6, "from_bits supports at most 6 variables");
        let mut tt = TruthTable::zero(num_vars);
        tt.blocks[0] = bits & Self::used_mask(num_vars);
        tt
    }

    /// The projection table of variable `var` over `num_vars` variables.
    pub fn variable(num_vars: usize, var: usize) -> Self {
        assert!(var < num_vars, "variable index out of range");
        let mut tt = TruthTable::zero(num_vars);
        if var < 6 {
            let pattern = Self::VAR_PATTERNS[var];
            for block in &mut tt.blocks {
                *block = pattern;
            }
        } else {
            let stride = 1usize << (var - 6);
            for (index, block) in tt.blocks.iter_mut().enumerate() {
                if index / stride % 2 == 1 {
                    *block = !0;
                }
            }
        }
        tt.mask_unused();
        tt
    }

    const VAR_PATTERNS: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];

    fn block_count(num_vars: usize) -> usize {
        if num_vars < 6 {
            1
        } else {
            1 << (num_vars - 6)
        }
    }

    fn used_mask(num_vars: usize) -> u64 {
        if num_vars >= 6 {
            !0
        } else {
            (1u64 << (1 << num_vars)) - 1
        }
    }

    fn mask_unused(&mut self) {
        if self.num_vars < 6 {
            self.blocks[0] &= Self::used_mask(self.num_vars);
        }
    }

    /// Number of variables.
    #[inline]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of table rows (`2^num_vars`).
    #[inline]
    pub fn num_bits(&self) -> usize {
        1 << self.num_vars
    }

    /// The raw 64-bit blocks of the table.
    #[inline]
    pub fn blocks(&self) -> &[u64] {
        &self.blocks
    }

    /// The function value in row `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_bits()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.num_bits(), "truth table row out of range");
        self.blocks[index / 64] >> (index % 64) & 1 != 0
    }

    /// Bitwise complement of the table.
    pub fn complement(&self) -> Self {
        let mut result = self.clone();
        for block in &mut result.blocks {
            *block = !*block;
        }
        result.mask_unused();
        result
    }

    /// Number of rows where the function is 1.
    pub fn count_ones(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Majority-of-three of tables with identical variable counts.
    ///
    /// # Panics
    ///
    /// Panics if the variable counts differ.
    pub fn maj(a: &Self, b: &Self, c: &Self) -> Self {
        assert!(
            a.num_vars == b.num_vars && b.num_vars == c.num_vars,
            "majority requires tables over the same variables"
        );
        let blocks = a
            .blocks
            .iter()
            .zip(&b.blocks)
            .zip(&c.blocks)
            .map(|((&x, &y), &z)| maj_word(x, y, z))
            .collect();
        let mut result = TruthTable {
            num_vars: a.num_vars,
            blocks,
        };
        result.mask_unused();
        result
    }
}

/// The 64-pattern slice of exhaustive-enumeration variable `var` at block
/// `block`: bit `k` of the returned word is the value of variable `var`
/// under global input pattern `64·block + k`, matching the row order of
/// [`TruthTable`].
///
/// Feeding `variable_word(v, block)` for every input `v` to [`simulate`]
/// (and, on the PLiM side, to a wide machine) walks the entire input space
/// of an `n`-input circuit in `2^n / 64` blocks with identical pattern
/// numbering on both sides.
///
/// # Examples
///
/// ```
/// use mig::simulate::{variable_word, TruthTable};
///
/// let tt = TruthTable::variable(8, 7);
/// for block in 0..tt.blocks().len() {
///     assert_eq!(variable_word(7, block), tt.blocks()[block]);
/// }
/// ```
pub fn variable_word(var: usize, block: usize) -> u64 {
    if var < 6 {
        TruthTable::VAR_PATTERNS[var]
    } else if block >> (var - 6) & 1 == 1 {
        !0
    } else {
        0
    }
}

/// Computes the truth table of every primary output.
///
/// # Panics
///
/// Panics if the graph has more than [`TruthTable::MAX_VARS`] inputs.
pub fn truth_tables(mig: &Mig) -> Vec<TruthTable> {
    let n = mig.num_inputs();
    assert!(
        n <= TruthTable::MAX_VARS,
        "exhaustive truth tables support at most {} inputs",
        TruthTable::MAX_VARS
    );
    let mut tables: Vec<TruthTable> = Vec::with_capacity(mig.len());
    for id in mig.node_ids() {
        let tt = match mig.node(id) {
            MigNode::Constant => TruthTable::zero(n),
            MigNode::Input(pi) => TruthTable::variable(n, *pi as usize),
            MigNode::Majority(children) => {
                let t = |s: &Signal| {
                    let tt = &tables[s.node().index()];
                    if s.is_complemented() {
                        tt.complement()
                    } else {
                        tt.clone()
                    }
                };
                TruthTable::maj(&t(&children[0]), &t(&children[1]), &t(&children[2]))
            }
        };
        tables.push(tt);
    }
    mig.outputs()
        .iter()
        .map(|(_, s)| {
            let tt = &tables[s.node().index()];
            if s.is_complemented() {
                tt.complement()
            } else {
                tt.clone()
            }
        })
        .collect()
}

/// A small, deterministic xorshift64* pseudo-random generator used for
/// randomized simulation. Self-contained so the core crates stay
/// dependency-free.
///
/// # Examples
///
/// ```
/// use mig::simulate::XorShift64;
///
/// let mut rng = XorShift64::new(42);
/// assert_ne!(rng.next_word(), rng.next_word());
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a seed (a zero seed is remapped).
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// A generator for substream `stream` of a master seed.
    ///
    /// Streams are decorrelated through a SplitMix64 finalizer, so
    /// parallel workers can each draw reproducible randomness for their
    /// own block index and the combined sequence is independent of how
    /// work is divided among threads.
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        let mut x = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        XorShift64::new(x ^ (x >> 31))
    }

    /// The next pseudo-random 64-bit word.
    pub fn next_word(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A pseudo-random value in `0..bound` (`bound` must be nonzero).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        self.next_word() % bound
    }

    /// A pseudo-random Boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_word() & 1 != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Mig;

    #[test]
    fn maj_word_matches_definition() {
        for a in 0..2u64 {
            for b in 0..2u64 {
                for c in 0..2u64 {
                    let expected = u64::from(a + b + c >= 2);
                    assert_eq!(maj_word(a, b, c) & 1, expected);
                }
            }
        }
    }

    #[test]
    fn simulate_and_gate() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.and(a, b);
        mig.add_output("f", g);
        let out = simulate(&mig, &[0b1100, 0b1010]);
        assert_eq!(out[0] & 0b1111, 0b1000);
    }

    #[test]
    fn simulate_complemented_output() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.or(a, b);
        mig.add_output("f", !g);
        let out = simulate(&mig, &[0b1100, 0b1010]);
        assert_eq!(out[0] & 0b1111, 0b0001); // NOR
    }

    #[test]
    fn evaluate_single_pattern() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("f", m);
        assert_eq!(evaluate(&mig, &[true, true, false]), vec![true]);
        assert_eq!(evaluate(&mig, &[true, false, false]), vec![false]);
    }

    #[test]
    fn xor_gates_behave() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let x = mig.xor(a, b);
        mig.add_output("f", x);
        let out = simulate(&mig, &[0b1100, 0b1010]);
        assert_eq!(out[0] & 0b1111, 0b0110);
    }

    #[test]
    fn xor3_truth_table() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.xor3(a, b, c);
        mig.add_output("f", x);
        let tts = truth_tables(&mig);
        // x ⊕ y ⊕ z is 1 on odd-parity rows: 1,2,4,7 → 0b10010110.
        assert_eq!(tts[0].blocks()[0], 0b1001_0110);
    }

    #[test]
    fn truth_table_variables() {
        let v0 = TruthTable::variable(3, 0);
        let v2 = TruthTable::variable(3, 2);
        assert_eq!(v0.blocks()[0], 0xAA);
        assert_eq!(v2.blocks()[0], 0xF0);
        assert_eq!(v0.count_ones(), 4);
    }

    #[test]
    fn truth_table_many_vars() {
        let v7 = TruthTable::variable(8, 7);
        assert_eq!(v7.num_bits(), 256);
        assert_eq!(v7.count_ones(), 128);
        assert!(!v7.bit(127));
        assert!(v7.bit(128));
        let v6 = TruthTable::variable(7, 6);
        assert!(!v6.bit(63));
        assert!(v6.bit(64));
    }

    #[test]
    fn truth_table_complement_masks_unused() {
        let tt = TruthTable::from_bits(2, 0b1000);
        let c = tt.complement();
        assert_eq!(c.blocks()[0], 0b0111);
        assert_eq!(c.count_ones(), 3);
    }

    #[test]
    fn truth_table_majority() {
        let a = TruthTable::variable(3, 0);
        let b = TruthTable::variable(3, 1);
        let c = TruthTable::variable(3, 2);
        let m = TruthTable::maj(&a, &b, &c);
        assert_eq!(m.blocks()[0], 0b1110_1000);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut r1 = XorShift64::new(7);
        let mut r2 = XorShift64::new(7);
        for _ in 0..16 {
            assert_eq!(r1.next_word(), r2.next_word());
        }
        let mut r3 = XorShift64::new(8);
        assert_ne!(r1.next_word(), r3.next_word());
    }

    #[test]
    fn variable_word_matches_truth_table_rows() {
        for num_vars in [3usize, 7, 9] {
            for var in 0..num_vars {
                let tt = TruthTable::variable(num_vars, var);
                for (block, &expected) in tt.blocks().iter().enumerate() {
                    let mut word = variable_word(var, block);
                    if num_vars < 6 {
                        word &= (1u64 << (1 << num_vars)) - 1;
                    }
                    assert_eq!(word, expected, "var {var} block {block}");
                }
            }
        }
    }

    #[test]
    fn stream_rngs_are_deterministic_and_decorrelated() {
        let mut a = XorShift64::for_stream(42, 3);
        let mut b = XorShift64::for_stream(42, 3);
        assert_eq!(a.next_word(), b.next_word());
        let mut c = XorShift64::for_stream(42, 4);
        assert_ne!(a.next_word(), c.next_word());
        let mut d = XorShift64::for_stream(43, 3);
        assert_ne!(b.next_word(), d.next_word());
    }

    #[test]
    fn xorshift_bounded() {
        let mut rng = XorShift64::new(99);
        for _ in 0..100 {
            assert!(rng.next_below(10) < 10);
        }
    }
}
