//! Graphviz (DOT) export of MIGs.
//!
//! Complemented edges are rendered dashed, following the usual MIG drawing
//! convention (cf. Fig. 1 and Fig. 3 of the paper).

use std::fmt::Write as _;

use crate::graph::Mig;
use crate::node::MigNode;

/// Escapes a name for use inside a double-quoted DOT string: `"` and `\`
/// must be backslash-escaped or the emitted document is malformed.
fn escape_label(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for ch in name.chars() {
        if ch == '"' || ch == '\\' {
            out.push('\\');
        }
        out.push(ch);
    }
    out
}

/// Renders the graph in Graphviz DOT format.
///
/// # Examples
///
/// ```
/// use mig::{Mig, dot::to_dot};
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let f = mig.and(a, !b);
/// mig.add_output("f", f);
/// let dot = to_dot(&mig);
/// assert!(dot.contains("digraph mig"));
/// assert!(dot.contains("dashed"));
/// ```
pub fn to_dot(mig: &Mig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph mig {{");
    let _ = writeln!(out, "  rankdir=BT;");
    let _ = writeln!(out, "  node [shape=circle];");
    for id in mig.node_ids() {
        match mig.node(id) {
            MigNode::Constant => {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"0\" shape=box style=filled fillcolor=lightgray];",
                    id.index()
                );
            }
            MigNode::Input(pi) => {
                let _ = writeln!(
                    out,
                    "  n{} [label=\"{}\" shape=box];",
                    id.index(),
                    escape_label(mig.input_name(*pi as usize))
                );
            }
            MigNode::Majority(children) => {
                let _ = writeln!(out, "  n{} [label=\"MAJ\"];", id.index());
                for child in children {
                    let style = if child.is_complemented() {
                        " [style=dashed]"
                    } else {
                        ""
                    };
                    let _ = writeln!(
                        out,
                        "  n{} -> n{}{};",
                        child.node().index(),
                        id.index(),
                        style
                    );
                }
            }
        }
    }
    for (index, (name, signal)) in mig.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  o{index} [label=\"{}\" shape=invtriangle];",
            escape_label(name)
        );
        let style = if signal.is_complemented() {
            " [style=dashed]"
        } else {
            ""
        };
        let _ = writeln!(out, "  n{} -> o{index}{};", signal.node().index(), style);
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Mig;

    #[test]
    fn dot_contains_all_elements() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        mig.add_output("f", !m);
        let dot = to_dot(&mig);
        assert!(dot.starts_with("digraph mig"));
        assert!(dot.contains("MAJ"));
        assert!(dot.contains("invtriangle"));
        // One dashed child edge plus one dashed output edge.
        assert_eq!(dot.matches("dashed").count(), 2);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_escapes_hostile_names() {
        // Names containing `"` and `\` must round-trip into well-formed
        // quoted DOT strings instead of terminating the label early.
        let mut mig = Mig::new();
        let a = mig.add_input(r#"a"quote"#);
        let b = mig.add_input(r"b\slash");
        let f = mig.and(a, b);
        mig.add_output(r#"f"\out"#, f);
        let dot = to_dot(&mig);
        assert!(dot.contains(r#"[label="a\"quote" shape=box]"#), "{dot}");
        assert!(dot.contains(r#"[label="b\\slash" shape=box]"#), "{dot}");
        assert!(
            dot.contains(r#"[label="f\"\\out" shape=invtriangle]"#),
            "{dot}"
        );
        // Every quote in the document is either a delimiter or escaped:
        // stripping escaped sequences must leave an even quote count.
        let stripped = dot.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(stripped.matches('"').count() % 2, 0);
    }

    #[test]
    fn dot_renders_constant_node() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b); // uses the constant node
        mig.add_output("f", f);
        let dot = to_dot(&mig);
        assert!(dot.contains("fillcolor=lightgray"));
    }
}
