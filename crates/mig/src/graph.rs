//! The Majority-Inverter Graph.

use std::collections::HashMap;
use std::fmt;

use crate::node::MigNode;
use crate::signal::{NodeId, Signal};

/// A Majority-Inverter Graph: a DAG of 3-input majority nodes with
/// regular/complemented edges, primary inputs and named primary outputs.
///
/// The graph maintains the following invariants:
///
/// * node 0 is the constant-zero node;
/// * children of a majority node always precede it in the arena, so the
///   arena index order is a topological order;
/// * children are stored canonically sorted (commutativity Ω.C is implicit);
/// * trivial majorities are simplified at creation time (majority axiom Ω.M):
///   `⟨x x y⟩ = x` and `⟨x x̄ y⟩ = y`;
/// * structural hashing guarantees that no two majority nodes have the same
///   (sorted) child triple.
///
/// Complement placement is **not** canonicalized: `⟨x̄ ȳ z̄⟩` and `!⟨x y z⟩`
/// are distinct structures. This is deliberate — the PLiM compiler's cost
/// model depends on the distribution of complemented edges, and the rewriting
/// passes of [`crate::rewrite`] manipulate it explicitly.
///
/// # Examples
///
/// ```
/// use mig::Mig;
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, b, c);
/// mig.add_output("f", m);
/// assert_eq!(mig.num_majority_nodes(), 1);
/// ```
#[derive(Clone)]
pub struct Mig {
    nodes: Vec<MigNode>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
    strash: HashMap<[Signal; 3], NodeId>,
}

impl Mig {
    /// Creates an empty graph containing only the constant node.
    pub fn new() -> Self {
        Mig {
            nodes: vec![MigNode::Constant],
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Creates an empty graph with capacity for `nodes` majority nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        let mut arena = Vec::with_capacity(nodes + 1);
        arena.push(MigNode::Constant);
        Mig {
            nodes: arena,
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::with_capacity(nodes),
        }
    }

    /// The constant signal of the given value.
    #[inline]
    pub fn constant(&self, value: bool) -> Signal {
        Signal::constant(value)
    }

    /// Adds a primary input with the given name and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(MigNode::Input(self.inputs.len() as u32));
        self.inputs.push(id);
        self.input_names.push(name.into());
        Signal::new(id, false)
    }

    /// Adds `count` primary inputs named `prefix0`, `prefix1`, ….
    pub fn add_inputs(&mut self, prefix: &str, count: usize) -> Vec<Signal> {
        (0..count)
            .map(|i| self.add_input(format!("{prefix}{i}")))
            .collect()
    }

    /// Registers `signal` as a primary output under `name`.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        debug_assert!(signal.node().index() < self.nodes.len());
        self.outputs.push((name.into(), signal));
    }

    /// Creates (or reuses) the majority node `⟨a b c⟩`.
    ///
    /// Applies the Ω.M simplifications and structural hashing, so the result
    /// may be an existing node or even one of the arguments.
    pub fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut children = [a, b, c];
        children.sort_unstable();
        let [x, y, z] = children;

        // Ω.M: ⟨x x y⟩ = x. Sorting places equal signals adjacently.
        if x == y || y == z {
            return y;
        }
        // Ω.M: ⟨x x̄ y⟩ = y. Complementary pairs are adjacent after sorting.
        if x.node() == y.node() {
            debug_assert_ne!(x.is_complemented(), y.is_complemented());
            return z;
        }
        if y.node() == z.node() {
            debug_assert_ne!(y.is_complemented(), z.is_complemented());
            return x;
        }

        if let Some(&id) = self.strash.get(&children) {
            return Signal::new(id, false);
        }
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(MigNode::Majority(children));
        self.strash.insert(children, id);
        Signal::new(id, false)
    }

    /// Looks up an existing majority node with the given children without
    /// creating one. The children are sorted internally before lookup.
    ///
    /// Trivial triples (which Ω.M would simplify) return `None`.
    pub fn find_maj(&self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        let mut children = [a, b, c];
        children.sort_unstable();
        let [x, y, z] = children;
        if x.node() == y.node() || y.node() == z.node() {
            return None;
        }
        self.strash.get(&children).map(|&id| Signal::new(id, false))
    }

    /// `a ∧ b`, built as `⟨0 a b⟩`.
    pub fn and(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(Signal::FALSE, a, b)
    }

    /// `a ∨ b`, built as `⟨1 a b⟩`.
    pub fn or(&mut self, a: Signal, b: Signal) -> Signal {
        self.maj(Signal::TRUE, a, b)
    }

    /// `a ⊕ b`, built from two majority nodes (AOIG style):
    /// `(a ∨ b) ∧ ¬(a ∧ b)`.
    pub fn xor(&mut self, a: Signal, b: Signal) -> Signal {
        let or = self.or(a, b);
        let and = self.and(a, b);
        self.and(or, !and)
    }

    /// `a ⊕ b ⊕ c`, built compactly with majority sharing:
    /// `x ⊕ y ⊕ z = ⟨m̄ ⟨x y z̄⟩ ... ⟩` — we use the classic construction
    /// via the carry `m = ⟨x y z⟩`: `x ⊕ y ⊕ z = ⟨m̄ z ⟨x y z̄⟩⟩`.
    pub fn xor3(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let carry = self.maj(a, b, c);
        let inner = self.maj(a, b, !c);
        self.maj(!carry, c, inner)
    }

    /// If-then-else: `s ? t : e`, built as `⟨⟨0 s t⟩ ⟨0 s̄ e⟩ 1⟩`.
    pub fn mux(&mut self, s: Signal, t: Signal, e: Signal) -> Signal {
        let st = self.and(s, t);
        let se = self.and(!s, e);
        self.or(st, se)
    }

    /// Number of nodes in the arena (constant + inputs + majority nodes).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes besides the constant.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Number of majority nodes (the MIG *size* in the paper's sense, `#N`).
    pub fn num_majority_nodes(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Number of primary inputs.
    #[inline]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[inline]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// The node with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node(&self, id: NodeId) -> &MigNode {
        &self.nodes[id.index()]
    }

    /// Iterates over all node identifiers in topological order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Iterates over the identifiers of all majority nodes in topological
    /// order.
    pub fn majority_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.node_ids()
            .filter(move |id| self.node(*id).is_majority())
    }

    /// The primary-input node identifiers, in declaration order.
    #[inline]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The name of primary input `index`.
    pub fn input_name(&self, index: usize) -> &str {
        &self.input_names[index]
    }

    /// The primary outputs as `(name, signal)` pairs.
    #[inline]
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Replaces the signal of output `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_output(&mut self, index: usize, signal: Signal) {
        self.outputs[index].1 = signal;
    }

    /// Computes, for every node, the number of references from majority-node
    /// child edges and primary outputs (the *fanout count*).
    pub fn fanout_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let MigNode::Majority(children) = node {
                for child in children {
                    counts[child.node().index()] += 1;
                }
            }
        }
        for (_, signal) in &self.outputs {
            counts[signal.node().index()] += 1;
        }
        counts
    }

    /// Computes, for every node, the list of majority nodes referencing it.
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fanouts = vec![Vec::new(); self.nodes.len()];
        for id in self.node_ids() {
            if let MigNode::Majority(children) = self.node(id) {
                for child in children {
                    let list = &mut fanouts[child.node().index()];
                    if list.last() != Some(&id) {
                        list.push(id);
                    }
                }
            }
        }
        fanouts
    }

    /// Computes the level (logic depth from the inputs) of each node.
    /// Constants and inputs are level 0.
    pub fn levels(&self) -> Vec<u32> {
        let mut levels = vec![0u32; self.nodes.len()];
        for (index, node) in self.nodes.iter().enumerate() {
            if let MigNode::Majority(children) = node {
                levels[index] = 1 + children
                    .iter()
                    .map(|c| levels[c.node().index()])
                    .max()
                    .unwrap_or(0);
            }
        }
        levels
    }

    /// The depth of the graph: the maximum output level.
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|(_, s)| levels[s.node().index()])
            .max()
            .unwrap_or(0)
    }

    /// Computes, for every node, whether it is reachable from a primary
    /// output (the "live cone" of the graph).
    pub fn reachable_mask(&self) -> Vec<bool> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = self.outputs.iter().map(|(_, s)| s.node()).collect();
        while let Some(id) = stack.pop() {
            if reachable[id.index()] {
                continue;
            }
            reachable[id.index()] = true;
            if let MigNode::Majority(children) = self.node(id) {
                stack.extend(children.iter().map(|c| c.node()));
            }
        }
        reachable
    }

    /// Returns a copy of this graph containing only the logic reachable from
    /// the primary outputs ("dangling" nodes are removed). All primary inputs
    /// are kept to preserve the interface.
    pub fn cleaned(&self) -> Mig {
        let mut result = Mig::with_capacity(self.num_majority_nodes());
        let mut map: Vec<Option<Signal>> = vec![None; self.nodes.len()];
        map[0] = Some(Signal::FALSE);
        for (&id, name) in self.inputs.iter().zip(&self.input_names) {
            map[id.index()] = Some(result.add_input(name.clone()));
        }

        let reachable = self.reachable_mask();

        for id in self.node_ids() {
            if !reachable[id.index()] {
                continue;
            }
            if let MigNode::Majority(children) = self.node(id) {
                let mapped: Vec<Signal> = children
                    .iter()
                    .map(|c| {
                        map[c.node().index()]
                            .expect("children precede parents")
                            .complement_if(c.is_complemented())
                    })
                    .collect();
                let s = result.maj(mapped[0], mapped[1], mapped[2]);
                map[id.index()] = Some(s);
            }
        }

        for (name, signal) in &self.outputs {
            let mapped = map[signal.node().index()]
                .expect("output cone is reachable")
                .complement_if(signal.is_complemented());
            result.add_output(name.clone(), mapped);
        }
        result
    }
}

impl Mig {
    /// Returns a copy of this graph with majority nodes stored in
    /// *levelized* order: all level-1 nodes first, then level 2, and so on
    /// (ties broken by original index). Dangling nodes are removed.
    ///
    /// This is the node order produced by typical netlist writers (and by
    /// the EPFL benchmark distribution), as opposed to the depth-first
    /// creation order of this crate's builders. Schedulers that process
    /// nodes "in index order" — like the paper's naive translation — behave
    /// very differently on the two orders, so benchmark circuits are
    /// levelized before compilation.
    pub fn levelized(&self) -> Mig {
        let levels = self.levels();
        let reachable = self.reachable_mask();

        let mut order: Vec<NodeId> = self
            .node_ids()
            .filter(|id| reachable[id.index()] && self.node(*id).is_majority())
            .collect();
        order.sort_by_key(|id| (levels[id.index()], id.index()));

        let mut result = Mig::with_capacity(order.len());
        let mut map: Vec<Option<Signal>> = vec![None; self.nodes.len()];
        map[0] = Some(Signal::FALSE);
        for (&id, name) in self.inputs.iter().zip(&self.input_names) {
            map[id.index()] = Some(result.add_input(name.clone()));
        }
        for id in order {
            let children = self.node(id).children().expect("majority nodes only");
            let mapped: Vec<Signal> = children
                .iter()
                .map(|c| {
                    map[c.node().index()]
                        .expect("children are on lower levels")
                        .complement_if(c.is_complemented())
                })
                .collect();
            map[id.index()] = Some(result.maj(mapped[0], mapped[1], mapped[2]));
        }
        for (name, signal) in &self.outputs {
            let mapped = map[signal.node().index()]
                .expect("output cone is reachable")
                .complement_if(signal.is_complemented());
            result.add_output(name.clone(), mapped);
        }
        result
    }
}

impl Default for Mig {
    fn default() -> Self {
        Mig::new()
    }
}

impl fmt::Debug for Mig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mig")
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("majority_nodes", &self.num_majority_nodes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_only_constant() {
        let mig = Mig::new();
        assert!(mig.is_empty());
        assert_eq!(mig.len(), 1);
        assert_eq!(mig.num_majority_nodes(), 0);
        assert!(mig.node(NodeId::CONSTANT).is_constant());
    }

    #[test]
    fn maj_simplifies_equal_children() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        assert_eq!(mig.maj(a, a, b), a);
        assert_eq!(mig.maj(b, a, b), b);
        assert_eq!(mig.maj(a, b, a), a);
        assert_eq!(mig.num_majority_nodes(), 0);
    }

    #[test]
    fn maj_simplifies_complementary_children() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        assert_eq!(mig.maj(a, !a, b), b);
        assert_eq!(mig.maj(b, a, !b), a);
        assert_eq!(mig.maj(!a, b, a), b);
        assert_eq!(mig.num_majority_nodes(), 0);
    }

    #[test]
    fn maj_with_two_constants_simplifies() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        // ⟨0 1 a⟩ = a because 0 and 1 are complementary.
        assert_eq!(mig.maj(Signal::FALSE, Signal::TRUE, a), a);
        assert_eq!(mig.maj(Signal::FALSE, Signal::FALSE, a), Signal::FALSE);
        assert_eq!(mig.maj(Signal::TRUE, a, Signal::TRUE), Signal::TRUE);
    }

    #[test]
    fn strash_reuses_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m1 = mig.maj(a, b, c);
        let m2 = mig.maj(c, a, b);
        let m3 = mig.maj(b, c, a);
        assert_eq!(m1, m2);
        assert_eq!(m2, m3);
        assert_eq!(mig.num_majority_nodes(), 1);
        // Different complementation is a different node.
        let m4 = mig.maj(!a, b, c);
        assert_ne!(m1, m4);
        assert_eq!(mig.num_majority_nodes(), 2);
    }

    #[test]
    fn find_maj_matches_created_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        assert_eq!(mig.find_maj(a, b, c), None);
        let m = mig.maj(a, b, c);
        assert_eq!(mig.find_maj(c, b, a), Some(m));
        assert_eq!(mig.find_maj(a, a, b), None);
    }

    #[test]
    fn and_or_build_constant_gates() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g_and = mig.and(a, b);
        let g_or = mig.or(a, b);
        assert_ne!(g_and, g_or);
        assert_eq!(mig.num_majority_nodes(), 2);
        let children = mig.node(g_and.node()).children().unwrap();
        assert_eq!(children[0], Signal::FALSE);
    }

    #[test]
    fn levels_and_depth() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.and(a, b);
        let y = mig.or(x, c);
        mig.add_output("f", y);
        let levels = mig.levels();
        assert_eq!(levels[x.node().index()], 1);
        assert_eq!(levels[y.node().index()], 2);
        assert_eq!(mig.depth(), 2);
    }

    #[test]
    fn fanout_counts_include_outputs() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let x = mig.and(a, b);
        let y = mig.or(x, a);
        mig.add_output("f", y);
        mig.add_output("g", x);
        let counts = mig.fanout_counts();
        assert_eq!(counts[a.node().index()], 2); // x and y
        assert_eq!(counts[x.node().index()], 2); // y and output g
        assert_eq!(counts[y.node().index()], 1); // output f
    }

    #[test]
    fn cleaned_removes_dangling_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let used = mig.and(a, b);
        let _dangling = mig.or(a, b);
        mig.add_output("f", used);
        assert_eq!(mig.num_majority_nodes(), 2);
        let cleaned = mig.cleaned();
        assert_eq!(cleaned.num_majority_nodes(), 1);
        assert_eq!(cleaned.num_inputs(), 2);
        assert_eq!(cleaned.num_outputs(), 1);
    }

    #[test]
    fn cleaned_preserves_output_complement() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let x = mig.and(a, b);
        mig.add_output("f", !x);
        let cleaned = mig.cleaned();
        assert!(cleaned.outputs()[0].1.is_complemented());
    }

    #[test]
    fn xor3_uses_three_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.xor3(a, b, c);
        mig.add_output("s", x);
        assert_eq!(mig.num_majority_nodes(), 3);
    }

    #[test]
    fn input_names_are_retained() {
        let mut mig = Mig::new();
        mig.add_input("alpha");
        mig.add_input("beta");
        assert_eq!(mig.input_name(0), "alpha");
        assert_eq!(mig.input_name(1), "beta");
        let many = mig.add_inputs("x", 3);
        assert_eq!(many.len(), 3);
        assert_eq!(mig.input_name(4), "x2");
    }
}
