//! Combinational equivalence checking between MIGs.
//!
//! Rewriting and compilation must preserve the Boolean function of every
//! primary output. For small interfaces (≤ [`EXHAUSTIVE_LIMIT`] inputs) the
//! check is exhaustive; for larger graphs it falls back to randomized
//! bit-parallel simulation, which is the standard validation approach for
//! logic rewriting at benchmark scale.

use crate::graph::Mig;
use crate::simulate::{simulate, truth_tables, XorShift64};

/// Maximum number of primary inputs for which [`check_equivalence`] is
/// exhaustive.
pub const EXHAUSTIVE_LIMIT: usize = 14;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Proven equivalent by exhaustive enumeration of all input assignments.
    Equivalent,
    /// No mismatch found by randomized simulation with the given number of
    /// 64-pattern rounds (not a proof).
    ProbablyEquivalent {
        /// Number of 64-pattern simulation rounds executed.
        rounds: usize,
    },
    /// A mismatching output was found.
    NotEquivalent {
        /// Index of the first differing primary output.
        output: usize,
    },
}

impl Equivalence {
    /// `true` unless a mismatch was found.
    pub fn holds(&self) -> bool {
        !matches!(self, Equivalence::NotEquivalent { .. })
    }
}

/// Error raised when two graphs cannot be compared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterfaceMismatch {
    /// Inputs of the two graphs.
    pub inputs: (usize, usize),
    /// Outputs of the two graphs.
    pub outputs: (usize, usize),
}

impl std::fmt::Display for InterfaceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "interface mismatch: {}/{} inputs, {}/{} outputs",
            self.inputs.0, self.inputs.1, self.outputs.0, self.outputs.1
        )
    }
}

impl std::error::Error for InterfaceMismatch {}

/// Checks functional equivalence of two graphs with identical interfaces.
///
/// Uses exhaustive truth tables when the input count is at most
/// [`EXHAUSTIVE_LIMIT`]; otherwise runs `rounds` rounds of 64 random patterns
/// seeded by `seed`.
///
/// # Errors
///
/// Returns [`InterfaceMismatch`] if the graphs differ in input or output
/// count.
///
/// # Examples
///
/// ```
/// use mig::{Mig, equiv::check_equivalence};
///
/// let mut m1 = Mig::new();
/// let a = m1.add_input("a");
/// let b = m1.add_input("b");
/// let f = m1.and(a, b);
/// m1.add_output("f", f);
///
/// let mut m2 = Mig::new();
/// let a = m2.add_input("a");
/// let b = m2.add_input("b");
/// let f = m2.or(!a, !b);
/// m2.add_output("f", !f); // De Morgan
///
/// assert!(check_equivalence(&m1, &m2, 64, 1).unwrap().holds());
/// ```
pub fn check_equivalence(
    lhs: &Mig,
    rhs: &Mig,
    rounds: usize,
    seed: u64,
) -> Result<Equivalence, InterfaceMismatch> {
    if lhs.num_inputs() != rhs.num_inputs() || lhs.num_outputs() != rhs.num_outputs() {
        return Err(InterfaceMismatch {
            inputs: (lhs.num_inputs(), rhs.num_inputs()),
            outputs: (lhs.num_outputs(), rhs.num_outputs()),
        });
    }

    if lhs.num_inputs() <= EXHAUSTIVE_LIMIT {
        let t1 = truth_tables(lhs);
        let t2 = truth_tables(rhs);
        for (output, (a, b)) in t1.iter().zip(&t2).enumerate() {
            if a != b {
                return Ok(Equivalence::NotEquivalent { output });
            }
        }
        return Ok(Equivalence::Equivalent);
    }

    let mut rng = XorShift64::new(seed);
    for _ in 0..rounds {
        let words: Vec<u64> = (0..lhs.num_inputs()).map(|_| rng.next_word()).collect();
        let o1 = simulate(lhs, &words);
        let o2 = simulate(rhs, &words);
        for (output, (a, b)) in o1.iter().zip(&o2).enumerate() {
            if a != b {
                return Ok(Equivalence::NotEquivalent { output });
            }
        }
    }
    Ok(Equivalence::ProbablyEquivalent { rounds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Mig;

    fn and_graph() -> Mig {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        mig
    }

    #[test]
    fn identical_graphs_are_equivalent() {
        let m = and_graph();
        assert_eq!(
            check_equivalence(&m, &m.clone(), 8, 3).unwrap(),
            Equivalence::Equivalent
        );
    }

    #[test]
    fn different_functions_are_detected() {
        let m1 = and_graph();
        let mut m2 = Mig::new();
        let a = m2.add_input("a");
        let b = m2.add_input("b");
        let f = m2.or(a, b);
        m2.add_output("f", f);
        assert_eq!(
            check_equivalence(&m1, &m2, 8, 3).unwrap(),
            Equivalence::NotEquivalent { output: 0 }
        );
    }

    #[test]
    fn interface_mismatch_is_an_error() {
        let m1 = and_graph();
        let mut m2 = Mig::new();
        let a = m2.add_input("a");
        m2.add_output("f", a);
        let err = check_equivalence(&m1, &m2, 8, 3).unwrap_err();
        assert_eq!(err.inputs, (2, 1));
        assert!(err.to_string().contains("interface mismatch"));
    }

    #[test]
    fn randomized_check_on_wide_graphs() {
        // 20 inputs exceeds the exhaustive limit, forcing the random path.
        let mut m1 = Mig::new();
        let mut m2 = Mig::new();
        let xs1 = m1.add_inputs("x", 20);
        let xs2 = m2.add_inputs("x", 20);
        let mut acc1 = xs1[0];
        let mut acc2 = xs2[0];
        for i in 1..20 {
            acc1 = m1.and(acc1, xs1[i]);
            // Build the same conjunction with De Morgan in the other graph.
            let or = m2.or(!acc2, !xs2[i]);
            acc2 = !or;
        }
        m1.add_output("f", acc1);
        m2.add_output("f", acc2);
        let result = check_equivalence(&m1, &m2, 16, 7).unwrap();
        assert!(matches!(
            result,
            Equivalence::ProbablyEquivalent { rounds: 16 }
        ));
        assert!(result.holds());
    }

    #[test]
    fn randomized_check_detects_wide_mismatch() {
        let mut m1 = Mig::new();
        let mut m2 = Mig::new();
        let xs1 = m1.add_inputs("x", 20);
        let xs2 = m2.add_inputs("x", 20);
        let f1 = m1.and(xs1[0], xs1[1]);
        let f2 = m2.or(xs2[0], xs2[1]);
        m1.add_output("f", f1);
        m2.add_output("f", f2);
        let result = check_equivalence(&m1, &m2, 16, 7).unwrap();
        assert!(!result.holds());
    }
}
