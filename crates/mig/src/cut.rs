//! K-feasible cut enumeration.
//!
//! A *cut* of node `n` is a set of nodes (*leaves*) such that every path
//! from a primary input to `n` passes through a leaf. Cuts with few leaves
//! describe small single-output subcircuits (*cones*) rooted at `n`, and
//! are the standard working unit of resynthesis: compute the cone's truth
//! table over the leaves, then look for a cheaper implementation.
//!
//! This module enumerates cuts of up to 6 leaves (so cone functions fit in
//! a single `u64` truth table) with a per-node cut budget, plus the cone
//! evaluation needed to get those functions.

use std::collections::HashMap;

use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::NodeId;
use crate::simulate::TruthTable;

/// Maximum leaves per cut (functions fit a `u64` table).
pub const MAX_CUT_SIZE: usize = 6;

/// A cut: sorted leaf set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    leaves: Vec<NodeId>,
}

impl Cut {
    /// The trivial cut `{n}`.
    pub fn trivial(node: NodeId) -> Self {
        Cut { leaves: vec![node] }
    }

    /// The empty cut (used for the constant node, which needs no leaf —
    /// cone evaluation substitutes its fixed value).
    pub fn empty() -> Self {
        Cut { leaves: Vec::new() }
    }

    /// The sorted leaves.
    pub fn leaves(&self) -> &[NodeId] {
        &self.leaves
    }

    /// Number of leaves.
    pub fn size(&self) -> usize {
        self.leaves.len()
    }

    /// Merges three cuts; `None` if the union exceeds `max_size` leaves.
    pub fn merge(a: &Cut, b: &Cut, c: &Cut, max_size: usize) -> Option<Cut> {
        let mut leaves: Vec<NodeId> = Vec::with_capacity(max_size);
        for source in [&a.leaves, &b.leaves, &c.leaves] {
            for &leaf in source {
                if !leaves.contains(&leaf) {
                    if leaves.len() == max_size {
                        return None;
                    }
                    leaves.push(leaf);
                }
            }
        }
        leaves.sort_unstable();
        Some(Cut { leaves })
    }

    /// `true` if every leaf of `self` is also a leaf of `other` (so `other`
    /// is redundant when both are kept).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.iter().all(|l| other.leaves.contains(l))
    }
}

/// Per-node cut sets for a whole graph.
#[derive(Debug)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
}

impl CutSet {
    /// The cuts enumerated for `node` (always at least the trivial cut for
    /// majority nodes; inputs and the constant only get their trivial cut).
    pub fn of(&self, node: NodeId) -> &[Cut] {
        &self.cuts[node.index()]
    }
}

/// Enumerates cuts bottom-up with at most `max_size` leaves (≤
/// [`MAX_CUT_SIZE`]) and `budget` cuts kept per node (smallest first).
///
/// # Panics
///
/// Panics if `max_size` exceeds [`MAX_CUT_SIZE`] or is zero.
pub fn enumerate_cuts(mig: &Mig, max_size: usize, budget: usize) -> CutSet {
    assert!(
        (1..=MAX_CUT_SIZE).contains(&max_size),
        "cut size must be between 1 and {MAX_CUT_SIZE}"
    );
    let mut cuts: Vec<Vec<Cut>> = Vec::with_capacity(mig.len());
    for id in mig.node_ids() {
        let node_cuts = match mig.node(id) {
            MigNode::Constant => vec![Cut::empty()],
            MigNode::Input(_) => vec![Cut::trivial(id)],
            MigNode::Majority(children) => {
                let mut merged: Vec<Cut> = Vec::new();
                let [a, b, c] = children;
                for ca in &cuts[a.node().index()] {
                    for cb in &cuts[b.node().index()] {
                        for cc in &cuts[c.node().index()] {
                            let Some(cut) = Cut::merge(ca, cb, cc, max_size) else {
                                continue;
                            };
                            if merged.iter().any(|m| m.dominates(&cut)) {
                                continue;
                            }
                            merged.retain(|m| !cut.dominates(m));
                            merged.push(cut);
                        }
                    }
                }
                merged.sort_by_key(Cut::size);
                merged.truncate(budget.saturating_sub(1).max(1));
                merged.push(Cut::trivial(id));
                merged
            }
        };
        cuts.push(node_cuts);
    }
    CutSet { cuts }
}

/// Computes the truth table of the cone rooted at `root` over the cut's
/// leaves (variable `i` = `cut.leaves()[i]`), as the low `2^size` bits of a
/// `u64`.
///
/// Returns `None` if the cone reaches a non-leaf input or constant that is
/// not part of the cut (i.e. the cut is not a valid cut of `root`) — except
/// the constant node, which always evaluates to 0.
pub fn cone_function(mig: &Mig, root: NodeId, cut: &Cut) -> Option<u64> {
    debug_assert!(cut.size() <= MAX_CUT_SIZE);
    let mut memo: HashMap<NodeId, u64> = HashMap::new();
    for (i, &leaf) in cut.leaves().iter().enumerate() {
        memo.insert(leaf, TruthTable::variable(cut.size().max(1), i).blocks()[0]);
    }
    memo.entry(NodeId::CONSTANT).or_insert(0);
    eval(mig, root, &mut memo)
}

fn eval(mig: &Mig, node: NodeId, memo: &mut HashMap<NodeId, u64>) -> Option<u64> {
    if let Some(&w) = memo.get(&node) {
        return Some(w);
    }
    let MigNode::Majority(children) = mig.node(node) else {
        return None; // an input outside the cut: invalid cone
    };
    let children = *children;
    let mut words = [0u64; 3];
    for (w, child) in words.iter_mut().zip(&children) {
        let value = eval(mig, child.node(), memo)?;
        *w = if child.is_complemented() {
            !value
        } else {
            value
        };
    }
    let result = (words[0] & words[1]) | (words[0] & words[2]) | (words[1] & words[2]);
    memo.insert(node, result);
    Some(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::Signal;

    fn sample() -> (Mig, Signal, Signal, Signal, Signal, Signal) {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.and(a, b);
        let y = mig.or(x, c);
        mig.add_output("f", y);
        (mig, a, b, c, x, y)
    }

    #[test]
    fn trivial_cuts_exist_everywhere() {
        let (mig, a, _, _, x, y) = sample();
        let cuts = enumerate_cuts(&mig, 4, 8);
        assert_eq!(cuts.of(a.node()), &[Cut::trivial(a.node())]);
        assert!(cuts.of(x.node()).contains(&Cut::trivial(x.node())));
        assert!(cuts.of(y.node()).contains(&Cut::trivial(y.node())));
    }

    #[test]
    fn root_cut_over_inputs_is_found() {
        let (mig, a, b, c, _, y) = sample();
        let cuts = enumerate_cuts(&mig, 4, 8);
        let mut leaves = vec![a.node(), b.node(), c.node()];
        leaves.sort_unstable();
        let found = cuts
            .of(y.node())
            .iter()
            .any(|cut| cut.leaves() == leaves.as_slice());
        assert!(found, "cut {{a,b,c}} must be enumerated for the root");
    }

    #[test]
    fn cone_function_evaluates_the_cone() {
        let (mig, a, b, c, _, y) = sample();
        let mut leaves = vec![a.node(), b.node(), c.node()];
        leaves.sort_unstable();
        let cut = Cut {
            leaves: leaves.clone(),
        };
        let f = cone_function(&mig, y.node(), &cut).expect("valid cut");
        // (a ∧ b) ∨ c over sorted leaves (a, b, c in creation order).
        let va = TruthTable::variable(3, 0).blocks()[0];
        let vb = TruthTable::variable(3, 1).blocks()[0];
        let vc = TruthTable::variable(3, 2).blocks()[0];
        assert_eq!(f & 0xFF, ((va & vb) | vc) & 0xFF);
    }

    #[test]
    fn cone_function_rejects_incomplete_cuts() {
        let (mig, a, b, _, _, y) = sample();
        let mut leaves = vec![a.node(), b.node()];
        leaves.sort_unstable();
        let cut = Cut { leaves };
        assert_eq!(cone_function(&mig, y.node(), &cut), None);
    }

    #[test]
    fn merge_respects_size_limit() {
        let a = Cut::trivial(NodeId::from_index(1));
        let b = Cut::trivial(NodeId::from_index(2));
        let c = Cut::trivial(NodeId::from_index(3));
        assert!(Cut::merge(&a, &b, &c, 3).is_some());
        assert!(Cut::merge(&a, &b, &c, 2).is_none());
        let merged = Cut::merge(&a, &b, &b, 2).expect("duplicates collapse");
        assert_eq!(merged.size(), 2);
    }

    #[test]
    fn domination_filters_supersets() {
        let (mig, _, _, c, x, y) = sample();
        let cuts = enumerate_cuts(&mig, 4, 8);
        // {x, c} and {a, b, c} both exist; neither dominates the other is
        // false: {x,c} has fewer leaves but different nodes. Check that no
        // cut in the set is dominated by another.
        let set = cuts.of(y.node());
        for (i, ci) in set.iter().enumerate() {
            for (j, cj) in set.iter().enumerate() {
                if i != j && ci != cj {
                    assert!(
                        !ci.dominates(cj) || cj.size() <= ci.size(),
                        "dominated cut kept: {ci:?} ⊂ {cj:?}"
                    );
                }
            }
        }
        let _ = (x, c);
    }

    #[test]
    fn budget_caps_cut_count() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.maj(acc, x, xs[0]);
        }
        mig.add_output("f", acc);
        let cuts = enumerate_cuts(&mig, 4, 3);
        for id in mig.majority_ids() {
            assert!(cuts.of(id).len() <= 3, "budget exceeded at {id}");
        }
    }
}
