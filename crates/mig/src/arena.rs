//! In-place MIG rewriting on a reusable arena.
//!
//! The rebuild-based passes of [`crate::rewrite`] reconstruct the entire
//! graph twice per pass (a remap rebuild followed by a [`Mig::cleaned`]
//! copy), so one `effort = 4` run of Algorithm 1 performs up to ~40
//! whole-graph copies, each allocating a fresh structural-hash table. The
//! [`RewriteArena`] eliminates those copies: the graph is imported **once**,
//! every pass mutates it in place, and a **single** compaction at the end of
//! the run produces the canonical result [`Mig`].
//!
//! The arena supports the four ingredients in-place rewriting needs:
//!
//! * **Incremental re-strashing** — the internal `set_children` step rewrites
//!   one node's child triple, re-sorts it, re-applies the Ω.M creation-time
//!   simplification, and moves the node's structural-hash entry, merging the
//!   node into a structural duplicate when one exists.
//! * **Forwarding** — a replaced node leaves a complement-carrying forward
//!   pointer behind (path-compressed on access), so parents and outputs
//!   resolve to the replacement lazily instead of being rebuilt eagerly.
//! * **Generation-marked dead nodes** — every pass bumps a generation
//!   counter; nodes that die (replaced, merged, or unreferenced) are stamped
//!   with the generation they died in and reclaimed reference-count-style,
//!   releasing their whole dangling cone immediately.
//! * **Iterator-safe traversal** — passes walk a topological order of the
//!   live cone that is snapshotted per pass (and the order buffer is
//!   reused), so nodes appended mid-pass never invalidate the walk;
//!   [`RewriteArena::live_majority_ids`] exposes the same traversal for
//!   inspection.
//!
//! The arena itself is reusable: [`RewriteArena::rewrite_with_stats`] clears
//! and refills the node table, hash map, and scratch buffers in place, so a
//! driver compiling many circuits (the batch pipeline, the Table 1 harness)
//! pays for the allocations once per worker thread instead of ~40 times per
//! `rewrite` call.
//!
//! # Examples
//!
//! ```
//! use mig::{Mig, arena::RewriteArena, equiv::check_equivalence};
//!
//! let mut mig = Mig::new();
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let f = mig.maj(!a, !b, mig.constant(true));
//! mig.add_output("f", f);
//!
//! let mut arena = RewriteArena::new();
//! let (rewritten, stats) = arena.rewrite_with_stats(&mig, 4);
//! assert!(check_equivalence(&mig, &rewritten, 16, 0).unwrap().holds());
//! assert!(stats.nodes_after <= stats.nodes_before);
//! // The arena never grew beyond the live graph by more than the few
//! // transient nodes the passes appended.
//! assert!(arena.peak_arena_len() >= rewritten.len());
//! ```

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::algebra::{find_shared_pair, invert_triple, trivial_triple};
use crate::graph::Mig;
use crate::node::MigNode;
use crate::rewrite::RewriteStats;
use crate::signal::{NodeId, Signal};

/// Sentinel in the `dead_at` table: the node is alive.
const LIVE: u32 = u32::MAX;

/// Wall-clock and arena-size profile of one in-place rewrite run, used by
/// the pipeline bench to compare the engines pass by pass.
#[derive(Debug, Clone, Default)]
pub struct RewriteProfile {
    /// Time spent importing the live cone into the arena.
    pub load: Duration,
    /// Total time of the Ω.M/Ω.D distributivity passes.
    pub distributivity: Duration,
    /// Total time of the Ω.A associativity passes.
    pub associativity: Duration,
    /// Total time of the Ω.I inverter-redistribution passes.
    pub inverter: Duration,
    /// Time of the single end-of-rewrite compaction.
    pub compact: Duration,
    /// Largest node-arena length observed during the run (live + dead
    /// slots). The rebuild engine's equivalent is the sum of every
    /// intermediate graph it allocates.
    pub peak_arena_nodes: usize,
}

impl RewriteProfile {
    /// Total time across all rewriting passes (excluding load/compact).
    pub fn pass_total(&self) -> Duration {
        self.distributivity + self.associativity + self.inverter
    }
}

/// A mutable rewriting workspace for one MIG.
///
/// See the [module documentation](self) for the design. The typical entry
/// points are [`RewriteArena::rewrite`] / [`RewriteArena::rewrite_with_stats`],
/// which run the full Algorithm 1 schedule; the individual passes are
/// exposed for testing and profiling.
#[derive(Debug, Clone)]
pub struct RewriteArena {
    nodes: Vec<MigNode>,
    /// `forward[i]` is the signal node `i` now stands for; `Signal(i, +)`
    /// when the node is not forwarded. Path-compressed on resolution.
    forward: Vec<Signal>,
    /// Live references (parent child-edges and primary outputs) that
    /// currently resolve to each node.
    refcount: Vec<u32>,
    /// Generation in which the node died, or [`LIVE`].
    dead_at: Vec<u32>,
    /// DFS visitation epoch per node (avoids clearing a visited set).
    mark: Vec<u32>,
    strash: HashMap<[Signal; 3], NodeId>,
    inputs: Vec<NodeId>,
    input_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
    /// Bumped once per pass; stamps dead nodes.
    generation: u32,
    epoch: u32,
    live_majority: usize,
    peak_len: usize,
    profile: RewriteProfile,
    // Reusable scratch buffers.
    order: Vec<NodeId>,
    stack: Vec<(NodeId, u8)>,
    collect_stack: Vec<NodeId>,
    scratch_map: Vec<Signal>,
}

impl Default for RewriteArena {
    fn default() -> Self {
        RewriteArena::new()
    }
}

impl RewriteArena {
    /// Creates an empty arena. All buffers are allocated lazily on first
    /// [`load`](RewriteArena::load) and reused across runs.
    pub fn new() -> Self {
        RewriteArena {
            nodes: Vec::new(),
            forward: Vec::new(),
            refcount: Vec::new(),
            dead_at: Vec::new(),
            mark: Vec::new(),
            strash: HashMap::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            generation: 0,
            epoch: 0,
            live_majority: 0,
            peak_len: 0,
            profile: RewriteProfile::default(),
            order: Vec::new(),
            stack: Vec::new(),
            collect_stack: Vec::new(),
            scratch_map: Vec::new(),
        }
    }

    /// Runs `effort` cycles of the paper's Algorithm 1 **in place** and
    /// returns the compacted result. Equivalent in function to
    /// [`crate::rewrite::rewrite_rebuild`], without the per-pass graph
    /// reconstructions.
    pub fn rewrite(&mut self, mig: &Mig, effort: usize) -> Mig {
        self.rewrite_with_stats(mig, effort).0
    }

    /// Like [`RewriteArena::rewrite`], also returning pass statistics.
    pub fn rewrite_with_stats(&mut self, mig: &Mig, effort: usize) -> (Mig, RewriteStats) {
        self.profile = RewriteProfile::default();
        let clock = Instant::now();
        self.load(mig);
        self.profile.load = clock.elapsed();

        let mut stats = RewriteStats {
            nodes_before: mig.num_majority_nodes(),
            ..RewriteStats::default()
        };
        for _ in 0..effort {
            let size_at_cycle_start = self.live_majority;

            // Ω.M ; Ω.D(R→L)
            let clock = Instant::now();
            let dist_a = self.pass_distributivity();
            self.profile.distributivity += clock.elapsed();

            // Ω.A ; Ω.C  (commutativity is implicit in canonical sorting)
            let clock = Instant::now();
            let assoc = self.pass_associativity();
            self.profile.associativity += clock.elapsed();

            // Ω.M ; Ω.D(R→L)
            let clock = Instant::now();
            let dist_b = self.pass_distributivity();
            self.profile.distributivity += clock.elapsed();

            // Ω.I(R→L)(1–3) followed by a final Ω.I(R→L) sweep.
            let clock = Instant::now();
            let flips = self.pass_inverter() + self.pass_inverter();
            self.profile.inverter += clock.elapsed();

            stats.distributivity_applied += dist_a + dist_b;
            stats.associativity_applied += assoc;
            stats.inverter_flips += flips;
            stats.cycles += 1;
            stats.size_per_cycle.push(self.live_majority);
            let unchanged = self.live_majority == size_at_cycle_start
                && dist_a + dist_b == 0
                && assoc == 0
                && flips == 0;
            if unchanged {
                break;
            }
        }

        let clock = Instant::now();
        let result = self.compact();
        self.profile.compact = clock.elapsed();
        self.profile.peak_arena_nodes = self.peak_len;
        stats.nodes_after = result.num_majority_nodes();
        (result, stats)
    }

    /// The wall-clock/arena-size profile of the most recent rewrite run.
    pub fn profile(&self) -> &RewriteProfile {
        &self.profile
    }

    /// Number of live majority nodes currently in the arena.
    pub fn live_majority_count(&self) -> usize {
        self.live_majority
    }

    /// Current arena length (live and dead slots).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the arena holds no graph.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Largest arena length reached during the most recent run.
    pub fn peak_arena_len(&self) -> usize {
        self.peak_len
    }

    /// The pass generation counter (bumped once per pass; dead nodes are
    /// stamped with the generation they died in).
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Whether the node is alive (not replaced, merged, or reclaimed).
    pub fn is_live(&self, id: NodeId) -> bool {
        self.dead_at[id.index()] == LIVE
    }

    /// The generation in which `id` died, or `None` while it is alive.
    pub fn died_in_generation(&self, id: NodeId) -> Option<u32> {
        let gen = self.dead_at[id.index()];
        (gen != LIVE).then_some(gen)
    }

    /// Iterates over the live majority nodes in arena order.
    ///
    /// The iterator borrows the arena, so the traversal cannot be
    /// invalidated by concurrent mutation; passes use a per-pass snapshot of
    /// the topological order internally for the same reason.
    pub fn live_majority_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len())
            .map(NodeId::from_index)
            .filter(|id| self.dead_at[id.index()] == LIVE && self.nodes[id.index()].is_majority())
    }

    // -----------------------------------------------------------------
    // Import / compaction
    // -----------------------------------------------------------------

    /// Clears the arena (keeping its allocations) and imports the cone of
    /// `mig` reachable from the primary outputs.
    pub fn load(&mut self, mig: &Mig) {
        self.nodes.clear();
        self.forward.clear();
        self.refcount.clear();
        self.dead_at.clear();
        self.mark.clear();
        self.strash.clear();
        self.inputs.clear();
        self.input_names.clear();
        self.outputs.clear();
        self.generation = 0;
        self.epoch = 0;
        self.live_majority = 0;

        self.push_node(MigNode::Constant);
        for k in 0..mig.num_inputs() {
            let id = self.push_node(MigNode::Input(k as u32));
            self.inputs.push(id);
            self.input_names.push(mig.input_name(k).to_string());
        }

        let reachable = mig.reachable_mask();
        self.scratch_map.clear();
        self.scratch_map.resize(mig.len(), Signal::FALSE);
        for (k, &old_id) in mig.inputs().iter().enumerate() {
            self.scratch_map[old_id.index()] = Signal::new(self.inputs[k], false);
        }
        for old_id in mig.node_ids() {
            if !reachable[old_id.index()] {
                continue;
            }
            if let MigNode::Majority(children) = mig.node(old_id) {
                let mapped = children
                    .map(|c| self.scratch_map[c.node().index()].complement_if(c.is_complemented()));
                let signal = self.maj(mapped[0], mapped[1], mapped[2]);
                self.scratch_map[old_id.index()] = signal;
            }
        }
        for (name, signal) in mig.outputs() {
            let mapped =
                self.scratch_map[signal.node().index()].complement_if(signal.is_complemented());
            self.refcount[mapped.node().index()] += 1;
            self.outputs.push((name.clone(), mapped));
        }

        // Ω.M merges during the import can orphan already-imported nodes
        // (their only would-be parent simplified away); reclaim them so the
        // fanout counts the passes rely on match the live cone exactly.
        self.collect_unreferenced();
        self.peak_len = self.nodes.len();
    }

    /// The single end-of-rewrite compaction: rebuilds the live cone into a
    /// fresh canonical [`Mig`] (children before parents, dead slots and
    /// forward pointers dropped). All primary inputs are preserved.
    pub fn compact(&mut self) -> Mig {
        let mut result = Mig::with_capacity(self.live_majority);
        self.scratch_map.clear();
        self.scratch_map.resize(self.nodes.len(), Signal::FALSE);
        for k in 0..self.inputs.len() {
            let id = self.inputs[k];
            let signal = result.add_input(self.input_names[k].clone());
            self.scratch_map[id.index()] = signal;
        }

        self.compute_topo_order();
        let order = std::mem::take(&mut self.order);
        for &id in &order {
            let MigNode::Majority(children) = self.nodes[id.index()] else {
                continue;
            };
            let mut mapped = [Signal::FALSE; 3];
            for (k, child) in children.iter().enumerate() {
                let resolved = self.resolve(*child);
                mapped[k] = self.scratch_map[resolved.node().index()]
                    .complement_if(resolved.is_complemented());
            }
            let signal = result.maj(mapped[0], mapped[1], mapped[2]);
            self.scratch_map[id.index()] = signal;
        }
        self.order = order;

        for k in 0..self.outputs.len() {
            let signal = self.outputs[k].1;
            let resolved = self.resolve(signal);
            let mapped =
                self.scratch_map[resolved.node().index()].complement_if(resolved.is_complemented());
            let name = self.outputs[k].0.clone();
            result.add_output(name, mapped);
        }
        result
    }

    // -----------------------------------------------------------------
    // Core mutation primitives
    // -----------------------------------------------------------------

    fn push_node(&mut self, node: MigNode) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        self.forward.push(Signal::new(id, false));
        self.refcount.push(0);
        self.dead_at.push(LIVE);
        self.mark.push(0);
        self.peak_len = self.peak_len.max(self.nodes.len());
        id
    }

    /// Resolves a signal through the forwarding chain (path-compressing),
    /// returning the live signal it currently stands for.
    fn resolve(&mut self, signal: Signal) -> Signal {
        let idx = signal.node().index();
        let fwd = self.forward[idx];
        if fwd.node() == signal.node() {
            return signal;
        }
        let root = self.resolve(fwd);
        self.forward[idx] = root;
        root.complement_if(signal.is_complemented())
    }

    /// Creates (or reuses) the majority node `⟨a b c⟩` in the arena:
    /// resolves the operands, applies Ω.M, and structurally hashes the
    /// sorted triple. A freshly created node starts with zero references;
    /// the caller's edge to it is accounted by [`set_children`] /
    /// [`replace`] / the output table.
    fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut triple = [self.resolve(a), self.resolve(b), self.resolve(c)];
        triple.sort_unstable();
        let [x, y, z] = triple;
        if x == y || y == z {
            return y;
        }
        if x.node() == y.node() {
            return z;
        }
        if y.node() == z.node() {
            return x;
        }
        if let Some(&id) = self.strash.get(&triple) {
            return Signal::new(id, false);
        }
        let id = self.push_node(MigNode::Majority(triple));
        self.strash.insert(triple, id);
        for child in triple {
            self.refcount[child.node().index()] += 1;
        }
        self.live_majority += 1;
        Signal::new(id, false)
    }

    /// Looks up an existing live node `⟨a b c⟩` without creating one.
    fn find_maj(&mut self, a: Signal, b: Signal, c: Signal) -> Option<Signal> {
        let mut triple = [self.resolve(a), self.resolve(b), self.resolve(c)];
        triple.sort_unstable();
        if triple[0].node() == triple[1].node() || triple[1].node() == triple[2].node() {
            return None;
        }
        self.strash.get(&triple).map(|&id| Signal::new(id, false))
    }

    /// Rewrites the child triple of live node `n` in place, incrementally
    /// re-strashing it: the triple is resolved, re-sorted, Ω.M-simplified,
    /// and its structural-hash entry moved. If the new triple simplifies or
    /// collides with an existing node, `n` is replaced (forwarded) instead
    /// and the replacement signal is returned.
    fn set_children(&mut self, n: NodeId, triple: [Signal; 3]) -> Option<Signal> {
        let mut resolved = triple.map(|s| self.resolve(s));
        resolved.sort_unstable();
        let idx = n.index();
        let MigNode::Majority(old) = self.nodes[idx] else {
            unreachable!("set_children on a non-majority node");
        };
        if resolved == old {
            return None;
        }

        let [x, y, z] = resolved;
        let simplified = if x == y || y == z {
            Some(y)
        } else if x.node() == y.node() {
            Some(z)
        } else if y.node() == z.node() {
            Some(x)
        } else {
            None
        };
        if let Some(signal) = simplified {
            self.replace(n, signal);
            return Some(signal);
        }
        if let Some(&existing) = self.strash.get(&resolved) {
            debug_assert_ne!(existing, n, "node registered under a stale key");
            let signal = Signal::new(existing, false);
            self.replace(n, signal);
            return Some(signal);
        }

        // Add the new edges before dropping the old ones so a child shared
        // between the two triples never transits through refcount zero.
        for child in resolved {
            self.refcount[child.node().index()] += 1;
        }
        self.strash.remove(&old);
        self.nodes[idx] = MigNode::Majority(resolved);
        self.strash.insert(resolved, n);
        for child in old {
            self.release_edge(child);
        }
        None
    }

    /// Replaces live node `n` by `target`: transfers all references,
    /// installs the forward pointer, stamps the death generation, and
    /// releases `n`'s own child edges (reclaiming any cone that dies).
    fn replace(&mut self, n: NodeId, target: Signal) {
        let target = self.resolve(target);
        debug_assert_ne!(target.node(), n, "self-replacement");
        let idx = n.index();
        debug_assert_eq!(self.dead_at[idx], LIVE, "replacing a dead node");
        let MigNode::Majority(children) = self.nodes[idx] else {
            unreachable!("only majority nodes are replaced");
        };
        let refs = self.refcount[idx];
        self.refcount[idx] = 0;
        self.refcount[target.node().index()] += refs;
        self.dead_at[idx] = self.generation;
        self.live_majority -= 1;
        self.strash.remove(&children);
        self.forward[idx] = target;
        for child in children {
            self.release_edge(child);
        }
    }

    /// Drops one reference to (the resolution of) `child`, reclaiming its
    /// cone if the count reaches zero.
    fn release_edge(&mut self, child: Signal) {
        let resolved = self.resolve(child);
        let idx = resolved.node().index();
        debug_assert!(self.refcount[idx] > 0, "refcount underflow");
        self.refcount[idx] -= 1;
        if self.refcount[idx] == 0 && self.nodes[idx].is_majority() && self.dead_at[idx] == LIVE {
            self.collect(resolved.node());
        }
    }

    /// Reclaims an unreferenced majority node and, transitively, every node
    /// of its cone whose reference count drops to zero.
    fn collect(&mut self, n: NodeId) {
        let mut work = std::mem::take(&mut self.collect_stack);
        work.push(n);
        while let Some(id) = work.pop() {
            let idx = id.index();
            if self.dead_at[idx] != LIVE || self.refcount[idx] != 0 {
                continue;
            }
            let MigNode::Majority(children) = self.nodes[idx] else {
                continue;
            };
            self.dead_at[idx] = self.generation;
            self.live_majority -= 1;
            self.strash.remove(&children);
            for child in children {
                let resolved = self.resolve(child);
                let child_idx = resolved.node().index();
                self.refcount[child_idx] -= 1;
                if self.refcount[child_idx] == 0
                    && self.nodes[child_idx].is_majority()
                    && self.dead_at[child_idx] == LIVE
                {
                    work.push(resolved.node());
                }
            }
        }
        self.collect_stack = work;
    }

    fn collect_unreferenced(&mut self) {
        for idx in 0..self.nodes.len() {
            if self.dead_at[idx] == LIVE && self.refcount[idx] == 0 && self.nodes[idx].is_majority()
            {
                self.collect(NodeId::from_index(idx));
            }
        }
    }

    /// Resolves the stored children of live node `n` and re-strashes it if
    /// anything changed. Returns `false` when the node is dead or got merged
    /// away by the normalization.
    fn normalize(&mut self, n: NodeId) -> bool {
        let idx = n.index();
        if self.dead_at[idx] != LIVE {
            return false;
        }
        let MigNode::Majority(children) = self.nodes[idx] else {
            return false;
        };
        let resolved = children.map(|s| self.resolve(s));
        if resolved == children {
            return true;
        }
        self.set_children(n, resolved).is_none()
    }

    // -----------------------------------------------------------------
    // Traversal
    // -----------------------------------------------------------------

    /// Fills `self.order` with a topological order (children first) of the
    /// live majority cone reachable from the outputs, resolving output
    /// signals on the way.
    fn compute_topo_order(&mut self) {
        self.epoch += 1;
        self.order.clear();
        for k in 0..self.outputs.len() {
            let signal = self.outputs[k].1;
            let resolved = self.resolve(signal);
            self.outputs[k].1 = resolved;
            self.visit(resolved.node());
        }
    }

    fn visit(&mut self, root: NodeId) {
        if !self.nodes[root.index()].is_majority() || self.mark[root.index()] == self.epoch {
            return;
        }
        self.mark[root.index()] = self.epoch;
        let mut stack = std::mem::take(&mut self.stack);
        stack.push((root, 0));
        while let Some(top) = stack.last_mut() {
            let (id, next) = *top;
            if next == 3 {
                stack.pop();
                self.order.push(id);
                continue;
            }
            top.1 = next + 1;
            let MigNode::Majority(children) = self.nodes[id.index()] else {
                unreachable!("only majority nodes are stacked");
            };
            let child = self.resolve(children[next as usize]).node();
            if self.nodes[child.index()].is_majority() && self.mark[child.index()] != self.epoch {
                self.mark[child.index()] = self.epoch;
                stack.push((child, 0));
            }
        }
        self.stack = stack;
    }

    // -----------------------------------------------------------------
    // Rewriting passes (in-place twins of the rebuild passes)
    // -----------------------------------------------------------------

    /// In-place right-to-left distributivity pass:
    /// `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩` wherever two single-fanout
    /// majority children share two signals. Returns the number of
    /// applications.
    pub fn pass_distributivity(&mut self) -> usize {
        self.generation += 1;
        self.compute_topo_order();
        let order = std::mem::take(&mut self.order);
        let mut applied = 0;
        for &n in &order {
            if !self.normalize(n) {
                continue;
            }
            let MigNode::Majority(children) = self.nodes[n.index()] else {
                continue;
            };
            'pairs: for i in 0..3 {
                for j in (i + 1)..3 {
                    let (ci, cj, z) = (children[i], children[j], children[3 - i - j]);
                    if let Some(shared) = self.match_distributivity(ci, cj) {
                        let inner = self.maj(shared.0, shared.1, z);
                        self.set_children(n, [shared.2[0], shared.2[1], inner]);
                        applied += 1;
                        break 'pairs;
                    }
                }
            }
        }
        self.order = order;
        applied
    }

    /// Checks the distributivity pattern on two children, returning
    /// `(rest_a, rest_b, common)` when it matches.
    fn match_distributivity(
        &mut self,
        ci: Signal,
        cj: Signal,
    ) -> Option<(Signal, Signal, [Signal; 2])> {
        let ti = self.effective_triple(ci)?;
        let tj = self.effective_triple(cj)?;
        if self.refcount[ci.node().index()] != 1 || self.refcount[cj.node().index()] != 1 {
            return None;
        }
        let shared = find_shared_pair(&ti, &tj)?;
        Some((shared.rest_a, shared.rest_b, shared.common))
    }

    /// The child triple a signal stands for, pushing a complemented edge
    /// into the children via Ω.I.
    fn effective_triple(&self, signal: Signal) -> Option<[Signal; 3]> {
        let MigNode::Majority(children) = self.nodes[signal.node().index()] else {
            return None;
        };
        Some(if signal.is_complemented() {
            invert_triple(&children)
        } else {
            children
        })
    }

    /// In-place associativity pass: `⟨x u ⟨y u z⟩⟩ → ⟨z u ⟨y u x⟩⟩` when the
    /// new inner triple already exists (sharing gain) or simplifies
    /// trivially. Returns the number of applications.
    pub fn pass_associativity(&mut self) -> usize {
        self.generation += 1;
        self.compute_topo_order();
        let order = std::mem::take(&mut self.order);
        let mut applied = 0;
        for &n in &order {
            if !self.normalize(n) {
                continue;
            }
            let MigNode::Majority(children) = self.nodes[n.index()] else {
                continue;
            };
            if let Some((outer_a, outer_b, inner)) = self.try_associativity(&children) {
                self.set_children(n, [outer_a, outer_b, inner]);
                applied += 1;
            }
        }
        self.order = order;
        applied
    }

    /// The two indices of a triple other than `excluded`, in ascending
    /// order (matching the candidate order of the rebuild engine).
    #[inline]
    fn other_two(excluded: usize) -> [usize; 2] {
        match excluded {
            0 => [1, 2],
            1 => [0, 2],
            _ => [0, 1],
        }
    }

    fn try_associativity(&mut self, children: &[Signal; 3]) -> Option<(Signal, Signal, Signal)> {
        for g_pos in 0..3 {
            let g = children[g_pos];
            // Only restructure through a plain edge to a single-fanout
            // child, so the old inner node disappears and size cannot grow.
            if g.is_complemented() || self.refcount[g.node().index()] != 1 {
                continue;
            }
            let MigNode::Majority(inner_children) = self.nodes[g.node().index()] else {
                continue;
            };
            let outer_rest = Self::other_two(g_pos).map(|k| children[k]);
            // The axiom requires a signal `u` shared (exactly, with
            // polarity) between the outer children and the inner triple.
            for u_pos in 0..2 {
                let u = outer_rest[u_pos];
                let Some(u_inner) = inner_children.iter().position(|&s| s == u) else {
                    continue;
                };
                let x = outer_rest[1 - u_pos];
                let inner_rest = Self::other_two(u_inner).map(|k| inner_children[k]);
                for r in 0..2 {
                    let swap = inner_rest[r]; // moves to the outer node
                    let other = inner_rest[1 - r]; // stays inner
                    if trivial_triple(other, u, x) || self.find_maj(other, u, x).is_some() {
                        let inner_sig = self.maj(other, u, x);
                        return Some((swap, u, inner_sig));
                    }
                }
            }
        }
        None
    }

    /// In-place inverter-propagation pass Ω.I R→L(1–3): every node with two
    /// or three complemented non-constant children is replaced by the
    /// complement of its Ω.I-flipped twin. Because the pass walks a
    /// topological order, a flip cascades through all of its transitive
    /// parents within the same sweep. Returns the number of flipped nodes.
    pub fn pass_inverter(&mut self) -> usize {
        self.generation += 1;
        self.compute_topo_order();
        let order = std::mem::take(&mut self.order);
        let mut flips = 0;
        for &n in &order {
            if !self.normalize(n) {
                continue;
            }
            let MigNode::Majority(children) = self.nodes[n.index()] else {
                continue;
            };
            let real_complemented = children
                .iter()
                .filter(|c| c.is_complemented() && !c.is_constant())
                .count();
            if real_complemented >= 2 {
                let flipped = self.maj(!children[0], !children[1], !children[2]);
                debug_assert_ne!(flipped.node(), n, "flip resolved to the node itself");
                self.replace(n, !flipped);
                flips += 1;
            }
        }
        self.order = order;
        flips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::check_equivalence;
    use crate::rewrite::{rewrite_rebuild, rewrite_rebuild_with_stats};

    fn assert_equivalent(a: &Mig, b: &Mig) {
        assert!(
            check_equivalence(a, b, 32, 0xBEEF).unwrap().holds(),
            "in-place rewrite changed the function"
        );
    }

    fn adder(bits: usize) -> Mig {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", bits);
        let ys = mig.add_inputs("y", bits);
        let mut carry = Signal::FALSE;
        for i in 0..bits {
            let sum = mig.xor3(xs[i], ys[i], carry);
            carry = mig.maj(xs[i], ys[i], carry);
            mig.add_output(format!("s{i}"), sum);
        }
        mig.add_output("cout", carry);
        mig
    }

    #[test]
    fn load_then_compact_is_cleaned_copy() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let used = mig.and(a, b);
        let _dangling = mig.or(a, b);
        mig.add_output("f", !used);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        assert_eq!(arena.live_majority_count(), 1);
        let out = arena.compact();
        assert_eq!(out.num_majority_nodes(), 1);
        assert_eq!(out.num_inputs(), 2);
        assert!(out.outputs()[0].1.is_complemented());
        assert_equivalent(&mig, &out);
    }

    #[test]
    fn inverter_pass_flips_in_place() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n = mig.maj(!a, !b, c);
        mig.add_output("f", n);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        let flips = arena.pass_inverter();
        assert_eq!(flips, 1);
        let out = arena.compact();
        assert_equivalent(&mig, &out);
        let (_, out_sig) = &out.outputs()[0];
        assert!(out_sig.is_complemented());
    }

    #[test]
    fn inverter_pass_cascades_in_one_sweep() {
        // A chain of multi-complement nodes: the topological sweep must
        // resolve every level in a single pass, like the rebuild engine.
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 8);
        let mut acc = mig.maj(!xs[0], !xs[1], xs[2]);
        for i in 2..8 {
            acc = mig.maj(!acc, !xs[i], xs[i - 1]);
        }
        mig.add_output("f", acc);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        arena.pass_inverter();
        arena.pass_inverter();
        let out = arena.compact();
        assert_equivalent(&mig, &out);
        for id in out.majority_ids() {
            let children = out.node(id).children().unwrap();
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            assert!(real <= 1, "node {id} still has {real} complements");
        }
    }

    #[test]
    fn distributivity_pass_merges_shared_pairs_in_place() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let left = mig.maj(x, y, u);
        let right = mig.maj(x, y, v);
        let top = mig.maj(left, right, z);
        mig.add_output("f", top);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        let applied = arena.pass_distributivity();
        assert_eq!(applied, 1);
        assert_eq!(arena.live_majority_count(), 2);
        let out = arena.compact();
        assert_eq!(out.num_majority_nodes(), 2);
        assert_equivalent(&mig, &out);
    }

    #[test]
    fn distributivity_respects_live_fanout() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let left = mig.maj(x, y, u);
        let right = mig.maj(x, y, v);
        let top = mig.maj(left, right, z);
        mig.add_output("f", top);
        mig.add_output("g", left); // left has fanout 2
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        assert_eq!(arena.pass_distributivity(), 0);
        assert_equivalent(&mig, &arena.compact());
    }

    #[test]
    fn associativity_pass_shares_existing_nodes() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let u = mig.add_input("u");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let g = mig.maj(y, u, x);
        mig.add_output("g", g);
        let inner = mig.maj(y, u, z);
        let f = mig.maj(x, u, inner);
        mig.add_output("f", f);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        let applied = arena.pass_associativity();
        assert_eq!(applied, 1);
        let out = arena.compact();
        assert_eq!(out.num_majority_nodes(), 2);
        assert_equivalent(&mig, &out);
    }

    #[test]
    fn full_rewrite_matches_rebuild_on_adders() {
        let mig = adder(4);
        let mut arena = RewriteArena::new();
        let (inplace, stats) = arena.rewrite_with_stats(&mig, 4);
        let (rebuild, rebuild_stats) = rewrite_rebuild_with_stats(&mig, 4);
        assert_equivalent(&mig, &inplace);
        assert_equivalent(&mig, &rebuild);
        assert!(
            inplace.num_majority_nodes() <= rebuild.num_majority_nodes(),
            "in-place ({}) must not lose to rebuild ({})",
            inplace.num_majority_nodes(),
            rebuild.num_majority_nodes()
        );
        assert_eq!(stats.nodes_before, rebuild_stats.nodes_before);
        assert_eq!(stats.nodes_after, inplace.num_majority_nodes());
        assert!(stats.cycles >= 1);
    }

    #[test]
    fn arena_is_reusable_across_circuits() {
        let mut arena = RewriteArena::new();
        let first = adder(3);
        let second = adder(5);
        let out1 = arena.rewrite(&first, 4);
        assert_equivalent(&first, &out1);
        let out2 = arena.rewrite(&second, 4);
        assert_equivalent(&second, &out2);
        // A rerun of the first circuit is deterministic.
        let out1_again = arena.rewrite(&first, 4);
        assert_eq!(
            crate::io::write_mig(&out1),
            crate::io::write_mig(&out1_again)
        );
    }

    #[test]
    fn dead_nodes_carry_their_generation() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n = mig.maj(!a, !b, !c);
        mig.add_output("f", n);
        let mut arena = RewriteArena::new();
        arena.load(&mig);
        let flipped_old = NodeId::from_index(4); // constant + 3 inputs, then n
        assert!(arena.is_live(flipped_old));
        assert_eq!(arena.died_in_generation(flipped_old), None);
        arena.pass_inverter();
        assert!(!arena.is_live(flipped_old));
        assert_eq!(arena.died_in_generation(flipped_old), Some(1));
        assert_eq!(arena.generation(), 1);
        assert_eq!(arena.live_majority_ids().count(), 1);
    }

    #[test]
    fn rewrite_reaches_fixpoint_without_exhausting_effort() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let mut arena = RewriteArena::new();
        let (_, stats) = arena.rewrite_with_stats(&mig, 100);
        assert!(stats.cycles < 100);
    }

    #[test]
    fn effort_zero_compacts_only() {
        let mig = adder(3);
        let mut arena = RewriteArena::new();
        let (out, stats) = arena.rewrite_with_stats(&mig, 0);
        assert_eq!(stats.cycles, 0);
        assert_eq!(out.num_majority_nodes(), mig.cleaned().num_majority_nodes());
        assert_equivalent(&mig, &out);
    }

    #[test]
    fn profile_reports_peak_arena() {
        let mig = adder(6);
        let mut arena = RewriteArena::new();
        let (out, _) = arena.rewrite_with_stats(&mig, 4);
        let profile = arena.profile();
        assert!(profile.peak_arena_nodes >= out.len());
        assert!(profile.peak_arena_nodes >= arena.len());
        // Matches rebuild on the result.
        let rebuild = rewrite_rebuild(&mig, 4);
        assert!(out.num_majority_nodes() <= rebuild.num_majority_nodes());
    }
}
