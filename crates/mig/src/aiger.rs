//! ASCII (`.aag`) and binary (`.aig`) AIGER import, plus ASCII export.
//!
//! The EPFL benchmark suite the paper evaluates on is distributed in the
//! AIGER format. This module reads combinational AIGER files into
//! MIGs (ANDs become majority nodes with a constant-0 child — the exact
//! "transposed AOIG" starting point of the paper) and writes MIGs back out,
//! decomposing full majority nodes into their AND/OR expansion.
//!
//! The binary format ([`parse_binary_aiger`]) shares the ASCII header
//! shape but encodes the AND section as delta-coded 7-bit varints; its
//! ordering discipline (each AND's operands are strictly smaller than its
//! output literal) makes forward references, duplicates, and cycles
//! unrepresentable, so the decoder only has to harden against truncation,
//! varint overflow, and header/section disagreement.
//!
//! Only combinational AIGs are supported (no latches).

use std::fmt;

use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::Signal;

/// Error produced while parsing an ASCII AIGER file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAigerError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseAigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseAigerError {}

/// Parses a combinational ASCII AIGER (`aag`) document into an MIG.
///
/// AND gates map to `⟨0 a b⟩`; inverters map to complemented edges. Latches
/// are rejected. Symbol-table names for inputs and outputs are honored.
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed headers, out-of-range literals,
/// sequential circuits, or undefined AND operands.
///
/// # Examples
///
/// ```
/// use mig::aiger::parse_aiger;
///
/// // f = a AND NOT b
/// let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 5\ni0 a\ni1 b\no0 f\n";
/// let mig = parse_aiger(src).unwrap();
/// assert_eq!(mig.num_inputs(), 2);
/// assert_eq!(mig.num_majority_nodes(), 1);
/// ```
pub fn parse_aiger(text: &str) -> Result<Mig, ParseAigerError> {
    let err = |line: usize, message: &str| ParseAigerError {
        line,
        message: message.to_string(),
    };
    let mut lines = text.lines().enumerate();
    // The 1-based number of the most recently consumed line, so truncated
    // documents report where the input actually stopped.
    let mut last_line = 1usize;

    let (_, header) = lines.next().ok_or_else(|| err(1, "empty document"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aag" {
        return Err(err(1, "expected header `aag M I L O A`"));
    }
    let parse_field = |s: &str| s.parse::<usize>().map_err(|_| err(1, "bad header field"));
    let max_var = parse_field(fields[1])?;
    let num_inputs = parse_field(fields[2])?;
    let num_latches = parse_field(fields[3])?;
    let num_outputs = parse_field(fields[4])?;
    let num_ands = parse_field(fields[5])?;
    if num_latches != 0 {
        return Err(err(1, "sequential AIGs (latches) are not supported"));
    }

    let mut mig = Mig::new();
    // literal → signal, indexed by variable (literal / 2).
    let mut map: Vec<Option<Signal>> = vec![None; max_var + 1];
    map[0] = Some(Signal::FALSE);

    let take_line = |what: &str,
                     lines: &mut std::iter::Enumerate<std::str::Lines<'_>>,
                     last_line: &mut usize|
     -> Result<(usize, String), ParseAigerError> {
        match lines.next() {
            Some((i, l)) => {
                *last_line = i + 1;
                Ok((i + 1, l.to_string()))
            }
            None => Err(err(
                *last_line,
                &format!("unexpected end of file reading {what}"),
            )),
        }
    };

    let mut input_vars = Vec::with_capacity(num_inputs);
    for k in 0..num_inputs {
        let (line_no, line) = take_line("an input literal", &mut lines, &mut last_line)?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| err(line_no, "bad input literal"))?;
        if !lit.is_multiple_of(2) || lit / 2 > max_var || lit == 0 {
            return Err(err(line_no, "input literal must be a fresh even literal"));
        }
        let signal = mig.add_input(format!("i{k}"));
        if map[lit / 2].is_some() {
            return Err(err(line_no, "duplicate variable definition"));
        }
        map[lit / 2] = Some(signal);
        input_vars.push(lit / 2);
    }

    // Each output keeps the line it was declared on, so errors discovered
    // later (an undefined literal) can point at the offending line.
    let mut output_lits = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let (line_no, line) = take_line("an output literal", &mut lines, &mut last_line)?;
        let lit: usize = line
            .trim()
            .parse()
            .map_err(|_| err(line_no, "bad output literal"))?;
        if lit / 2 > max_var {
            return Err(err(line_no, "output literal out of range"));
        }
        output_lits.push((line_no, lit));
    }

    let mut and_defs = Vec::with_capacity(num_ands);
    let mut and_outputs = vec![false; max_var + 1];
    for _ in 0..num_ands {
        let (line_no, line) = take_line("an AND definition", &mut lines, &mut last_line)?;
        let lits: Vec<usize> = line
            .split_whitespace()
            .map(|t| t.parse().map_err(|_| err(line_no, "bad AND literal")))
            .collect::<Result<_, _>>()?;
        if lits.len() != 3 {
            return Err(err(line_no, "AND definition needs three literals"));
        }
        if !lits[0].is_multiple_of(2) || lits[0] / 2 > max_var {
            return Err(err(line_no, "AND output must be a fresh even literal"));
        }
        if lits[1] / 2 > max_var || lits[2] / 2 > max_var {
            return Err(err(line_no, "AND operand literal out of range"));
        }
        let var = lits[0] / 2;
        if map[var].is_some() || and_outputs[var] {
            return Err(err(line_no, "duplicate variable definition"));
        }
        and_outputs[var] = true;
        and_defs.push((line_no, lits[0], lits[1], lits[2]));
    }

    // AIGER allows AND definitions in any topological order; ours resolves
    // them with a worklist.
    let mut pending = and_defs;
    while !pending.is_empty() {
        let before = pending.len();
        pending.retain(|&(line_no, out, a, b)| {
            let resolve = |lit: usize| map[lit / 2].map(|s| s.complement_if(lit % 2 == 1));
            match (resolve(a), resolve(b)) {
                (Some(sa), Some(sb)) => {
                    let gate = mig.and(sa, sb);
                    map[out / 2] = Some(gate);
                    let _ = line_no;
                    false
                }
                _ => true,
            }
        });
        if pending.len() == before {
            let (line_no, ..) = pending[0];
            return Err(err(line_no, "AND operands form a cycle or are undefined"));
        }
    }

    // Symbol table (optional): `iK name` / `oK name`; comments after `c`.
    let mut input_names: Vec<Option<String>> = vec![None; num_inputs];
    let mut output_names: Vec<Option<String>> = vec![None; num_outputs];
    for (line_no, line) in lines {
        let line = line.trim();
        if line == "c" || line.starts_with("c ") {
            break;
        }
        if line.is_empty() {
            continue;
        }
        let (kind, rest) = line.split_at(1);
        let mut parts = rest.splitn(2, ' ');
        let index: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| err(line_no + 1, "bad symbol table index"))?;
        let name = parts.next().unwrap_or("").to_string();
        match kind {
            "i" if index < num_inputs => input_names[index] = Some(name),
            "o" if index < num_outputs => output_names[index] = Some(name),
            _ => return Err(err(line_no + 1, "bad symbol table entry")),
        }
    }

    // Rebuild with final names (inputs were created before names were known).
    let mut named = Mig::new();
    let mut name_map: Vec<Option<Signal>> = vec![None; mig.len()];
    name_map[0] = Some(Signal::FALSE);
    for (k, &id) in mig.inputs().iter().enumerate() {
        let name = input_names[k].clone().unwrap_or_else(|| format!("i{k}"));
        name_map[id.index()] = Some(named.add_input(name));
    }
    for id in mig.node_ids() {
        if let MigNode::Majority(children) = mig.node(id) {
            let mapped: Vec<Signal> = children
                .iter()
                .map(|c| {
                    name_map[c.node().index()]
                        .expect("topological order")
                        .complement_if(c.is_complemented())
                })
                .collect();
            name_map[id.index()] = Some(named.maj(mapped[0], mapped[1], mapped[2]));
        }
    }
    for (k, &(line_no, lit)) in output_lits.iter().enumerate() {
        let signal = map[lit / 2]
            .ok_or_else(|| err(line_no, "output references an undefined literal"))?
            .complement_if(lit % 2 == 1);
        let mapped = name_map[signal.node().index()]
            .expect("defined")
            .complement_if(signal.is_complemented());
        let name = output_names[k].clone().unwrap_or_else(|| format!("o{k}"));
        named.add_output(name, mapped);
    }
    Ok(named)
}

/// Parses a combinational binary AIGER (`aig`) document into an MIG.
///
/// The header is the ASCII line `aig M I L O A` with `M = I + L + A`
/// (inputs are implicit: input `k` is literal `2(k+1)`), followed by `O`
/// ASCII output-literal lines, then `A` AND gates. The `i`-th AND defines
/// literal `lhs = 2(I + L + i + 1)` and stores two 7-bit little-endian
/// varint deltas: `rhs0 = lhs - delta0` (with `delta0 >= 1`) and
/// `rhs1 = rhs0 - delta1`. An optional ASCII symbol table and comment
/// section follow, honored exactly as in [`parse_aiger`].
///
/// # Errors
///
/// Returns [`ParseAigerError`] on malformed or inconsistent headers,
/// sequential circuits, out-of-range output literals, truncated or
/// overflowing varints, deltas that underflow their literal (including
/// `delta0 == 0`, a self-reference), and malformed symbol tables. Error
/// lines point into the ASCII prefix; errors inside the binary AND
/// section carry the line where that section begins.
pub fn parse_binary_aiger(bytes: &[u8]) -> Result<Mig, ParseAigerError> {
    let err = |line: usize, message: &str| ParseAigerError {
        line,
        message: message.to_string(),
    };

    // Header: one ASCII line `aig M I L O A`.
    let header_end = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or_else(|| err(1, "missing header line"))?;
    let header = std::str::from_utf8(&bytes[..header_end])
        .map_err(|_| err(1, "header is not ASCII text"))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 6 || fields[0] != "aig" {
        return Err(err(1, "expected header `aig M I L O A`"));
    }
    let parse_field = |s: &str| s.parse::<usize>().map_err(|_| err(1, "bad header field"));
    let max_var = parse_field(fields[1])?;
    let num_inputs = parse_field(fields[2])?;
    let num_latches = parse_field(fields[3])?;
    let num_outputs = parse_field(fields[4])?;
    let num_ands = parse_field(fields[5])?;
    if num_latches != 0 {
        return Err(err(1, "sequential AIGs (latches) are not supported"));
    }
    // In the binary format every variable is either an implicit input or
    // an AND output, so M is fully determined; a disagreeing header is
    // corrupt, not merely sloppy.
    if max_var != num_inputs + num_ands {
        return Err(err(1, "header requires M = I + L + A"));
    }
    if max_var >= usize::try_from(u32::MAX / 2).expect("fits usize") {
        return Err(err(1, "header variable count out of range"));
    }

    let mut pos = header_end + 1;
    let mut line = 1usize;

    // O output-literal lines, still ASCII.
    let mut output_lits = Vec::with_capacity(num_outputs.min(bytes.len()));
    for _ in 0..num_outputs {
        let end = bytes[pos..]
            .iter()
            .position(|&b| b == b'\n')
            .ok_or_else(|| err(line, "unexpected end of file reading an output literal"))?;
        line += 1;
        let text = std::str::from_utf8(&bytes[pos..pos + end])
            .map_err(|_| err(line, "output literal is not ASCII text"))?;
        let lit: usize = text
            .trim()
            .parse()
            .map_err(|_| err(line, "bad output literal"))?;
        if lit / 2 > max_var {
            return Err(err(line, "output literal out of range"));
        }
        output_lits.push(lit);
        pos += end + 1;
    }

    // The AND section: 2A delta varints of at least one byte each. The
    // up-front size check both reports truncation before decoding and caps
    // the allocations a hostile header could otherwise demand.
    let and_line = line + 1;
    if bytes.len().saturating_sub(pos) / 2 < num_ands {
        return Err(err(and_line, "unexpected end of file in the AND section"));
    }
    let read_varint = |pos: &mut usize| -> Result<usize, ParseAigerError> {
        let mut value = 0usize;
        let mut shift = 0u32;
        loop {
            let &byte = bytes
                .get(*pos)
                .ok_or_else(|| err(and_line, "unexpected end of file in the AND section"))?;
            *pos += 1;
            if shift >= 63 {
                return Err(err(and_line, "delta varint overflows"));
            }
            value |= usize::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
        }
    };
    let mut ands = Vec::with_capacity(num_ands);
    for i in 0..num_ands {
        let lhs = 2 * (num_inputs + i + 1);
        let delta0 = read_varint(&mut pos)?;
        if delta0 == 0 {
            return Err(err(and_line, "AND operand equals its own output literal"));
        }
        let rhs0 = lhs
            .checked_sub(delta0)
            .ok_or_else(|| err(and_line, "AND delta underflows its output literal"))?;
        let delta1 = read_varint(&mut pos)?;
        let rhs1 = rhs0
            .checked_sub(delta1)
            .ok_or_else(|| err(and_line, "AND delta underflows its first operand"))?;
        ands.push((rhs0, rhs1));
    }

    // Symbol table (optional): the ASCII tail, same grammar as `aag`.
    let mut input_names: Vec<Option<String>> = vec![None; num_inputs];
    let mut output_names: Vec<Option<String>> = vec![None; num_outputs];
    if pos < bytes.len() {
        let tail = std::str::from_utf8(&bytes[pos..])
            .map_err(|_| err(and_line, "symbol table is not valid UTF-8 text"))?;
        for (k, raw) in tail.lines().enumerate() {
            let line_no = and_line + 1 + k;
            let entry = raw.trim();
            if entry == "c" || entry.starts_with("c ") {
                break;
            }
            if entry.is_empty() {
                continue;
            }
            let (kind, rest) = entry.split_at(1);
            let mut parts = rest.splitn(2, ' ');
            let index: usize = parts
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| err(line_no, "bad symbol table index"))?;
            let name = parts.next().unwrap_or("").to_string();
            match kind {
                "i" if index < num_inputs => input_names[index] = Some(name),
                "o" if index < num_outputs => output_names[index] = Some(name),
                _ => return Err(err(line_no, "bad symbol table entry")),
            }
        }
    }

    // Build the MIG in one pass: the delta coding guarantees every AND's
    // operands were defined before it, so no worklist is needed.
    let mut mig = Mig::new();
    let mut signals: Vec<Signal> = Vec::with_capacity(max_var + 1);
    signals.push(Signal::FALSE);
    for (k, name) in input_names.iter().enumerate() {
        let name = name.clone().unwrap_or_else(|| format!("i{k}"));
        signals.push(mig.add_input(name));
    }
    for &(rhs0, rhs1) in &ands {
        let resolve = |lit: usize| signals[lit / 2].complement_if(!lit.is_multiple_of(2));
        let gate = mig.and(resolve(rhs0), resolve(rhs1));
        signals.push(gate);
    }
    for (k, &lit) in output_lits.iter().enumerate() {
        let name = output_names[k].clone().unwrap_or_else(|| format!("o{k}"));
        let signal = signals[lit / 2].complement_if(!lit.is_multiple_of(2));
        mig.add_output(name, signal);
    }
    Ok(mig)
}

/// Writes an MIG as a combinational ASCII AIGER document.
///
/// AND/OR-shaped majority nodes (one constant child) map directly to one
/// AND gate (OR via De Morgan); full majority nodes are decomposed into
/// their 4-AND expansion `¬(¬(ab) ∧ ¬(ac) ∧ ¬(bc))`.
pub fn write_aiger(mig: &Mig) -> String {
    use std::fmt::Write as _;

    // Assign AIGER variables: inputs first, then one or more ANDs per node.
    let mut literal: Vec<u32> = vec![0; mig.len()]; // positive literal per node
    let mut next_var = 1u32;
    for &id in mig.inputs() {
        literal[id.index()] = next_var * 2;
        next_var += 1;
    }

    let mut ands: Vec<(u32, u32, u32)> = Vec::new();
    let mut new_and = |a: u32, b: u32, ands: &mut Vec<(u32, u32, u32)>| -> u32 {
        let out = next_var * 2;
        next_var += 1;
        ands.push((out, a, b));
        out
    };

    for id in mig.node_ids() {
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };
        let lit = |s: &Signal| literal[s.node().index()] ^ s.is_complemented() as u32;
        let constant = children.iter().position(|c| c.is_constant());
        let out = match constant {
            Some(k) => {
                let value = children[k].constant_value().expect("constant");
                let rest: Vec<u32> = (0..3)
                    .filter(|&i| i != k)
                    .map(|i| lit(&children[i]))
                    .collect();
                if value {
                    // OR = ¬(¬a ∧ ¬b)
                    new_and(rest[0] ^ 1, rest[1] ^ 1, &mut ands) ^ 1
                } else {
                    new_and(rest[0], rest[1], &mut ands)
                }
            }
            None => {
                let (a, b, c) = (lit(&children[0]), lit(&children[1]), lit(&children[2]));
                let ab = new_and(a, b, &mut ands);
                let ac = new_and(a, c, &mut ands);
                let bc = new_and(b, c, &mut ands);
                let n1 = new_and(ab ^ 1, ac ^ 1, &mut ands);
                new_and(n1, bc ^ 1, &mut ands) ^ 1
            }
        };
        // `out` may be odd (the node's function is the complement of an
        // AND output); edge complements simply XOR onto it.
        literal[id.index()] = out;
    }

    let mut out = String::new();
    let num_ands = ands.len();
    let _ = writeln!(
        out,
        "aag {} {} 0 {} {}",
        next_var - 1,
        mig.num_inputs(),
        mig.num_outputs(),
        num_ands
    );
    for &id in mig.inputs() {
        let _ = writeln!(out, "{}", literal[id.index()]);
    }
    for (_, signal) in mig.outputs() {
        let lit = literal[signal.node().index()] ^ signal.is_complemented() as u32;
        let _ = writeln!(out, "{lit}");
    }
    for (o, a, b) in ands {
        let _ = writeln!(out, "{o} {a} {b}");
    }
    for k in 0..mig.num_inputs() {
        let _ = writeln!(out, "i{k} {}", mig.input_name(k));
    }
    for (k, (name, _)) in mig.outputs().iter().enumerate() {
        let _ = writeln!(out, "o{k} {name}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::check_equivalence;

    #[test]
    fn parses_minimal_and() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let mig = parse_aiger(src).unwrap();
        assert_eq!(mig.num_inputs(), 2);
        assert_eq!(mig.num_outputs(), 1);
        assert_eq!(mig.num_majority_nodes(), 1);
        let tts = crate::simulate::truth_tables(&mig);
        assert_eq!(tts[0].blocks()[0], 0b1000);
    }

    #[test]
    fn parses_inverted_edges_and_outputs() {
        // f = NOT(a AND NOT b)
        let src = "aag 3 2 0 1 1\n2\n4\n7\n6 2 5\n";
        let mig = parse_aiger(src).unwrap();
        let tts = crate::simulate::truth_tables(&mig);
        // a AND NOT b = 0b0010 → complement 0b1101.
        assert_eq!(tts[0].blocks()[0], 0b1101);
    }

    #[test]
    fn honors_symbol_table() {
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni0 alpha\ni1 beta\no0 result\n";
        let mig = parse_aiger(src).unwrap();
        assert_eq!(mig.input_name(0), "alpha");
        assert_eq!(mig.input_name(1), "beta");
        assert_eq!(mig.outputs()[0].0, "result");
    }

    #[test]
    fn rejects_latches_and_bad_headers() {
        assert!(parse_aiger("aag 1 0 1 0 0\n").is_err());
        assert!(parse_aiger("aig 1 0 0 0 0\n").is_err());
        assert!(parse_aiger("").is_err());
        assert!(parse_aiger("aag 1 0 0 0\n").is_err());
    }

    #[test]
    fn rejects_truncated_documents() {
        // Header promises inputs/outputs/ANDs that never arrive. The error
        // must carry the last line the parser actually read, not line 0.
        for (src, what, last_line) in [
            ("aag 3 2 0 1 1\n2\n", "input", 2),
            ("aag 3 2 0 1 1\n2\n4\n", "output", 3),
            ("aag 3 2 0 1 1\n2\n4\n6\n", "AND definition", 4),
        ] {
            let e = parse_aiger(src).unwrap_err();
            assert!(e.message.contains("unexpected end of file"), "{what}: {e}");
            assert_eq!(e.line, last_line, "{what}: {e}");
        }
        // A document truncated right after the header points at line 1.
        let e = parse_aiger("aag 3 2 0 1 1\n").unwrap_err();
        assert!(e.message.contains("unexpected end of file"), "{e}");
        assert_eq!(e.line, 1);
        // A header cut short mid-field is rejected up front.
        let e = parse_aiger("aag 3 2 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("expected header"));
        assert!(parse_aiger("aag 3 2 x 1 1\n").is_err());
    }

    #[test]
    fn rejects_out_of_range_literals() {
        // Input literal beyond the declared maximum variable.
        let e = parse_aiger("aag 1 1 0 0 0\n4\n").unwrap_err();
        assert!(e.message.contains("fresh even literal"), "{e}");
        assert_eq!(e.line, 2);
        // Odd input literal.
        assert!(parse_aiger("aag 1 1 0 0 0\n3\n").is_err());
        // Output literal beyond the maximum variable.
        let e = parse_aiger("aag 1 1 0 1 0\n2\n9\n").unwrap_err();
        assert!(e.message.contains("output literal out of range"), "{e}");
        // AND output beyond the maximum variable.
        let e = parse_aiger("aag 2 1 0 1 1\n2\n4\n8 2 2\n").unwrap_err();
        assert!(e.message.contains("fresh even literal"), "{e}");
        // AND operand beyond the maximum variable (must error, not panic).
        let e = parse_aiger("aag 2 1 0 1 1\n2\n4\n4 98 2\n").unwrap_err();
        assert!(e.message.contains("operand literal out of range"), "{e}");
    }

    #[test]
    fn rejects_reused_output_literals() {
        // An AND redefining an input variable.
        let e = parse_aiger("aag 3 2 0 1 1\n2\n4\n6\n2 2 4\n").unwrap_err();
        assert!(e.message.contains("duplicate variable definition"), "{e}");
        // Two ANDs writing the same variable.
        let e = parse_aiger("aag 4 2 0 1 2\n2\n4\n6\n6 2 4\n6 4 2\n").unwrap_err();
        assert!(e.message.contains("duplicate variable definition"), "{e}");
        assert_eq!(e.line, 6);
        // An AND redefining the constant.
        let e = parse_aiger("aag 2 1 0 1 1\n2\n4\n0 2 2\n").unwrap_err();
        assert!(e.message.contains("duplicate variable definition"), "{e}");
        // Duplicate input literals are already rejected.
        let e = parse_aiger("aag 2 2 0 0 0\n2\n2\n").unwrap_err();
        assert!(e.message.contains("duplicate variable definition"), "{e}");
    }

    #[test]
    fn undefined_output_literal_reports_its_line() {
        // Output literal 4 (variable 2) is declared by neither an input nor
        // an AND; the error must point at the output's own line (3).
        let e = parse_aiger("aag 2 1 0 1 0\n2\n4\n").unwrap_err();
        assert!(
            e.message.contains("output references an undefined literal"),
            "{e}"
        );
        assert_eq!(e.line, 3);
        // With two outputs, the second one (line 4) is the offender.
        let e = parse_aiger("aag 2 1 0 2 0\n2\n2\n5\n").unwrap_err();
        assert!(
            e.message.contains("output references an undefined literal"),
            "{e}"
        );
        assert_eq!(e.line, 4);
    }

    #[test]
    fn rejects_cyclic_ands() {
        let src = "aag 4 1 0 1 2\n2\n8\n6 8 2\n8 6 2\n";
        let e = parse_aiger(src).unwrap_err();
        assert!(e.message.contains("cycle"));
    }

    #[test]
    fn constant_outputs_parse() {
        // Output literal 1 = constant true.
        let src = "aag 1 1 0 2 0\n2\n1\n0\n";
        let mig = parse_aiger(src).unwrap();
        let tts = crate::simulate::truth_tables(&mig);
        assert_eq!(tts[0].count_ones(), 2); // constant 1 over 1 var
        assert_eq!(tts[1].count_ones(), 0);
    }

    /// Encodes one 7-bit little-endian AIGER varint.
    fn varint(mut v: usize) -> Vec<u8> {
        let mut out = Vec::new();
        loop {
            let byte = u8::try_from(v & 0x7f).expect("masked");
            v >>= 7;
            if v == 0 {
                out.push(byte);
                return out;
            }
            out.push(byte | 0x80);
        }
    }

    /// Assembles a binary AIGER document from its ASCII prefix and the
    /// delta pairs of the AND section.
    fn binary_doc(prefix: &str, deltas: &[(usize, usize)], tail: &str) -> Vec<u8> {
        let mut bytes = prefix.as_bytes().to_vec();
        for &(d0, d1) in deltas {
            bytes.extend(varint(d0));
            bytes.extend(varint(d1));
        }
        bytes.extend(tail.as_bytes());
        bytes
    }

    #[test]
    fn binary_matches_ascii_on_a_minimal_and() {
        // f = NOT b AND a: lhs 6, rhs0 5, rhs1 2 → deltas (1, 3).
        let bin = binary_doc("aig 3 2 0 1 1\n6\n", &[(1, 3)], "");
        let from_binary = parse_binary_aiger(&bin).unwrap();
        let from_ascii = parse_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 5 2\n").unwrap();
        assert!(check_equivalence(&from_binary, &from_ascii, 8, 7)
            .unwrap()
            .holds());
        assert_eq!(from_binary.num_inputs(), 2);
        assert_eq!(from_binary.num_majority_nodes(), 1);
    }

    #[test]
    fn binary_decodes_multi_byte_varints_and_symbol_table() {
        // 100 implicit inputs force a two-byte delta: lhs = 2*101 = 202,
        // rhs0 = 4, rhs1 = 2 → deltas (198, 2).
        let bin = binary_doc(
            "aig 101 100 0 1 1\n202\n",
            &[(198, 2)],
            "i0 alpha\ni1 beta\no0 result\nc\nignored comment\n",
        );
        let mig = parse_binary_aiger(&bin).unwrap();
        assert_eq!(mig.num_inputs(), 100);
        assert_eq!(mig.input_name(0), "alpha");
        assert_eq!(mig.input_name(1), "beta");
        assert_eq!(mig.outputs()[0].0, "result");
        assert_eq!(mig.num_majority_nodes(), 1);
    }

    #[test]
    fn binary_outputs_may_reference_inputs_and_constants() {
        let bin = binary_doc("aig 1 1 0 2 0\n1\n2\n", &[], "");
        let mig = parse_binary_aiger(&bin).unwrap();
        let tts = crate::simulate::truth_tables(&mig);
        assert_eq!(tts[0].count_ones(), 2); // constant true over 1 var
        assert_eq!(tts[1].blocks()[0], 0b10); // the input itself
    }

    #[test]
    fn binary_rejects_bad_headers() {
        // Latches, non-binary magic, inconsistent M, and missing newline.
        assert!(parse_binary_aiger(b"aig 1 0 1 0 0\n").is_err());
        assert!(parse_binary_aiger(b"aag 1 1 0 0 0\n").is_err());
        let e = parse_binary_aiger(b"aig 5 2 0 0 1\n").unwrap_err();
        assert!(e.message.contains("M = I + L + A"), "{e}");
        assert!(parse_binary_aiger(b"aig 3 2 0 1 1").is_err());
        assert!(parse_binary_aiger(b"aig 3 2 x 1 1\n").is_err());
    }

    #[test]
    fn binary_rejects_truncation_everywhere() {
        // Missing output line.
        let e = parse_binary_aiger(b"aig 3 2 0 1 1\n").unwrap_err();
        assert!(e.message.contains("output literal"), "{e}");
        // AND section shorter than the header promises.
        let e = parse_binary_aiger(b"aig 3 2 0 1 1\n6\n\x01").unwrap_err();
        assert!(e.message.contains("AND section"), "{e}");
        // A varint whose continuation bit runs off the end of the file.
        let bin = binary_doc("aig 3 2 0 1 1\n6\n", &[], "");
        let e = parse_binary_aiger(&[bin, vec![0x81, 0x80]].concat()).unwrap_err();
        assert!(e.message.contains("AND section"), "{e}");
    }

    #[test]
    fn binary_rejects_overflowing_and_underflowing_deltas() {
        // Ten continuation bytes push the varint past 63 bits.
        let mut bin = binary_doc("aig 3 2 0 1 1\n6\n", &[], "");
        bin.extend([0xff; 10]);
        bin.push(0x01);
        let e = parse_binary_aiger(&bin).unwrap_err();
        assert!(e.message.contains("overflow"), "{e}");
        // delta0 = 0 would make the AND its own operand.
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n6\n", &[(0, 0)], "")).unwrap_err();
        assert!(e.message.contains("own output literal"), "{e}");
        // delta0 larger than the lhs literal underflows.
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n6\n", &[(7, 0)], "")).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");
        // delta1 larger than rhs0 underflows.
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n6\n", &[(2, 5)], "")).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");
    }

    #[test]
    fn binary_rejects_out_of_range_outputs_and_bad_symbols() {
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n9\n", &[(2, 2)], "")).unwrap_err();
        assert!(e.message.contains("output literal out of range"), "{e}");
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n6\n", &[(2, 2)], "i9 nope\n"))
            .unwrap_err();
        assert!(e.message.contains("bad symbol table entry"), "{e}");
        let e = parse_binary_aiger(&binary_doc("aig 3 2 0 1 1\n6\n", &[(2, 2)], "ix nope\n"))
            .unwrap_err();
        assert!(e.message.contains("bad symbol table index"), "{e}");
    }

    #[test]
    fn binary_roundtrips_generated_logic_through_ascii() {
        // Parse the ASCII export of a generated MIG, re-encode its AND
        // list in the binary format by hand, and check both parses agree.
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 5);
        let mut acc = xs[0];
        for (k, &x) in xs[1..].iter().enumerate() {
            acc = if k % 2 == 0 {
                mig.and(acc, !x)
            } else {
                mig.or(acc, x)
            };
        }
        mig.add_output("f", acc);
        let text = write_aiger(&mig);
        let from_ascii = parse_aiger(&text).unwrap();

        // The exporter already emits ANDs in increasing-lhs order with
        // operands strictly below the output, which is exactly the binary
        // ordering discipline.
        let mut lines = text.lines();
        let header: Vec<usize> = lines
            .next()
            .unwrap()
            .split_whitespace()
            .skip(1)
            .map(|t| t.parse().unwrap())
            .collect();
        let (m, i, o, a) = (header[0], header[1], header[3], header[4]);
        let mut prefix = format!("aig {m} {i} 0 {o} {a}\n");
        let body: Vec<&str> = lines.collect();
        for line in &body[i..i + o] {
            prefix.push_str(line);
            prefix.push('\n');
        }
        let mut deltas = Vec::new();
        for line in &body[i + o..i + o + a] {
            let lits: Vec<usize> = line
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect();
            let (lhs, mut r0, mut r1) = (lits[0], lits[1], lits[2]);
            if r0 < r1 {
                std::mem::swap(&mut r0, &mut r1);
            }
            deltas.push((lhs - r0, r0 - r1));
        }
        let from_binary = parse_binary_aiger(&binary_doc(&prefix, &deltas, "")).unwrap();
        assert!(check_equivalence(&from_ascii, &from_binary, 16, 11)
            .unwrap()
            .holds());
    }

    #[test]
    fn roundtrip_preserves_function_with_and_or() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let x = mig.and(a, !b);
        let y = mig.or(x, c);
        mig.add_output("f", !y);
        mig.add_output("g", x);
        let text = write_aiger(&mig);
        let reparsed = parse_aiger(&text).unwrap();
        assert!(check_equivalence(&mig, &reparsed, 8, 5).unwrap().holds());
        assert_eq!(reparsed.input_name(0), "a");
    }

    #[test]
    fn roundtrip_decomposes_full_majority() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        mig.add_output("f", m);
        let text = write_aiger(&mig);
        let reparsed = parse_aiger(&text).unwrap();
        assert!(check_equivalence(&mig, &reparsed, 8, 5).unwrap().holds());
        // The majority expands into five ANDs.
        assert_eq!(reparsed.num_majority_nodes(), 5);
    }

    #[test]
    fn roundtrip_on_generated_logic() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 6);
        let mut acc = xs[0];
        for (k, &x) in xs[1..].iter().enumerate() {
            acc = if k % 2 == 0 {
                mig.and(acc, !x)
            } else {
                mig.maj(acc, x, xs[0])
            };
        }
        mig.add_output("f", acc);
        let text = write_aiger(&mig);
        let reparsed = parse_aiger(&text).unwrap();
        assert!(check_equivalence(&mig, &reparsed, 8, 6).unwrap().holds());
    }
}
