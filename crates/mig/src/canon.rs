//! Canonical structural hashing of MIGs.
//!
//! [`structural_digest`] computes a 128-bit digest that identifies a graph
//! by *structure*, not by how its dump happened to be written. Two parses
//! of the same circuit hash equal even when
//!
//! * majority-node definitions appear in a different order (arena indices
//!   and therefore node names like `n7` differ),
//! * internal node names differ (they never appear in compiled output),
//! * complement edges sit on the other side of an Ω.I inverter identity:
//!   `⟨x̄ ȳ z̄⟩` hashes like `!⟨x y z⟩`, so a dump that complements all
//!   three children of a node matches one that complements the node's
//!   fanout edges instead.
//!
//! Everything that *does* reach compiled output stays significant: the
//! primary-input order and count (programs address inputs by index), the
//! primary-output names and order (listings bind outputs by name), every
//! edge's polarity modulo Ω.I, and the shape of the live cone. Unreachable
//! majority nodes are ignored — every consumer cleans or rewrites the
//! graph before compiling, so dead logic cannot influence the result.
//!
//! The digest is the content-address of the compile-service cache
//! (`plimd`): requests whose graphs digest equally are served the same
//! cached artifact. Hash-equal graphs are logically equivalent by
//! construction, and structurally identical up to the Ω.I normalization
//! above; the service documents that a cache hit returns the artifact
//! compiled for the first-seen member of the equivalence class.
//!
//! The implementation is a deterministic bottom-up combine (FNV-1a over
//! 128 bits with an extra mixing step): children are folded as a *sorted
//! multiset* of `(child digest, polarity)` pairs, which removes the arena
//! order without weakening the distinction between different functions.
//! No `RandomState` is involved, so digests are stable across processes —
//! a requirement for any content-addressed store.
//!
//! # Examples
//!
//! ```
//! use mig::{Mig, canon::structural_digest};
//!
//! let build = |swap: bool| {
//!     let mut mig = Mig::new();
//!     let a = mig.add_input("a");
//!     let b = mig.add_input("b");
//!     let c = mig.add_input("c");
//!     // Same structure, different creation order for the two AND gates.
//!     let (x, y) = if swap {
//!         let y = mig.and(b, c);
//!         (mig.and(a, b), y)
//!     } else {
//!         let x = mig.and(a, b);
//!         (x, mig.and(b, c))
//!     };
//!     let f = mig.maj(x, y, c);
//!     mig.add_output("f", f);
//!     mig
//! };
//! assert_eq!(structural_digest(&build(false)), structural_digest(&build(true)));
//! ```

use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::Signal;

/// 128-bit FNV-1a with a final avalanche, specialized for digest folding.
#[derive(Debug, Clone, Copy)]
struct Mixer(u128);

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

impl Mixer {
    fn new(tag: u8) -> Self {
        let mut m = Mixer(FNV_OFFSET);
        m.byte(tag);
        m
    }

    fn byte(&mut self, byte: u8) {
        self.0 ^= byte as u128;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn word(&mut self, value: u128) {
        self.bytes(&value.to_le_bytes());
    }

    /// Finishes with an xor-shift avalanche so low-entropy inputs (small
    /// integers) still flip high digest bits.
    fn finish(mut self) -> u128 {
        self.0 ^= self.0 >> 67;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
        self.0 ^= self.0 >> 59;
        self.0
    }
}

/// Plain 128-bit FNV-1a over a byte string — the primitive the digest's
/// internal mixer builds on, exported so every content-addressing layer
/// (e.g. the compile service's exact-text index) shares one
/// implementation and one set of constants.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= byte as u128;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

const TAG_CONSTANT: u8 = 0xC0;
const TAG_INPUT: u8 = 0x11;
const TAG_MAJORITY: u8 = 0x3A;
const TAG_OUTPUT: u8 = 0x0F;
const TAG_GRAPH: u8 = 0x66;

/// Computes the canonical structural digest of a graph.
///
/// See the [module docs](self) for what the digest is and is not sensitive
/// to. The cost is one linear pass over the arena.
pub fn structural_digest(mig: &Mig) -> u128 {
    // digest[i]: canonical digest of node i's structure.
    // flipped[i]: true when the node was Ω.I-normalized (all three child
    // edges complemented); every edge referencing it must toggle polarity.
    let mut digests = vec![0u128; mig.len()];
    let mut flipped = vec![false; mig.len()];
    let reachable = mig.reachable_mask();

    digests[0] = Mixer::new(TAG_CONSTANT).finish();

    // The full input interface is significant even for inputs the live cone
    // never reads: compiled programs carry the input count and address
    // inputs by declaration index.
    for (position, &id) in mig.inputs().iter().enumerate() {
        let mut m = Mixer::new(TAG_INPUT);
        m.word(position as u128);
        m.bytes(mig.input_name(position).as_bytes());
        digests[id.index()] = m.finish();
    }

    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };
        let mut edges: [(u128, bool); 3] = children.map(|c| edge_key(c, &digests, &flipped));
        // Ω.I: ⟨x̄ ȳ z̄⟩ = !⟨x y z⟩ — normalize the fully-complemented form
        // to the plain node and push the inversion onto the fanout.
        if edges.iter().all(|(_, complemented)| *complemented) {
            for edge in &mut edges {
                edge.1 = false;
            }
            flipped[id.index()] = true;
        }
        // The arena stores children sorted by raw signal value, which leaks
        // creation order; sorting by digest makes the fold order-free.
        edges.sort_unstable();
        let mut m = Mixer::new(TAG_MAJORITY);
        for (digest, complemented) in edges {
            m.word(digest);
            m.byte(complemented as u8);
        }
        digests[id.index()] = m.finish();
    }

    let mut graph = Mixer::new(TAG_GRAPH);
    // Fold every input digest, not just the count: an *unused* input's
    // name and position still appear in `mig`/`dot` emits and in the
    // program interface, so renaming one must change the digest.
    for id in mig.inputs() {
        graph.word(digests[id.index()]);
    }
    for (name, signal) in mig.outputs() {
        let (digest, complemented) = edge_key(*signal, &digests, &flipped);
        let mut m = Mixer::new(TAG_OUTPUT);
        m.bytes(name.as_bytes());
        m.byte(0);
        m.word(digest);
        m.byte(complemented as u8);
        graph.word(m.finish());
    }
    graph.finish()
}

/// The canonical `(digest, polarity)` of an edge, folding in the Ω.I flip
/// of the node it points to.
fn edge_key(signal: Signal, digests: &[u128], flipped: &[bool]) -> (u128, bool) {
    let index = signal.node().index();
    (digests[index], signal.is_complemented() ^ flipped[index])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::parse_mig;

    fn digest_of(text: &str) -> u128 {
        structural_digest(&parse_mig(text).unwrap())
    }

    #[test]
    fn permuted_node_order_hashes_equal() {
        let forward = "inputs a b c d\n\
                       n1 = maj(0, a, b)\n\
                       n2 = maj(1, c, d)\n\
                       n3 = maj(n1, n2, a)\n\
                       output f = n3\n";
        let backward = "inputs a b c d\n\
                        x = maj(1, c, d)\n\
                        y = maj(0, a, b)\n\
                        top = maj(y, x, a)\n\
                        output f = top\n";
        assert_eq!(digest_of(forward), digest_of(backward));
    }

    #[test]
    fn internal_names_do_not_matter() {
        let a = "inputs a b\nn1 = maj(0, a, b)\noutput f = n1\n";
        let b = "inputs a b\nweird_name = maj(0, a, b)\noutput f = weird_name\n";
        assert_eq!(digest_of(a), digest_of(b));
    }

    #[test]
    fn inverter_propagation_is_normalized() {
        // Ω.I: complementing all three children equals complementing the
        // node's fanout edge.
        let node_side = "inputs a b c\nn = maj(!a, !b, !c)\noutput f = n\n";
        let edge_side = "inputs a b c\nn = maj(a, b, c)\noutput f = !n\n";
        assert_eq!(digest_of(node_side), digest_of(edge_side));
        // ... including through an interior node.
        let deep_node = "inputs a b c d\n\
                         inner = maj(!a, !b, !c)\n\
                         top = maj(inner, c, d)\n\
                         output f = top\n";
        let deep_edge = "inputs a b c d\n\
                         inner = maj(a, b, c)\n\
                         top = maj(!inner, c, d)\n\
                         output f = top\n";
        assert_eq!(digest_of(deep_node), digest_of(deep_edge));
    }

    #[test]
    fn distinct_functions_hash_unequal() {
        let and = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
        let or = "inputs a b\nn = maj(1, a, b)\noutput f = n\n";
        let nand = "inputs a b\nn = maj(0, a, b)\noutput f = !n\n";
        let one_complement = "inputs a b\nn = maj(0, !a, b)\noutput f = n\n";
        let digests = [
            digest_of(and),
            digest_of(or),
            digest_of(nand),
            digest_of(one_complement),
        ];
        for (i, a) in digests.iter().enumerate() {
            for b in &digests[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn two_complemented_children_are_not_normalized() {
        // Ω.I only applies to all-three complementation; partial complement
        // patterns are distinct structures with distinct RM3 costs.
        let two = "inputs a b c\nn = maj(!a, !b, c)\noutput f = n\n";
        let one = "inputs a b c\nn = maj(a, b, !c)\noutput f = !n\n";
        assert_ne!(digest_of(two), digest_of(one));
    }

    #[test]
    fn interface_is_significant() {
        let base = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
        // Input order changes program input indices.
        let swapped_inputs = "inputs b a\nn = maj(0, a, b)\noutput f = n\n";
        // Output names appear in listings.
        let renamed_output = "inputs a b\nn = maj(0, a, b)\noutput g = n\n";
        // An extra (unused) input changes the program interface.
        let extra_input = "inputs a b c\nn = maj(0, a, b)\noutput f = n\n";
        // Even an unused input's NAME is significant: it appears in
        // `mig`/`dot` artifacts, so hash-equal inputs must agree on it.
        let renamed_unused = "inputs a b X\nn = maj(0, a, b)\noutput f = n\n";
        assert_ne!(digest_of(base), digest_of(swapped_inputs));
        assert_ne!(digest_of(base), digest_of(renamed_output));
        assert_ne!(digest_of(base), digest_of(extra_input));
        assert_ne!(digest_of(extra_input), digest_of(renamed_unused));
    }

    #[test]
    fn dead_logic_is_ignored() {
        let lean = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
        let dangling = "inputs a b\nn = maj(0, a, b)\ndead = maj(1, a, b)\noutput f = n\n";
        assert_eq!(digest_of(lean), digest_of(dangling));
    }

    #[test]
    fn output_order_and_multiplicity_matter() {
        let fg = "inputs a b\nn = maj(0, a, b)\noutput f = n\noutput g = !n\n";
        let gf = "inputs a b\nn = maj(0, a, b)\noutput g = !n\noutput f = n\n";
        let f = "inputs a b\nn = maj(0, a, b)\noutput f = n\n";
        assert_ne!(digest_of(fg), digest_of(gf));
        assert_ne!(digest_of(fg), digest_of(f));
    }

    #[test]
    fn digest_is_stable_for_builder_and_text_forms() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, !b);
        mig.add_output("f", f);
        let text = crate::io::write_mig(&mig);
        assert_eq!(structural_digest(&mig), digest_of(&text));
    }

    #[test]
    fn suite_circuits_have_distinct_digests() {
        // A light collision sanity check over real structures.
        let mut mig1 = Mig::new();
        let xs = mig1.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig1.xor(acc, x);
        }
        mig1.add_output("parity", acc);

        let mut mig2 = Mig::new();
        let ys = mig2.add_inputs("x", 6);
        let mut acc2 = ys[0];
        for &y in &ys[1..] {
            acc2 = mig2.and(acc2, y);
        }
        mig2.add_output("parity", acc2);
        assert_ne!(structural_digest(&mig1), structural_digest(&mig2));
    }
}
