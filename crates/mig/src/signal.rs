//! Signals and node identifiers.
//!
//! A [`Signal`] is an edge in a Majority-Inverter Graph: a reference to a node
//! together with an optional complement (inversion) attribute. Signals are the
//! currency of all MIG construction APIs: inputs and outputs of majority nodes
//! are signals, primary outputs are signals, and all rewriting rules are stated
//! in terms of signals.
//!
//! The representation packs a node index and the complement bit into a single
//! `u32` (complement in the least-significant bit), mirroring the classic
//! AIG literal encoding.

use std::fmt;
use std::ops::Not;

/// Identifier of a node inside a [`crate::Mig`].
///
/// Node 0 is always the constant-zero node. Identifiers are indices into the
/// graph's node arena and are assigned in creation order, which is guaranteed
/// to be a topological order (children are always created before parents).
///
/// # Examples
///
/// ```
/// use mig::NodeId;
///
/// let id = NodeId::from_index(3);
/// assert_eq!(id.index(), 3);
/// assert!(!id.is_constant());
/// assert!(NodeId::CONSTANT.is_constant());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The identifier of the constant-zero node present in every graph.
    pub const CONSTANT: NodeId = NodeId(0);

    /// Creates a node identifier from a raw arena index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        NodeId(index as u32)
    }

    /// Returns the arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` if this is the constant-zero node.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An edge of the MIG: a node reference plus a complement attribute.
///
/// Two signals are equal only if they reference the same node *with the same
/// polarity*. Use [`Signal::node`] to compare the referenced nodes regardless
/// of polarity.
///
/// # Examples
///
/// ```
/// use mig::Mig;
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// assert_ne!(a, !a);
/// assert_eq!((!a).node(), a.node());
/// assert!((!a).is_complemented());
/// assert_eq!(!!a, a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal(u32);

impl Signal {
    /// The constant-zero signal.
    pub const FALSE: Signal = Signal(0);
    /// The constant-one signal (complemented zero).
    pub const TRUE: Signal = Signal(1);

    /// Creates a signal referencing `node`, complemented if `complement`.
    #[inline]
    pub fn new(node: NodeId, complement: bool) -> Self {
        Signal(node.0 << 1 | complement as u32)
    }

    /// Creates the constant signal with the given Boolean value.
    ///
    /// # Examples
    ///
    /// ```
    /// use mig::Signal;
    ///
    /// assert_eq!(Signal::constant(false), Signal::FALSE);
    /// assert_eq!(Signal::constant(true), Signal::TRUE);
    /// ```
    #[inline]
    pub fn constant(value: bool) -> Self {
        Signal(value as u32)
    }

    /// The node this signal refers to.
    #[inline]
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge carries a complement attribute.
    #[inline]
    pub fn is_complemented(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether this signal is one of the two constants.
    #[inline]
    pub fn is_constant(self) -> bool {
        self.node().is_constant()
    }

    /// For a constant signal, the Boolean value it denotes.
    ///
    /// Returns `None` for non-constant signals.
    ///
    /// # Examples
    ///
    /// ```
    /// use mig::Signal;
    ///
    /// assert_eq!(Signal::TRUE.constant_value(), Some(true));
    /// ```
    #[inline]
    pub fn constant_value(self) -> Option<bool> {
        if self.is_constant() {
            Some(self.is_complemented())
        } else {
            None
        }
    }

    /// Returns the same signal with the complement attribute set to `value`.
    #[inline]
    pub fn with_complement(self, value: bool) -> Self {
        Signal(self.0 & !1 | value as u32)
    }

    /// Returns the non-complemented version of this signal.
    #[inline]
    pub fn regular(self) -> Self {
        Signal(self.0 & !1)
    }

    /// XORs the complement attribute with `flip`.
    ///
    /// This is the fundamental operation for pushing inverters along edges:
    /// `s.complement_if(c)` equals `!s` when `c` is true and `s` otherwise.
    #[inline]
    pub fn complement_if(self, flip: bool) -> Self {
        Signal(self.0 ^ flip as u32)
    }

    /// The raw packed representation (node index ≪ 1 | complement).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a signal from its raw packed representation.
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Signal(raw)
    }
}

impl Not for Signal {
    type Output = Signal;

    #[inline]
    fn not(self) -> Signal {
        Signal(self.0 ^ 1)
    }
}

impl From<bool> for Signal {
    #[inline]
    fn from(value: bool) -> Self {
        Signal::constant(value)
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!{}", self.node())
        } else {
            write!(f, "{}", self.node())
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_encoding() {
        assert_eq!(Signal::FALSE.raw(), 0);
        assert_eq!(Signal::TRUE.raw(), 1);
        assert_eq!(Signal::FALSE.node(), NodeId::CONSTANT);
        assert_eq!(Signal::TRUE.node(), NodeId::CONSTANT);
        assert!(!Signal::FALSE.is_complemented());
        assert!(Signal::TRUE.is_complemented());
    }

    #[test]
    fn complement_is_involutive() {
        let s = Signal::new(NodeId::from_index(7), false);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
        assert_eq!((!s).node(), s.node());
    }

    #[test]
    fn complement_if_flips_conditionally() {
        let s = Signal::new(NodeId::from_index(3), false);
        assert_eq!(s.complement_if(false), s);
        assert_eq!(s.complement_if(true), !s);
        assert_eq!((!s).complement_if(true), s);
    }

    #[test]
    fn with_complement_overrides_polarity() {
        let s = Signal::new(NodeId::from_index(5), true);
        assert!(!s.with_complement(false).is_complemented());
        assert!(s.with_complement(true).is_complemented());
        assert_eq!(s.regular(), s.with_complement(false));
    }

    #[test]
    fn constant_value_detection() {
        assert_eq!(Signal::FALSE.constant_value(), Some(false));
        assert_eq!(Signal::TRUE.constant_value(), Some(true));
        let s = Signal::new(NodeId::from_index(2), false);
        assert_eq!(s.constant_value(), None);
    }

    #[test]
    fn ordering_follows_raw_encoding() {
        let a = Signal::new(NodeId::from_index(1), false);
        let b = Signal::new(NodeId::from_index(1), true);
        let c = Signal::new(NodeId::from_index(2), false);
        assert!(Signal::FALSE < a);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn display_formats() {
        let s = Signal::new(NodeId::from_index(4), true);
        assert_eq!(format!("{s}"), "!n4");
        assert_eq!(format!("{}", s.regular()), "n4");
        assert_eq!(format!("{}", NodeId::from_index(4)), "n4");
    }

    #[test]
    fn from_bool_conversion() {
        assert_eq!(Signal::from(false), Signal::FALSE);
        assert_eq!(Signal::from(true), Signal::TRUE);
    }

    #[test]
    fn raw_roundtrip() {
        let s = Signal::new(NodeId::from_index(123), true);
        assert_eq!(Signal::from_raw(s.raw()), s);
    }
}
