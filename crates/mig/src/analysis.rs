//! Structural statistics of MIGs.
//!
//! The PLiM translation cost of a node depends on its complemented-edge count
//! and fanout, so these statistics predict compiled-program quality before
//! running the compiler. [`MigStats::gather`] is also what the rewriting
//! driver reports after each pass.

use std::fmt;

use crate::graph::Mig;
use crate::node::MigNode;

/// Aggregate structural statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigStats {
    /// Number of majority nodes (`#N` in the paper).
    pub num_nodes: usize,
    /// Number of primary inputs.
    pub num_inputs: usize,
    /// Number of primary outputs.
    pub num_outputs: usize,
    /// Logic depth (maximum output level).
    pub depth: u32,
    /// Majority nodes with zero complemented children.
    pub nodes_compl0: usize,
    /// Majority nodes with exactly one complemented child — the ideal case
    /// for RM3 translation.
    pub nodes_compl1: usize,
    /// Majority nodes with two complemented children.
    pub nodes_compl2: usize,
    /// Majority nodes with three complemented children.
    pub nodes_compl3: usize,
    /// Majority nodes with at least one constant child (AND/OR shaped).
    pub nodes_with_constant: usize,
    /// Total complemented edges (including output edges).
    pub complemented_edges: usize,
}

impl MigStats {
    /// Gathers statistics over the given graph.
    ///
    /// # Examples
    ///
    /// ```
    /// use mig::{Mig, analysis::MigStats};
    ///
    /// let mut mig = Mig::new();
    /// let a = mig.add_input("a");
    /// let b = mig.add_input("b");
    /// let f = mig.and(a, !b);
    /// mig.add_output("f", f);
    /// let stats = MigStats::gather(&mig);
    /// assert_eq!(stats.num_nodes, 1);
    /// assert_eq!(stats.nodes_compl1, 1);
    /// ```
    pub fn gather(mig: &Mig) -> Self {
        let mut stats = MigStats {
            num_inputs: mig.num_inputs(),
            num_outputs: mig.num_outputs(),
            depth: mig.depth(),
            ..MigStats::default()
        };
        for id in mig.node_ids() {
            if let MigNode::Majority(children) = mig.node(id) {
                stats.num_nodes += 1;
                let compl = children.iter().filter(|c| c.is_complemented()).count();
                stats.complemented_edges += compl;
                match compl {
                    0 => stats.nodes_compl0 += 1,
                    1 => stats.nodes_compl1 += 1,
                    2 => stats.nodes_compl2 += 1,
                    _ => stats.nodes_compl3 += 1,
                }
                if children.iter().any(|c| c.is_constant()) {
                    stats.nodes_with_constant += 1;
                }
            }
        }
        for (_, signal) in mig.outputs() {
            if signal.is_complemented() {
                stats.complemented_edges += 1;
            }
        }
        stats
    }

    /// Number of majority nodes with more than one complemented child: these
    /// are the nodes that cost extra RM3 instructions and RRAMs.
    pub fn multi_complement_nodes(&self) -> usize {
        self.nodes_compl2 + self.nodes_compl3
    }

    /// Fraction of majority nodes that are in the ideal single-complement
    /// shape (0 when the graph has no majority nodes).
    pub fn ideal_fraction(&self) -> f64 {
        if self.num_nodes == 0 {
            0.0
        } else {
            self.nodes_compl1 as f64 / self.num_nodes as f64
        }
    }
}

impl fmt::Display for MigStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes={} depth={} compl[0/1/2/3]={}/{}/{}/{} const-children={}",
            self.num_nodes,
            self.depth,
            self.nodes_compl0,
            self.nodes_compl1,
            self.nodes_compl2,
            self.nodes_compl3,
            self.nodes_with_constant
        )
    }
}

/// Percentage improvement of `new` over `old` (positive = improvement),
/// following the paper's Table 1 convention.
///
/// Returns 0 when `old` is 0.
///
/// # Examples
///
/// ```
/// use mig::analysis::improvement_percent;
///
/// assert_eq!(improvement_percent(100, 80), 20.0);
/// assert_eq!(improvement_percent(100, 110), -10.0);
/// ```
pub fn improvement_percent(old: usize, new: usize) -> f64 {
    if old == 0 {
        0.0
    } else {
        (old as f64 - new as f64) / old as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Mig;
    use crate::signal::Signal;

    #[test]
    fn gathers_complement_profile() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n0 = mig.maj(a, b, c);
        let n1 = mig.maj(!a, b, c);
        let n2 = mig.maj(!a, !b, c);
        let n3 = mig.maj(!a, !b, !c);
        mig.add_output("o0", n0);
        mig.add_output("o1", n1);
        mig.add_output("o2", n2);
        mig.add_output("o3", !n3);
        let stats = MigStats::gather(&mig);
        assert_eq!(stats.num_nodes, 4);
        assert_eq!(stats.nodes_compl0, 1);
        assert_eq!(stats.nodes_compl1, 1);
        assert_eq!(stats.nodes_compl2, 1);
        assert_eq!(stats.nodes_compl3, 1);
        assert_eq!(stats.multi_complement_nodes(), 2);
        assert_eq!(stats.complemented_edges, 1 + 2 + 3 + 1);
        assert_eq!(stats.num_inputs, 3);
        assert_eq!(stats.num_outputs, 4);
    }

    #[test]
    fn counts_constant_children() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.and(a, b);
        let h = mig.maj(a, b, g);
        mig.add_output("f", h);
        let stats = MigStats::gather(&mig);
        assert_eq!(stats.nodes_with_constant, 1);
        assert_eq!(stats.num_nodes, 2);
    }

    #[test]
    fn ideal_fraction_bounds() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, !b);
        mig.add_output("f", f);
        let stats = MigStats::gather(&mig);
        assert!((stats.ideal_fraction() - 1.0).abs() < 1e-12);
        let empty = MigStats::gather(&Mig::new());
        assert_eq!(empty.ideal_fraction(), 0.0);
    }

    #[test]
    fn improvement_percent_edge_cases() {
        assert_eq!(improvement_percent(0, 10), 0.0);
        assert!((improvement_percent(200, 100) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn display_mentions_nodes() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        mig.add_output("f", a.complement_if(false));
        let _ = Signal::FALSE;
        let text = MigStats::gather(&mig).to_string();
        assert!(text.contains("nodes=0"));
    }
}
