//! A simple textual interchange format for MIGs.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comment
//! inputs a b cin
//! n1 = maj(a, !b, 0)
//! n2 = maj(n1, cin, 1)
//! output f = !n2
//! ```
//!
//! Signals are referenced by name (`a`, `n1`), optionally prefixed with `!`
//! for complementation; `0` and `1` denote the constants. Node definitions
//! must precede their uses.

use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::Signal;

/// Error produced when parsing the MIG text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMigError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for ParseMigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseMigError {}

/// Serializes a graph into the MIG text format.
///
/// # Examples
///
/// ```
/// use mig::{Mig, io::{write_mig, parse_mig}};
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let f = mig.and(a, !b);
/// mig.add_output("f", f);
/// let text = write_mig(&mig);
/// let reparsed = parse_mig(&text).unwrap();
/// assert_eq!(reparsed.num_majority_nodes(), 1);
/// ```
pub fn write_mig(mig: &Mig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# MIG v1: {} nodes", mig.num_majority_nodes());
    if mig.num_inputs() > 0 {
        let _ = write!(out, "inputs");
        for i in 0..mig.num_inputs() {
            let _ = write!(out, " {}", mig.input_name(i));
        }
        let _ = writeln!(out);
    }

    let name_of = |s: Signal, mig: &Mig| -> String {
        let base = match mig.node(s.node()) {
            MigNode::Constant => "0".to_string(),
            MigNode::Input(pi) => mig.input_name(*pi as usize).to_string(),
            MigNode::Majority(_) => format!("n{}", s.node().index()),
        };
        if s.is_complemented() {
            if base == "0" {
                "1".to_string()
            } else {
                format!("!{base}")
            }
        } else {
            base
        }
    };

    for id in mig.majority_ids() {
        let children = mig.node(id).children().expect("majority node");
        let _ = writeln!(
            out,
            "n{} = maj({}, {}, {})",
            id.index(),
            name_of(children[0], mig),
            name_of(children[1], mig),
            name_of(children[2], mig),
        );
    }
    for (name, signal) in mig.outputs() {
        let _ = writeln!(out, "output {} = {}", name, name_of(*signal, mig));
    }
    out
}

/// Parses the MIG text format produced by [`write_mig`].
///
/// # Errors
///
/// Returns [`ParseMigError`] on malformed lines, references to undefined
/// signals, or duplicate definitions.
pub fn parse_mig(text: &str) -> Result<Mig, ParseMigError> {
    let mut mig = Mig::new();
    let mut names: HashMap<String, Signal> = HashMap::new();

    let err = |line: usize, message: &str| ParseMigError {
        line,
        message: message.to_string(),
    };

    let resolve = |token: &str,
                   names: &HashMap<String, Signal>,
                   line: usize|
     -> Result<Signal, ParseMigError> {
        let (compl, name) = match token.strip_prefix('!') {
            Some(rest) => (true, rest),
            None => (false, token),
        };
        let base = match name {
            "0" => Signal::FALSE,
            "1" => Signal::TRUE,
            _ => *names
                .get(name)
                .ok_or_else(|| err(line, &format!("undefined signal `{name}`")))?,
        };
        Ok(base.complement_if(compl))
    };

    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        if let Some(rest) = line.strip_prefix("inputs") {
            for name in rest.split_whitespace() {
                if names.contains_key(name) {
                    return Err(err(line_no, &format!("duplicate input `{name}`")));
                }
                let s = mig.add_input(name);
                names.insert(name.to_string(), s);
            }
        } else if let Some(rest) = line.strip_prefix("output") {
            let mut parts = rest.splitn(2, '=');
            let name = parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(line_no, "missing output name"))?;
            let token = parts
                .next()
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .ok_or_else(|| err(line_no, "missing `=` in output"))?;
            let signal = resolve(token, &names, line_no)?;
            mig.add_output(name, signal);
        } else if line.contains('=') {
            let mut parts = line.splitn(2, '=');
            let name = parts.next().unwrap().trim();
            let body = parts.next().unwrap().trim();
            if names.contains_key(name) {
                return Err(err(line_no, &format!("duplicate definition `{name}`")));
            }
            let inner = body
                .strip_prefix("maj(")
                .and_then(|s| s.strip_suffix(')'))
                .ok_or_else(|| err(line_no, "expected `maj(a, b, c)`"))?;
            let tokens: Vec<&str> = inner.split(',').map(str::trim).collect();
            if tokens.len() != 3 {
                return Err(err(line_no, "maj takes exactly three operands"));
            }
            let a = resolve(tokens[0], &names, line_no)?;
            let b = resolve(tokens[1], &names, line_no)?;
            let c = resolve(tokens[2], &names, line_no)?;
            let signal = mig.maj(a, b, c);
            names.insert(name.to_string(), signal);
        } else {
            return Err(err(line_no, "unrecognized line"));
        }
    }
    Ok(mig)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::check_equivalence;

    fn sample() -> Mig {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n1 = mig.maj(a, !b, Signal::FALSE);
        let n2 = mig.maj(n1, c, Signal::TRUE);
        mig.add_output("f", !n2);
        mig.add_output("g", n1);
        mig
    }

    #[test]
    fn roundtrip_preserves_function() {
        let original = sample();
        let text = write_mig(&original);
        let parsed = parse_mig(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 3);
        assert_eq!(parsed.num_outputs(), 2);
        assert!(check_equivalence(&original, &parsed, 8, 1).unwrap().holds());
    }

    #[test]
    fn parses_comments_and_blank_lines() {
        let text = "\n# header\ninputs a b # trailing\nn1 = maj(a, b, 0)\noutput f = n1\n";
        let mig = parse_mig(text).unwrap();
        assert_eq!(mig.num_majority_nodes(), 1);
    }

    #[test]
    fn parses_constants() {
        let text = "inputs a\nn1 = maj(a, 1, 0)\noutput f = !n1";
        let mig = parse_mig(text).unwrap();
        // ⟨a 1 0⟩ = a, so n1 resolves to the input itself.
        assert_eq!(mig.num_majority_nodes(), 0);
        assert!(mig.outputs()[0].1.is_complemented());
    }

    #[test]
    fn rejects_undefined_signal() {
        let e = parse_mig("inputs a\nn1 = maj(a, bogus, 0)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        assert!(e.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_malformed_node() {
        assert!(parse_mig("inputs a\nn1 = and(a, a, a)").is_err());
        assert!(parse_mig("inputs a\nn1 = maj(a, a)").is_err());
        assert!(parse_mig("garbage").is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse_mig("inputs a a").is_err());
        assert!(parse_mig("inputs a\na = maj(a, a, 0)").is_err());
    }

    #[test]
    fn rejects_incomplete_output() {
        assert!(parse_mig("inputs a\noutput f").is_err());
        assert!(parse_mig("inputs a\noutput = a").is_err());
    }

    #[test]
    fn complemented_constant_written_as_one() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let or = mig.or(a, a); // simplifies; force constant usage instead
        let _ = or;
        let n = mig.maj(a, Signal::TRUE, Signal::FALSE);
        mig.add_output("f", n);
        let text = write_mig(&mig);
        // ⟨a 1 0⟩ simplified to `a` at creation: output references input.
        assert!(text.contains("output f = a"));
    }
}
