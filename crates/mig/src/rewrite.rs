//! MIG rewriting for the PLiM architecture (Algorithm 1 of the paper).
//!
//! The rewriting flow interleaves two goals:
//!
//! 1. **Size reduction** — the majority axiom Ω.M (applied at node-creation
//!    time) and right-to-left distributivity Ω.D eliminate nodes; the
//!    associativity axiom Ω.A (with commutativity Ω.C) reshapes the graph to
//!    expose further elimination opportunities.
//! 2. **Complement-edge redistribution** — the extended inverter-propagation
//!    rules Ω.I R→L(1–3) rewrite nodes with two or three complemented child
//!    edges into nodes with at most one, the shape the RM3 instruction
//!    computes natively (`Z ← ⟨A B̄ Z⟩`).
//!
//! One rewriting *cycle* is the paper's Algorithm 1 body:
//!
//! ```text
//! Ω.M ; Ω.D(R→L) ; Ω.A ; Ω.C ; Ω.M ; Ω.D(R→L) ; Ω.I(R→L)(1–3) ; Ω.I(R→L)
//! ```
//!
//! and [`rewrite`] runs `effort` cycles (the paper uses 4).
//!
//! # Two engines, one schedule
//!
//! The module ships two implementations of the same pass schedule:
//!
//! * the **in-place engine** ([`rewrite`], [`rewrite_inplace`],
//!   [`crate::arena::RewriteArena`]) mutates one arena across all passes
//!   and cycles, re-strashing only the nodes a rewrite touches, and
//!   compacts the graph exactly once at the end of the run. This is the
//!   default: it performs no per-pass graph reconstruction and its working
//!   set is a single node table plus one hash map.
//! * the **rebuild engine** ([`rewrite_rebuild`], [`pass_distributivity_rl`],
//!   [`pass_associativity`], [`pass_inverter_reduce`]) reconstructs the
//!   graph on every pass. It is retained as the simple reference
//!   implementation the in-place engine is differential-tested against
//!   (`tests/rewrite_differential.rs`) and benchmarked against
//!   (`cargo bench -p plim-bench`).
//!
//! Both engines apply only Ω-axiom instances, so their results are
//! functionally equivalent to the input; the in-place engine additionally
//! never produces more nodes than the rebuild engine on the benchmark
//! suite (asserted in the differential tests).

use crate::algebra::{find_shared_pair, invert_triple, trivial_triple};
use crate::arena::RewriteArena;
use crate::graph::Mig;
use crate::node::MigNode;
use crate::signal::{NodeId, Signal};

/// Statistics collected by [`rewrite_with_stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Majority-node count before rewriting.
    pub nodes_before: usize,
    /// Majority-node count after rewriting.
    pub nodes_after: usize,
    /// Number of cycles actually executed (may stop early at a fixpoint).
    pub cycles: usize,
    /// Distributivity R→L applications across all cycles.
    pub distributivity_applied: usize,
    /// Associativity reshapes across all cycles.
    pub associativity_applied: usize,
    /// Inverter flips (nodes whose complement edges were redistributed).
    pub inverter_flips: usize,
    /// Node count at the end of each cycle.
    pub size_per_cycle: Vec<usize>,
}

/// Rewrites the graph for PLiM compilation, running `effort` cycles of
/// Algorithm 1 on the in-place arena engine. Returns the rewritten graph.
///
/// The result is functionally equivalent to the input (every pass applies
/// only Ω-axiom instances); [`crate::equiv::check_equivalence`] can be used
/// to validate this.
///
/// # Examples
///
/// ```
/// use mig::{Mig, rewrite::rewrite};
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let f = mig.maj(!a, !b, mig.constant(true));
/// mig.add_output("f", f);
/// let rewritten = rewrite(&mig, 4);
/// // The double complement was redistributed: at most one complemented
/// // non-constant child per node remains.
/// assert!(rewritten.num_majority_nodes() <= mig.num_majority_nodes());
/// ```
pub fn rewrite(mig: &Mig, effort: usize) -> Mig {
    rewrite_with_stats(mig, effort).0
}

/// Like [`rewrite`], also returning pass statistics.
pub fn rewrite_with_stats(mig: &Mig, effort: usize) -> (Mig, RewriteStats) {
    rewrite_inplace_with_stats(mig, effort)
}

/// Explicit entry point for the in-place arena engine (what [`rewrite`]
/// delegates to). Allocates a fresh [`RewriteArena`] per call; drivers that
/// rewrite many circuits should keep one arena and call
/// [`RewriteArena::rewrite`] to reuse its buffers.
pub fn rewrite_inplace(mig: &Mig, effort: usize) -> Mig {
    rewrite_inplace_with_stats(mig, effort).0
}

/// Like [`rewrite_inplace`], also returning pass statistics.
pub fn rewrite_inplace_with_stats(mig: &Mig, effort: usize) -> (Mig, RewriteStats) {
    RewriteArena::new().rewrite_with_stats(mig, effort)
}

/// The rebuild-based reference engine: every pass reconstructs the graph.
/// Kept for differential testing and benchmarking against the in-place
/// engine; prefer [`rewrite`] everywhere else.
pub fn rewrite_rebuild(mig: &Mig, effort: usize) -> Mig {
    rewrite_rebuild_with_stats(mig, effort).0
}

/// Like [`rewrite_rebuild`], also returning pass statistics.
pub fn rewrite_rebuild_with_stats(mig: &Mig, effort: usize) -> (Mig, RewriteStats) {
    let mut stats = RewriteStats {
        nodes_before: mig.num_majority_nodes(),
        ..RewriteStats::default()
    };
    let mut current = mig.cleaned();
    for _ in 0..effort {
        let size_at_cycle_start = current.num_majority_nodes();
        let flips_at_cycle_start = stats.inverter_flips;

        // Ω.M ; Ω.D(R→L)
        let (next, dist) = pass_distributivity_rl(&current);
        stats.distributivity_applied += dist;
        current = next;

        // Ω.A ; Ω.C  (commutativity is implicit in canonical child sorting)
        let (next, assoc) = pass_associativity(&current);
        stats.associativity_applied += assoc;
        current = next;

        // Ω.M ; Ω.D(R→L)
        let (next, dist) = pass_distributivity_rl(&current);
        stats.distributivity_applied += dist;
        current = next;

        // Ω.I(R→L)(1–3) followed by a final Ω.I(R→L) sweep.
        let (next, flips) = pass_inverter_reduce(&current);
        stats.inverter_flips += flips;
        current = next;
        let (next, flips) = pass_inverter_reduce(&current);
        stats.inverter_flips += flips;
        current = next;

        stats.cycles += 1;
        stats.size_per_cycle.push(current.num_majority_nodes());
        let unchanged = current.num_majority_nodes() == size_at_cycle_start
            && stats.inverter_flips == flips_at_cycle_start
            && dist == 0
            && assoc == 0;
        if unchanged {
            break;
        }
    }
    stats.nodes_after = current.num_majority_nodes();
    (current, stats)
}

/// Maps old-graph signals to new-graph signals during a rebuild pass.
struct Remap {
    map: Vec<Signal>,
}

impl Remap {
    fn with_inputs(old: &Mig, new: &mut Mig) -> Self {
        let mut map = vec![Signal::FALSE; old.len()];
        for (index, &id) in old.inputs().iter().enumerate() {
            map[id.index()] = new.add_input(old.input_name(index).to_string());
        }
        Remap { map }
    }

    #[inline]
    fn get(&self, s: Signal) -> Signal {
        self.map[s.node().index()].complement_if(s.is_complemented())
    }

    #[inline]
    fn set(&mut self, id: NodeId, s: Signal) {
        self.map[id.index()] = s;
    }
}

fn copy_outputs(old: &Mig, new: &mut Mig, remap: &Remap) {
    for (name, signal) in old.outputs() {
        let mapped = remap.get(*signal);
        new.add_output(name.clone(), mapped);
    }
}

/// Plain rebuild pass: applies Ω.M (node-creation simplification), structural
/// hashing, and dead-node elimination. Equivalent to [`Mig::cleaned`].
pub fn pass_majority(mig: &Mig) -> Mig {
    mig.cleaned()
}

/// Right-to-left distributivity pass:
/// `⟨⟨x y u⟩ ⟨x y v⟩ z⟩ → ⟨x y ⟨u v z⟩⟩`.
///
/// The rewrite is applied when two majority children of a node share two
/// child signals and neither has other fanout (so the rewrite cannot
/// duplicate logic). Complemented edges to the majority children are handled
/// by pushing the inverter into the child triple via Ω.I. Returns the new
/// graph and the number of applications.
pub fn pass_distributivity_rl(mig: &Mig) -> (Mig, usize) {
    let reachable = mig.reachable_mask();
    let fanout = mig.fanout_counts();
    let mut new = Mig::with_capacity(mig.num_majority_nodes());
    let mut remap = Remap::with_inputs(mig, &mut new);
    let mut applied = 0;

    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };

        let mut replaced = None;
        'outer: for i in 0..3 {
            for j in (i + 1)..3 {
                let (ci, cj) = (children[i], children[j]);
                if let Some(result) = try_distributivity(mig, &fanout, ci, cj, children[3 - i - j])
                {
                    replaced = Some(result);
                    break 'outer;
                }
            }
        }

        let mapped = match replaced {
            Some((common, rest_a, rest_b, z)) => {
                applied += 1;
                let inner = new.maj(remap.get(rest_a), remap.get(rest_b), remap.get(z));
                new.maj(remap.get(common[0]), remap.get(common[1]), inner)
            }
            None => new.maj(
                remap.get(children[0]),
                remap.get(children[1]),
                remap.get(children[2]),
            ),
        };
        remap.set(id, mapped);
    }

    copy_outputs(mig, &mut new, &remap);
    // Children bypassed by a rewrite were already rebuilt (they precede their
    // parents in topological order); a final cleanup drops them if dead.
    (new.cleaned(), applied)
}

/// Checks whether children `ci` and `cj` of a node (with third child `z`)
/// match the distributivity R→L pattern. Returns the rewrite ingredients in
/// old-graph signal space: shared pair, the two rest signals, and `z`.
fn try_distributivity(
    mig: &Mig,
    fanout: &[u32],
    ci: Signal,
    cj: Signal,
    z: Signal,
) -> Option<([Signal; 2], Signal, Signal, Signal)> {
    let ti = effective_triple(mig, ci)?;
    let tj = effective_triple(mig, cj)?;
    if fanout[ci.node().index()] != 1 || fanout[cj.node().index()] != 1 {
        return None;
    }
    let shared = find_shared_pair(&ti, &tj)?;
    Some((shared.common, shared.rest_a, shared.rest_b, z))
}

/// The child triple a signal stands for, pushing a complemented edge into the
/// children via Ω.I: `!⟨a b c⟩ = ⟨ā b̄ c̄⟩`.
fn effective_triple(mig: &Mig, s: Signal) -> Option<[Signal; 3]> {
    let children = mig.node(s.node()).children()?;
    Some(if s.is_complemented() {
        invert_triple(children)
    } else {
        *children
    })
}

/// Associativity reshaping pass: `⟨x u ⟨y u z⟩⟩ → ⟨z u ⟨y u x⟩⟩`.
///
/// A swap is performed only when it is guaranteed not to increase size:
/// either the new inner triple already exists in the graph (sharing gain) or
/// it simplifies trivially under Ω.M. Returns the new graph and the number of
/// applications.
pub fn pass_associativity(mig: &Mig) -> (Mig, usize) {
    let reachable = mig.reachable_mask();
    let fanout = mig.fanout_counts();
    let mut new = Mig::with_capacity(mig.num_majority_nodes());
    let mut remap = Remap::with_inputs(mig, &mut new);
    let mut applied = 0;

    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };

        let mapped = match try_associativity(mig, &fanout, &mut new, &remap, children) {
            Some((outer_a, outer_b, inner)) => {
                applied += 1;
                new.maj(outer_a, outer_b, inner)
            }
            None => new.maj(
                remap.get(children[0]),
                remap.get(children[1]),
                remap.get(children[2]),
            ),
        };
        remap.set(id, mapped);
    }

    copy_outputs(mig, &mut new, &remap);
    (new.cleaned(), applied)
}

/// Attempts an associativity swap on the given node children. Returns the
/// new-graph signals `(outer_a, outer_b, inner)` such that the node becomes
/// `⟨outer_a outer_b inner⟩`.
fn try_associativity(
    mig: &Mig,
    fanout: &[u32],
    new: &mut Mig,
    remap: &Remap,
    children: &[Signal; 3],
) -> Option<(Signal, Signal, Signal)> {
    for g_pos in 0..3 {
        let g = children[g_pos];
        // Only restructure through a plain edge to a single-fanout child, so
        // the old inner node disappears and size cannot grow.
        if g.is_complemented() || fanout[g.node().index()] != 1 {
            continue;
        }
        let Some(inner_children) = mig.node(g.node()).children() else {
            continue;
        };
        let outer_rest: [Signal; 2] = {
            let rest: Vec<Signal> = (0..3)
                .filter(|&k| k != g_pos)
                .map(|k| children[k])
                .collect();
            [rest[0], rest[1]]
        };
        // The axiom requires a signal `u` shared (exactly, with polarity)
        // between the outer children and the inner triple.
        for u_pos in 0..2 {
            let u = outer_rest[u_pos];
            let Some(u_inner) = inner_children.iter().position(|&s| s == u) else {
                continue;
            };
            let x = outer_rest[1 - u_pos];
            let inner_rest: Vec<Signal> = (0..3)
                .filter(|&k| k != u_inner)
                .map(|k| inner_children[k])
                .collect();
            for r in 0..2 {
                let swap = inner_rest[r]; // moves to the outer node
                let other = inner_rest[1 - r]; // stays inner
                                               // New inner ⟨other u x⟩, new node ⟨swap u inner'⟩.
                let (mo, mu, mx) = (remap.get(other), remap.get(u), remap.get(x));
                if trivial_triple(mo, mu, mx) || new.find_maj(mo, mu, mx).is_some() {
                    let inner_sig = new.maj(mo, mu, mx);
                    return Some((remap.get(swap), mu, inner_sig));
                }
            }
        }
    }
    None
}

/// Inverter-propagation pass Ω.I R→L(1–3): rewrites every node with two or
/// three complemented non-constant children into a node with at most one,
/// complementing the output edge:
///
/// * `⟨x̄ ȳ z̄⟩ → ¬⟨x y z⟩`
/// * `⟨x̄ ȳ z⟩ → ¬⟨x y z̄⟩`
///
/// Complemented constant children (the signal `1`) do not count: constants
/// are free operands in the RM3 translation. Returns the new graph and the
/// number of flipped nodes.
pub fn pass_inverter_reduce(mig: &Mig) -> (Mig, usize) {
    let reachable = mig.reachable_mask();
    let mut new = Mig::with_capacity(mig.num_majority_nodes());
    let mut remap = Remap::with_inputs(mig, &mut new);
    let mut flips = 0;

    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        let MigNode::Majority(children) = mig.node(id) else {
            continue;
        };
        let mapped: Vec<Signal> = children.iter().map(|c| remap.get(*c)).collect();
        let real_complemented = mapped
            .iter()
            .filter(|c| c.is_complemented() && !c.is_constant())
            .count();
        let result = if real_complemented >= 2 {
            flips += 1;
            !new.maj(!mapped[0], !mapped[1], !mapped[2])
        } else {
            new.maj(mapped[0], mapped[1], mapped[2])
        };
        remap.set(id, result);
    }

    copy_outputs(mig, &mut new, &remap);
    (new, flips)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::check_equivalence;

    fn assert_equivalent(a: &Mig, b: &Mig) {
        assert!(
            check_equivalence(a, b, 32, 0xBEEF).unwrap().holds(),
            "rewrite changed the function"
        );
    }

    #[test]
    fn inverter_pass_redistributes_complements() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n = mig.maj(!a, !b, c);
        mig.add_output("f", n);
        let (new, flips) = pass_inverter_reduce(&mig);
        assert_eq!(flips, 1);
        assert_equivalent(&mig, &new);
        // The rewritten node has one complemented child; output is inverted.
        let (_, out) = &new.outputs()[0];
        assert!(out.is_complemented());
        let children = new.node(out.node()).children().unwrap();
        let compl = children.iter().filter(|s| s.is_complemented()).count();
        assert_eq!(compl, 1);
    }

    #[test]
    fn inverter_pass_handles_triple_complement() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n = mig.maj(!a, !b, !c);
        mig.add_output("f", n);
        let (new, flips) = pass_inverter_reduce(&mig);
        assert_eq!(flips, 1);
        assert_equivalent(&mig, &new);
        let (_, out) = &new.outputs()[0];
        let children = new.node(out.node()).children().unwrap();
        assert_eq!(children.iter().filter(|s| s.is_complemented()).count(), 0);
    }

    #[test]
    fn inverter_pass_ignores_constant_complements() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        // OR(a, !b) = ⟨1 a b̄⟩ has one real complement; must not flip.
        let n = mig.maj(Signal::TRUE, a, !b);
        mig.add_output("f", n);
        let (new, flips) = pass_inverter_reduce(&mig);
        assert_eq!(flips, 0);
        assert_equivalent(&mig, &new);
    }

    #[test]
    fn inverter_pass_cascades_through_levels() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let lower = mig.maj(!a, !b, c); // will flip; parents see !lower'
        let upper = mig.maj(lower, !d, c); // had one complement; gains another
        mig.add_output("f", upper);
        let (new, flips) = pass_inverter_reduce(&mig);
        assert!(flips >= 1);
        assert_equivalent(&mig, &new);
        // After a second sweep every node is in the ≤1 complement form.
        let (second, _) = pass_inverter_reduce(&new);
        assert_equivalent(&mig, &second);
        for id in second.majority_ids() {
            let children = second.node(id).children().unwrap();
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            assert!(real <= 1, "node {id} still has {real} complements");
        }
    }

    #[test]
    fn distributivity_merges_shared_pairs() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let left = mig.maj(x, y, u);
        let right = mig.maj(x, y, v);
        let top = mig.maj(left, right, z);
        mig.add_output("f", top);
        assert_eq!(mig.num_majority_nodes(), 3);
        let (new, applied) = pass_distributivity_rl(&mig);
        assert_eq!(applied, 1);
        assert_eq!(new.num_majority_nodes(), 2);
        assert_equivalent(&mig, &new);
    }

    #[test]
    fn distributivity_skips_shared_fanout() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        let left = mig.maj(x, y, u);
        let right = mig.maj(x, y, v);
        let top = mig.maj(left, right, z);
        mig.add_output("f", top);
        mig.add_output("g", left); // left now has fanout 2
        let (new, applied) = pass_distributivity_rl(&mig);
        assert_eq!(applied, 0);
        assert_equivalent(&mig, &new);
    }

    #[test]
    fn distributivity_handles_complemented_pair() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let u = mig.add_input("u");
        let v = mig.add_input("v");
        let z = mig.add_input("z");
        // ⟨!⟨x y u⟩ !⟨x y v⟩ z⟩ = ⟨⟨x̄ ȳ ū⟩ ⟨x̄ ȳ v̄⟩ z⟩ → ⟨x̄ ȳ ⟨ū v̄ z⟩⟩
        let left = mig.maj(x, y, u);
        let right = mig.maj(x, y, v);
        let top = mig.maj(!left, !right, z);
        mig.add_output("f", top);
        let (new, applied) = pass_distributivity_rl(&mig);
        assert_eq!(applied, 1);
        assert_eq!(new.num_majority_nodes(), 2);
        assert_equivalent(&mig, &new);
    }

    #[test]
    fn rewrite_is_equivalence_preserving_on_adders() {
        // A small ripple-carry adder built AOIG-style exercises every pass.
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 4);
        let ys = mig.add_inputs("y", 4);
        let mut carry = Signal::FALSE;
        for i in 0..4 {
            let sum = mig.xor3(xs[i], ys[i], carry);
            carry = mig.maj(xs[i], ys[i], carry);
            mig.add_output(format!("s{i}"), sum);
        }
        mig.add_output("cout", carry);
        let (rewritten, stats) = rewrite_with_stats(&mig, 4);
        assert_equivalent(&mig, &rewritten);
        assert!(stats.nodes_after <= stats.nodes_before);
        assert!(stats.cycles >= 1);
    }

    #[test]
    fn rewrite_reaches_fixpoint_early() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let (_, stats) = rewrite_with_stats(&mig, 100);
        assert!(stats.cycles < 100, "tiny graph must reach fixpoint quickly");
    }

    #[test]
    fn rewrite_removes_multi_complement_nodes() {
        use crate::analysis::MigStats;
        let mut mig = Mig::new();
        let sigs = mig.add_inputs("x", 6);
        let n1 = mig.maj(!sigs[0], !sigs[1], sigs[2]);
        let n2 = mig.maj(!sigs[3], !sigs[4], !sigs[5]);
        let n3 = mig.maj(!n1, !n2, sigs[0]);
        mig.add_output("f", n3);
        let before = MigStats::gather(&mig);
        assert!(before.multi_complement_nodes() > 0);
        let rewritten = rewrite(&mig, 4);
        assert_equivalent(&mig, &rewritten);
        let mut multi = 0;
        for id in rewritten.majority_ids() {
            let children = rewritten.node(id).children().unwrap();
            let real = children
                .iter()
                .filter(|s| s.is_complemented() && !s.is_constant())
                .count();
            if real >= 2 {
                multi += 1;
            }
        }
        assert_eq!(multi, 0, "all multi-complement nodes must be rewritten");
    }

    #[test]
    fn associativity_enables_sharing() {
        let mut mig = Mig::new();
        let x = mig.add_input("x");
        let u = mig.add_input("u");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        // f = ⟨x u ⟨y u z⟩⟩ and g = ⟨y u x⟩ exists already: the swap
        // ⟨z u ⟨y u x⟩⟩ can share g.
        let g = mig.maj(y, u, x);
        mig.add_output("g", g);
        let inner = mig.maj(y, u, z);
        let f = mig.maj(x, u, inner);
        mig.add_output("f", f);
        assert_eq!(mig.num_majority_nodes(), 3);
        let (new, applied) = pass_associativity(&mig);
        assert_eq!(applied, 1);
        assert_equivalent(&mig, &new);
        assert_eq!(new.num_majority_nodes(), 2);
    }
}
