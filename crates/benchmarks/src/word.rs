//! Word-level circuit construction on MIGs.
//!
//! All constructions are deliberately **AIG-style**: they use only AND
//! gates (majority nodes with a constant-0 child) and inverters, like the
//! EPFL benchmark netlists the paper transposes into its initial MIGs.
//! Disjunctions appear De Morgan-style (`a ∨ b = ¬(ā ∧ b̄)`), so the initial
//! graphs contain the multi-complement nodes whose elimination is the
//! target of the paper's rewriting (Ω.I R→L). Starting from this shape
//! gives [`mig::rewrite`] the same optimization headroom as the original
//! evaluation.
//!
//! Words are little-endian: index 0 is the least-significant bit.

use mig::{Mig, Signal};

/// The signals of a constant word.
pub fn constant_word(value: u64, width: usize) -> Vec<Signal> {
    (0..width)
        .map(|i| Signal::constant(i < 64 && value >> i & 1 != 0))
        .collect()
}

/// Two-input OR built AIG-style: `¬(ā ∧ b̄)` (De Morgan).
pub fn or2(mig: &mut Mig, a: Signal, b: Signal) -> Signal {
    !mig.and(!a, !b)
}

/// Two-input XOR built AIG-style: `(a ∨ b) ∧ ¬(a ∧ b)`.
pub fn xor2(mig: &mut Mig, a: Signal, b: Signal) -> Signal {
    let or = or2(mig, a, b);
    let and = mig.and(a, b);
    mig.and(or, !and)
}

/// Full adder built AOIG-style. Returns `(sum, carry)`.
pub fn full_adder(mig: &mut Mig, a: Signal, b: Signal, cin: Signal) -> (Signal, Signal) {
    let axb = xor2(mig, a, b);
    let sum = xor2(mig, axb, cin);
    let ab = mig.and(a, b);
    let cx = mig.and(cin, axb);
    let carry = or2(mig, ab, cx);
    (sum, carry)
}

/// Ripple-carry addition of two equal-width words. Returns the sum word and
/// the carry-out.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn ripple_add(mig: &mut Mig, a: &[Signal], b: &[Signal], cin: Signal) -> (Vec<Signal>, Signal) {
    assert_eq!(a.len(), b.len(), "ripple_add requires equal widths");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(mig, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Subtraction `a - b` via two's complement (`a + b̄ + 1`). Returns the
/// difference and the *borrow* (1 when `a < b`, unsigned).
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn ripple_sub(mig: &mut Mig, a: &[Signal], b: &[Signal]) -> (Vec<Signal>, Signal) {
    assert_eq!(a.len(), b.len(), "ripple_sub requires equal widths");
    let nb: Vec<Signal> = b.iter().map(|&s| !s).collect();
    let (diff, carry) = ripple_add(mig, a, &nb, Signal::TRUE);
    (diff, !carry)
}

/// Bitwise word multiplexer: `s ? t : e`.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn mux_word(mig: &mut Mig, s: Signal, t: &[Signal], e: &[Signal]) -> Vec<Signal> {
    assert_eq!(t.len(), e.len(), "mux_word requires equal widths");
    t.iter()
        .zip(e)
        .map(|(&x, &y)| {
            let st = mig.and(s, x);
            let se = mig.and(!s, y);
            or2(mig, st, se)
        })
        .collect()
}

/// Unsigned comparison `a < b` (the borrow of `a - b`).
pub fn less_than(mig: &mut Mig, a: &[Signal], b: &[Signal]) -> Signal {
    let (_, borrow) = ripple_sub(mig, a, b);
    borrow
}

/// Word equality.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn equal_words(mig: &mut Mig, a: &[Signal], b: &[Signal]) -> Signal {
    assert_eq!(a.len(), b.len(), "equal_words requires equal widths");
    let mut acc = Signal::TRUE;
    for (&x, &y) in a.iter().zip(b) {
        let bit_eq = xor2(mig, x, y);
        acc = mig.and(acc, !bit_eq);
    }
    acc
}

/// Zero-extends (or truncates) a word to `width` bits.
pub fn resize(word: &[Signal], width: usize) -> Vec<Signal> {
    let mut out: Vec<Signal> = word.iter().copied().take(width).collect();
    while out.len() < width {
        out.push(Signal::FALSE);
    }
    out
}

/// Logical left shift by a constant amount (bits shifted in are 0).
pub fn shift_left_const(word: &[Signal], amount: usize) -> Vec<Signal> {
    let mut out = vec![Signal::FALSE; amount.min(word.len())];
    out.extend(word.iter().copied().take(word.len() - out.len()));
    out
}

/// Barrel rotation left by a variable amount (one mux stage per shift bit).
pub fn rotate_left_barrel(mig: &mut Mig, word: &[Signal], amount: &[Signal]) -> Vec<Signal> {
    let mut current: Vec<Signal> = word.to_vec();
    let n = word.len();
    for (stage, &bit) in amount.iter().enumerate() {
        let distance = 1usize << stage;
        if distance >= n && n > 0 {
            // Rotation by a multiple of the width is the identity only when
            // n is a power of two; handle the general case via modulo.
            let d = distance % n;
            if d == 0 {
                continue;
            }
            let rotated: Vec<Signal> = (0..n).map(|i| current[(i + n - d) % n]).collect();
            current = mux_word(mig, bit, &rotated, &current);
            continue;
        }
        let rotated: Vec<Signal> = (0..n).map(|i| current[(i + n - distance) % n]).collect();
        current = mux_word(mig, bit, &rotated, &current);
    }
    current
}

/// Barrel logical right shift by a variable amount.
pub fn shift_right_barrel(mig: &mut Mig, word: &[Signal], amount: &[Signal]) -> Vec<Signal> {
    let mut current: Vec<Signal> = word.to_vec();
    let n = word.len();
    for (stage, &bit) in amount.iter().enumerate() {
        let distance = 1usize << stage;
        let shifted: Vec<Signal> = (0..n)
            .map(|i| {
                if i + distance < n {
                    current[i + distance]
                } else {
                    Signal::FALSE
                }
            })
            .collect();
        current = mux_word(mig, bit, &shifted, &current);
    }
    current
}

/// Barrel logical left shift by a variable amount.
pub fn shift_left_barrel(mig: &mut Mig, word: &[Signal], amount: &[Signal]) -> Vec<Signal> {
    let mut current: Vec<Signal> = word.to_vec();
    let n = word.len();
    for (stage, &bit) in amount.iter().enumerate() {
        let distance = 1usize << stage;
        let shifted: Vec<Signal> = (0..n)
            .map(|i| {
                if i >= distance {
                    current[i - distance]
                } else {
                    Signal::FALSE
                }
            })
            .collect();
        current = mux_word(mig, bit, &shifted, &current);
    }
    current
}

/// Array multiplier: partial products summed with ripple adders. The result
/// has `a.len() + b.len()` bits.
pub fn multiply(mig: &mut Mig, a: &[Signal], b: &[Signal]) -> Vec<Signal> {
    let width = a.len() + b.len();
    let mut acc = constant_word(0, width);
    for (i, &bi) in b.iter().enumerate() {
        let mut partial = vec![Signal::FALSE; i];
        for &aj in a {
            partial.push(mig.and(aj, bi));
        }
        let partial = resize(&partial, width);
        let (sum, _) = ripple_add(mig, &acc, &partial, Signal::FALSE);
        acc = sum;
    }
    acc
}

/// Population count: an adder tree summing the input bits. The result has
/// `ceil(log2(n+1))` bits.
pub fn popcount(mig: &mut Mig, bits: &[Signal]) -> Vec<Signal> {
    match bits.len() {
        0 => vec![Signal::FALSE],
        1 => vec![bits[0]],
        2 => {
            let (s, c) = {
                let s = xor2(mig, bits[0], bits[1]);
                let c = mig.and(bits[0], bits[1]);
                (s, c)
            };
            vec![s, c]
        }
        3 => {
            let (s, c) = full_adder(mig, bits[0], bits[1], bits[2]);
            vec![s, c]
        }
        n => {
            let mid = n / 2;
            let left = popcount(mig, &bits[..mid]);
            let right = popcount(mig, &bits[mid..]);
            let width = left.len().max(right.len()) + 1;
            let left = resize(&left, width);
            let right = resize(&right, width);
            let (sum, _) = ripple_add(mig, &left, &right, Signal::FALSE);
            sum
        }
    }
}

/// Restoring division: returns `(quotient, remainder)` of the unsigned
/// division `dividend / divisor` (both words the same width). A zero divisor
/// yields quotient = all-ones and remainder = dividend, like a hardware
/// restoring divider.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn divide_restoring(
    mig: &mut Mig,
    dividend: &[Signal],
    divisor: &[Signal],
) -> (Vec<Signal>, Vec<Signal>) {
    assert_eq!(
        dividend.len(),
        divisor.len(),
        "divide_restoring requires equal widths"
    );
    let n = dividend.len();
    let width = n + 1;
    let divisor_ext = resize(divisor, width);
    let mut remainder = constant_word(0, width);
    let mut quotient = vec![Signal::FALSE; n];
    for i in (0..n).rev() {
        // remainder = (remainder << 1) | dividend[i]
        let mut shifted = vec![dividend[i]];
        shifted.extend(remainder.iter().copied().take(width - 1));
        let (diff, borrow) = ripple_sub(mig, &shifted, &divisor_ext);
        quotient[i] = !borrow;
        remainder = mux_word(mig, borrow, &shifted, &diff);
    }
    (quotient, resize(&remainder, n))
}

/// Restoring integer square root of a `2n`-bit word; returns the `n`-bit
/// root.
///
/// # Panics
///
/// Panics if the input width is odd.
pub fn isqrt_restoring(mig: &mut Mig, x: &[Signal]) -> Vec<Signal> {
    assert!(
        x.len().is_multiple_of(2),
        "isqrt_restoring requires an even width"
    );
    let n = x.len() / 2;
    let width = n + 2;
    let mut remainder = constant_word(0, width);
    let mut root: Vec<Signal> = Vec::new(); // grows msb-first, kept lsb-first
    for i in (0..n).rev() {
        // remainder = (remainder << 2) | x[2i+1..2i]
        let mut shifted = vec![x[2 * i], x[2 * i + 1]];
        shifted.extend(remainder.iter().copied().take(width - 2));
        // trial = (root << 2) | 01
        let mut trial = vec![Signal::TRUE, Signal::FALSE];
        trial.extend(root.iter().copied());
        let trial = resize(&trial, width);
        let (diff, borrow) = ripple_sub(mig, &shifted, &trial);
        remainder = mux_word(mig, borrow, &shifted, &diff);
        // root = (root << 1) | !borrow
        let mut new_root = vec![!borrow];
        new_root.extend(root.iter().copied());
        root = new_root;
    }
    root
}

/// Priority encoder over `bits` (highest index wins). Returns the index word
/// (`ceil(log2(n))` bits) and a valid flag (any input set).
pub fn priority_encode(mig: &mut Mig, bits: &[Signal]) -> (Vec<Signal>, Signal) {
    match bits.len() {
        0 => (Vec::new(), Signal::FALSE),
        1 => (Vec::new(), bits[0]),
        n => {
            let mid = n.div_ceil(2);
            // The high half wins priority; halves may be unequal, so pad the
            // low half's index to the same width.
            let (idx_lo, valid_lo) = priority_encode(mig, &bits[..mid]);
            let (idx_hi, valid_hi) = priority_encode(mig, &bits[mid..]);
            let width = idx_lo.len().max(idx_hi.len());
            let idx_lo = resize(&idx_lo, width);
            let idx_hi = resize(&idx_hi, width);
            let mut index = mux_word(mig, valid_hi, &idx_hi, &idx_lo);
            index.push(valid_hi);
            let valid = or2(mig, valid_hi, valid_lo);
            (index, valid)
        }
    }
}

/// Full decoder: `2^n` one-hot outputs from an `n`-bit select word.
pub fn decode(mig: &mut Mig, select: &[Signal]) -> Vec<Signal> {
    let mut outputs = vec![Signal::TRUE];
    for &bit in select {
        let mut next = Vec::with_capacity(outputs.len() * 2);
        for &o in &outputs {
            next.push(mig.and(o, !bit));
        }
        for &o in &outputs {
            next.push(mig.and(o, bit));
        }
        outputs = next;
    }
    outputs
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::simulate::evaluate;

    /// Builds a graph via `f`, evaluates it on `inputs`, and returns the
    /// output word as a u64.
    fn eval_word(
        num_inputs: usize,
        inputs: u64,
        f: impl FnOnce(&mut Mig, &[Signal]) -> Vec<Signal>,
    ) -> u64 {
        let mut mig = Mig::new();
        let pis = mig.add_inputs("x", num_inputs);
        let outs = f(&mut mig, &pis);
        for (i, &o) in outs.iter().enumerate() {
            mig.add_output(format!("o{i}"), o);
        }
        let in_bits: Vec<bool> = (0..num_inputs).map(|i| inputs >> i & 1 != 0).collect();
        let out_bits = evaluate(&mig, &in_bits);
        out_bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn adder_adds() {
        for (a, b) in [(0u64, 0u64), (3, 5), (15, 1), (9, 9), (12, 7)] {
            let got = eval_word(8, a | b << 4, |mig, pis| {
                let (sum, cout) = ripple_add(mig, &pis[..4], &pis[4..], Signal::FALSE);
                let mut out = sum;
                out.push(cout);
                out
            });
            assert_eq!(got, (a + b) & 0x1F, "{a}+{b}");
        }
    }

    #[test]
    fn subtractor_borrows() {
        for (a, b) in [(5u64, 3u64), (3, 5), (0, 0), (15, 15), (1, 14)] {
            let got = eval_word(8, a | b << 4, |mig, pis| {
                let (diff, borrow) = ripple_sub(mig, &pis[..4], &pis[4..]);
                let mut out = diff;
                out.push(borrow);
                out
            });
            let expected = (a.wrapping_sub(b) & 0xF) | ((a < b) as u64) << 4;
            assert_eq!(got, expected, "{a}-{b}");
        }
    }

    #[test]
    fn comparator_matches() {
        for a in 0..8u64 {
            for b in 0..8u64 {
                let got = eval_word(6, a | b << 3, |mig, pis| {
                    let lt = less_than(mig, &pis[..3], &pis[3..]);
                    vec![lt]
                });
                assert_eq!(got != 0, a < b, "{a}<{b}");
            }
        }
    }

    #[test]
    fn equality_matches() {
        for a in 0..8u64 {
            for b in 0..8u64 {
                let got = eval_word(6, a | b << 3, |mig, pis| {
                    vec![equal_words(mig, &pis[..3], &pis[3..])]
                });
                assert_eq!(got != 0, a == b);
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        for a in 0..16u64 {
            for b in [0u64, 1, 3, 7, 12, 15] {
                let got = eval_word(8, a | b << 4, |mig, pis| {
                    multiply(mig, &pis[..4], &pis[4..])
                });
                assert_eq!(got, a * b, "{a}*{b}");
            }
        }
    }

    #[test]
    fn popcount_counts() {
        for pattern in 0..128u64 {
            let got = eval_word(7, pattern, popcount);
            assert_eq!(got, u64::from(pattern.count_ones()), "{pattern:#b}");
        }
    }

    #[test]
    fn divider_divides() {
        for a in 0..16u64 {
            for b in 1..16u64 {
                let got = eval_word(8, a | b << 4, |mig, pis| {
                    let (q, r) = divide_restoring(mig, &pis[..4], &pis[4..]);
                    let mut out = q;
                    out.extend(r);
                    out
                });
                let expected = (a / b) | (a % b) << 4;
                assert_eq!(got, expected, "{a}/{b}");
            }
        }
    }

    #[test]
    fn divider_by_zero_saturates() {
        let got = eval_word(8, 5, |mig, pis| {
            let (q, r) = divide_restoring(mig, &pis[..4], &pis[4..]);
            let mut out = q;
            out.extend(r);
            out
        });
        assert_eq!(got & 0xF, 0xF, "quotient saturates");
        assert_eq!(got >> 4, 5, "remainder is the dividend");
    }

    #[test]
    fn isqrt_is_exact() {
        for x in 0..64u64 {
            let got = eval_word(6, x, isqrt_restoring);
            assert_eq!(got, (x as f64).sqrt().floor() as u64, "isqrt({x})");
        }
    }

    #[test]
    fn rotate_left_rotates() {
        for value in [0b0001u64, 0b1010, 0b1111, 0b0110] {
            for amount in 0..4u64 {
                let got = eval_word(6, value | amount << 4, |mig, pis| {
                    rotate_left_barrel(mig, &pis[..4], &pis[4..])
                });
                let expected = ((value << amount) | (value >> (4 - amount))) & 0xF;
                assert_eq!(got, expected & 0xF, "rot({value:#b}, {amount})");
            }
        }
    }

    #[test]
    fn shifts_shift() {
        for value in [0b1011u64, 0b0110] {
            for amount in 0..4u64 {
                let right = eval_word(6, value | amount << 4, |mig, pis| {
                    shift_right_barrel(mig, &pis[..4], &pis[4..])
                });
                assert_eq!(right, value >> amount);
                let left = eval_word(6, value | amount << 4, |mig, pis| {
                    shift_left_barrel(mig, &pis[..4], &pis[4..])
                });
                assert_eq!(left, (value << amount) & 0xF);
            }
        }
    }

    #[test]
    fn priority_encoder_picks_highest() {
        for pattern in 1..256u64 {
            let got = eval_word(8, pattern, |mig, pis| {
                let (index, valid) = priority_encode(mig, pis);
                let mut out = index;
                out.push(valid);
                out
            });
            let highest = 63 - pattern.leading_zeros() as u64;
            assert_eq!(got & 0x7, highest, "{pattern:#b}");
            assert_eq!(got >> 3, 1, "valid for {pattern:#b}");
        }
        let zero = eval_word(8, 0, |mig, pis| {
            let (index, valid) = priority_encode(mig, pis);
            let mut out = index;
            out.push(valid);
            out
        });
        assert_eq!(zero >> 3, 0, "invalid when no bit set");
    }

    #[test]
    fn decoder_is_one_hot() {
        for sel in 0..8u64 {
            let got = eval_word(3, sel, decode);
            assert_eq!(got, 1 << sel, "decode({sel})");
        }
    }

    #[test]
    fn mux_selects() {
        let got_t = eval_word(5, 0b1_10_01, |mig, pis| {
            mux_word(mig, pis[4], &pis[..2], &pis[2..4])
        });
        assert_eq!(got_t, 0b01);
        let got_e = eval_word(5, 0b0_10_01, |mig, pis| {
            mux_word(mig, pis[4], &pis[..2], &pis[2..4])
        });
        assert_eq!(got_e, 0b10);
    }

    #[test]
    fn constant_and_resize_helpers() {
        let w = constant_word(0b101, 4);
        assert_eq!(w[0], Signal::TRUE);
        assert_eq!(w[1], Signal::FALSE);
        assert_eq!(w[2], Signal::TRUE);
        assert_eq!(w[3], Signal::FALSE);
        let r = resize(&w, 6);
        assert_eq!(r.len(), 6);
        assert_eq!(r[5], Signal::FALSE);
        let t = resize(&w, 2);
        assert_eq!(t.len(), 2);
        let sl = shift_left_const(&w, 1);
        assert_eq!(sl[0], Signal::FALSE);
        assert_eq!(sl[1], Signal::TRUE);
    }
}
