//! # plim-benchmarks — EPFL benchmark substitutes
//!
//! The paper evaluates on the EPFL combinational benchmark suite, which is
//! not redistributable inside this repository. This crate *generates*
//! interface-faithful substitutes: the arithmetic benchmarks are real
//! gate-level constructions of the same function families (ripple adder,
//! array multiplier, restoring divider/square-rooter, barrel shifter,
//! leading-one log, polynomial sine, …) and the control benchmarks are
//! seeded random logic with matching interfaces, except `dec`, `priority`
//! and `voter`, which are exact.
//!
//! All generators build **AOIG-style** structures (AND/OR/inverter gates,
//! i.e. majority nodes with constant children), mirroring the paper's
//! starting point of MIGs transposed from AOIGs — so [`mig::rewrite`] has
//! the same optimization headroom as in the original evaluation.
//!
//! Entry point: [`suite::build`] by Table 1 row name, or the individual
//! generators in [`arith`], [`shift`] and [`control`].
//!
//! ```
//! use plim_benchmarks::suite::{build, Scale};
//!
//! let adder = build("adder", Scale::Reduced).unwrap();
//! assert_eq!(adder.num_outputs(), 9); // 8-bit reduced adder: 8 sums + carry
//! ```

pub mod arith;
pub mod control;
pub mod random;
pub mod shift;
pub mod suite;
pub mod word;
