//! Control-logic benchmark generators: `dec`, `priority`, `voter` (exact
//! EPFL function families) and the seeded random-logic substitutes for the
//! control netlists whose sources are not redistributable (`cavlc`, `ctrl`,
//! `i2c`, `mem_ctrl`, `router`). See DESIGN.md §3 for the substitution
//! rationale.

use mig::Mig;

use crate::random::{random_logic, RandomLogicSpec};
use crate::word;

/// Full decoder: `n` select inputs, `2^n` one-hot outputs.
///
/// `dec(8)` matches the EPFL `dec` interface (8/256).
pub fn dec(select_bits: usize) -> Mig {
    let mut mig = Mig::new();
    let select = mig.add_inputs("s", select_bits);
    let outputs = word::decode(&mut mig, &select);
    for (i, &o) in outputs.iter().enumerate() {
        mig.add_output(format!("o{i}"), o);
    }
    mig
}

/// Priority encoder: `n` request inputs, `log2(n) + 1` outputs (index plus
/// valid). The width must be a power of two for exact indices.
///
/// `priority(128)` matches the EPFL `priority` interface (128/8).
pub fn priority(width: usize) -> Mig {
    assert!(
        width.is_power_of_two(),
        "priority encoder width must be a power of two"
    );
    let mut mig = Mig::new();
    let requests = mig.add_inputs("r", width);
    let (index, valid) = word::priority_encode(&mut mig, &requests);
    for (i, &b) in index.iter().enumerate() {
        mig.add_output(format!("i{i}"), b);
    }
    mig.add_output("valid", valid);
    mig
}

/// Majority voter: `n` inputs (odd), 1 output — 1 when more than half of
/// the inputs are 1. Built as a popcount adder tree plus a comparator.
///
/// `voter(1001)` matches the EPFL `voter` interface (1001/1).
pub fn voter(inputs: usize) -> Mig {
    assert!(inputs % 2 == 1, "voter needs an odd number of inputs");
    let mut mig = Mig::new();
    let bits = mig.add_inputs("v", inputs);
    let count = word::popcount(&mut mig, &bits);
    let threshold = word::constant_word((inputs / 2) as u64, count.len());
    // majority ⇔ count > n/2 ⇔ threshold < count.
    let majority = word::less_than(&mut mig, &threshold, &count);
    mig.add_output("maj", majority);
    mig
}

/// The five EPFL control netlists reproduced as seeded random logic with
/// matching interfaces and approximate pre-optimization sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControlBenchmark {
    /// Context-adaptive variable-length coding logic (10/11).
    Cavlc,
    /// ALU control unit (7/26).
    Ctrl,
    /// I²C controller (147/142).
    I2c,
    /// Memory controller (1204/1231).
    MemCtrl,
    /// Lookup-based router (60/30).
    Router,
}

impl ControlBenchmark {
    /// The generation spec: interface, target node count and seed.
    pub fn spec(self, scale_divisor: usize) -> RandomLogicSpec {
        let d = scale_divisor.max(1);
        match self {
            // Node targets approximate the paper's pre-rewriting #N.
            ControlBenchmark::Cavlc => RandomLogicSpec::new(10, 11, 693 / d, 0xCA71C),
            ControlBenchmark::Ctrl => RandomLogicSpec::new(7, 26, 174 / d, 0xC021),
            ControlBenchmark::I2c => RandomLogicSpec::new(147, 142, 1342 / d, 0x12C),
            ControlBenchmark::MemCtrl => RandomLogicSpec::new(1204, 1231, 46836 / d, 0x3E3),
            ControlBenchmark::Router => RandomLogicSpec::new(60, 30, 257 / d, 0x2007),
        }
    }

    /// Builds the benchmark at full scale.
    pub fn build(self) -> Mig {
        random_logic(&self.spec(1))
    }

    /// Builds a reduced-size version for fast tests (`scale_divisor`-fold
    /// fewer nodes, same interface).
    pub fn build_scaled(self, scale_divisor: usize) -> Mig {
        random_logic(&self.spec(scale_divisor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::simulate::evaluate;

    fn eval(mig: &Mig, value: u64) -> u64 {
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|i| value >> i & 1 != 0).collect();
        evaluate(mig, &inputs)
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn dec_is_one_hot() {
        let mig = dec(4);
        assert_eq!(mig.num_inputs(), 4);
        assert_eq!(mig.num_outputs(), 16);
        for s in 0..16u64 {
            assert_eq!(eval(&mig, s), 1 << s);
        }
    }

    #[test]
    fn priority_encodes_highest_request() {
        let mig = priority(16);
        assert_eq!(mig.num_inputs(), 16);
        assert_eq!(mig.num_outputs(), 5);
        for pattern in [1u64, 0b1000, 0b1010, 0x8000, 0xFFFF] {
            let out = eval(&mig, pattern);
            let expected = 63 - pattern.leading_zeros() as u64;
            assert_eq!(out & 0xF, expected, "{pattern:#x}");
            assert_eq!(out >> 4, 1);
        }
        assert_eq!(eval(&mig, 0) >> 4, 0);
    }

    #[test]
    fn voter_votes() {
        let mig = voter(7);
        assert_eq!(mig.num_inputs(), 7);
        assert_eq!(mig.num_outputs(), 1);
        for pattern in 0..128u64 {
            let expected = u64::from(pattern.count_ones() >= 4);
            assert_eq!(eval(&mig, pattern), expected, "{pattern:#b}");
        }
    }

    #[test]
    fn control_interfaces_match_table1() {
        for (bench, pi, po) in [
            (ControlBenchmark::Cavlc, 10, 11),
            (ControlBenchmark::Ctrl, 7, 26),
            (ControlBenchmark::Router, 60, 30),
        ] {
            let mig = bench.build_scaled(4);
            assert_eq!(mig.num_inputs(), pi, "{bench:?} inputs");
            assert_eq!(mig.num_outputs(), po, "{bench:?} outputs");
        }
    }

    #[test]
    fn control_generation_is_deterministic() {
        let a = ControlBenchmark::Router.build_scaled(4);
        let b = ControlBenchmark::Router.build_scaled(4);
        assert_eq!(a.num_majority_nodes(), b.num_majority_nodes());
        assert_eq!(eval(&a, 0x123456789), eval(&b, 0x123456789));
    }
}
