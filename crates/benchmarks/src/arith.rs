//! Arithmetic benchmark generators (EPFL arithmetic suite substitutes).
//!
//! Each generator builds the named function family at a configurable width,
//! AOIG-style (see [`crate::word`]). At the widths listed in
//! [`crate::suite`], interfaces match the paper's Table 1 (`PI/PO`) rows.

use mig::{Mig, Signal};

use crate::word;

/// Ripple-carry adder: `2n` inputs, `n + 1` outputs (sum and carry-out).
///
/// `adder(128)` matches the EPFL `adder` interface (256 PI / 129 PO).
pub fn adder(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let a = mig.add_inputs("a", bits);
    let b = mig.add_inputs("b", bits);
    let (sum, cout) = word::ripple_add(&mut mig, &a, &b, Signal::FALSE);
    for (i, &s) in sum.iter().enumerate() {
        mig.add_output(format!("s{i}"), s);
    }
    mig.add_output("cout", cout);
    mig
}

/// Array multiplier: `2n` inputs, `2n` outputs.
///
/// `multiplier(64)` matches the EPFL `multiplier` interface (128/128).
pub fn multiplier(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let a = mig.add_inputs("a", bits);
    let b = mig.add_inputs("b", bits);
    let product = word::multiply(&mut mig, &a, &b);
    for (i, &p) in product.iter().enumerate() {
        mig.add_output(format!("p{i}"), p);
    }
    mig
}

/// Squarer: `n` inputs, `2n` outputs.
///
/// `square(64)` matches the EPFL `square` interface (64/128).
pub fn square(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let a = mig.add_inputs("a", bits);
    let product = word::multiply(&mut mig, &a.clone(), &a);
    for (i, &p) in product.iter().enumerate() {
        mig.add_output(format!("p{i}"), p);
    }
    mig
}

/// Restoring divider: `2n` inputs, `2n` outputs (quotient and remainder).
///
/// `div(64)` matches the EPFL `div` interface (128/128).
pub fn div(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let dividend = mig.add_inputs("a", bits);
    let divisor = mig.add_inputs("b", bits);
    let (quotient, remainder) = word::divide_restoring(&mut mig, &dividend, &divisor);
    for (i, &q) in quotient.iter().enumerate() {
        mig.add_output(format!("q{i}"), q);
    }
    for (i, &r) in remainder.iter().enumerate() {
        mig.add_output(format!("r{i}"), r);
    }
    mig
}

/// Restoring square root: `2n` inputs, `n` outputs.
///
/// `sqrt(64)` matches the EPFL `sqrt` interface (128/64).
pub fn sqrt(root_bits: usize) -> Mig {
    let mut mig = Mig::new();
    let x = mig.add_inputs("x", 2 * root_bits);
    let root = word::isqrt_restoring(&mut mig, &x);
    for (i, &r) in root.iter().enumerate() {
        mig.add_output(format!("r{i}"), r);
    }
    mig
}

/// Four-way maximum: `4n` inputs, `n + 2` outputs (the maximum word plus a
/// 2-bit index of the winning operand).
///
/// `max(128)` matches the EPFL `max` interface (512/130).
pub fn max(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let words: Vec<Vec<Signal>> = (0..4)
        .map(|w| mig.add_inputs(&format!("w{w}_"), bits))
        .collect();
    // Tournament: two semifinals and a final, with index reconstruction.
    let sel01 = word::less_than(&mut mig, &words[0], &words[1]); // 1 ⇒ w1 wins
    let max01 = word::mux_word(&mut mig, sel01, &words[1], &words[0]);
    let sel23 = word::less_than(&mut mig, &words[2], &words[3]);
    let max23 = word::mux_word(&mut mig, sel23, &words[3], &words[2]);
    let sel_final = word::less_than(&mut mig, &max01, &max23); // 1 ⇒ high pair wins
    let maximum = word::mux_word(&mut mig, sel_final, &max23, &max01);
    for (i, &m) in maximum.iter().enumerate() {
        mig.add_output(format!("m{i}"), m);
    }
    // Index bit 0: winner within the winning pair; bit 1: which pair.
    let low_bit = {
        let hi = mig.and(sel_final, sel23);
        let lo = mig.and(!sel_final, sel01);
        word::or2(&mut mig, hi, lo)
    };
    mig.add_output("idx0", low_bit);
    mig.add_output("idx1", sel_final);
    mig
}

/// Integer-to-float conversion: `n`-bit unsigned integer to a small
/// normalized float with `exp_bits` exponent and `man_bits` mantissa bits
/// (leading one implicit, truncating rounding, exponent saturates).
///
/// `int2float(11, 3, 4)` matches the EPFL `int2float` interface (11/7).
pub fn int2float(bits: usize, exp_bits: usize, man_bits: usize) -> Mig {
    let mut mig = Mig::new();
    let x = mig.add_inputs("x", bits);
    // Pad to a power of two: the recursive priority encoder produces exact
    // numeric indices only for power-of-two widths.
    let padded = word::resize(&x, bits.next_power_of_two());
    // Exponent: position of the most significant set bit.
    let (msb_index, valid) = word::priority_encode(&mut mig, &padded);
    // Mantissa: normalize x so the leading one reaches the top bit, i.e.
    // left-shift by (width-1 - msb_index), which for a power-of-two width
    // is the bitwise complement of the index.
    let shift_amount: Vec<Signal> = msb_index.iter().map(|&s| !s).collect();
    let normalized = word::shift_left_barrel(&mut mig, &padded, &shift_amount);
    // After normalization the MSB of `padded` is the implicit one; mantissa
    // bits are the ones directly below it.
    let top = padded.len() - 1;
    let mantissa: Vec<Signal> = (0..man_bits)
        .map(|i| normalized[top.saturating_sub(1 + i)])
        .collect();
    // Exponent output: saturate the index into exp_bits, zero when invalid.
    let exponent: Vec<Signal> = (0..exp_bits)
        .map(|i| {
            let bit = msb_index.get(i).copied().unwrap_or(Signal::FALSE);
            mig.and(bit, valid)
        })
        .collect();
    for (i, &m) in mantissa.iter().enumerate() {
        let gated = mig.and(m, valid);
        mig.add_output(format!("man{i}"), gated);
    }
    for (i, &e) in exponent.iter().enumerate() {
        mig.add_output(format!("exp{i}"), e);
    }
    mig
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::simulate::evaluate;

    fn eval(mig: &Mig, value: u64) -> u64 {
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|i| value >> i & 1 != 0).collect();
        evaluate(mig, &inputs)
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn adder_interface_and_function() {
        let mig = adder(4);
        assert_eq!(mig.num_inputs(), 8);
        assert_eq!(mig.num_outputs(), 5);
        assert_eq!(eval(&mig, 7 | 9 << 4), 16);
        assert_eq!(eval(&mig, 15 | 15 << 4), 30);
    }

    #[test]
    fn multiplier_function() {
        let mig = multiplier(4);
        assert_eq!(mig.num_inputs(), 8);
        assert_eq!(mig.num_outputs(), 8);
        assert_eq!(eval(&mig, 5 | 7 << 4), 35);
    }

    #[test]
    fn square_function() {
        let mig = square(4);
        assert_eq!(mig.num_inputs(), 4);
        assert_eq!(mig.num_outputs(), 8);
        for x in 0..16u64 {
            assert_eq!(eval(&mig, x), x * x, "square({x})");
        }
    }

    #[test]
    fn div_function() {
        let mig = div(4);
        assert_eq!(mig.num_inputs(), 8);
        assert_eq!(mig.num_outputs(), 8);
        let out = eval(&mig, 13 | 3 << 4);
        assert_eq!(out & 0xF, 4); // 13 / 3
        assert_eq!(out >> 4, 1); // 13 % 3
    }

    #[test]
    fn sqrt_function() {
        let mig = sqrt(3);
        assert_eq!(mig.num_inputs(), 6);
        assert_eq!(mig.num_outputs(), 3);
        for x in 0..64u64 {
            assert_eq!(eval(&mig, x), (x as f64).sqrt().floor() as u64);
        }
    }

    #[test]
    fn max_function() {
        let mig = max(3);
        assert_eq!(mig.num_inputs(), 12);
        assert_eq!(mig.num_outputs(), 5);
        // words: w0=2, w1=7, w2=5, w3=1 → max 7 at index 1.
        let packed = 2 | 7 << 3 | 5 << 6 | 1 << 9;
        let out = eval(&mig, packed);
        assert_eq!(out & 0x7, 7);
        assert_eq!(out >> 3, 0b01); // idx1=0 (low pair), idx0=1 (second word)
    }

    #[test]
    fn max_index_covers_all_positions() {
        let mig = max(3);
        for winner in 0..4u64 {
            let mut packed = 0u64;
            for w in 0..4 {
                let value = if w == winner { 6 } else { w }; // distinct values
                packed |= value << (3 * w);
            }
            let out = eval(&mig, packed);
            assert_eq!(out & 0x7, 6, "winner {winner}");
            assert_eq!(out >> 3, winner, "index of winner {winner}");
        }
    }

    #[test]
    fn int2float_interface() {
        let mig = int2float(11, 3, 4);
        assert_eq!(mig.num_inputs(), 11);
        assert_eq!(mig.num_outputs(), 7);
        // Zero maps to zero.
        assert_eq!(eval(&mig, 0), 0);
        // A power of two has an empty mantissa and its exponent index.
        let out = eval(&mig, 1 << 5);
        assert_eq!(out & 0xF, 0, "mantissa of 2^5");
        assert_eq!(out >> 4 & 0x7, 5, "exponent of 2^5");
        // 0b110100 = 52: msb 5, the four bits below it are 1, 0, 1, 0
        // (man0 = bit 4 = 1, man1 = bit 3 = 0, man2 = bit 2 = 1, man3 = 0).
        let out = eval(&mig, 0b110100);
        assert_eq!(out >> 4 & 0x7, 5);
        assert_eq!(out & 0xF, 0b0101);
    }
}
