//! Seeded random-logic generation.
//!
//! Substitutes for control netlists that cannot be redistributed: the
//! generator produces AOIG-shaped MIGs (AND/OR nodes with complemented
//! edges, occasional full majorities) with a given interface and approximate
//! size. Structures are layered with a locality bias, giving the fanout and
//! reconvergence profile of synthesized random control logic.

use mig::{Mig, Signal};

use crate::word;

/// Specification of a random logic network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomLogicSpec {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Approximate number of majority nodes to create.
    pub nodes: usize,
    /// PRNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl RandomLogicSpec {
    /// Creates a spec.
    pub fn new(inputs: usize, outputs: usize, nodes: usize, seed: u64) -> Self {
        RandomLogicSpec {
            inputs,
            outputs,
            nodes: nodes.max(outputs),
            seed,
        }
    }
}

/// Simple deterministic generator state (xorshift64*, dependency-free).
struct Rng(mig::simulate::XorShift64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(mig::simulate::XorShift64::new(seed))
    }

    fn below(&mut self, bound: usize) -> usize {
        self.0.next_below(bound as u64) as usize
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.0.next_below(100) < percent
    }
}

/// Generates a random AOIG-shaped MIG per the spec.
///
/// The generator mimics the structure of synthesized control netlists:
///
/// * the network is partitioned into **modules** (think per-port or
///   per-bank logic of a memory controller), each driving a slice of the
///   outputs from its own locally-clustered logic;
/// * a small pool of **global** signals (decoded state shared by all
///   modules) feeds every module;
/// * gate choice is *signature-guided*: each candidate signal carries a
///   64-pattern random simulation word, and gate types keep signal
///   densities away from the constant extremes — deep AND chains of naive
///   random generation would otherwise collapse every output to a
///   near-constant function.
///
/// The modular structure is what makes node scheduling matter: a levelized
/// traversal interleaves all modules and keeps live values across every
/// module at once, while a cone-at-a-time schedule only keeps one module
/// plus the globals live. The node count is approximate (hashing may merge
/// nodes).
pub fn random_logic(spec: &RandomLogicSpec) -> Mig {
    let mut mig = Mig::new();
    let mut rng = Rng::new(spec.seed);
    let inputs = mig.add_inputs("x", spec.inputs);

    let density = |w: u64| w.count_ones().abs_diff(32);

    // Signal pool with simulation signatures; the first `globals` entries
    // are the slice every module may draw from.
    let mut pool: Vec<Signal> = inputs;
    let mut sigs: Vec<u64> = (0..pool.len()).map(|_| rng.0.next_word()).collect();
    if pool.is_empty() {
        pool.push(Signal::FALSE);
        sigs.push(0);
    }

    // One random gate over the chosen child indices.
    let add_gate = |mig: &mut Mig,
                    rng: &mut Rng,
                    pool: &mut Vec<Signal>,
                    sigs: &mut Vec<u64>,
                    ia: usize,
                    ib: usize,
                    ic: Option<usize>| {
        let ca = rng.chance(40);
        let cb = rng.chance(40);
        let a = pool[ia].complement_if(ca);
        let b = pool[ib].complement_if(cb);
        let wa = if ca { !sigs[ia] } else { sigs[ia] };
        let wb = if cb { !sigs[ib] } else { sigs[ib] };
        let (result, word) = match ic {
            Some(ic) => {
                let cc = rng.chance(40);
                let c = pool[ic].complement_if(cc);
                let wc = if cc { !sigs[ic] } else { sigs[ic] };
                let w = (wa & wb) | (wa & wc) | (wb & wc);
                (mig.maj(a, b, c), w)
            }
            None => {
                let w_and = wa & wb;
                let w_or = wa | wb;
                // Keep the density balanced (with a random escape hatch).
                if rng.chance(20) || density(w_and) < density(w_or) {
                    (mig.and(a, b), w_and)
                } else {
                    (!mig.and(!a, !b), w_or) // AIG-style OR
                }
            }
        };
        if !result.is_constant() {
            let word = if result.is_complemented() {
                !word
            } else {
                word
            };
            pool.push(result.regular());
            sigs.push(word);
        }
    };

    // Phase 1: global shared logic (~10% of the budget).
    let global_nodes = (spec.nodes / 10).max(4);
    while mig.num_majority_nodes() < global_nodes {
        let n = pool.len();
        let ia = rng.below(n);
        let ib = rng.below(n);
        let ic = if rng.chance(15) {
            Some(rng.below(n))
        } else {
            None
        };
        add_gate(&mut mig, &mut rng, &mut pool, &mut sigs, ia, ib, ic);
    }
    let globals = pool.len();

    // Phase 2: modules. Each module draws mostly from its own slice of the
    // pool (locality), sometimes from the globals, and drives a slice of
    // the outputs from its tail.
    let modules = (spec.outputs / 12)
        .max(1)
        .min(spec.outputs.max(1))
        .max(if spec.outputs >= 16 { 16 } else { 1 });
    let per_module = (spec.nodes.saturating_sub(global_nodes) / modules).max(1);
    let mut outputs: Vec<Signal> = Vec::with_capacity(spec.outputs);
    for m in 0..modules {
        let module_start = pool.len();
        let target = mig.num_majority_nodes() + per_module;
        while mig.num_majority_nodes() < target {
            let pick = |rng: &mut Rng| -> usize {
                let local = pool.len() - module_start;
                if local > 4 && rng.chance(75) {
                    // Local: recent window inside this module.
                    let window = local.min(24);
                    pool.len() - 1 - rng.below(window)
                } else {
                    // Global/shared signal (includes the primary inputs).
                    rng.below(globals)
                }
            };
            let ia = pick(&mut rng);
            let ib = pick(&mut rng);
            let ic = if rng.chance(15) {
                Some(pick(&mut rng))
            } else {
                None
            };
            add_gate(&mut mig, &mut rng, &mut pool, &mut sigs, ia, ib, ic);
        }
        // This module's outputs: drawn from its own tail.
        let share = spec.outputs / modules + usize::from(m < spec.outputs % modules);
        let module_len = (pool.len() - module_start).max(1);
        for _ in 0..share {
            let index = pool.len() - 1 - rng.below(module_len.min(16));
            outputs.push(pool[index].complement_if(rng.chance(25)));
        }
    }
    for (i, signal) in outputs.into_iter().enumerate() {
        mig.add_output(format!("y{i}"), signal);
    }
    mig.cleaned()
}

/// Generates a random *arithmetic-flavored* MIG: a mixture of small adders
/// and comparators over random input slices, connected by random logic.
/// Used by property tests that want realistic structure with known-good
/// construction.
pub fn random_arithmetic(inputs: usize, seed: u64) -> Mig {
    let mut mig = Mig::new();
    let mut rng = Rng::new(seed);
    let pis = mig.add_inputs("x", inputs.max(4));
    let n = pis.len();
    let width = (n / 2).clamp(2, 8);

    let a: Vec<Signal> = (0..width).map(|_| pis[rng.below(n)]).collect();
    let b: Vec<Signal> = (0..width).map(|_| pis[rng.below(n)]).collect();
    let (sum, carry) = word::ripple_add(&mut mig, &a, &b, Signal::FALSE);
    let lt = word::less_than(&mut mig, &a, &b);
    let eq = word::equal_words(&mut mig, &a, &b);

    for (i, &s) in sum.iter().enumerate() {
        mig.add_output(format!("s{i}"), s.complement_if(rng.chance(30)));
    }
    mig.add_output("carry", carry);
    mig.add_output("lt", lt);
    mig.add_output("eq", !eq);
    mig
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_interface() {
        let spec = RandomLogicSpec::new(12, 9, 150, 42);
        let mig = random_logic(&spec);
        assert_eq!(mig.num_inputs(), 12);
        assert_eq!(mig.num_outputs(), 9);
    }

    #[test]
    fn node_count_is_approximate() {
        let spec = RandomLogicSpec::new(16, 4, 300, 7);
        let mig = random_logic(&spec);
        let n = mig.num_majority_nodes();
        // Cleanup may drop dead cones, but most of the target must survive.
        assert!(n > 100, "expected a substantial network, got {n}");
        assert!(n <= 300, "generation must stop at the target, got {n}");
    }

    #[test]
    fn deterministic_across_calls() {
        let spec = RandomLogicSpec::new(8, 4, 100, 99);
        let a = random_logic(&spec);
        let b = random_logic(&spec);
        assert_eq!(a.num_majority_nodes(), b.num_majority_nodes());
        let ta = mig::simulate::truth_tables(&a);
        let tb = mig::simulate::truth_tables(&b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_logic(&RandomLogicSpec::new(8, 4, 100, 1));
        let b = random_logic(&RandomLogicSpec::new(8, 4, 100, 2));
        let ta = mig::simulate::truth_tables(&a);
        let tb = mig::simulate::truth_tables(&b);
        assert_ne!(ta, tb);
    }

    #[test]
    fn outputs_are_not_all_trivial() {
        let mig = random_logic(&RandomLogicSpec::new(10, 8, 200, 5));
        let tables = mig::simulate::truth_tables(&mig);
        let nontrivial = tables
            .iter()
            .filter(|t| {
                let ones = t.count_ones();
                ones != 0 && ones != t.num_bits()
            })
            .count();
        assert!(nontrivial >= 6, "only {nontrivial} nontrivial outputs");
    }

    #[test]
    fn random_arithmetic_builds() {
        let mig = random_arithmetic(10, 3);
        assert!(mig.num_majority_nodes() > 10);
        assert!(mig.num_outputs() > 4);
    }
}
