//! The benchmark suite: one entry per row of the paper's Table 1.
//!
//! Each entry knows how to build the circuit (at full scale or a reduced
//! scale for fast tests) and carries the paper's reported numbers so
//! harnesses can print paper-vs-measured comparisons.

use mig::Mig;

use crate::control::{self, ControlBenchmark};
use crate::{arith, shift};

/// `(#N, #I, #R)` triple as reported in Table 1.
pub type Nir = (usize, usize, usize);

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Primary inputs / primary outputs of the EPFL netlist.
    pub pi: usize,
    /// Primary outputs.
    pub po: usize,
    /// Naive translation on the initial MIG: `(#N, #I, #R)`.
    pub naive: Nir,
    /// After MIG rewriting (naive translation): `(#N, #I, #R)`.
    pub rewritten: Nir,
    /// After rewriting and smart compilation: `(#I, #R)` (same `#N` as
    /// `rewritten`).
    pub compiled: (usize, usize),
}

/// Scale at which to build a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// Interface-faithful full size (matches Table 1's PI/PO).
    #[default]
    Full,
    /// Reduced size for fast tests; same circuit family, smaller widths.
    Reduced,
}

/// The 18 benchmarks of Table 1, in the paper's order.
pub const ALL: [&str; 18] = [
    "adder",
    "bar",
    "div",
    "log2",
    "max",
    "multiplier",
    "sin",
    "sqrt",
    "square",
    "cavlc",
    "ctrl",
    "dec",
    "i2c",
    "int2float",
    "mem_ctrl",
    "priority",
    "router",
    "voter",
];

/// The paper's Table 1 reference numbers for a benchmark.
///
/// Returns `None` for unknown names.
pub fn paper_row(name: &str) -> Option<PaperRow> {
    let row = |name, pi, po, naive, rewritten, compiled| PaperRow {
        name,
        pi,
        po,
        naive,
        rewritten,
        compiled,
    };
    Some(match name {
        "adder" => row(
            "adder",
            256,
            129,
            (1020, 2844, 512),
            (1020, 2037, 386),
            (1911, 259),
        ),
        "bar" => row(
            "bar",
            135,
            128,
            (3336, 8136, 523),
            (3240, 5895, 371),
            (6011, 332),
        ),
        "div" => row(
            "div",
            128,
            128,
            (57247, 146617, 687),
            (50841, 147026, 771),
            (147608, 590),
        ),
        "log2" => row(
            "log2",
            32,
            32,
            (32060, 78885, 1597),
            (31419, 60402, 1487),
            (60184, 1256),
        ),
        "max" => row(
            "max",
            512,
            130,
            (2865, 6731, 1021),
            (2845, 5092, 867),
            (4996, 579),
        ),
        "multiplier" => row(
            "multiplier",
            128,
            128,
            (27062, 76156, 2798),
            (26951, 56428, 1672),
            (56009, 419),
        ),
        "sin" => row(
            "sin",
            24,
            25,
            (5416, 12479, 438),
            (5344, 10300, 426),
            (10223, 402),
        ),
        "sqrt" => row(
            "sqrt",
            128,
            64,
            (24618, 60691, 375),
            (22351, 47454, 433),
            (49782, 323),
        ),
        "square" => row(
            "square",
            64,
            128,
            (18484, 54704, 3272),
            (18085, 33625, 3247),
            (33369, 452),
        ),
        "cavlc" => row(
            "cavlc",
            10,
            11,
            (693, 1919, 262),
            (691, 1146, 236),
            (1124, 102),
        ),
        "ctrl" => row("ctrl", 7, 26, (174, 499, 66), (156, 258, 55), (263, 39)),
        "dec" => row("dec", 8, 256, (304, 822, 257), (304, 783, 257), (777, 258)),
        "i2c" => row(
            "i2c",
            147,
            142,
            (1342, 3314, 545),
            (1311, 2119, 487),
            (2028, 234),
        ),
        "int2float" => row(
            "int2float",
            11,
            7,
            (260, 648, 99),
            (257, 432, 83),
            (428, 41),
        ),
        "mem_ctrl" => row(
            "mem_ctrl",
            1204,
            1231,
            (46836, 113244, 8127),
            (46519, 85785, 6708),
            (84963, 2223),
        ),
        "priority" => row(
            "priority",
            128,
            8,
            (978, 2461, 315),
            (977, 2126, 241),
            (2147, 149),
        ),
        "router" => row(
            "router",
            60,
            30,
            (257, 503, 117),
            (257, 407, 112),
            (401, 64),
        ),
        "voter" => row(
            "voter",
            1001,
            1,
            (13758, 38002, 1749),
            (12992, 25009, 1544),
            (24990, 1063),
        ),
        _ => return None,
    })
}

/// Builds a benchmark by name.
///
/// At [`Scale::Full`] the interface matches the paper's PI/PO columns; at
/// [`Scale::Reduced`] the same circuit family is built with smaller widths
/// (suitable for exhaustive or fast randomized checking).
///
/// The returned graph is *levelized* ([`Mig::levelized`]): node order
/// matches what netlist files provide, which is what the paper's naive
/// index-order translation consumes.
///
/// Returns `None` for unknown names.
pub fn build(name: &str, scale: Scale) -> Option<Mig> {
    build_creation_order(name, scale).map(|mig| mig.levelized())
}

fn build_creation_order(name: &str, scale: Scale) -> Option<Mig> {
    let full = scale == Scale::Full;
    Some(match name {
        "adder" => arith::adder(if full { 128 } else { 8 }),
        "bar" => shift::bar(if full { 128 } else { 16 }),
        "div" => arith::div(if full { 64 } else { 6 }),
        "log2" => shift::log2(if full { 32 } else { 16 }),
        "max" => arith::max(if full { 128 } else { 8 }),
        "multiplier" => arith::multiplier(if full { 64 } else { 7 }),
        "sin" => shift::sin(if full { 24 } else { 8 }),
        "sqrt" => arith::sqrt(if full { 64 } else { 7 }),
        "square" => arith::square(if full { 64 } else { 8 }),
        "cavlc" => scaled_control(ControlBenchmark::Cavlc, full),
        "ctrl" => scaled_control(ControlBenchmark::Ctrl, full),
        "dec" => control::dec(if full { 8 } else { 4 }),
        "i2c" => scaled_control(ControlBenchmark::I2c, full),
        "int2float" => arith::int2float(11, 3, 4),
        "mem_ctrl" => scaled_control(ControlBenchmark::MemCtrl, full),
        "priority" => control::priority(if full { 128 } else { 16 }),
        "router" => scaled_control(ControlBenchmark::Router, full),
        "voter" => control::voter(if full { 1001 } else { 31 }),
        _ => return None,
    })
}

fn scaled_control(bench: ControlBenchmark, full: bool) -> Mig {
    if full {
        bench.build()
    } else {
        bench.build_scaled(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_is_buildable_reduced() {
        for name in ALL {
            let mig = build(name, Scale::Reduced).expect(name);
            assert!(mig.num_majority_nodes() > 0, "{name} is empty");
            assert!(mig.num_inputs() > 0, "{name} has no inputs");
            assert!(mig.num_outputs() > 0, "{name} has no outputs");
        }
    }

    #[test]
    fn paper_rows_exist_for_all() {
        for name in ALL {
            let row = paper_row(name).expect(name);
            assert_eq!(row.name, name);
            assert!(row.naive.1 > 0);
        }
        assert!(paper_row("bogus").is_none());
        assert!(build("bogus", Scale::Reduced).is_none());
    }

    #[test]
    fn full_interfaces_match_paper() {
        // Only the cheap-to-build full-scale benchmarks; the arithmetic
        // giants are covered by the table1 harness.
        for name in ["adder", "bar", "dec", "priority", "int2float", "voter"] {
            let mig = build(name, Scale::Full).unwrap();
            let row = paper_row(name).unwrap();
            assert_eq!(mig.num_inputs(), row.pi, "{name} PI");
            assert_eq!(mig.num_outputs(), row.po, "{name} PO");
        }
    }

    #[test]
    fn paper_sums_match_reported_totals() {
        // The Σ row of Table 1.
        let mut naive = (0, 0, 0);
        let mut rewr = (0, 0, 0);
        let mut comp = (0, 0);
        for name in ALL {
            let row = paper_row(name).unwrap();
            naive.0 += row.naive.0;
            naive.1 += row.naive.1;
            naive.2 += row.naive.2;
            rewr.0 += row.rewritten.0;
            rewr.1 += row.rewritten.1;
            rewr.2 += row.rewritten.2;
            comp.0 += row.compiled.0;
            comp.1 += row.compiled.1;
        }
        assert_eq!(naive, (236710, 608655, 22760));
        assert_eq!(rewr, (225560, 486324, 19383));
        assert_eq!(comp, (487214, 8785));
    }
}
