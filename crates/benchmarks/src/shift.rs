//! Shifter-based benchmark generators: `bar`, `log2`, `sin`.

use mig::{Mig, Signal};

use crate::word;

/// Barrel shifter (rotator): `n + log2(n)` inputs, `n` outputs.
///
/// `bar(128)` matches the EPFL `bar` interface (135/128).
pub fn bar(data_bits: usize) -> Mig {
    assert!(
        data_bits.is_power_of_two(),
        "barrel shifter width must be a power of two"
    );
    let shift_bits = data_bits.trailing_zeros() as usize;
    let mut mig = Mig::new();
    let data = mig.add_inputs("d", data_bits);
    let amount = mig.add_inputs("s", shift_bits);
    let rotated = word::rotate_left_barrel(&mut mig, &data, &amount);
    for (i, &r) in rotated.iter().enumerate() {
        mig.add_output(format!("o{i}"), r);
    }
    mig
}

/// Fixed-point base-2 logarithm approximation: `n` inputs, `n` outputs.
///
/// The output packs the fractional part (the normalized mantissa bits below
/// the leading one) in the low bits and the integer part
/// `⌊log2(x)⌋` in the top `log2(n)` bits; `x = 0` maps to all zeros. This is
/// the classical leading-one-detector + normalizer construction, the same
/// circuit family as the EPFL `log2`.
///
/// `log2(32)` matches the EPFL `log2` interface (32/32).
pub fn log2(bits: usize) -> Mig {
    assert!(bits.is_power_of_two(), "log2 width must be a power of two");
    let index_bits = bits.trailing_zeros() as usize;
    let frac_bits = bits - index_bits;
    let mut mig = Mig::new();
    let x = mig.add_inputs("x", bits);
    let (msb_index, valid) = word::priority_encode(&mut mig, &x);
    // Normalize so the leading one reaches the top: shift = (bits-1) - idx,
    // which is the bitwise complement of the index for power-of-two widths.
    let shift_amount: Vec<Signal> = msb_index.iter().map(|&s| !s).collect();
    let normalized = word::shift_left_barrel(&mut mig, &x, &shift_amount);
    // Fraction: the bits directly below the leading one, MSB-aligned.
    for i in 0..frac_bits {
        let bit = normalized[bits - 2 - i];
        let gated = mig.and(bit, valid);
        // Most significant fraction bit goes to the top of the fraction.
        mig.add_output(format!("f{i}"), gated);
    }
    // Integer part: the index itself.
    for (i, &b) in msb_index.iter().enumerate() {
        let gated = mig.and(b, valid);
        mig.add_output(format!("e{i}"), gated);
    }
    mig
}

/// Fixed-point sine approximation: `n` inputs, `n + 1` outputs.
///
/// Interprets the input as an unsigned fraction `x ∈ [0, 1)` and evaluates
/// the odd polynomial `x·(C₁ - C₂·x²)` with fixed-point constant
/// multiplications — a truncated Taylor series of `sin(π/2 · x)` scaled to
/// fixed point. The extra output is the adder carry. This exercises the same
/// multiplier-adder structure as the EPFL `sin` netlist.
///
/// `sin(24)` matches the EPFL `sin` interface (24/25).
pub fn sin(bits: usize) -> Mig {
    let mut mig = Mig::new();
    let x = mig.add_inputs("x", bits);
    // x² (keep the top `bits` of the 2n-bit product: fraction semantics).
    let xx_full = word::multiply(&mut mig, &x, &x);
    let xx: Vec<Signal> = xx_full[bits..].to_vec();
    // x³ = x²·x, again keeping the top bits.
    let xxx_full = word::multiply(&mut mig, &xx, &x);
    let xxx: Vec<Signal> = xxx_full[bits..].to_vec();
    // sin(π/2·x) ≈ C1·x − C3·x³ with C1 ≈ π/2 scaled to <1 by 1/2:
    // use C1 = 0.785398… (π/4) and C3 = 0.322982… (π³/96·/2?) — the exact
    // constants are irrelevant for circuit structure; they are encoded as
    // fixed-point constant multiplications (shift-and-add).
    let c1x = const_multiply(&mut mig, &x, std::f64::consts::FRAC_PI_4);
    let c3x3 = const_multiply(&mut mig, &xxx, 0.322_982_049);
    let (diff, borrow) = word::ripple_sub(&mut mig, &c1x, &c3x3);
    for (i, &d) in diff.iter().enumerate() {
        mig.add_output(format!("s{i}"), d);
    }
    mig.add_output("sign", borrow);
    mig
}

/// Multiplies a word by a fixed-point constant in `[0, 1)` using the
/// shift-and-add method (`word.len()` fractional constant bits).
fn const_multiply(mig: &mut Mig, word_in: &[Signal], constant: f64) -> Vec<Signal> {
    assert!((0.0..1.0).contains(&constant), "constant must be in [0, 1)");
    let n = word_in.len();
    let mut acc = word::constant_word(0, n);
    let mut scaled = constant;
    for i in 1..=n {
        scaled *= 2.0;
        let bit = scaled >= 1.0;
        if bit {
            scaled -= 1.0;
        }
        if !bit {
            continue;
        }
        // Add word >> i (the contribution of constant bit 2^-i).
        let shifted: Vec<Signal> = (0..n)
            .map(|k| {
                if k + i < n {
                    word_in[k + i]
                } else {
                    Signal::FALSE
                }
            })
            .collect();
        let (sum, _) = word::ripple_add(mig, &acc, &shifted, Signal::FALSE);
        acc = sum;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::simulate::evaluate;

    fn eval(mig: &Mig, value: u64) -> u64 {
        let inputs: Vec<bool> = (0..mig.num_inputs()).map(|i| value >> i & 1 != 0).collect();
        evaluate(mig, &inputs)
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &b)| acc | (b as u64) << i)
    }

    #[test]
    fn bar_rotates() {
        let mig = bar(8);
        assert_eq!(mig.num_inputs(), 11);
        assert_eq!(mig.num_outputs(), 8);
        for amount in 0..8u64 {
            let value = 0b0000_0101u64;
            let out = eval(&mig, value | amount << 8);
            let expected = ((value << amount) | (value >> (8 - amount).min(63))) & 0xFF;
            assert_eq!(out, expected, "rot by {amount}");
        }
    }

    #[test]
    fn log2_integer_part_is_exact() {
        let mig = log2(8);
        assert_eq!(mig.num_inputs(), 8);
        assert_eq!(mig.num_outputs(), 8);
        for x in 1..256u64 {
            let out = eval(&mig, x);
            let int_part = out >> 5; // 5 fraction bits, 3 exponent bits
            assert_eq!(int_part, 63 - x.leading_zeros() as u64, "log2({x})");
        }
        assert_eq!(eval(&mig, 0), 0);
    }

    #[test]
    fn log2_fraction_tracks_mantissa() {
        let mig = log2(8);
        // x = 0b101 (5): leading one at 2, bits below: 0,1 → fraction MSBs.
        let out = eval(&mig, 0b101);
        let f0 = out & 1; // first bit below the leading one
        assert_eq!(f0, 0);
        let f1 = out >> 1 & 1;
        assert_eq!(f1, 1);
    }

    #[test]
    fn sin_is_monotone_on_samples() {
        // The polynomial x(C1 - C3 x²) is monotone on [0, 1): spot-check on
        // an 8-bit build.
        let mig = sin(8);
        assert_eq!(mig.num_inputs(), 8);
        assert_eq!(mig.num_outputs(), 9);
        // The polynomial peaks below x = 1 (its derivative goes negative
        // near the top of the range), so sample the monotone region only.
        let mut previous = 0u64;
        for x in [0u64, 32, 64, 96, 128, 160, 192] {
            let out = eval(&mig, x) & 0xFF;
            assert!(out + 2 >= previous, "sin sample at {x}: {out} < {previous}");
            previous = out.max(previous);
        }
        assert_eq!(eval(&mig, 0) & 0xFF, 0);
    }

    #[test]
    fn sin_matches_float_reference_loosely() {
        let mig = sin(8);
        for x in (0..256u64).step_by(17) {
            let out = (eval(&mig, x) & 0xFF) as f64 / 256.0;
            let xf = x as f64 / 256.0;
            let reference = xf * (std::f64::consts::FRAC_PI_4 - 0.322_982_049 * xf * xf);
            assert!(
                (out - reference).abs() < 0.05,
                "sin({xf}) ≈ {reference}, circuit gave {out}"
            );
        }
    }
}
