//! The `BENCH.json` fidelity axis: measured correctness and reliability.
//!
//! The bench gate tracks compilation *cost* (instructions, RAMs, wear);
//! this module adds what the compiled artifacts are *worth*: whether the
//! program is exhaustively proven equivalent to its source MIG, how it
//! degrades under drifted writes, and how long the device survives it.
//! [`annotate_bench`] fills the three fidelity columns of a
//! [`BenchRun`]'s records from the run's own compiled artifacts (no
//! recompilation), which is what `plimc bench` emits and the CI gate
//! compares against the committed baseline.

use mig::Mig;
use plim::MachineError;
use plim_compiler::batch::{BenchRun, Circuit};
use plim_compiler::verify::{
    verify_exhaustive, verify_exhaustive_artifact, VerifyError, EXHAUSTIVE_WIDE_LIMIT,
};
use plim_compiler::{Compilation, Rm3Program, Target};
use plim_parallel::Parallelism;

use crate::fault::{fault_sweep, FaultModel, FaultScenario};
use crate::lifetime::{simulate_lifetime, LifetimeScenario};

/// Knobs of the fidelity measurement (all deterministic given the seed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FidelityConfig {
    /// Per-write bit-flip probability of the drift fault model.
    pub drift_probability: f64,
    /// Random input patterns of the fault sweep.
    pub fault_patterns: u64,
    /// Endurance budget per cell for the lifetime simulation.
    pub cell_endurance: u64,
    /// Master seed for the fault sweep.
    pub seed: u64,
    /// Worker threads for the fault sweep.
    pub parallelism: Parallelism,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig {
            drift_probability: 1e-3,
            fault_patterns: 4096,
            cell_endurance: 1_000_000,
            seed: 0xDAC2016,
            parallelism: Parallelism::Auto,
        }
    }
}

/// The measured fidelity of one circuit's compiled artifacts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Every opt level proven equal to the source MIG over the full input
    /// space (`false` when the interface exceeds
    /// [`EXHAUSTIVE_WIDE_LIMIT`] inputs or any proof fails).
    pub verified_exhaustive: bool,
    /// Pattern error rate of the default program under drifted writes.
    pub fault_error_rate: f64,
    /// Invocations before the first cell of the default program exceeds
    /// the endurance budget (ideal-device closed form).
    pub lifetime_invocations: u64,
}

/// Measures one circuit's fidelity from its already-compiled artifacts.
///
/// `default_program` is the record's main compilation (`-O0`); the
/// `optimized` slice holds further opt levels that must *also* pass the
/// exhaustive proof for `verified_exhaustive` to hold. All proofs are
/// against the **raw** source MIG, so they cover rewriting and
/// compilation end to end.
///
/// # Errors
///
/// Propagates a [`MachineError`] from the fault sweep — compiled
/// programs never trigger one.
pub fn fidelity_for(
    mig: &Mig,
    default_program: &Rm3Program,
    optimized: &[&Rm3Program],
    config: &FidelityConfig,
) -> Result<Fidelity, MachineError> {
    let verified_exhaustive = mig.num_inputs() <= EXHAUSTIVE_WIDE_LIMIT
        && std::iter::once(default_program)
            .chain(optimized.iter().copied())
            .all(|compiled| verify_exhaustive(mig, compiled).is_ok());
    let fault = fault_sweep(
        &default_program.program,
        &FaultScenario {
            model: FaultModel::drift(config.drift_probability),
            patterns: config.fault_patterns,
            seed: config.seed,
            parallelism: config.parallelism,
        },
    )?;
    let lifetime = simulate_lifetime(
        &default_program.program,
        &LifetimeScenario {
            cell_endurance: config.cell_endurance,
            max_invocations: u64::MAX,
            write_noise: 0.0,
            seed: config.seed,
        },
    );
    Ok(Fidelity {
        verified_exhaustive,
        fault_error_rate: fault.error_rate(),
        lifetime_invocations: lifetime.invocations,
    })
}

/// Dispatches the exhaustive equivalence proof to the executor matching
/// `target`: the RM3 program runs on the bit-parallel PLiM machine
/// ([`verify_exhaustive`]), every other target's artifact runs through its
/// backend's own executor ([`verify_exhaustive_artifact`]). This is the
/// scenario layer's verification-executor dispatch — `plimc verify
/// --target …` calls it, and so can any harness holding a [`Compilation`].
///
/// # Errors
///
/// The dispatched checker's error: [`VerifyError::TooManyInputs`] beyond
/// the exhaustive bound, [`VerifyError::Mismatch`] with a counterexample,
/// or an executor rejection.
pub fn verify_exhaustive_for_target(
    target: Target,
    mig: &Mig,
    compilation: &Compilation,
) -> Result<(), VerifyError> {
    if target == Target::RM3 {
        verify_exhaustive(mig, &compilation.compiled)
    } else {
        let artifact = target.backend().emit(&compilation.ir);
        verify_exhaustive_artifact(mig, artifact.as_ref())
    }
}

/// Fills the fidelity columns of every record of a [`BenchRun`] from the
/// run's own compiled artifacts: per circuit, the `-O0` default job plus
/// the `-O1`/`-O2` pass-pipeline jobs (jobs 2, 5 and 6 of
/// [`BenchRun::circuit_jobs`]), each proven against the raw source MIG.
///
/// # Errors
///
/// Propagates a [`MachineError`] from the fault sweep — compiled
/// programs never trigger one.
///
/// # Panics
///
/// Panics if `circuits` is not the slice the run was produced from
/// (record/circuit counts must match).
pub fn annotate_bench(
    run: &mut BenchRun,
    circuits: &[Circuit],
    config: &FidelityConfig,
) -> Result<(), MachineError> {
    assert_eq!(
        run.records.len(),
        circuits.len(),
        "bench run has {} records but {} circuits were supplied",
        run.records.len(),
        circuits.len()
    );
    let fidelities: Vec<Fidelity> = circuits
        .iter()
        .enumerate()
        .map(|(index, circuit)| {
            let jobs = run.circuit_jobs(index);
            fidelity_for(
                &circuit.mig,
                &jobs[2].compiled,
                &[&jobs[5].compiled, &jobs[6].compiled],
                config,
            )
        })
        .collect::<Result<_, _>>()?;
    for (record, fidelity) in run.records.iter_mut().zip(fidelities) {
        record.verified_exhaustive = fidelity.verified_exhaustive;
        record.fault_error_rate = fidelity.fault_error_rate;
        record.lifetime_invocations = fidelity.lifetime_invocations;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_benchmarks::suite::{build, Scale};
    use plim_compiler::batch::bench_suite;
    use plim_compiler::{compile, CompilerOptions};

    fn xor_chain(inputs: usize) -> Mig {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", inputs);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("f", acc);
        mig
    }

    #[test]
    fn fidelity_of_a_correct_compilation() {
        let mig = xor_chain(6);
        let compiled = compile(&mig, CompilerOptions::new());
        let fidelity = fidelity_for(&mig, &compiled, &[], &FidelityConfig::default()).unwrap();
        assert!(fidelity.verified_exhaustive);
        // Drift at 1e-3 must corrupt *some* patterns of a multi-write
        // program, but nowhere near all of them.
        assert!(fidelity.fault_error_rate > 0.0 && fidelity.fault_error_rate < 0.5);
        assert!(fidelity.lifetime_invocations > 0);
    }

    #[test]
    fn oversized_interface_reports_unverified_not_error() {
        let mig = xor_chain(EXHAUSTIVE_WIDE_LIMIT + 1);
        let compiled = compile(&mig, CompilerOptions::new());
        let fidelity = fidelity_for(&mig, &compiled, &[], &FidelityConfig::default()).unwrap();
        assert!(!fidelity.verified_exhaustive);
        assert!(fidelity.lifetime_invocations > 0);
    }

    #[test]
    fn annotate_bench_fills_every_record() {
        // ctrl (7 PIs) and int2float (11 PIs) are exhaustively provable;
        // router (60 PIs) exceeds the wide limit and must be annotated as
        // unverified rather than erroring.
        let circuits = [
            Circuit::new("ctrl", build("ctrl", Scale::Reduced).unwrap()),
            Circuit::new("int2float", build("int2float", Scale::Reduced).unwrap()),
            Circuit::new("router", build("router", Scale::Reduced).unwrap()),
        ];
        let mut run = bench_suite(&circuits, 2, Parallelism::Auto);
        assert!(run.records.iter().all(|r| !r.verified_exhaustive));
        annotate_bench(&mut run, &circuits, &FidelityConfig::default()).unwrap();
        for record in &run.records {
            assert_eq!(record.verified_exhaustive, record.circuit != "router");
            assert!(record.fault_error_rate >= 0.0);
            assert!(record.lifetime_invocations > 0, "{}", record.circuit);
        }
    }

    #[test]
    fn target_dispatch_chooses_the_right_executor() {
        plim_backends::install();
        let ambit = Target::parse("ambit").expect("registered");
        let mig = xor_chain(6);
        let compilation = plim_compiler::compile_full(&mig, CompilerOptions::new());
        verify_exhaustive_for_target(Target::RM3, &mig, &compilation).unwrap();
        verify_exhaustive_for_target(ambit, &mig, &compilation).unwrap();
        // The dispatch forwards the executor's refusal unchanged.
        let wide = xor_chain(EXHAUSTIVE_WIDE_LIMIT + 1);
        let compilation = plim_compiler::compile_full(&wide, CompilerOptions::new());
        for target in [Target::RM3, ambit] {
            assert!(matches!(
                verify_exhaustive_for_target(target, &wide, &compilation),
                Err(VerifyError::TooManyInputs { .. })
            ));
        }
    }

    #[test]
    #[should_panic(expected = "records but")]
    fn annotate_bench_rejects_mismatched_circuits() {
        let circuits = [Circuit::new("ctrl", build("ctrl", Scale::Reduced).unwrap())];
        let mut run = bench_suite(&circuits, 1, Parallelism::Serial);
        annotate_bench(&mut run, &[], &FidelityConfig::default()).unwrap();
    }
}
