//! Device-lifetime simulation: how many invocations until a cell dies.
//!
//! Every RM3 instruction writes its destination cell exactly once, so a
//! program's per-invocation wear profile is static — the number of
//! instructions targeting each cell. A cell *dies* when its accumulated
//! wear exceeds the endurance budget, and the simulation reports the
//! number of invocations completed before the first death.
//!
//! Two regimes:
//!
//! * **noise = 0** — wear is purely linear, so the lifetime has the
//!   closed form `min_c ⌊budget / writes_per_invocation(c)⌋`, consistent
//!   with [`plim::EnduranceStats::lifetime_executions`]. Millions of
//!   invocations cost nothing to "simulate".
//! * **noise > 0** — each write additionally wears its cell by one extra
//!   unit with probability `write_noise` (modelling harsh SET/RESET
//!   cycles). Invocations are simulated 64 at a time as lanes of biased
//!   `u64` draws, with per-block seeded [`XorShift64::for_stream`]
//!   substreams, and the dying invocation is resolved to the exact lane.

use mig::simulate::XorShift64;
use mig::Mig;
use plim::{Program, RamAddr};
use plim_compiler::{compile, AllocatorStrategy, CompilerOptions};
use plim_parallel::{par_map, Parallelism};

use crate::random::BiasedBits;

/// Everything shaping one lifetime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeScenario {
    /// Endurance budget per cell: a cell dies when its wear exceeds this.
    pub cell_endurance: u64,
    /// Stop after this many successful invocations even if no cell died.
    pub max_invocations: u64,
    /// Per-write probability of one extra unit of wear (0 = ideal
    /// devices, closed-form lifetime).
    pub write_noise: f64,
    /// Master seed for the noisy regime.
    pub seed: u64,
}

impl Default for LifetimeScenario {
    fn default() -> Self {
        LifetimeScenario {
            cell_endurance: 1_000_000,
            max_invocations: 10_000_000,
            write_noise: 0.0,
            seed: 0xDAC2016,
        }
    }
}

/// Outcome of a lifetime simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LifetimeReport {
    /// Invocations completed before the first cell death (capped at the
    /// scenario's `max_invocations`).
    pub invocations: u64,
    /// The first cell whose wear exceeded the budget, or `None` if the
    /// simulation hit `max_invocations` with every cell alive.
    pub first_dead_cell: Option<RamAddr>,
    /// Wear of the hottest cell when the simulation stopped.
    pub peak_wear: u64,
}

/// Writes per invocation for every cell (instructions targeting it).
fn static_write_counts(program: &Program) -> Vec<u64> {
    let mut counts = vec![0u64; program.num_rams() as usize];
    for inst in program.instructions() {
        counts[inst.z.0 as usize] += 1;
    }
    counts
}

/// Simulates repeated invocations of `program` under `scenario` and
/// reports the device lifetime.
pub fn simulate_lifetime(program: &Program, scenario: &LifetimeScenario) -> LifetimeReport {
    let counts = static_write_counts(program);
    let bias = BiasedBits::new(scenario.write_noise);
    if bias.is_zero() {
        return closed_form(&counts, scenario);
    }
    noisy_simulation(&counts, bias, scenario)
}

/// Ideal devices: lifetime is `min_c ⌊budget / counts[c]⌋`.
fn closed_form(counts: &[u64], scenario: &LifetimeScenario) -> LifetimeReport {
    let mut lifetime = scenario.max_invocations;
    let mut first_dead = None;
    for (cell, &writes) in counts.iter().enumerate() {
        if writes == 0 {
            continue;
        }
        let survives = scenario.cell_endurance / writes;
        if survives < lifetime {
            lifetime = survives;
            first_dead = Some(RamAddr(cell as u32));
        }
    }
    let peak = counts.iter().max().copied().unwrap_or(0) * lifetime;
    LifetimeReport {
        invocations: lifetime,
        first_dead_cell: first_dead,
        peak_wear: peak,
    }
}

/// Noisy devices: 64 invocations per block, one biased `u64` draw per
/// write slot (lane *k* = invocation *k*'s extra wear for that write).
fn noisy_simulation(
    counts: &[u64],
    bias: BiasedBits,
    scenario: &LifetimeScenario,
) -> LifetimeReport {
    let budget = scenario.cell_endurance;
    let mut wear = vec![0u64; counts.len()];
    let mut done = 0u64;
    let mut block = 0u64;
    // One draw buffer per cell: extra-wear counts for each of the 64
    // lanes of the current block.
    let mut extra = vec![[0u32; 64]; counts.len()];
    while done < scenario.max_invocations {
        let lanes = (scenario.max_invocations - done).min(64);
        let mut rng = XorShift64::for_stream(scenario.seed, block);
        for (cell, &writes) in counts.iter().enumerate() {
            extra[cell] = [0u32; 64];
            for _ in 0..writes {
                let word: u64 = bias.draw(&mut rng);
                let mut bits = word & lane_mask64(lanes);
                while bits != 0 {
                    let lane = bits.trailing_zeros() as usize;
                    extra[cell][lane] += 1;
                    bits &= bits - 1;
                }
            }
        }
        // Fast path: does any cell die within this block at all?
        let block_kills = counts.iter().enumerate().any(|(cell, &writes)| {
            let total_extra: u64 = extra[cell][..lanes as usize]
                .iter()
                .map(|&e| u64::from(e))
                .sum();
            wear[cell] + lanes * writes + total_extra > budget
        });
        if !block_kills {
            for (cell, &writes) in counts.iter().enumerate() {
                let total_extra: u64 = extra[cell][..lanes as usize]
                    .iter()
                    .map(|&e| u64::from(e))
                    .sum();
                wear[cell] += lanes * writes + total_extra;
            }
            done += lanes;
            block += 1;
            continue;
        }
        // Resolve the exact dying lane: walk invocations in order and
        // find the first one that pushes some cell past the budget. The
        // lane is a cross-cell coordinate into every `extra` row, so an
        // iterator over one row cannot replace the index.
        #[allow(clippy::needless_range_loop)]
        for lane in 0..lanes as usize {
            for (cell, &writes) in counts.iter().enumerate() {
                wear[cell] += writes + u64::from(extra[cell][lane]);
            }
            if let Some(dead) = wear.iter().position(|&w| w > budget) {
                return LifetimeReport {
                    invocations: done + lane as u64,
                    first_dead_cell: Some(RamAddr(dead as u32)),
                    peak_wear: wear.iter().max().copied().unwrap_or(0),
                };
            }
        }
        unreachable!("a block that kills must contain a dying lane");
    }
    LifetimeReport {
        invocations: done,
        first_dead_cell: None,
        peak_wear: wear.iter().max().copied().unwrap_or(0),
    }
}

/// The `u64` whose low `lanes` bits are 1.
fn lane_mask64(lanes: u64) -> u64 {
    if lanes >= 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Compiles `mig` once per [`AllocatorStrategy`] (on top of `base`
/// options) and simulates each program's lifetime under the same
/// scenario, measuring how allocation policy shapes device longevity.
pub fn compare_strategies(
    mig: &Mig,
    base: CompilerOptions,
    scenario: &LifetimeScenario,
    parallelism: Parallelism,
) -> Vec<(AllocatorStrategy, LifetimeReport)> {
    let strategies: Vec<AllocatorStrategy> = AllocatorStrategy::ALL.to_vec();
    par_map(&strategies, parallelism, |_, &strategy| {
        let compiled = compile(mig, base.allocator(strategy));
        (strategy, simulate_lifetime(&compiled.program, scenario))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim::{EnduranceStats, Instruction, Operand, OutputLoc};

    /// Three instructions: two writes to cell 0, one to cell 1.
    fn skewed_program() -> Program {
        let mut p = Program::new(1);
        p.push(Instruction::set(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Input(0),
            Operand::Const(true),
            RamAddr(0),
        ));
        p.push(Instruction::set(RamAddr(1)));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        p
    }

    #[test]
    fn closed_form_matches_endurance_stats() {
        let program = skewed_program();
        let scenario = LifetimeScenario {
            cell_endurance: 1001,
            ..LifetimeScenario::default()
        };
        let report = simulate_lifetime(&program, &scenario);
        assert_eq!(report.invocations, 500); // ⌊1001 / 2⌋
        assert_eq!(report.first_dead_cell, Some(RamAddr(0)));
        let stats = EnduranceStats::from_counts(&static_write_counts(&program));
        assert_eq!(stats.lifetime_executions(1001), Some(report.invocations));
    }

    #[test]
    fn cap_is_honoured_when_no_cell_dies() {
        let scenario = LifetimeScenario {
            cell_endurance: u64::MAX,
            max_invocations: 12345,
            ..LifetimeScenario::default()
        };
        let report = simulate_lifetime(&skewed_program(), &scenario);
        assert_eq!(report.invocations, 12345);
        assert_eq!(report.first_dead_cell, None);
        assert_eq!(report.peak_wear, 2 * 12345);
    }

    #[test]
    fn noisy_lifetime_is_shorter_and_deterministic() {
        let program = skewed_program();
        let ideal = simulate_lifetime(
            &program,
            &LifetimeScenario {
                cell_endurance: 10_000,
                ..LifetimeScenario::default()
            },
        );
        let noisy_scenario = LifetimeScenario {
            cell_endurance: 10_000,
            write_noise: 0.25,
            ..LifetimeScenario::default()
        };
        let noisy = simulate_lifetime(&program, &noisy_scenario);
        assert!(noisy.invocations < ideal.invocations);
        // Wear per invocation of cell 0 averages 2 · 1.25 = 2.5, so the
        // lifetime should be near 10 000 / 2.5 = 4000.
        assert!(
            noisy.invocations > 3600 && noisy.invocations < 4400,
            "noisy lifetime {}",
            noisy.invocations
        );
        assert_eq!(noisy, simulate_lifetime(&program, &noisy_scenario));
        assert_eq!(noisy.first_dead_cell, Some(RamAddr(0)));
        assert!(noisy.peak_wear > 10_000);
    }

    #[test]
    fn noisy_cap_with_partial_final_block() {
        let scenario = LifetimeScenario {
            cell_endurance: u64::MAX,
            max_invocations: 100, // 64 + 36: second block is partial
            write_noise: 0.5,
            ..LifetimeScenario::default()
        };
        let report = simulate_lifetime(&skewed_program(), &scenario);
        assert_eq!(report.invocations, 100);
        assert_eq!(report.first_dead_cell, None);
        // Extra wear can at most double the static wear of cell 0.
        assert!(report.peak_wear >= 200 && report.peak_wear <= 400);
    }

    #[test]
    fn zero_noise_equals_tiny_noise_limit() {
        // Sanity: the closed form and the block simulation agree when the
        // noise rounds to zero.
        let scenario = LifetimeScenario {
            cell_endurance: 1000,
            write_noise: 1e-12,
            ..LifetimeScenario::default()
        };
        let report = simulate_lifetime(&skewed_program(), &scenario);
        assert_eq!(report.invocations, 500);
        assert_eq!(report.first_dead_cell, Some(RamAddr(0)));
    }
}
