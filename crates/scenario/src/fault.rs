//! Monte-Carlo fault injection against the bit-parallel executor.
//!
//! Two physical fault classes of resistive memories are modelled, both
//! injected through [`plim::wide::WriteHook`] so the executor itself
//! stays fault-agnostic:
//!
//! * **stuck-at cells** — a cell whose resistive state no longer
//!   switches; every write to it commits the stuck level instead of the
//!   majority result (the fault takes effect from the first write, which
//!   compiled programs issue before any read, per the compiler's
//!   initialization discipline);
//! * **drifted writes** — every committed bit flips independently with a
//!   small probability, modelling disturbed or incomplete switching.
//!
//! A sweep runs the same seeded random input patterns through a fault-free
//! and a faulty machine and reports how often outputs differ. Randomness
//! is drawn from per-block [`XorShift64::for_stream`] substreams, so the
//! report is reproducible bit-for-bit for a given seed regardless of how
//! many worker threads execute the blocks.

use mig::simulate::XorShift64;
use mig::Mig;
use plim::wide::{LaneWord, WideMachine, WriteHook, W256};
use plim::{MachineError, Program, RamAddr};
use plim_compiler::{compile, AllocatorStrategy, CompilerOptions};
use plim_parallel::{par_map, Parallelism};

use crate::random::BiasedBits;

/// The fault classes injected into a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultModel {
    /// Cells stuck at a level: every write commits the level instead of
    /// the computed value.
    pub stuck: Vec<(RamAddr, bool)>,
    /// Per-write probability that each committed bit flips.
    pub drift_probability: f64,
}

impl FaultModel {
    /// A pure drifted-write model.
    pub fn drift(probability: f64) -> Self {
        FaultModel {
            stuck: Vec::new(),
            drift_probability: probability,
        }
    }

    /// A single stuck-at cell.
    pub fn stuck_at(addr: RamAddr, level: bool) -> Self {
        FaultModel {
            stuck: vec![(addr, level)],
            drift_probability: 0.0,
        }
    }
}

/// A [`WriteHook`] applying a [`FaultModel`]: drift first (the write
/// lands disturbed), then stuck-at (a dead cell ignores the write
/// entirely).
#[derive(Debug)]
pub struct FaultHook<'m> {
    model: &'m FaultModel,
    bias: BiasedBits,
    rng: XorShift64,
}

impl<'m> FaultHook<'m> {
    /// Creates a hook drawing drift randomness from `rng`.
    pub fn new(model: &'m FaultModel, rng: XorShift64) -> Self {
        FaultHook {
            model,
            bias: BiasedBits::new(model.drift_probability),
            rng,
        }
    }
}

impl<W: LaneWord> WriteHook<W> for FaultHook<'_> {
    fn transform(&mut self, addr: RamAddr, value: W) -> W {
        let mut committed = value;
        if !self.bias.is_zero() {
            committed = committed ^ self.bias.draw(&mut self.rng);
        }
        for &(stuck_addr, level) in &self.model.stuck {
            if stuck_addr == addr {
                committed = W::splat(level);
            }
        }
        committed
    }
}

/// Everything shaping one fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultScenario {
    /// The injected faults.
    pub model: FaultModel,
    /// Random input patterns to simulate (rounded up to a multiple of the
    /// 256-lane block size).
    pub patterns: u64,
    /// Master seed; every report is a pure function of it.
    pub seed: u64,
    /// Worker threads for the block fan-out (the result does not depend
    /// on the choice).
    pub parallelism: Parallelism,
}

impl Default for FaultScenario {
    fn default() -> Self {
        FaultScenario {
            model: FaultModel::default(),
            patterns: 4096,
            seed: 0xDAC2016,
            parallelism: Parallelism::Auto,
        }
    }
}

/// Measured outcome of a fault sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Input patterns simulated.
    pub patterns: u64,
    /// Patterns on which at least one output differed.
    pub erroneous_patterns: u64,
    /// Output bits compared (`patterns × outputs`).
    pub output_bits: u64,
    /// Output bits that differed.
    pub erroneous_bits: u64,
}

impl FaultReport {
    /// Fraction of patterns with at least one wrong output.
    pub fn error_rate(&self) -> f64 {
        if self.patterns == 0 {
            0.0
        } else {
            self.erroneous_patterns as f64 / self.patterns as f64
        }
    }

    /// Fraction of individual output bits that were wrong.
    pub fn bit_error_rate(&self) -> f64 {
        if self.output_bits == 0 {
            0.0
        } else {
            self.erroneous_bits as f64 / self.output_bits as f64
        }
    }
}

/// The 256-lane word whose first `lanes` lanes are 1.
fn lane_mask(lanes: u64) -> W256 {
    W256::from_blocks(|block| {
        let low = block as u64 * 64;
        if lanes >= low + 64 {
            !0
        } else if lanes <= low {
            0
        } else {
            (1u64 << (lanes - low)) - 1
        }
    })
}

/// Runs `scenario.patterns` seeded random input patterns through a
/// fault-free and a faulted execution of `program` and reports the
/// measured output-error rates.
///
/// # Errors
///
/// Returns the underlying [`MachineError`] if the program is malformed
/// (references a missing input, for instance) — compiled programs never
/// trigger this.
pub fn fault_sweep(
    program: &Program,
    scenario: &FaultScenario,
) -> Result<FaultReport, MachineError> {
    let n = program.num_inputs();
    let lanes = W256::LANES as u64;
    let blocks: Vec<u64> = (0..scenario.patterns.div_ceil(lanes)).collect();
    let outputs = program.outputs().len() as u64;
    let per_block = par_map(&blocks, scenario.parallelism, |_, &block| {
        let mut input_rng = XorShift64::for_stream(scenario.seed, 2 * block);
        let inputs: Vec<W256> = (0..n)
            .map(|_| W256::from_blocks(|_| input_rng.next_word()))
            .collect();
        let mut clean = WideMachine::<W256>::new();
        let expected = clean.run(program, &inputs)?;
        let mut faulty = WideMachine::<W256>::new();
        let mut hook = FaultHook::new(
            &scenario.model,
            XorShift64::for_stream(scenario.seed, 2 * block + 1),
        );
        let got = faulty.run_hooked(program, &inputs, &mut hook)?;
        let live = lane_mask((scenario.patterns - block * lanes).min(lanes));
        let mut any_diff = W256::zero();
        let mut bits = 0u64;
        for (&e, &g) in expected.iter().zip(&got) {
            let diff = (e ^ g) & live;
            any_diff = any_diff | diff;
            bits += u64::from(diff.count_ones());
        }
        Ok((
            u64::from(any_diff.count_ones()),
            bits,
            (scenario.patterns - block * lanes).min(lanes),
        ))
    });
    let mut report = FaultReport::default();
    for outcome in per_block {
        let (wrong_patterns, wrong_bits, live_lanes) = outcome?;
        report.patterns += live_lanes;
        report.erroneous_patterns += wrong_patterns;
        report.output_bits += live_lanes * outputs;
        report.erroneous_bits += wrong_bits;
    }
    Ok(report)
}

/// Compiles `mig` once per [`AllocatorStrategy`] (on top of `base`
/// options) and fault-sweeps each program under the same scenario,
/// measuring how allocation policy shapes fault sensitivity.
///
/// # Errors
///
/// Propagates the first [`MachineError`] (compiled programs never
/// trigger one).
pub fn sweep_strategies(
    mig: &Mig,
    base: CompilerOptions,
    scenario: &FaultScenario,
) -> Result<Vec<(AllocatorStrategy, FaultReport)>, MachineError> {
    AllocatorStrategy::ALL
        .into_iter()
        .map(|strategy| {
            let compiled = compile(mig, base.allocator(strategy));
            fault_sweep(&compiled.program, scenario).map(|report| (strategy, report))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim::{Instruction, Operand, OutputLoc};

    /// `f = i1` through one work cell.
    fn copy_program() -> Program {
        let mut p = Program::new(1);
        p.push(Instruction::set(RamAddr(0)));
        p.push(Instruction::new(
            Operand::Input(0),
            Operand::Const(true),
            RamAddr(0),
        ));
        p.add_output("f", OutputLoc::Ram(RamAddr(0)));
        p
    }

    #[test]
    fn benign_model_measures_zero_errors() {
        let report = fault_sweep(&copy_program(), &FaultScenario::default()).unwrap();
        assert_eq!(report.patterns, 4096);
        assert_eq!(report.erroneous_patterns, 0);
        assert_eq!(report.error_rate(), 0.0);
        assert_eq!(report.output_bits, 4096);
    }

    #[test]
    fn stuck_output_cell_shows_errors() {
        let scenario = FaultScenario {
            model: FaultModel::stuck_at(RamAddr(0), false),
            ..FaultScenario::default()
        };
        let report = fault_sweep(&copy_program(), &scenario).unwrap();
        // The output cell is stuck at 0, so every pattern with i1 = 1 is
        // wrong: about half of them.
        assert!(report.error_rate() > 0.4 && report.error_rate() < 0.6);
        assert_eq!(report.erroneous_bits, report.erroneous_patterns);
    }

    #[test]
    fn drift_rate_tracks_probability() {
        let scenario = FaultScenario {
            model: FaultModel::drift(0.05),
            patterns: 16384,
            ..FaultScenario::default()
        };
        let report = fault_sweep(&copy_program(), &scenario).unwrap();
        // Output = a & z with z set by the first write. For a = 0 the
        // output is wrong iff the final write drifts (p); for a = 1 iff
        // exactly one of the two writes drifts (2p(1-p)). Expected rate
        // = p/2 + p(1-p) = 0.0725 at p = 0.05.
        let expected = 0.05 / 2.0 + 0.05 * 0.95;
        assert!(
            (report.error_rate() - expected).abs() < 0.01,
            "rate {}",
            report.error_rate()
        );
    }

    #[test]
    fn reports_are_thread_count_invariant() {
        let base = FaultScenario {
            model: FaultModel::drift(0.01),
            patterns: 2048,
            seed: 7,
            parallelism: Parallelism::Serial,
        };
        let serial = fault_sweep(&copy_program(), &base).unwrap();
        for workers in [2, 5, 16] {
            let scenario = FaultScenario {
                parallelism: Parallelism::Threads(workers),
                ..base.clone()
            };
            assert_eq!(serial, fault_sweep(&copy_program(), &scenario).unwrap());
        }
    }

    #[test]
    fn partial_final_block_is_masked() {
        let scenario = FaultScenario {
            model: FaultModel::stuck_at(RamAddr(0), false),
            patterns: 300, // 256 + 44: the second block is partial
            ..FaultScenario::default()
        };
        let report = fault_sweep(&copy_program(), &scenario).unwrap();
        assert_eq!(report.patterns, 300);
        assert_eq!(report.output_bits, 300);
        assert!(report.erroneous_patterns <= 300);
    }

    #[test]
    fn malformed_program_propagates_machine_error() {
        let mut p = Program::new(0);
        p.push(Instruction::new(
            Operand::Input(3),
            Operand::Const(false),
            RamAddr(0),
        ));
        let err = fault_sweep(&p, &FaultScenario::default()).unwrap_err();
        assert_eq!(err, MachineError::InputOutOfRange { index: 3 });
    }

    #[test]
    fn lane_masks_cover_boundaries() {
        assert_eq!(lane_mask(0), W256::zero());
        assert_eq!(lane_mask(256), W256::ones());
        assert_eq!(lane_mask(64), W256([!0, 0, 0, 0]));
        assert_eq!(lane_mask(65), W256([!0, 1, 0, 0]));
        assert_eq!(lane_mask(63).count_ones(), 63);
    }
}
