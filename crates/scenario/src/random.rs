//! Biased lane-word randomness for fault models.
//!
//! Fault injection needs words whose bits are independently 1 with a
//! small probability `p` (a drifted write flips each lane with
//! probability `p`). Drawing one uniform word per *bit* of precision and
//! folding through the binary expansion of `p` produces exactly
//! quantized-`p` bias from plain uniform words — no floating-point
//! comparisons per lane, and the cost is a fixed number of RNG draws per
//! word regardless of lane count.

use mig::simulate::XorShift64;
use plim::wide::LaneWord;

/// Precision of the probability quantization, in binary digits.
const FRACTION_BITS: u32 = 32;

/// Draws lane words whose bits are independently 1 with probability `p`
/// (quantized to [`struct@BiasedBits`]' 32 fraction bits).
///
/// The construction folds uniform words through the binary expansion of
/// `p`, least-significant digit first: starting from an all-zeros
/// accumulator, a `1` digit maps `acc ← r | acc` (probability becomes
/// `(1 + q) / 2`) and a `0` digit maps `acc ← r & acc` (probability
/// becomes `q / 2`), so after all digits every bit of the accumulator is
/// 1 with probability exactly `0.d₁d₂…dₖ` in binary.
///
/// # Examples
///
/// ```
/// use mig::simulate::XorShift64;
/// use plim_scenario::BiasedBits;
///
/// let half = BiasedBits::new(0.5);
/// let mut rng = XorShift64::new(7);
/// let word: u64 = half.draw(&mut rng);
/// // p = 0.5 reduces to a single uniform draw.
/// assert_eq!(word, XorShift64::new(7).next_word());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BiasedBits {
    /// `round(p · 2³²)`, saturated to `2³²` for `p = 1`.
    fraction: u64,
}

impl BiasedBits {
    /// Quantizes a probability (clamped to `[0, 1]`).
    pub fn new(p: f64) -> Self {
        let clamped = p.clamp(0.0, 1.0);
        BiasedBits {
            fraction: (clamped * f64::from(2u32).powi(FRACTION_BITS as i32)).round() as u64,
        }
    }

    /// `true` when the quantized probability is exactly zero (drawing
    /// would always return the zero word).
    pub fn is_zero(self) -> bool {
        self.fraction == 0
    }

    /// The quantized probability.
    pub fn probability(self) -> f64 {
        self.fraction as f64 / f64::from(2u32).powi(FRACTION_BITS as i32)
    }

    /// Draws one biased lane word from `rng`.
    ///
    /// Consumes a deterministic number of RNG words (up to
    /// `32 · W::WORDS`), so seeded streams stay reproducible.
    pub fn draw<W: LaneWord>(self, rng: &mut XorShift64) -> W {
        if self.fraction == 0 {
            return W::zero();
        }
        if self.fraction >= 1 << FRACTION_BITS {
            return W::ones();
        }
        // Digits below the lowest set bit keep the accumulator all-zero
        // (`r & 0 = 0`), so folding can start at the first `1` digit.
        let mut acc = W::from_blocks(|_| rng.next_word());
        for digit in self.fraction.trailing_zeros() + 1..FRACTION_BITS {
            let r = W::from_blocks(|_| rng.next_word());
            acc = if self.fraction >> digit & 1 == 1 {
                r | acc
            } else {
                r & acc
            };
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim::wide::W256;

    fn measured_rate(p: f64, draws: usize, seed: u64) -> f64 {
        let bias = BiasedBits::new(p);
        let mut rng = XorShift64::new(seed);
        let mut ones = 0u64;
        for _ in 0..draws {
            ones += u64::from(bias.draw::<W256>(&mut rng).count_ones());
        }
        ones as f64 / (draws * 256) as f64
    }

    #[test]
    fn extreme_probabilities_are_exact() {
        let mut rng = XorShift64::new(1);
        assert_eq!(BiasedBits::new(0.0).draw::<u64>(&mut rng), 0);
        assert_eq!(BiasedBits::new(1.0).draw::<u64>(&mut rng), u64::MAX);
        assert!(BiasedBits::new(0.0).is_zero());
        assert!(!BiasedBits::new(1e-9).is_zero());
        assert_eq!(BiasedBits::new(0.25).probability(), 0.25);
    }

    #[test]
    fn measured_rates_track_requested_probabilities() {
        for &p in &[0.5, 0.25, 0.1, 0.01] {
            let measured = measured_rate(p, 2000, 42);
            let sigma = (p * (1.0 - p) / (2000.0 * 256.0)).sqrt();
            assert!(
                (measured - p).abs() < 6.0 * sigma + 1e-9,
                "p={p}: measured {measured}"
            );
        }
    }

    #[test]
    fn draws_are_deterministic() {
        let bias = BiasedBits::new(0.125);
        let mut a = XorShift64::new(9);
        let mut b = XorShift64::new(9);
        for _ in 0..32 {
            assert_eq!(bias.draw::<W256>(&mut a), bias.draw::<W256>(&mut b));
        }
    }
}
