//! # plim-scenario — reliability scenarios for compiled PLiM programs
//!
//! The compiler's claims are functional (the program computes the MIG's
//! function) and physical (FIFO / wear-aware RRAM allocation spreads
//! writes). This crate turns both into *measured* results by driving the
//! bit-parallel [`plim::wide`] executor through three scenario engines:
//!
//! * **Exhaustive equivalence** — [`verify::verify_exhaustive`] proves a
//!   compiled program equal to its source MIG over the full input space
//!   for circuits of up to 20 inputs (2²⁰ patterns in 4096 runs of the
//!   256-wide machine);
//! * **Monte-Carlo fault injection** ([`fault`]) — stuck-at cells and
//!   probabilistically drifted writes, injected through the executor's
//!   [`plim::wide::WriteHook`], with a seeded RNG whose per-block streams
//!   make every report reproducible bit-for-bit regardless of thread
//!   count;
//! * **Device-lifetime simulation** ([`lifetime`]) — wear accumulation
//!   over millions of invocations against each `FreePool` allocation
//!   strategy, reporting the invocation at which the first cell exceeds
//!   its endurance budget.
//!
//! [`fidelity`] packages the three engines into the `BENCH.json` fidelity
//! columns (`verified_exhaustive`, `fault_error_rate`,
//! `lifetime_invocations`) that the bench-regression gate enforces.
//!
//! [`verify::verify_exhaustive`]: plim_compiler::verify::verify_exhaustive

pub mod fault;
pub mod fidelity;
pub mod lifetime;
pub mod random;

pub use fault::{fault_sweep, sweep_strategies, FaultModel, FaultReport, FaultScenario};
pub use fidelity::{
    annotate_bench, fidelity_for, verify_exhaustive_for_target, Fidelity, FidelityConfig,
};
pub use lifetime::{compare_strategies, simulate_lifetime, LifetimeReport, LifetimeScenario};
pub use random::BiasedBits;
