//! # plim-compiler — an MIG-based compiler for the PLiM architecture
//!
//! Reproduction of Soeken, Shirinzadeh, Gaillardon, Amarú, Drechsler,
//! De Micheli: *An MIG-based Compiler for Programmable Logic-in-Memory
//! Architectures*, DAC 2016.
//!
//! The compiler translates Boolean functions, represented as
//! Majority-Inverter Graphs ([`mig::Mig`]), into programs for the PLiM
//! in-memory computer ([`plim::Program`]), whose single instruction is the
//! 3-input resistive majority `RM3(A, B, Z): Z ← ⟨A B̄ Z⟩`.
//!
//! Two quality metrics matter: the number of RM3 instructions (`#I`,
//! latency) and the number of work RRAM cells (`#R`, space). The compiler
//! minimizes both through
//!
//! * **lifetime analysis** ([`lifetime`]): one up-front pass computes every
//!   node's reference schedule position, last-use point, and lifetime
//!   class; the scheduler and the allocator both consume it;
//! * **candidate selection** ([`candidate`]): a priority queue schedules
//!   computable nodes so RRAMs are released early and allocated late;
//!   [`ScheduleOrder::Lookahead`] adds a windowed lookahead that weighs the
//!   cells a candidate frees now against those it must newly allocate;
//! * **smart node translation** ([`compile`]): a case analysis picks which
//!   child feeds the natively-inverted operand `B`, which child's RRAM is
//!   overwritten as destination `Z`, and how operand `A` is read, caching
//!   materialized complements for reuse;
//! * **RRAM allocation** ([`alloc`]): a pluggable free-cell pool reuses
//!   released cells — FIFO rotation (the paper's default), LIFO,
//!   wear-budget (least-written first, driven by per-cell write counters),
//!   or lifetime-binned placement;
//! * **the IR pass pipeline** ([`ir`]): translation runs as three phases —
//!   lower (scheduling + node translation into an explicit IR over virtual
//!   cells), optimize (dead-write elimination, redundant-initialization
//!   removal, in-place-overwrite forwarding, peepholes, selected by
//!   [`OptLevel`]), and emit (event-stream replay back to a physical
//!   program). `-O0` is byte-identical to the paper reproduction; `-O2`
//!   harvests instruction-level slack no scheduler can see.
//!
//! Program quality and speed are tracked as machine-checked artifacts: the
//! [`benchfile`] module defines the `BENCH.json` schema and the regression
//! gate that CI diffs against `benchmarks/baseline.json`; both it and the
//! `plimd` compile-service wire protocol are built on the shared [`json`]
//! layer, and [`cache`] provides the service's content-addressed,
//! byte-budgeted result store.
//!
//! Pair it with [`mig::rewrite`] (the paper's Algorithm 1) to optimize the
//! graph before compilation, and with [`batch`] to compile whole benchmark
//! suites in parallel (one memoized rewrite pass per `(circuit, effort)`,
//! deterministic result order).
//!
//! ## Quick example
//!
//! ```
//! use mig::{Mig, rewrite::rewrite};
//! use plim_compiler::{compile, verify::verify, CompilerOptions};
//!
//! let mut mig = Mig::new();
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let cin = mig.add_input("cin");
//! let sum = mig.xor3(a, b, cin);
//! let cout = mig.maj(a, b, cin);
//! mig.add_output("sum", sum);
//! mig.add_output("cout", cout);
//!
//! let optimized = rewrite(&mig, 4);
//! let compiled = compile(&optimized, CompilerOptions::new());
//! verify(&optimized, &compiled, 4, 0)?;
//! println!("{}", compiled.program); // paper-style listing
//! # Ok::<(), plim_compiler::verify::VerifyError>(())
//! ```

pub mod alloc;
pub mod backend;
pub mod batch;
pub mod benchfile;
pub mod cache;
pub mod candidate;
mod compile;
pub mod constrained;
pub mod ir;
pub mod json;
pub mod lifetime;
mod options;
mod program;
pub mod report;
pub mod store;
pub mod verify;

// The crate-root surface, grouped by pipeline stage: configuration, the
// compile entry points and their result types, the analyses they share,
// and the caching layers the `plimd` service builds on. Everything else
// is reached through its module.
pub use backend::{Artifact, Backend, Cost, InstructionInfo, Target};
pub use cache::{CacheKey, CacheStats, LruCache};
pub use compile::{compile, compile_full, Compilation};
pub use lifetime::{LifetimeClass, Lifetimes};
pub use options::{
    egraph_optimizer, install_egraph_optimizer, AllocatorStrategy, CompilerOptions,
    EgraphOptimizer, OperandSelection, OptLevel, RewriteMode, ScheduleOrder,
};
pub use program::{Rm3Program, Rm3Stats};
pub use store::{ArtifactStore, StoreCounters, StoreLookup, StoredArtifact};
