//! The compilation driver (Algorithm 2 of the paper).

use mig::{Mig, MigNode, NodeId};

use crate::candidate::{CandidateQueue, Priorities};
use crate::lifetime::Lifetimes;
use crate::options::{CompilerOptions, ScheduleOrder};
use crate::program::{CompileStats, CompiledProgram};
use crate::translate::Translator;

/// How many heap-best candidates the lookahead schedule examines per step.
/// Small enough to keep scheduling near-linear, large enough to let the
/// net-release score overrule a stale or myopic heap key.
const LOOKAHEAD_WINDOW: usize = 8;

/// Compiles an MIG into a PLiM program.
///
/// With the default options this is the paper's proposed compiler:
/// candidates are scheduled through the priority queue of §4.2.1 and each
/// node is translated with the smart operand selection of §4.2.2, reusing
/// RRAMs through a FIFO free list. [`CompilerOptions::naive`] reproduces the
/// Table 1 baseline instead.
///
/// Dangling nodes (unreachable from every primary output) are not
/// translated.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use plim_compiler::{compile, CompilerOptions};
/// use plim::Machine;
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, !b, c);
/// mig.add_output("f", m);
///
/// let compiled = compile(&mig, CompilerOptions::new());
/// assert_eq!(compiled.stats.mig_nodes, 1);
///
/// let mut machine = Machine::new();
/// let out = machine.run(&compiled.program, &[true, true, false]).unwrap();
/// assert_eq!(out, vec![false]); // ⟨1 0 0⟩ = 0
/// ```
pub fn compile(mig: &Mig, options: CompilerOptions) -> CompiledProgram {
    let reachable = reachable_majority(mig);
    let lifetimes = Lifetimes::compute(mig);
    let mut translator = Translator::new(mig, options, &lifetimes);
    let mut translated = 0usize;

    match options.schedule {
        ScheduleOrder::Index => {
            for id in mig.majority_ids() {
                if reachable[id.index()] {
                    translator.translate_node(id);
                    translated += 1;
                }
            }
        }
        ScheduleOrder::Priority => {
            translated = run_priority_schedule(mig, &lifetimes, &reachable, &mut translator);
        }
        ScheduleOrder::Lookahead => {
            translated = run_lookahead_schedule(mig, &lifetimes, &reachable, &mut translator);
        }
    }

    let (program, peak_live, max_cell_writes) = translator.finalize();
    let stats = CompileStats {
        instructions: program.len(),
        rams: program.num_rams(),
        mig_nodes: translated,
        peak_live,
        max_cell_writes,
    };
    CompiledProgram { program, stats }
}

/// Seeds the candidate queue and the pending-children counters with every
/// reachable majority node whose children are all computed.
fn seed_candidates(
    mig: &Mig,
    priorities: &Priorities,
    reachable: &[bool],
    queue: &mut CandidateQueue,
) -> Vec<u32> {
    let mut uncomputed_children = vec![0u32; mig.len()];
    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        if let MigNode::Majority(children) = mig.node(id) {
            let pending = children
                .iter()
                .filter(|c| mig.node(c.node()).is_majority())
                .count() as u32;
            uncomputed_children[id.index()] = pending;
            if pending == 0 {
                queue.enqueue(priorities.candidate(id));
            }
        }
    }
    uncomputed_children
}

/// Algorithm 2: maintain a priority queue of candidates (nodes whose
/// children are all computed); repeatedly pop the best candidate, translate
/// it, and enqueue parents that become computable.
fn run_priority_schedule(
    mig: &Mig,
    lifetimes: &Lifetimes,
    reachable: &[bool],
    translator: &mut Translator<'_>,
) -> usize {
    let priorities = Priorities::from_lifetimes(mig, lifetimes);
    let fanouts = mig.fanouts();
    let mut queue = CandidateQueue::new();
    let mut uncomputed_children = seed_candidates(mig, &priorities, reachable, &mut queue);

    let mut translated = 0usize;
    while let Some(mut candidate) = queue.pop() {
        // Lazy dynamic-priority update: the releasing-children count grows
        // as parents are computed, so a stale entry may understate its
        // priority. Refresh and requeue instead of translating.
        let current = translator.releasing_now(candidate.id);
        if current > candidate.releasing_children {
            candidate.releasing_children = current;
            queue.requeue(candidate);
            continue;
        }
        translator.translate_node(candidate.id);
        translated += 1;
        for &parent in &fanouts[candidate.id.index()] {
            if !reachable[parent.index()] {
                continue;
            }
            let pending = &mut uncomputed_children[parent.index()];
            debug_assert!(*pending > 0, "parent counted twice");
            *pending -= 1;
            if *pending == 0 {
                queue.enqueue(priorities.candidate(parent));
            }
        }
    }
    translated
}

/// The lifetime-driven lookahead schedule: like the priority schedule, but
/// each step examines a window of heap-best candidates and picks the one
/// with the best *net* RRAM effect right now — cells actually freed by
/// translating it (value cells and cached complements of dying children),
/// minus a cell when no child can be overwritten in place — breaking ties
/// toward the candidate that unlocks the biggest release one step later.
fn run_lookahead_schedule(
    mig: &Mig,
    lifetimes: &Lifetimes,
    reachable: &[bool],
    translator: &mut Translator<'_>,
) -> usize {
    let priorities = Priorities::from_lifetimes(mig, lifetimes);
    let fanouts = mig.fanouts();
    let mut queue = CandidateQueue::new();
    let mut uncomputed_children = seed_candidates(mig, &priorities, reachable, &mut queue);

    let mut translated = 0usize;
    loop {
        let popped = queue.pop_scored(LOOKAHEAD_WINDOW, |candidate| {
            let freed = translator.released_cells_now(candidate.id);
            let allocates = i64::from(!translator.has_in_place_destination(candidate.id));
            // One step later: the best static release among parents this
            // translation would make computable.
            let unlocked = fanouts[candidate.id.index()]
                .iter()
                .filter(|p| reachable[p.index()] && uncomputed_children[p.index()] == 1)
                .map(|p| i64::from(priorities.releasing(*p)))
                .max()
                .unwrap_or(0);
            // The immediate net effect dominates; the unlocked release only
            // breaks ties (it is at most 3).
            8 * (freed - allocates) + unlocked
        });
        let Some(candidate) = popped else {
            break;
        };
        translator.translate_node(candidate.id);
        translated += 1;
        for &parent in &fanouts[candidate.id.index()] {
            if !reachable[parent.index()] {
                continue;
            }
            let pending = &mut uncomputed_children[parent.index()];
            debug_assert!(*pending > 0, "parent counted twice");
            *pending -= 1;
            if *pending == 0 {
                queue.enqueue(priorities.candidate(parent));
            }
        }
    }
    translated
}

fn reachable_majority(mig: &Mig) -> Vec<bool> {
    let mut reachable = vec![false; mig.len()];
    let mut stack: Vec<NodeId> = mig.outputs().iter().map(|(_, s)| s.node()).collect();
    while let Some(id) = stack.pop() {
        if reachable[id.index()] {
            continue;
        }
        reachable[id.index()] = true;
        if let MigNode::Majority(children) = mig.node(id) {
            stack.extend(children.iter().map(|c| c.node()));
        }
    }
    reachable
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Signal;
    use plim::Machine;

    fn exhaustive_check(mig: &Mig, compiled: &CompiledProgram) {
        let n = mig.num_inputs();
        assert!(n <= 12, "test helper is exhaustive");
        let mut machine = Machine::new();
        for pattern in 0..(1usize << n) {
            let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let expected = mig::simulate::evaluate(mig, &inputs);
            let got = machine.run(&compiled.program, &inputs).unwrap();
            assert_eq!(got, expected, "mismatch on pattern {pattern:#b}");
        }
    }

    fn fig3b_mig() -> Mig {
        // The six-node MIG of Fig. 3(b), reconstructed from the listings.
        let mut mig = Mig::new();
        let i1 = mig.add_input("i1");
        let i2 = mig.add_input("i2");
        let i3 = mig.add_input("i3");
        let n1 = mig.maj(Signal::FALSE, i1, i2);
        let n2 = mig.maj(Signal::TRUE, !i2, i3);
        let n3 = mig.maj(i1, i2, i3);
        let n4 = mig.maj(Signal::TRUE, n1, i3);
        let n5 = mig.maj(n1, !n2, n3);
        let n6 = mig.maj(n4, !n5, n1);
        mig.add_output("f", n6);
        mig
    }

    #[test]
    fn naive_and_smart_compile_fig3b_correctly() {
        let mig = fig3b_mig();
        let naive = compile(&mig, CompilerOptions::naive());
        let smart = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &naive);
        exhaustive_check(&mig, &smart);
        assert_eq!(naive.stats.mig_nodes, 6);
        assert_eq!(smart.stats.mig_nodes, 6);
        assert!(
            smart.stats.instructions <= naive.stats.instructions,
            "smart ({}) must not exceed naive ({})",
            smart.stats.instructions,
            naive.stats.instructions
        );
        assert!(smart.stats.rams <= naive.stats.rams);
    }

    #[test]
    fn single_and_gate() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn complemented_output_is_materialized() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", !f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn passthrough_outputs() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        mig.add_output("x", a);
        mig.add_output("nx", !a);
        mig.add_output("zero", Signal::FALSE);
        mig.add_output("one", Signal::TRUE);
        let f = mig.or(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn shared_output_plain_and_complemented() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.xor(a, b);
        mig.add_output("f", f);
        mig.add_output("g", !f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn dangling_nodes_are_skipped() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        let _dead = mig.or(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        assert_eq!(compiled.stats.mig_nodes, 1);
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn multi_complement_nodes_compile_correctly() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n1 = mig.maj(!a, !b, c);
        let n2 = mig.maj(!a, !b, !c);
        let n3 = mig.maj(!n1, !n2, a);
        mig.add_output("f", n3);
        for opts in [CompilerOptions::new(), CompilerOptions::naive()] {
            let compiled = compile(&mig, opts);
            exhaustive_check(&mig, &compiled);
        }
    }

    #[test]
    fn deep_xor_chain_all_option_combinations() {
        use crate::options::{AllocatorStrategy, OperandSelection, ScheduleOrder};
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("parity", acc);
        for schedule in ScheduleOrder::ALL {
            for operands in [OperandSelection::ChildOrder, OperandSelection::Smart] {
                for allocator in AllocatorStrategy::ALL {
                    let opts = CompilerOptions::new()
                        .schedule(schedule)
                        .operands(operands)
                        .allocator(allocator);
                    let compiled = compile(&mig, opts);
                    exhaustive_check(&mig, &compiled);
                }
            }
        }
    }

    #[test]
    fn lookahead_schedule_is_correct_and_frugal_on_fig3b() {
        let mig = fig3b_mig();
        let lookahead = compile(
            &mig,
            CompilerOptions::new().schedule(crate::options::ScheduleOrder::Lookahead),
        );
        exhaustive_check(&mig, &lookahead);
        let priority = compile(&mig, CompilerOptions::new());
        assert_eq!(lookahead.stats.mig_nodes, priority.stats.mig_nodes);
        // The lookahead schedule exists to shrink the working set; on this
        // small example it must at least not regress the paper's result.
        assert!(lookahead.stats.rams <= priority.stats.rams + 1);
    }

    #[test]
    fn allocator_counters_match_static_endurance() {
        use crate::options::AllocatorStrategy;
        let mig = fig3b_mig();
        for allocator in AllocatorStrategy::ALL {
            let compiled = compile(&mig, CompilerOptions::new().allocator(allocator));
            assert_eq!(
                compiled.stats.max_cell_writes,
                compiled.static_endurance().max_writes,
                "{allocator:?}: allocator write counters diverge from the program"
            );
        }
    }

    #[test]
    fn fresh_allocator_upper_bounds_fifo() {
        use crate::options::AllocatorStrategy;
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.maj(acc, x, xs[0]);
        }
        mig.add_output("f", acc);
        let fifo = compile(&mig, CompilerOptions::new());
        let fresh = compile(
            &mig,
            CompilerOptions::new().allocator(AllocatorStrategy::Fresh),
        );
        assert!(fifo.stats.rams <= fresh.stats.rams);
        assert_eq!(fifo.stats.instructions, fresh.stats.instructions);
    }

    #[test]
    fn stats_are_consistent_with_program() {
        let mig = fig3b_mig();
        let compiled = compile(&mig, CompilerOptions::new());
        assert_eq!(compiled.stats.instructions, compiled.program.len());
        assert_eq!(compiled.stats.rams, compiled.program.num_rams());
        assert!(compiled.stats.peak_live as u32 <= compiled.stats.rams);
    }
}
