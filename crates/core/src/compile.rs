//! The compilation driver: lower → optimize → emit.
//!
//! Algorithm 2 of the paper lives in the [`crate::ir::lower`] phase; this
//! module only sequences the three phases and packages the result.

use mig::Mig;

use crate::ir::{self, passes::PassManager, IrProgram};
use crate::options::CompilerOptions;
use crate::program::Rm3Program;

/// Compiles an MIG into a PLiM program.
///
/// With the default options this is the paper's proposed compiler:
/// candidates are scheduled through the priority queue of §4.2.1 and each
/// node is translated with the smart operand selection of §4.2.2, reusing
/// RRAMs through a FIFO free list. [`CompilerOptions::naive`] reproduces the
/// Table 1 baseline instead. Compilation runs in three phases — lowering to
/// the [`crate::ir`], the [`crate::OptLevel`]-selected pass pipeline, and
/// event-stream replay back to a physical program — with `-O0` (the
/// default) running no passes and reproducing the historical single-step
/// translator byte for byte.
///
/// Dangling nodes (unreachable from every primary output) are not
/// translated.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use plim_compiler::{compile, CompilerOptions};
/// use plim::Machine;
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// let m = mig.maj(a, !b, c);
/// mig.add_output("f", m);
///
/// let compiled = compile(&mig, CompilerOptions::new());
/// assert_eq!(compiled.stats.mig_nodes, 1);
///
/// let mut machine = Machine::new();
/// let out = machine.run(&compiled.program, &[true, true, false]).unwrap();
/// assert_eq!(out, vec![false]); // ⟨1 0 0⟩ = 0
/// ```
pub fn compile(mig: &Mig, options: CompilerOptions) -> Rm3Program {
    compile_full(mig, options).compiled
}

/// Everything one compilation produced: the program, the (optimized) IR it
/// was emitted from, and the pass pipeline's accounting.
#[derive(Debug, Clone)]
pub struct Compilation {
    /// The executable program with its cost metrics.
    pub compiled: Rm3Program,
    /// The IR after optimization — what `plimc --emit ir` prints.
    pub ir: IrProgram,
    /// Per-pass `#I` accounting of the pipeline run.
    pub report: ir::passes::PassReport,
}

/// Like [`compile`], but keeps the post-optimization IR and the per-pass
/// report alongside the program.
pub fn compile_full(mig: &Mig, options: CompilerOptions) -> Compilation {
    let mut ir = ir::lower(mig, options);
    let report = PassManager::for_level(options.opt).run(&mut ir, mig, options.target.backend());
    let compiled = ir::emit(&ir);
    Compilation {
        compiled,
        ir,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Signal;
    use plim::Machine;

    fn exhaustive_check(mig: &Mig, compiled: &Rm3Program) {
        let n = mig.num_inputs();
        assert!(n <= 12, "test helper is exhaustive");
        let mut machine = Machine::new();
        for pattern in 0..(1usize << n) {
            let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            let expected = mig::simulate::evaluate(mig, &inputs);
            let got = machine.run(&compiled.program, &inputs).unwrap();
            assert_eq!(got, expected, "mismatch on pattern {pattern:#b}");
        }
    }

    fn fig3b_mig() -> Mig {
        // The six-node MIG of Fig. 3(b), reconstructed from the listings.
        let mut mig = Mig::new();
        let i1 = mig.add_input("i1");
        let i2 = mig.add_input("i2");
        let i3 = mig.add_input("i3");
        let n1 = mig.maj(Signal::FALSE, i1, i2);
        let n2 = mig.maj(Signal::TRUE, !i2, i3);
        let n3 = mig.maj(i1, i2, i3);
        let n4 = mig.maj(Signal::TRUE, n1, i3);
        let n5 = mig.maj(n1, !n2, n3);
        let n6 = mig.maj(n4, !n5, n1);
        mig.add_output("f", n6);
        mig
    }

    #[test]
    fn naive_and_smart_compile_fig3b_correctly() {
        let mig = fig3b_mig();
        let naive = compile(&mig, CompilerOptions::naive());
        let smart = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &naive);
        exhaustive_check(&mig, &smart);
        assert_eq!(naive.stats.mig_nodes, 6);
        assert_eq!(smart.stats.mig_nodes, 6);
        assert!(
            smart.stats.instructions <= naive.stats.instructions,
            "smart ({}) must not exceed naive ({})",
            smart.stats.instructions,
            naive.stats.instructions
        );
        assert!(smart.stats.rams <= naive.stats.rams);
    }

    #[test]
    fn single_and_gate() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn complemented_output_is_materialized() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", !f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn passthrough_outputs() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        mig.add_output("x", a);
        mig.add_output("nx", !a);
        mig.add_output("zero", Signal::FALSE);
        mig.add_output("one", Signal::TRUE);
        let f = mig.or(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn shared_output_plain_and_complemented() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.xor(a, b);
        mig.add_output("f", f);
        mig.add_output("g", !f);
        let compiled = compile(&mig, CompilerOptions::new());
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn dangling_nodes_are_skipped() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        let _dead = mig.or(a, b);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        assert_eq!(compiled.stats.mig_nodes, 1);
        exhaustive_check(&mig, &compiled);
    }

    #[test]
    fn multi_complement_nodes_compile_correctly() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let n1 = mig.maj(!a, !b, c);
        let n2 = mig.maj(!a, !b, !c);
        let n3 = mig.maj(!n1, !n2, a);
        mig.add_output("f", n3);
        for opts in [CompilerOptions::new(), CompilerOptions::naive()] {
            let compiled = compile(&mig, opts);
            exhaustive_check(&mig, &compiled);
        }
    }

    #[test]
    fn deep_xor_chain_all_option_combinations() {
        use crate::options::{AllocatorStrategy, OperandSelection, ScheduleOrder};
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("parity", acc);
        for schedule in ScheduleOrder::ALL {
            for operands in [OperandSelection::ChildOrder, OperandSelection::Smart] {
                for allocator in AllocatorStrategy::ALL {
                    let opts = CompilerOptions::new()
                        .schedule(schedule)
                        .operands(operands)
                        .allocator(allocator);
                    let compiled = compile(&mig, opts);
                    exhaustive_check(&mig, &compiled);
                }
            }
        }
    }

    #[test]
    fn lookahead_schedule_is_correct_and_frugal_on_fig3b() {
        let mig = fig3b_mig();
        let lookahead = compile(
            &mig,
            CompilerOptions::new().schedule(crate::options::ScheduleOrder::Lookahead),
        );
        exhaustive_check(&mig, &lookahead);
        let priority = compile(&mig, CompilerOptions::new());
        assert_eq!(lookahead.stats.mig_nodes, priority.stats.mig_nodes);
        // The lookahead schedule exists to shrink the working set; on this
        // small example it must at least not regress the paper's result.
        assert!(lookahead.stats.rams <= priority.stats.rams + 1);
    }

    #[test]
    fn allocator_counters_match_static_endurance() {
        use crate::options::AllocatorStrategy;
        let mig = fig3b_mig();
        for allocator in AllocatorStrategy::ALL {
            let compiled = compile(&mig, CompilerOptions::new().allocator(allocator));
            assert_eq!(
                compiled.stats.max_cell_writes,
                compiled.static_endurance().max_writes,
                "{allocator:?}: allocator write counters diverge from the program"
            );
        }
    }

    #[test]
    fn fresh_allocator_upper_bounds_fifo() {
        use crate::options::AllocatorStrategy;
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.maj(acc, x, xs[0]);
        }
        mig.add_output("f", acc);
        let fifo = compile(&mig, CompilerOptions::new());
        let fresh = compile(
            &mig,
            CompilerOptions::new().allocator(AllocatorStrategy::Fresh),
        );
        assert!(fifo.stats.rams <= fresh.stats.rams);
        assert_eq!(fifo.stats.instructions, fresh.stats.instructions);
    }

    #[test]
    fn stats_are_consistent_with_program() {
        let mig = fig3b_mig();
        let compiled = compile(&mig, CompilerOptions::new());
        assert_eq!(compiled.stats.instructions, compiled.program.len());
        assert_eq!(compiled.stats.rams, compiled.program.num_rams());
        assert!(compiled.stats.peak_live as u32 <= compiled.stats.rams);
    }
}
