//! End-to-end verification of compiled programs.
//!
//! A compiled program is correct when executing it on the PLiM machine
//! reproduces the MIG's Boolean function for every primary output. The
//! checker is exhaustive for small interfaces and falls back to seeded
//! random patterns for large ones, mirroring [`mig::equiv`].

use std::fmt;

use mig::simulate::XorShift64;
use mig::Mig;
use plim::{Machine, MachineError, Operand};

use crate::program::CompiledProgram;

/// Number of primary inputs up to which [`verify`] is exhaustive.
pub const EXHAUSTIVE_LIMIT: usize = 12;

/// Error raised when a compiled program does not match its source MIG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The machine rejected the program.
    Machine(MachineError),
    /// Outputs differ on some input pattern.
    Mismatch {
        /// Name of the first differing output.
        output: String,
        /// The offending input assignment.
        inputs: Vec<bool>,
    },
    /// An instruction reads a work cell that no earlier instruction wrote
    /// and whose result depends on that cell (initialization-discipline
    /// violation, detected statically).
    UninitializedRead {
        /// 0-based index of the offending instruction.
        pc: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Machine(e) => write!(f, "machine error: {e}"),
            VerifyError::Mismatch { output, inputs } => {
                let pattern: String = inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
                write!(f, "output `{output}` differs on input pattern {pattern}")
            }
            VerifyError::UninitializedRead { pc } => {
                write!(f, "instruction {} reads an uninitialized cell", pc + 1)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<MachineError> for VerifyError {
    fn from(e: MachineError) -> Self {
        VerifyError::Machine(e)
    }
}

/// Verifies that the compiled program computes the MIG's function.
///
/// Exhaustive for up to [`EXHAUSTIVE_LIMIT`] inputs; otherwise `rounds × 64`
/// random patterns seeded by `seed` are checked. The machine is reused
/// across patterns, which also validates the compiler's write-before-read
/// initialization discipline.
///
/// # Errors
///
/// Returns [`VerifyError::Mismatch`] with a counterexample on failure, or
/// [`VerifyError::Machine`] if the program is malformed.
pub fn verify(
    mig: &Mig,
    compiled: &CompiledProgram,
    rounds: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    check_init_discipline(compiled)?;
    let n = mig.num_inputs();
    let mut machine = Machine::new();

    let check_pattern = |inputs: &[bool], machine: &mut Machine| -> Result<(), VerifyError> {
        let expected = mig::simulate::evaluate(mig, inputs);
        let got = machine.run(&compiled.program, inputs)?;
        for (index, (e, g)) in expected.iter().zip(&got).enumerate() {
            if e != g {
                return Err(VerifyError::Mismatch {
                    output: mig.outputs()[index].0.clone(),
                    inputs: inputs.to_vec(),
                });
            }
        }
        Ok(())
    };

    if n <= EXHAUSTIVE_LIMIT {
        for pattern in 0..(1usize << n) {
            let inputs: Vec<bool> = (0..n).map(|i| pattern >> i & 1 != 0).collect();
            check_pattern(&inputs, &mut machine)?;
        }
    } else {
        let mut rng = XorShift64::new(seed);
        for _ in 0..rounds.max(1) * 64 {
            let inputs: Vec<bool> = (0..n).map(|_| rng.next_bool()).collect();
            check_pattern(&inputs, &mut machine)?;
        }
    }
    Ok(())
}

/// Statically checks that no instruction's result depends on a work cell
/// that has not been written yet.
///
/// An instruction masks its destination (result independent of the old
/// value) exactly when its constant operands satisfy `A = ¬B̄`, i.e. the
/// pairs `(0, 1)` and `(1, 0)` — the reset/set idioms and constant loads.
///
/// # Errors
///
/// Returns [`VerifyError::UninitializedRead`] at the first offending
/// instruction.
pub fn check_init_discipline(compiled: &CompiledProgram) -> Result<(), VerifyError> {
    let mut written = vec![false; compiled.program.num_rams() as usize];
    for (pc, instruction) in compiled.program.instructions().iter().enumerate() {
        let masking = matches!(
            (instruction.a, instruction.b),
            (Operand::Const(a), Operand::Const(b)) if a != b
        );
        // Reading operands from unwritten cells is always a bug.
        for operand in [instruction.a, instruction.b] {
            if let Operand::Ram(addr) = operand {
                if !written[addr.index()] {
                    return Err(VerifyError::UninitializedRead { pc });
                }
            }
        }
        if !masking && !written[instruction.z.index()] {
            return Err(VerifyError::UninitializedRead { pc });
        }
        written[instruction.z.index()] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::options::CompilerOptions;
    use crate::program::CompileStats;
    use plim::{Instruction, Program, RamAddr};

    #[test]
    fn verify_accepts_correct_compilation() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let f = mig.maj(a, !b, c);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        verify(&mig, &compiled, 4, 1).unwrap();
    }

    #[test]
    fn verify_detects_wrong_program() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let mut compiled = compile(&mig, CompilerOptions::new());
        // Sabotage: flip the output location to a constant.
        let mut program = Program::new(2);
        for &i in compiled.program.instructions() {
            program.push(i);
        }
        program.add_output("f", plim::OutputLoc::Const(true));
        compiled.program = program;
        let err = verify(&mig, &compiled, 4, 1).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }));
    }

    #[test]
    fn init_discipline_catches_unwritten_destination() {
        let mut program = Program::new(0);
        // Non-masking instruction on an unwritten cell.
        program.push(Instruction::new(
            Operand::Const(true),
            Operand::Const(true),
            RamAddr(0),
        ));
        let compiled = CompiledProgram {
            program,
            stats: CompileStats::default(),
        };
        assert_eq!(
            check_init_discipline(&compiled),
            Err(VerifyError::UninitializedRead { pc: 0 })
        );
    }

    #[test]
    fn init_discipline_catches_unwritten_operand() {
        let mut program = Program::new(0);
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::new(
            Operand::Ram(RamAddr(1)),
            Operand::Const(true),
            RamAddr(0),
        ));
        let compiled = CompiledProgram {
            program,
            stats: CompileStats::default(),
        };
        assert_eq!(
            check_init_discipline(&compiled),
            Err(VerifyError::UninitializedRead { pc: 1 })
        );
    }

    #[test]
    fn init_discipline_accepts_masking_idioms() {
        let mut program = Program::new(0);
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::set(RamAddr(1)));
        program.push(Instruction::new(
            Operand::Ram(RamAddr(0)),
            Operand::Ram(RamAddr(1)),
            RamAddr(0),
        ));
        let compiled = CompiledProgram {
            program,
            stats: CompileStats::default(),
        };
        check_init_discipline(&compiled).unwrap();
    }

    #[test]
    fn compiled_programs_satisfy_init_discipline() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 5);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("f", !acc);
        for opts in [CompilerOptions::new(), CompilerOptions::naive()] {
            let compiled = compile(&mig, opts);
            check_init_discipline(&compiled).unwrap();
        }
    }
}
