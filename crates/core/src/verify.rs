//! End-to-end verification of compiled programs.
//!
//! A compiled program is correct when executing it on the PLiM machine
//! reproduces the MIG's Boolean function for every primary output. The
//! checker is exhaustive for small interfaces and falls back to seeded
//! random patterns for large ones, mirroring [`mig::equiv`].
//!
//! Both modes execute on the bit-parallel [`WideMachine`] — 256 input
//! patterns per instruction step — which pushes the practical exhaustive
//! bound to [`EXHAUSTIVE_WIDE_LIMIT`] inputs (2²⁰ patterns in 4096 wide
//! runs) via [`verify_exhaustive`].

use std::fmt;

use mig::simulate::{variable_word, XorShift64};
use mig::Mig;
use plim::wide::{LaneWord, WideMachine, W256};
use plim::{MachineError, Operand, RamAddr};

use crate::program::Rm3Program;

/// Number of primary inputs up to which [`verify`] is exhaustive.
pub const EXHAUSTIVE_LIMIT: usize = 12;

/// Number of primary inputs up to which [`verify_exhaustive`] accepts a
/// circuit: 2²⁰ patterns execute as 4096 runs of the 256-wide machine,
/// comfortably fast even for the larger reduced-suite circuits.
pub const EXHAUSTIVE_WIDE_LIMIT: usize = 20;

/// Error raised when a compiled program does not match its source MIG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The machine rejected the program.
    Machine(MachineError),
    /// Outputs differ on some input pattern.
    Mismatch {
        /// Name of the first differing output.
        output: String,
        /// The offending input assignment.
        inputs: Vec<bool>,
    },
    /// An instruction reads a work cell that no earlier instruction wrote
    /// and whose result depends on that cell (initialization-discipline
    /// violation, detected statically).
    UninitializedRead {
        /// 0-based index of the offending instruction.
        pc: usize,
    },
    /// The circuit has too many inputs for exhaustive enumeration.
    TooManyInputs {
        /// The circuit's primary-input count.
        inputs: usize,
    },
    /// A backend artifact's executor rejected the run.
    Backend(String),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Machine(e) => write!(f, "machine error: {e}"),
            VerifyError::Mismatch { output, inputs } => {
                let pattern: String = inputs.iter().map(|&b| if b { '1' } else { '0' }).collect();
                write!(f, "output `{output}` differs on input pattern {pattern}")
            }
            VerifyError::UninitializedRead { pc } => {
                write!(f, "instruction {} reads an uninitialized cell", pc + 1)
            }
            VerifyError::TooManyInputs { inputs } => write!(
                f,
                "circuit has {inputs} inputs; exhaustive verification supports at most {EXHAUSTIVE_WIDE_LIMIT}"
            ),
            VerifyError::Backend(message) => write!(f, "backend executor error: {message}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<MachineError> for VerifyError {
    fn from(e: MachineError) -> Self {
        VerifyError::Machine(e)
    }
}

/// Verifies that the compiled program computes the MIG's function.
///
/// Exhaustive for up to [`EXHAUSTIVE_LIMIT`] inputs; otherwise `rounds × 64`
/// random patterns seeded by `seed` are checked. Both modes run on the
/// bit-parallel [`WideMachine`]; the work array is poisoned before the
/// first run and then reused across runs, which also exercises the
/// compiler's write-before-read initialization discipline dynamically (on
/// top of the static [`check_init_discipline`] pass).
///
/// # Errors
///
/// Returns [`VerifyError::Mismatch`] with a counterexample on failure, or
/// [`VerifyError::Machine`] if the program is malformed.
pub fn verify(
    mig: &Mig,
    compiled: &Rm3Program,
    rounds: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    check_init_discipline(compiled)?;
    let n = mig.num_inputs();
    if n <= EXHAUSTIVE_LIMIT {
        return exhaustive_wide::<W256>(mig, compiled);
    }
    let mut machine = poisoned_machine::<u64>(compiled);
    let mut rng = XorShift64::new(seed);
    for _ in 0..rounds.max(1) {
        let input_words: Vec<u64> = (0..n).map(|_| rng.next_word()).collect();
        let got = machine.run(&compiled.program, &input_words)?;
        let expected = mig::simulate::simulate(mig, &input_words);
        for (index, (&e, &g)) in expected.iter().zip(&got).enumerate() {
            if e != g {
                let lane = (e ^ g).trailing_zeros() as usize;
                return Err(VerifyError::Mismatch {
                    output: mig.outputs()[index].0.clone(),
                    inputs: input_words.iter().map(|w| w.lane(lane)).collect(),
                });
            }
        }
    }
    Ok(())
}

/// Proves the compiled program equal to its source MIG over the **full**
/// input space, using the 256-wide machine (2ⁿ patterns in `2ⁿ⁻⁸` runs).
///
/// # Errors
///
/// Returns [`VerifyError::TooManyInputs`] for circuits beyond
/// [`EXHAUSTIVE_WIDE_LIMIT`] inputs, [`VerifyError::Mismatch`] with the
/// first counterexample (in pattern order) on failure, or
/// [`VerifyError::Machine`] / [`VerifyError::UninitializedRead`] if the
/// program is malformed.
pub fn verify_exhaustive(mig: &Mig, compiled: &Rm3Program) -> Result<(), VerifyError> {
    let n = mig.num_inputs();
    if n > EXHAUSTIVE_WIDE_LIMIT {
        return Err(VerifyError::TooManyInputs { inputs: n });
    }
    check_init_discipline(compiled)?;
    exhaustive_wide::<W256>(mig, compiled)
}

/// Proves a backend [`Artifact`](crate::backend::Artifact) equal to its
/// source MIG over the **full** input space, through the artifact's own
/// bit-parallel executor (64 patterns per run).
///
/// This is the target-independent sibling of [`verify_exhaustive`]: any
/// backend that can execute its own instruction set 64 lanes at a time can
/// be proven equivalent to the source graph with it, regardless of what the
/// instructions mean physically.
///
/// # Errors
///
/// Returns [`VerifyError::TooManyInputs`] for circuits beyond
/// [`EXHAUSTIVE_WIDE_LIMIT`] inputs, [`VerifyError::Mismatch`] with the
/// first counterexample (in pattern order) on failure, or
/// [`VerifyError::Backend`] if the artifact's executor rejects the run.
pub fn verify_exhaustive_artifact(
    mig: &Mig,
    artifact: &dyn crate::backend::Artifact,
) -> Result<(), VerifyError> {
    let n = mig.num_inputs();
    if n > EXHAUSTIVE_WIDE_LIMIT {
        return Err(VerifyError::TooManyInputs { inputs: n });
    }
    let blocks = if n <= 6 { 1 } else { 1usize << (n - 6) };
    let mut input_words = vec![0u64; n];
    for block in 0..blocks {
        for (var, word) in input_words.iter_mut().enumerate() {
            *word = variable_word(var, block);
        }
        let got = artifact
            .run_wide(&input_words)
            .map_err(VerifyError::Backend)?;
        let expected = mig::simulate::simulate(mig, &input_words);
        for (index, (&e, &g)) in expected.iter().zip(&got).enumerate() {
            if e != g {
                let pattern = (block << 6) | (e ^ g).trailing_zeros() as usize;
                return Err(VerifyError::Mismatch {
                    output: mig.outputs()[index].0.clone(),
                    inputs: (0..n).map(|i| pattern >> i & 1 != 0).collect(),
                });
            }
        }
    }
    Ok(())
}

/// Verifies a backend artifact against its source MIG the way [`verify`]
/// checks the RM3 program: exhaustive through the artifact's executor up
/// to [`EXHAUSTIVE_LIMIT`] inputs, otherwise `rounds × 64` random patterns
/// seeded by `seed`. This is what target-aware consumers (the pipeline's
/// `--verify`, the scenario harness) dispatch to for non-RM3 targets.
///
/// # Errors
///
/// Returns [`VerifyError::Mismatch`] with a counterexample on failure, or
/// [`VerifyError::Backend`] if the artifact's executor rejects the run.
pub fn verify_artifact(
    mig: &Mig,
    artifact: &dyn crate::backend::Artifact,
    rounds: usize,
    seed: u64,
) -> Result<(), VerifyError> {
    let n = mig.num_inputs();
    if n <= EXHAUSTIVE_LIMIT {
        return verify_exhaustive_artifact(mig, artifact);
    }
    let mut rng = XorShift64::new(seed);
    for _ in 0..rounds.max(1) {
        let input_words: Vec<u64> = (0..n).map(|_| rng.next_word()).collect();
        let got = artifact
            .run_wide(&input_words)
            .map_err(VerifyError::Backend)?;
        let expected = mig::simulate::simulate(mig, &input_words);
        for (index, (&e, &g)) in expected.iter().zip(&got).enumerate() {
            if e != g {
                let lane = (e ^ g).trailing_zeros() as usize;
                return Err(VerifyError::Mismatch {
                    output: mig.outputs()[index].0.clone(),
                    inputs: input_words.iter().map(|w| w.lane(lane)).collect(),
                });
            }
        }
    }
    Ok(())
}

/// A wide machine whose work array is pre-filled with a nonzero pattern,
/// so a read of a never-written cell cannot masquerade as a correct zero.
fn poisoned_machine<W: LaneWord>(compiled: &Rm3Program) -> WideMachine<W> {
    let mut machine = WideMachine::new();
    machine.ensure_cells(compiled.program.num_rams() as usize);
    for addr in 0..compiled.program.num_rams() {
        machine.write_cell(
            RamAddr(addr),
            W::from_blocks(|_| 0xAAAA_AAAA_AAAA_AAAA ^ u64::from(addr)),
        );
    }
    machine
}

/// Checks every one of the 2ⁿ input patterns, [`LaneWord::LANES`] at a
/// time, comparing each 64-pattern block against MIG word simulation.
fn exhaustive_wide<W: LaneWord>(mig: &Mig, compiled: &Rm3Program) -> Result<(), VerifyError> {
    let n = mig.num_inputs();
    let u64_blocks = if n <= 6 { 1 } else { 1usize << (n - 6) };
    let mut machine = poisoned_machine::<W>(compiled);
    let mut input_words = vec![0u64; n];
    for group in 0..u64_blocks.div_ceil(W::WORDS) {
        let wide_inputs: Vec<W> = (0..n)
            .map(|var| W::from_blocks(|w| variable_word(var, group * W::WORDS + w)))
            .collect();
        let got = machine.run(&compiled.program, &wide_inputs)?;
        for w in 0..W::WORDS.min(u64_blocks - group * W::WORDS) {
            let block = group * W::WORDS + w;
            for (var, word) in input_words.iter_mut().enumerate() {
                *word = variable_word(var, block);
            }
            let expected = mig::simulate::simulate(mig, &input_words);
            for (index, &e) in expected.iter().enumerate() {
                let g = got[index].block(w);
                if e != g {
                    // Global pattern number = 64·block + lane; bit `i` of
                    // the pattern is the value of input `i` (the row order
                    // of `mig::simulate::TruthTable`).
                    let pattern = (block << 6) | (e ^ g).trailing_zeros() as usize;
                    return Err(VerifyError::Mismatch {
                        output: mig.outputs()[index].0.clone(),
                        inputs: (0..n).map(|i| pattern >> i & 1 != 0).collect(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Statically checks that no instruction's result depends on a work cell
/// that has not been written yet.
///
/// An instruction masks its destination (result independent of the old
/// value) exactly when its constant operands satisfy `A = ¬B̄`, i.e. the
/// pairs `(0, 1)` and `(1, 0)` — the reset/set idioms and constant loads.
///
/// # Errors
///
/// Returns [`VerifyError::UninitializedRead`] at the first offending
/// instruction.
pub fn check_init_discipline(compiled: &Rm3Program) -> Result<(), VerifyError> {
    let mut written = vec![false; compiled.program.num_rams() as usize];
    for (pc, instruction) in compiled.program.instructions().iter().enumerate() {
        let masking = matches!(
            (instruction.a, instruction.b),
            (Operand::Const(a), Operand::Const(b)) if a != b
        );
        // Reading operands from unwritten cells is always a bug.
        for operand in [instruction.a, instruction.b] {
            if let Operand::Ram(addr) = operand {
                if !written[addr.index()] {
                    return Err(VerifyError::UninitializedRead { pc });
                }
            }
        }
        if !masking && !written[instruction.z.index()] {
            return Err(VerifyError::UninitializedRead { pc });
        }
        written[instruction.z.index()] = true;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::options::CompilerOptions;
    use crate::program::Rm3Stats;
    use plim::{Instruction, Program, RamAddr};

    #[test]
    fn verify_accepts_correct_compilation() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let f = mig.maj(a, !b, c);
        mig.add_output("f", f);
        let compiled = compile(&mig, CompilerOptions::new());
        verify(&mig, &compiled, 4, 1).unwrap();
    }

    #[test]
    fn verify_detects_wrong_program() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let mut compiled = compile(&mig, CompilerOptions::new());
        // Sabotage: flip the output location to a constant.
        let mut program = Program::new(2);
        for &i in compiled.program.instructions() {
            program.push(i);
        }
        program.add_output("f", plim::OutputLoc::Const(true));
        compiled.program = program;
        let err = verify(&mig, &compiled, 4, 1).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }));
    }

    #[test]
    fn verify_exhaustive_accepts_correct_compilation() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 8);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("parity", acc);
        let compiled = compile(&mig, CompilerOptions::new());
        verify_exhaustive(&mig, &compiled).unwrap();
    }

    #[test]
    fn verify_exhaustive_rejects_oversized_interface() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", EXHAUSTIVE_WIDE_LIMIT + 1);
        mig.add_output("f", xs[0]);
        let compiled = compile(&mig, CompilerOptions::new());
        assert_eq!(
            verify_exhaustive(&mig, &compiled),
            Err(VerifyError::TooManyInputs {
                inputs: EXHAUSTIVE_WIDE_LIMIT + 1
            })
        );
    }

    #[test]
    fn verify_exhaustive_reports_first_pattern_counterexample() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let mut compiled = compile(&mig, CompilerOptions::new());
        let mut program = Program::new(2);
        for &i in compiled.program.instructions() {
            program.push(i);
        }
        // Doctor the program: claim the output is constant 1; the first
        // differing pattern is 00 (AND = 0 there).
        program.add_output("f", plim::OutputLoc::Const(true));
        compiled.program = program;
        assert_eq!(
            verify_exhaustive(&mig, &compiled),
            Err(VerifyError::Mismatch {
                output: "f".into(),
                inputs: vec![false, false],
            })
        );
    }

    #[test]
    fn wide_random_path_detects_wrong_program_on_large_interface() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", EXHAUSTIVE_LIMIT + 2);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("f", acc);
        let mut compiled = compile(&mig, CompilerOptions::new());
        verify(&mig, &compiled, 4, 1).unwrap();
        let mut program = Program::new(EXHAUSTIVE_LIMIT + 2);
        for &i in compiled.program.instructions() {
            program.push(i);
        }
        program.add_output("f", plim::OutputLoc::Const(false));
        compiled.program = program;
        let err = verify(&mig, &compiled, 4, 1).unwrap_err();
        match err {
            VerifyError::Mismatch { inputs, .. } => {
                assert_eq!(inputs.len(), EXHAUSTIVE_LIMIT + 2);
                // Parity of the counterexample must actually be 1 (the
                // doctored constant says 0).
                assert!(inputs.iter().filter(|&&b| b).count() % 2 == 1);
            }
            other => panic!("expected mismatch, got {other:?}"),
        }
    }

    #[test]
    fn verify_exhaustive_artifact_accepts_the_rm3_backend() {
        use crate::backend::Target;
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 7);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.maj(acc, !x, xs[0]);
        }
        mig.add_output("f", acc);
        mig.add_output("nf", !acc);
        let compilation = crate::compile::compile_full(&mig, CompilerOptions::new());
        let artifact = Target::RM3.backend().emit(&compilation.ir);
        verify_exhaustive_artifact(&mig, artifact.as_ref()).unwrap();
    }

    #[test]
    fn verify_exhaustive_artifact_rejects_oversized_interface() {
        use crate::backend::Target;
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", EXHAUSTIVE_WIDE_LIMIT + 1);
        mig.add_output("f", xs[0]);
        let compilation = crate::compile::compile_full(&mig, CompilerOptions::new());
        let artifact = Target::RM3.backend().emit(&compilation.ir);
        assert_eq!(
            verify_exhaustive_artifact(&mig, artifact.as_ref()),
            Err(VerifyError::TooManyInputs {
                inputs: EXHAUSTIVE_WIDE_LIMIT + 1
            })
        );
    }

    #[test]
    fn init_discipline_catches_unwritten_destination() {
        let mut program = Program::new(0);
        // Non-masking instruction on an unwritten cell.
        program.push(Instruction::new(
            Operand::Const(true),
            Operand::Const(true),
            RamAddr(0),
        ));
        let compiled = Rm3Program {
            program,
            stats: Rm3Stats::default(),
        };
        assert_eq!(
            check_init_discipline(&compiled),
            Err(VerifyError::UninitializedRead { pc: 0 })
        );
    }

    #[test]
    fn init_discipline_catches_unwritten_operand() {
        let mut program = Program::new(0);
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::new(
            Operand::Ram(RamAddr(1)),
            Operand::Const(true),
            RamAddr(0),
        ));
        let compiled = Rm3Program {
            program,
            stats: Rm3Stats::default(),
        };
        assert_eq!(
            check_init_discipline(&compiled),
            Err(VerifyError::UninitializedRead { pc: 1 })
        );
    }

    #[test]
    fn init_discipline_accepts_masking_idioms() {
        let mut program = Program::new(0);
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::set(RamAddr(1)));
        program.push(Instruction::new(
            Operand::Ram(RamAddr(0)),
            Operand::Ram(RamAddr(1)),
            RamAddr(0),
        ));
        let compiled = Rm3Program {
            program,
            stats: Rm3Stats::default(),
        };
        check_init_discipline(&compiled).unwrap();
    }

    #[test]
    fn compiled_programs_satisfy_init_discipline() {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 5);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("f", !acc);
        for opts in [CompilerOptions::new(), CompilerOptions::naive()] {
            let compiled = compile(&mig, opts);
            check_init_discipline(&compiled).unwrap();
        }
    }
}
