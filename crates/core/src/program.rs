//! Compilation results.

use std::fmt;

use plim::endurance::EnduranceStats;
use plim::{Operand, Program};

/// Cost metrics of a compiled PLiM program (the paper's Table 1 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rm3Stats {
    /// Number of RM3 instructions (`#I`).
    pub instructions: usize,
    /// Number of distinct work RRAMs allocated (`#R`).
    pub rams: u32,
    /// Number of MIG majority nodes translated (`#N`).
    pub mig_nodes: usize,
    /// Peak number of simultaneously live work RRAMs during translation.
    pub peak_live: usize,
    /// Highest per-cell write count of one execution (the wear of the
    /// endurance-limiting cell), recorded by the allocator's write counters
    /// and always equal to [`Rm3Program::static_endurance`]'s
    /// `max_writes`.
    pub max_cell_writes: u64,
}

impl fmt::Display for Rm3Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#N={} #I={} #R={} peak={} maxw={}",
            self.mig_nodes, self.instructions, self.rams, self.peak_live, self.max_cell_writes
        )
    }
}

/// A compiled PLiM program together with its cost metrics.
#[derive(Debug, Clone)]
pub struct Rm3Program {
    /// The executable RM3 program (including output locations).
    pub program: Program,
    /// Cost metrics.
    pub stats: Rm3Stats,
}

impl Rm3Program {
    /// Per-cell write counts of a *single* execution, derived statically
    /// from the instruction sequence. Useful for endurance analysis without
    /// running the machine.
    pub fn static_write_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.program.num_rams() as usize];
        for instruction in self.program.instructions() {
            counts[instruction.z.index()] += 1;
        }
        counts
    }

    /// Endurance statistics of one execution, derived statically.
    pub fn static_endurance(&self) -> EnduranceStats {
        EnduranceStats::from_counts(&self.static_write_counts())
    }

    /// Number of instructions whose operands are both constants (array
    /// initialization traffic); the rest perform "real" logic.
    pub fn init_instruction_count(&self) -> usize {
        self.program
            .instructions()
            .iter()
            .filter(|i| matches!((i.a, i.b), (Operand::Const(_), Operand::Const(_))))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim::{Instruction, RamAddr};

    #[test]
    fn static_write_counts_count_destinations() {
        let mut program = Program::new(0);
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::reset(RamAddr(0)));
        program.push(Instruction::set(RamAddr(2)));
        let compiled = Rm3Program {
            program,
            stats: Rm3Stats::default(),
        };
        assert_eq!(compiled.static_write_counts(), vec![2, 0, 1]);
        assert_eq!(compiled.static_endurance().max_writes, 2);
        assert_eq!(compiled.init_instruction_count(), 3);
    }

    #[test]
    fn stats_display() {
        let stats = Rm3Stats {
            instructions: 10,
            rams: 3,
            mig_nodes: 4,
            peak_live: 2,
            max_cell_writes: 7,
        };
        let text = stats.to_string();
        assert!(text.contains("#I=10"));
        assert!(text.contains("#R=3"));
        assert!(text.contains("maxw=7"));
    }
}
