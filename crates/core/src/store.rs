//! An on-disk, content-addressed artifact store (the cache's warm layer).
//!
//! The in-memory [`LruCache`](crate::cache::LruCache) dies with its
//! process; this module persists compiled artifacts under a directory so a
//! restarted daemon answers repeat requests warm. The design follows the
//! cache-not-database rule: every file is self-verifying and disposable.
//!
//! * **Addressing.** One file per [`CacheKey`] (graph digest + options
//!   fingerprint) at `root/<first two hex chars>/<48-hex-key>.artifact` —
//!   the two-char fan-out keeps directories small at millions of entries.
//! * **Commit.** Writes go to a temp file in the same directory and are
//!   `rename`d into place, so readers only ever observe absent or complete
//!   files — never a torn write.
//! * **Verification.** Each file carries an FNV-1a checksum over its
//!   entire payload (header included) plus the key it was written for.
//!   Truncation, bit flips, and files copied to the wrong key all fail
//!   closed: [`ArtifactStore::load`] reports [`StoreLookup::Corrupt`] and
//!   the caller recompiles. Loads never panic on hostile bytes.
//! * **Eviction.** None, by design. The store is content-addressed and
//!   every entry is re-creatable, so deleting any file (or the whole tree)
//!   at any time — by hand, by `tmpwatch`, by a cron job — is safe and is
//!   the supported way to bound its size.
//!
//! Counter snapshots ([`StoreCounters`]) feed the daemon's `stats`
//! response, which is how tests and CI assert that a restart actually
//! served from disk.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::cache::{fnv128, CacheKey};

/// Magic first line of every artifact file; bump the version when the
/// layout changes so older daemons treat newer files as corrupt misses
/// instead of misparsing them.
const MAGIC: &str = "plim-store v1";

/// One compiled artifact as persisted and served: the compile response's
/// cacheable half (everything except the per-request `cached` flag).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredArtifact {
    /// `#I` of the compiled program.
    pub instructions: u64,
    /// `#R` of the compiled program.
    pub rams: u64,
    /// The largest per-cell write count of one execution.
    pub max_cell_writes: u64,
    /// The emitted artifact text, exactly as `plimc` prints it.
    pub output: String,
}

impl StoredArtifact {
    /// In-memory cache weight: the artifact body plus bookkeeping.
    pub fn weight(&self) -> usize {
        self.output.len() + 64
    }
}

/// The outcome of an [`ArtifactStore::load`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreLookup {
    /// The artifact was on disk and verified.
    Hit(StoredArtifact),
    /// No artifact for this key.
    Miss,
    /// A file exists but failed verification; the payload is a one-line
    /// diagnostic for the daemon's log. Treat as a miss and recompile.
    Corrupt(String),
}

/// A point-in-time snapshot of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Loads that returned a verified artifact.
    pub hits: u64,
    /// Loads with no file for the key.
    pub misses: u64,
    /// Loads that found a file but rejected it.
    pub corrupt: u64,
    /// Artifacts committed to disk.
    pub writes: u64,
}

/// A directory of self-verifying compiled artifacts. See the
/// [module docs](self) for layout and guarantees.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    tmp_serial: AtomicU64,
}

impl ArtifactStore {
    /// Opens (creating if needed) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<ArtifactStore, String> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| format!("creating store directory {}: {e}", root.display()))?;
        Ok(ArtifactStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            tmp_serial: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the hit/miss/corrupt/write counters.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, key: &CacheKey) -> PathBuf {
        let hex = key.hex();
        self.root.join(&hex[..2]).join(format!("{hex}.artifact"))
    }

    /// Loads and verifies the artifact stored for `key`, counting the
    /// outcome. Never panics on malformed files.
    pub fn load(&self, key: &CacheKey) -> StoreLookup {
        let path = self.path_for(key);
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == std::io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return StoreLookup::Miss;
            }
            Err(error) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return StoreLookup::Corrupt(format!("reading {}: {error}", path.display()));
            }
        };
        match decode(&bytes, &key.hex()) {
            Ok(artifact) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                StoreLookup::Hit(artifact)
            }
            Err(reason) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                StoreLookup::Corrupt(format!("{}: {reason}", path.display()))
            }
        }
    }

    /// Commits `artifact` for `key`: temp file, then atomic rename.
    ///
    /// # Errors
    ///
    /// Returns a one-line message on IO failure (the daemon logs it and
    /// keeps serving — a failed write-through only costs warmth).
    pub fn save(&self, key: &CacheKey, artifact: &StoredArtifact) -> Result<(), String> {
        let path = self.path_for(key);
        let dir = path.parent().expect("artifact paths always have a parent");
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
        // Unique per process *and* per call: concurrent shards committing
        // the same key must not scribble on each other's temp file.
        let tmp = dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_serial.fetch_add(1, Ordering::Relaxed)
        ));
        let bytes = encode(&key.hex(), artifact);
        let written = std::fs::write(&tmp, &bytes).and_then(|()| std::fs::rename(&tmp, &path));
        match written {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(error) => {
                let _ = std::fs::remove_file(&tmp);
                Err(format!("persisting {}: {error}", path.display()))
            }
        }
    }
}

/// File layout (all-ASCII header, then raw artifact bytes):
///
/// ```text
/// plim-store v1\n
/// checksum <32 hex: fnv128 of everything after this line>\n
/// key <48 hex>\n
/// instructions <u64>\n
/// rams <u64>\n
/// max_cell_writes <u64>\n
/// output <byte length>\n
/// <output bytes>
/// ```
fn encode(key_hex: &str, artifact: &StoredArtifact) -> Vec<u8> {
    let body = format!(
        "key {key_hex}\ninstructions {}\nrams {}\nmax_cell_writes {}\noutput {}\n",
        artifact.instructions,
        artifact.rams,
        artifact.max_cell_writes,
        artifact.output.len(),
    );
    let mut payload = body.into_bytes();
    payload.extend_from_slice(artifact.output.as_bytes());
    let mut file = format!("{MAGIC}\nchecksum {:032x}\n", fnv128(&payload)).into_bytes();
    file.extend_from_slice(&payload);
    file
}

fn decode(bytes: &[u8], expected_key: &str) -> Result<StoredArtifact, String> {
    let rest = bytes
        .strip_prefix(MAGIC.as_bytes())
        .and_then(|rest| rest.strip_prefix(b"\n"))
        .ok_or("not a plim-store v1 file")?;
    let rest = rest
        .strip_prefix(b"checksum ")
        .ok_or("missing checksum line")?;
    let (checksum_hex, payload) = split_line(rest).ok_or("truncated checksum line")?;
    // Byte-exact against the canonical lowercase encoding — a lenient
    // parse would accept `A` for `a` and so miss single-bit flips inside
    // the checksum line itself (the one line the checksum cannot cover).
    if checksum_hex != format!("{:032x}", fnv128(payload)).as_bytes() {
        return Err("checksum mismatch (truncated or bit-flipped)".to_string());
    }
    // The payload is now integrity-checked; what remains can still be an
    // artifact faithfully stored for a *different* key (file renamed or
    // copied), which the key line catches.
    let rest = payload.strip_prefix(b"key ").ok_or("missing key line")?;
    let (key, rest) = split_line(rest).ok_or("truncated key line")?;
    if key != expected_key.as_bytes() {
        return Err(format!(
            "artifact key mismatch: file was written for {}",
            String::from_utf8_lossy(key)
        ));
    }
    let (instructions, rest) = header_number(rest, "instructions")?;
    let (rams, rest) = header_number(rest, "rams")?;
    let (max_cell_writes, rest) = header_number(rest, "max_cell_writes")?;
    let (output_len, rest) = header_number(rest, "output")?;
    let output_len = usize::try_from(output_len).map_err(|_| "output length overflows")?;
    if rest.len() != output_len {
        return Err(format!(
            "output length mismatch: header says {output_len}, file carries {}",
            rest.len()
        ));
    }
    let output = std::str::from_utf8(rest)
        .map_err(|_| "output is not UTF-8")?
        .to_string();
    Ok(StoredArtifact {
        instructions,
        rams,
        max_cell_writes,
        output,
    })
}

/// Splits at the first newline; `None` when there is none.
fn split_line(bytes: &[u8]) -> Option<(&[u8], &[u8])> {
    let pos = bytes.iter().position(|&b| b == b'\n')?;
    Some((&bytes[..pos], &bytes[pos + 1..]))
}

fn header_number<'a>(bytes: &'a [u8], name: &str) -> Result<(u64, &'a [u8]), String> {
    let rest = bytes
        .strip_prefix(name.as_bytes())
        .and_then(|rest| rest.strip_prefix(b" "))
        .ok_or_else(|| format!("missing {name} line"))?;
    let (digits, rest) = split_line(rest).ok_or_else(|| format!("truncated {name} line"))?;
    let value = std::str::from_utf8(digits)
        .ok()
        .and_then(|digits| digits.parse().ok())
        .ok_or_else(|| format!("{name} is not a number"))?;
    Ok((value, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "plim-store-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample() -> (CacheKey, StoredArtifact) {
        (
            CacheKey::new(0xDAC2016_u128 << 64 | 0xBEEF, 0x1234_5678),
            StoredArtifact {
                instructions: 42,
                rams: 7,
                max_cell_writes: 9,
                output: "01: 0, 1, @X1\n02: 1, 0, @X2\n".to_string(),
            },
        )
    }

    #[test]
    fn round_trips_and_counts() {
        let store = ArtifactStore::open(scratch_dir("roundtrip")).unwrap();
        let (key, artifact) = sample();
        assert_eq!(store.load(&key), StoreLookup::Miss);
        store.save(&key, &artifact).unwrap();
        assert_eq!(store.load(&key), StoreLookup::Hit(artifact));
        let counters = store.counters();
        assert_eq!((counters.hits, counters.misses, counters.writes), (1, 1, 1));
        assert_eq!(counters.corrupt, 0);
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn a_second_store_on_the_same_directory_reads_the_first_ones_writes() {
        let dir = scratch_dir("restart");
        let (key, artifact) = sample();
        ArtifactStore::open(&dir)
            .unwrap()
            .save(&key, &artifact)
            .unwrap();
        // A "restarted daemon": fresh handle, warm directory.
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.load(&key), StoreLookup::Hit(artifact));
        assert_eq!(store.counters().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_at_every_length_is_rejected_not_served() {
        let store = ArtifactStore::open(scratch_dir("truncate")).unwrap();
        let (key, artifact) = sample();
        store.save(&key, &artifact).unwrap();
        let path = store.path_for(&key);
        let full = std::fs::read(&path).unwrap();
        for len in 0..full.len() {
            std::fs::write(&path, &full[..len]).unwrap();
            match store.load(&key) {
                StoreLookup::Corrupt(_) => {}
                other => panic!("truncation to {len} bytes produced {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn every_single_bit_flip_is_rejected_not_served() {
        let store = ArtifactStore::open(scratch_dir("bitflip")).unwrap();
        let (key, artifact) = sample();
        store.save(&key, &artifact).unwrap();
        let path = store.path_for(&key);
        let full = std::fs::read(&path).unwrap();
        for position in 0..full.len() {
            for bit in 0..8 {
                let mut flipped = full.clone();
                flipped[position] ^= 1 << bit;
                std::fs::write(&path, &flipped).unwrap();
                match store.load(&key) {
                    StoreLookup::Corrupt(_) => {}
                    StoreLookup::Hit(served) => {
                        panic!("bit {bit} of byte {position} flipped, yet served {served:?}")
                    }
                    StoreLookup::Miss => panic!("file exists; flip cannot be a miss"),
                }
            }
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn an_artifact_copied_to_another_key_is_a_key_mismatch() {
        let store = ArtifactStore::open(scratch_dir("wrongkey")).unwrap();
        let (key, artifact) = sample();
        store.save(&key, &artifact).unwrap();
        // Simulate an operator (or attacker) copying a perfectly valid
        // file over another key's slot: checksum passes, key must not.
        let other = CacheKey::new(0xFEED, 0xFACE);
        let other_path = store.path_for(&other);
        std::fs::create_dir_all(other_path.parent().unwrap()).unwrap();
        std::fs::copy(store.path_for(&key), &other_path).unwrap();
        match store.load(&other) {
            StoreLookup::Corrupt(reason) => {
                assert!(reason.contains("key mismatch"), "{reason}");
            }
            other => panic!("wrong-key file produced {other:?}"),
        }
        // The original is untouched and still serves.
        assert!(matches!(store.load(&key), StoreLookup::Hit(_)));
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn hostile_garbage_files_never_panic() {
        let store = ArtifactStore::open(scratch_dir("garbage")).unwrap();
        let (key, _) = sample();
        let path = store.path_for(&key);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        let hostile: [&[u8]; 7] = [
            b"",
            b"\xff\xfe\x00",
            b"plim-store v1",
            b"plim-store v1\nchecksum zzzz\n",
            b"plim-store v2\nchecksum 0\n",
            b"plim-store v1\nchecksum 00000000000000000000000000000000\n",
            b"plim-store v1\nchecksum 6c62272e07bb014262b821756295c58d\n",
        ];
        for bytes in hostile {
            std::fs::write(&path, bytes).unwrap();
            assert!(
                matches!(store.load(&key), StoreLookup::Corrupt(_)),
                "{bytes:?} was not rejected"
            );
        }
        let _ = std::fs::remove_dir_all(store.root());
    }

    #[test]
    fn weight_matches_the_in_memory_cache_accounting() {
        let (_, artifact) = sample();
        assert_eq!(artifact.weight(), artifact.output.len() + 64);
    }
}
