//! A minimal JSON layer shared by every machine-readable artifact.
//!
//! The workspace builds offline, so instead of depending on `serde_json`
//! this module hand-rolls the small JSON subset the compiler actually
//! speaks: the `BENCH.json` bench-gate artifact ([`crate::benchfile`]) and
//! the newline-delimited wire protocol of the `plimd` compile service.
//!
//! [`Value::parse`] produces a [`Value`] tree and rejects, with byte-accurate
//! positions, exactly the malformed documents a hand-edited artifact or a
//! buggy client is likely to produce: truncated input, trailing garbage,
//! duplicate object keys, bad escapes, and malformed numbers. [`Value::to_json`]
//! writes a compact single-line document whose string escaping round-trips
//! arbitrary text — including embedded newlines, which is what makes
//! newline-delimited framing safe for multi-line circuit dumps.
//!
//! Object member order is preserved on both sides (objects are association
//! lists, not maps), so writers control their layout and tests can assert
//! byte-exact output.
//!
//! ```
//! use plim_compiler::json::Value;
//!
//! let value = Value::parse("{\"name\": \"adder\", \"rams\": 12}").unwrap();
//! assert_eq!(value.get("name").and_then(Value::as_str), Some("adder"));
//! assert_eq!(value.get("rams").and_then(Value::as_u64), Some(12));
//! ```

use std::fmt;
use std::fmt::Write as _;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like the artifacts require).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as an association list in document order. [`Value::parse`]
    /// guarantees the keys are distinct.
    Object(Vec<(String, Value)>),
}

/// Error produced when parsing a JSON document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the error in the input.
    pub at: usize,
    /// Explanation of the problem.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

impl Value {
    /// Parses a complete JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// Returns [`ParseJsonError`] naming the first byte that violates the
    /// grammar; duplicate keys within one object are rejected.
    pub fn parse(text: &str) -> Result<Value, ParseJsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing content after the document"));
        }
        Ok(value)
    }

    /// Writes the value as compact single-line JSON. All control characters
    /// in strings are escaped, so the output never contains a raw newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(*n, out),
            Value::String(s) => write_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (index, item) in items.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(members) => {
                out.push('{');
                for (index, (key, value)) in members.iter().enumerate() {
                    if index > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strictly below 2^64: `u64::MAX as f64` rounds UP to 2^64,
            // so `<=` would let 2^64 through and saturate the cast.
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(members) => Some(members),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object (`None` for other value kinds).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object(members: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Builds a string value.
    pub fn string(text: impl Into<String>) -> Value {
        Value::String(text.into())
    }

    /// Builds a number value from an unsigned integer.
    pub fn number(value: u64) -> Value {
        Value::Number(value as f64)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; emit null (serde_json's choice) so
        // the output always parses back.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

/// Maximum container nesting. The parser is recursive-descent, and plimd
/// feeds it untrusted network input: without a cap, a line of 200k `[`
/// bytes overflows the connection thread's stack and aborts the whole
/// process. 128 matches serde_json's default.
const MAX_DEPTH: u32 = 128;

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseJsonError {
        ParseJsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseJsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseJsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseJsonError> {
        match self.peek() {
            Some(b'{') => self.nested(Parser::object),
            Some(b'[') => self.nested(Parser::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'0'..=b'9' | b'-') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Runs a container parser one nesting level deeper, erroring out
    /// instead of recursing past [`MAX_DEPTH`].
    fn nested(
        &mut self,
        parse: fn(&mut Self) -> Result<Value, ParseJsonError>,
    ) -> Result<Value, ParseJsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH} levels")));
        }
        self.depth += 1;
        let value = parse(self);
        self.depth -= 1;
        value
    }

    fn object(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Value)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(ParseJsonError {
                    at: key_at,
                    message: format!("duplicate key \"{key}\""),
                });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected `,` or `}` in an object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseJsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in an array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match byte {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(escape) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Combine a UTF-16 surrogate pair when the lead
                            // half is immediately followed by `\uXXXX`.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let trail = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&trail) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let code = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (trail as u32 - 0xDC00);
                                    char::from_u32(code)
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(unit as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                        }
                        other => {
                            self.pos -= 1;
                            return Err(
                                self.err(format!("unsupported escape `\\{}`", other as char))
                            );
                        }
                    }
                }
                b if b < 0x20 => {
                    self.pos -= 1;
                    return Err(self.err("unescaped control character in string"));
                }
                _ => {
                    // Re-assemble the full UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(byte);
                    let end = start + len;
                    if len == 0 || end > self.bytes.len() {
                        self.pos = start;
                        return Err(self.err("invalid UTF-8 in string"));
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            out.push_str(s);
                            self.pos = end;
                        }
                        Err(_) => {
                            self.pos = start;
                            return Err(self.err("invalid UTF-8 in string"));
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, ParseJsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        // Exactly four hex digits: `from_str_radix` alone would also
        // accept a sign (`\u+041`), which is not valid JSON.
        let digits = &self.bytes[self.pos..end];
        if !digits.iter().all(u8::is_ascii_hexdigit) {
            return Err(self.err("non-hex \\u escape"));
        }
        let hex = std::str::from_utf8(digits).expect("ascii hex digits");
        let unit = u16::from_str_radix(hex, 16).expect("checked hex digits");
        self.pos = end;
        Ok(unit)
    }

    fn number(&mut self) -> Result<Value, ParseJsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Value::Number(n)),
            _ => {
                self.pos = start;
                Err(self.err(format!("invalid number `{text}`")))
            }
        }
    }
}

/// Length of the UTF-8 sequence introduced by `byte` (0 for invalid leads).
fn utf8_len(byte: u8) -> usize {
    match byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        0xF0..=0xF7 => 4,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
        assert_eq!(Value::parse("true").unwrap(), Value::Bool(true));
        assert_eq!(Value::parse(" false ").unwrap(), Value::Bool(false));
        assert_eq!(Value::parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(Value::parse("-1.5e2").unwrap(), Value::Number(-150.0));
        assert_eq!(Value::parse("\"hi\"").unwrap(), Value::string("hi"));
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let value = Value::parse(r#"{"b": [1, {"x": null}], "a": "s"}"#).unwrap();
        let members = value.as_object().unwrap();
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        let items = members[0].1.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].get("x"), Some(&Value::Null));
    }

    #[test]
    fn round_trips_tricky_strings() {
        for text in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab\rand\u{8}bell",
            "non-ascii Σ µ ←",
            "control \u{1} char",
        ] {
            let value = Value::string(text);
            let json = value.to_json();
            assert!(!json.contains('\n'), "framing-unsafe output: {json}");
            assert_eq!(Value::parse(&json).unwrap(), value, "{json}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Value::parse(r#""\u0041\u00e9\u20ac""#).unwrap(),
            Value::string("Aé€")
        );
        // Surrogate pair: 𝄞 (U+1D11E).
        assert_eq!(
            Value::parse(r#""\ud834\udd1e""#).unwrap(),
            Value::string("\u{1D11E}")
        );
        assert!(Value::parse(r#""\ud834""#).is_err());
        assert!(Value::parse(r#""\ud834\u0041""#).is_err());
    }

    #[test]
    fn truncated_documents_error_with_position() {
        for text in [
            "",
            "[",
            "[1,",
            "{\"a\"",
            "{\"a\": 1",
            "\"unterminated",
            "tru",
        ] {
            let err = Value::parse(text).unwrap_err();
            assert!(err.at <= text.len(), "{text:?}: {err}");
            assert!(err.to_string().starts_with("byte "), "{text:?}: {err}");
        }
    }

    #[test]
    fn trailing_content_is_rejected() {
        let err = Value::parse("[] extra").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
        assert!(Value::parse("1 2").is_err());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = Value::parse(r#"{"a": 1, "b": 2, "a": 3}"#).unwrap_err();
        assert!(err.message.contains("duplicate key \"a\""), "{err}");
        // Nested objects have their own key namespaces.
        assert!(Value::parse(r#"{"a": {"a": 1}, "b": {"a": 2}}"#).is_ok());
    }

    #[test]
    fn malformed_numbers_and_escapes_are_rejected() {
        assert!(Value::parse("1.2.3").is_err());
        assert!(Value::parse("--5").is_err());
        assert!(Value::parse("\"\\q\"").is_err());
        assert!(Value::parse("\"\\u12g4\"").is_err());
        assert!(Value::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn number_accessors_check_domains() {
        assert_eq!(Value::Number(7.0).as_u64(), Some(7));
        assert_eq!(Value::Number(7.5).as_u64(), None);
        assert_eq!(Value::Number(-7.0).as_u64(), None);
        // 2^64 is not representable as u64; it must not saturate through.
        assert_eq!(Value::parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(Value::Number(7.5).as_f64(), Some(7.5));
        assert_eq!(Value::string("7").as_u64(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
    }

    #[test]
    fn object_builder_and_lookup() {
        let value = Value::object([("op", Value::string("stats")), ("count", Value::number(3))]);
        assert_eq!(value.to_json(), r#"{"op":"stats","count":3}"#);
        assert_eq!(value.get("count").and_then(Value::as_u64), Some(3));
        assert_eq!(value.get("missing"), None);
        assert_eq!(Value::Null.get("count"), None);
    }

    #[test]
    fn large_and_fractional_numbers_write_correctly() {
        assert_eq!(Value::Number(0.25).to_json(), "0.25");
        assert_eq!(Value::Number(3.0).to_json(), "3");
        assert_eq!(Value::Number(-2.0).to_json(), "-2");
        let big = Value::Number(1e18);
        assert_eq!(Value::parse(&big.to_json()).unwrap(), big);
        // Non-finite values have no JSON spelling; they become null so
        // the output still parses.
        assert_eq!(Value::Number(f64::NAN).to_json(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_json(), "null");
        assert_eq!(Value::parse("null").unwrap(), Value::Null);
    }

    #[test]
    fn unicode_escape_rejects_signed_digits() {
        // `from_str_radix` would accept a sign; JSON requires 4 hex digits.
        assert!(Value::parse(r#""\u+041""#).is_err());
        assert!(Value::parse(r#""\u-041""#).is_err());
    }

    #[test]
    fn nesting_depth_is_bounded_not_stack_fatal() {
        // 200k unbalanced brackets used to overflow the stack and abort
        // the process; now it is an ordinary parse error.
        let deep = "[".repeat(200_000);
        let err = Value::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
        let deep_objects = "{\"k\":".repeat(200_000);
        assert!(Value::parse(&deep_objects).is_err());
        // Reasonable nesting still parses, and the depth budget resets
        // between sibling containers.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Value::parse(&ok).is_ok());
        let siblings = "[[[1]],[[2]],[[3]]]";
        assert!(Value::parse(siblings).is_ok());
    }

    #[test]
    fn raw_newlines_in_strings_are_rejected() {
        assert!(Value::parse("\"line\nbreak\"").is_err());
    }
}
