//! Node translation (§4.2.2 of the paper).
//!
//! Each majority node `⟨c₀ c₁ c₂⟩` is translated into at least one RM3
//! instruction `Z ← ⟨A B̄ Z⟩`:
//!
//! * operand **B** is read inverted by the hardware, so a complemented child
//!   edge is "free" there;
//! * destination **Z** must already hold the third child's value and is
//!   overwritten, so reusing a child RRAM is only safe when nobody else
//!   still needs it;
//! * operand **A** is read plain.
//!
//! Children that do not fit their slot cost extra instructions (constant
//! loads, copies, complement materializations) and possibly extra RRAMs.
//! The smart selection implements the case analyses of Fig. 5 (operand B,
//! cases a–h), Fig. 6 (destination Z, cases a–e) and §4.2.2 (operand A,
//! cases a–d), including the *complement cache*: once a child's inverted
//! value has been materialized in an RRAM, it is remembered for future use.

use mig::{Mig, MigNode, NodeId, Signal};
use plim::{Instruction, Operand, OutputLoc, Program, RamAddr};

use crate::alloc::RramAllocator;
use crate::lifetime::{LifetimeClass, Lifetimes};
use crate::options::{CompilerOptions, OperandSelection};

/// Where a node's value currently resides during translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// The node is the constant (value 0).
    Const,
    /// The node is primary input `i`, readable from the input region.
    Pi(u32),
    /// The node's value has been computed into a work RRAM.
    Ram(RamAddr),
}

/// Incremental translation state shared by the naive and smart compilers.
#[derive(Debug)]
pub(crate) struct Translator<'a> {
    mig: &'a Mig,
    opts: CompilerOptions,
    /// Lifetime analysis shared with the scheduler; supplies the
    /// allocation hints of the lifetime-aware strategies.
    lifetimes: &'a Lifetimes,
    pub(crate) program: Program,
    pub(crate) alloc: RramAllocator,
    /// Current location of each node's value (indexed by node).
    loc: Vec<Option<Loc>>,
    /// RRAM holding the *complement* of each node's value, if materialized.
    compl: Vec<Option<RamAddr>>,
    /// References (parent edges + primary outputs) not yet consumed.
    remaining: Vec<u32>,
    /// Peak number of simultaneously live RRAMs.
    pub(crate) peak_live: usize,
}

impl<'a> Translator<'a> {
    pub(crate) fn new(mig: &'a Mig, opts: CompilerOptions, lifetimes: &'a Lifetimes) -> Self {
        let mut loc = vec![None; mig.len()];
        loc[NodeId::CONSTANT.index()] = Some(Loc::Const);
        for (index, &id) in mig.inputs().iter().enumerate() {
            loc[id.index()] = Some(Loc::Pi(index as u32));
        }
        Translator {
            mig,
            opts,
            lifetimes,
            program: Program::new(mig.num_inputs()),
            alloc: RramAllocator::new(opts.allocator),
            loc,
            compl: vec![None; mig.len()],
            remaining: mig.fanout_counts(),
            peak_live: 0,
        }
    }

    /// The operand reading a node's (plain) value.
    ///
    /// # Panics
    ///
    /// Panics if the node has not been computed — a scheduling bug.
    fn read_operand(&self, node: NodeId) -> Operand {
        match self.loc[node.index()].expect("operand read before computation") {
            Loc::Const => Operand::Const(false),
            Loc::Pi(i) => Operand::Input(i),
            Loc::Ram(addr) => Operand::Ram(addr),
        }
    }

    /// A short human-readable name of a node for listing comments.
    fn describe(&self, signal: Signal) -> String {
        let bar = if signal.is_complemented() { "¬" } else { "" };
        match self.mig.node(signal.node()) {
            MigNode::Constant => format!("{}", signal.is_complemented() as u8),
            MigNode::Input(i) => format!("{bar}i{}", i + 1),
            MigNode::Majority(_) => format!("{bar}N{}", signal.node().index()),
        }
    }

    /// The single funnel for program construction: every instruction's
    /// destination write is recorded on the allocator's per-cell counters,
    /// keeping them exactly in sync with the emitted program (and feeding
    /// the wear-budget reuse strategy mid-compilation).
    fn push_instruction(&mut self, instruction: Instruction, comment: String) {
        self.alloc.note_write(instruction.z);
        self.program.push_commented(instruction, comment);
    }

    fn emit(&mut self, a: Operand, b: Operand, z: RamAddr, comment: String) {
        self.push_instruction(Instruction::new(a, b, z), comment);
    }

    /// The expected-lifetime class of a node's value (allocation hint).
    fn class_of(&self, node: NodeId) -> LifetimeClass {
        self.lifetimes.class(node)
    }

    fn request(&mut self, hint: LifetimeClass) -> RamAddr {
        let addr = self.alloc.request_with_hint(hint);
        self.peak_live = self.peak_live.max(self.alloc.num_live());
        addr
    }

    /// Allocates an RRAM initialized to a constant (1 instruction). `hint`
    /// describes the lifetime of the value the cell will ultimately hold.
    fn fresh_const(&mut self, value: bool, hint: LifetimeClass) -> RamAddr {
        let addr = self.request(hint);
        let instruction = if value {
            Instruction::set(addr)
        } else {
            Instruction::reset(addr)
        };
        self.push_instruction(instruction, format!("X{} ← {}", addr.0 + 1, value as u8));
        addr
    }

    /// Allocates an RRAM loaded with the *complement* of a node's value
    /// (2 instructions: reset, then `⟨1 v̄ 0⟩ = v̄`). When `cache` is set the
    /// RRAM is remembered as the node's complement for future use. `hint`
    /// describes the lifetime of the value the cell will ultimately hold —
    /// the complemented child's when the cell serves as an operand, the
    /// consuming node's when it serves as the destination.
    fn fresh_complement_of(&mut self, node: NodeId, cache: bool, hint: LifetimeClass) -> RamAddr {
        let addr = self.request(hint);
        let src = self.read_operand(node);
        self.push_instruction(Instruction::reset(addr), format!("X{} ← 0", addr.0 + 1));
        let name = self.describe(Signal::new(node, true));
        self.emit(
            Operand::Const(true),
            src,
            addr,
            format!("X{} ← {}", addr.0 + 1, name),
        );
        if cache {
            self.compl[node.index()] = Some(addr);
        }
        addr
    }

    /// Allocates an RRAM loaded with a *copy* of a node's value
    /// (2 instructions: set, then `⟨v 0 1⟩ = v`). `hint` describes the
    /// lifetime of the value the cell will ultimately hold.
    fn fresh_copy_of(&mut self, node: NodeId, hint: LifetimeClass) -> RamAddr {
        let addr = self.request(hint);
        let src = self.read_operand(node);
        self.push_instruction(Instruction::set(addr), format!("X{} ← 1", addr.0 + 1));
        let name = self.describe(Signal::new(node, false));
        self.emit(
            src,
            Operand::Const(true),
            addr,
            format!("X{} ← {}", addr.0 + 1, name),
        );
        addr
    }

    /// Whether a child edge is a complemented edge to a non-constant node.
    fn is_complemented_child(&self, s: Signal) -> bool {
        !s.is_constant() && s.is_complemented()
    }

    /// References to this child's node not yet consumed (including the one
    /// being translated).
    fn remaining_of(&self, s: Signal) -> u32 {
        self.remaining[s.node().index()]
    }

    /// Whether the child's RRAM may be overwritten: it is an internal node
    /// held in a work RRAM and this is its last use.
    fn overwritable(&self, s: Signal) -> bool {
        self.remaining_of(s) == 1 && matches!(self.loc[s.node().index()], Some(Loc::Ram(_)))
    }

    /// Number of this node's children whose RRAM becomes releasable right
    /// after translating it: majority children with exactly one remaining
    /// reference. This is the *dynamic* version of the paper's
    /// releasing-children count — remaining fanout decreases as parents are
    /// computed, so the count can only grow over time.
    pub(crate) fn releasing_now(&self, id: NodeId) -> u32 {
        let Some(children) = self.mig.node(id).children() else {
            return 0;
        };
        children
            .iter()
            .filter(|c| self.mig.node(c.node()).is_majority() && self.remaining_of(**c) == 1)
            .count() as u32
    }

    /// Number of RRAM cells that would actually return to the free pool if
    /// this node were translated next: for every distinct child whose
    /// remaining references are all consumed by this node, its value cell
    /// (if held in work RRAM) plus its cached complement cell. Unlike
    /// [`Translator::releasing_now`] this counts *cells*, not children, so
    /// it is the quantity the lookahead scheduler optimizes.
    pub(crate) fn released_cells_now(&self, id: NodeId) -> i64 {
        let Some(children) = self.mig.node(id).children() else {
            return 0;
        };
        let mut total = 0i64;
        for (index, child) in children.iter().enumerate() {
            let node = child.node();
            if children[..index].iter().any(|c| c.node() == node) {
                continue; // count each distinct child node once
            }
            let occurrences = children.iter().filter(|c| c.node() == node).count() as u32;
            if self.remaining_of(*child) != occurrences {
                continue; // survives this node
            }
            if matches!(self.loc[node.index()], Some(Loc::Ram(_))) {
                total += 1;
            }
            if self.compl[node.index()].is_some() {
                total += 1;
            }
        }
        total
    }

    /// Whether translating this node now can overwrite one of its children's
    /// cells as the destination `Z` (no new allocation), mirroring the
    /// destination cases (a) and (b) of the smart selection. When `false`,
    /// translating the node costs at least one fresh-or-reused cell.
    pub(crate) fn has_in_place_destination(&self, id: NodeId) -> bool {
        let Some(children) = self.mig.node(id).children() else {
            return false;
        };
        children.iter().any(|c| {
            (self.is_complemented_child(*c)
                && self.remaining_of(*c) == 1
                && self.compl[c.node().index()].is_some())
                || (!c.is_complemented() && self.overwritable(*c))
        })
    }

    /// Translates one majority node into RM3 instructions.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a majority node or a child is uncomputed.
    pub(crate) fn translate_node(&mut self, id: NodeId) {
        let children = *self
            .mig
            .node(id)
            .children()
            .expect("only majority nodes are translated");
        match self.opts.operands {
            OperandSelection::ChildOrder => self.translate_child_order(id, children),
            OperandSelection::Smart => self.translate_smart(id, children),
        }
        for child in children {
            self.consume_reference(child.node());
        }
    }

    /// Decrements a node's pending reference count and releases its RRAMs
    /// when it is no longer needed.
    fn consume_reference(&mut self, node: NodeId) {
        let remaining = &mut self.remaining[node.index()];
        debug_assert!(*remaining > 0, "reference count underflow");
        *remaining -= 1;
        if *remaining == 0 {
            if let Some(Loc::Ram(addr)) = self.loc[node.index()].take() {
                self.alloc.release(addr);
            } else {
                // Constants and inputs have nothing to release, but their
                // location must stay valid for later readers… which cannot
                // exist since remaining is 0. Restore for robustness.
                self.loc[node.index()] = match self.mig.node(node) {
                    MigNode::Constant => Some(Loc::Const),
                    MigNode::Input(i) => Some(Loc::Pi(*i)),
                    MigNode::Majority(_) => None,
                };
            }
            if let Some(addr) = self.compl[node.index()].take() {
                self.alloc.release(addr);
            }
        }
    }

    /// Naive fixed-slot translation (§3): first child → A, second → B,
    /// third → Z, no complement caching.
    fn translate_child_order(&mut self, id: NodeId, children: [Signal; 3]) {
        let [c0, c1, c2] = children;

        // Operand B: the hardware inverts it, so a complemented child fits
        // directly; otherwise its complement must be materialized.
        let b = if let Some(value) = c1.constant_value() {
            Operand::Const(!value)
        } else if c1.is_complemented() {
            self.read_operand(c1.node())
        } else {
            let hint = self.class_of(c1.node());
            Operand::Ram(self.fresh_complement_of(c1.node(), false, hint))
        };

        // Destination Z must hold the third child's value; its cell ends up
        // holding this node's result, hence the `id` lifetime hint.
        let z_hint = self.class_of(id);
        let z = if let Some(value) = c2.constant_value() {
            self.fresh_const(value, z_hint)
        } else if !c2.is_complemented() && self.overwritable(c2) {
            match self.loc[c2.node().index()].take() {
                Some(Loc::Ram(addr)) => addr,
                _ => unreachable!("overwritable implies a RAM location"),
            }
        } else if c2.is_complemented() {
            self.fresh_complement_of(c2.node(), false, z_hint)
        } else {
            self.fresh_copy_of(c2.node(), z_hint)
        };

        // Operand A is read plain.
        let a = if let Some(value) = c0.constant_value() {
            Operand::Const(value)
        } else if !c0.is_complemented() {
            self.read_operand(c0.node())
        } else {
            let hint = self.class_of(c0.node());
            Operand::Ram(self.fresh_complement_of(c0.node(), false, hint))
        };

        self.finish_node(id, a, b, z);
    }

    /// Smart translation implementing the case analyses of §4.2.2.
    fn translate_smart(&mut self, id: NodeId, children: [Signal; 3]) {
        let (b, b_index) = self.select_operand_b(&children);
        let rest: Vec<usize> = (0..3).filter(|&k| k != b_index).collect();
        let (z, z_index) = self.select_destination_z(id, &children, [rest[0], rest[1]]);
        let a_index = rest.into_iter().find(|&k| k != z_index).expect("one left");
        let a = self.select_operand_a(children[a_index]);
        self.finish_node(id, a, b, z);
    }

    /// Operand-B selection, Fig. 5 cases (a)–(h). Returns the operand and
    /// the index of the child it covers.
    fn select_operand_b(&mut self, children: &[Signal; 3]) -> (Operand, usize) {
        let complemented: Vec<usize> = (0..3)
            .filter(|&k| self.is_complemented_child(children[k]))
            .collect();
        let constant = (0..3).find(|&k| children[k].is_constant());

        match complemented.len() {
            // (a) exactly one complemented child: its RRAM/input feeds B.
            1 => {
                let k = complemented[0];
                (self.read_operand(children[k].node()), k)
            }
            // More than one complemented child.
            n if n >= 2 => {
                // (b) with a constant child present, any non-constant
                // complemented child works; like (d), prefer one with
                // multiple fanout since it cannot serve as destination.
                // (d)/(e) without a constant child: same preference.
                let k = complemented
                    .iter()
                    .copied()
                    .find(|&k| self.remaining_of(children[k]) > 1)
                    .unwrap_or(complemented[0]);
                let _ = constant;
                (self.read_operand(children[k].node()), k)
            }
            // No complemented child.
            _ => {
                if let Some(k) = constant {
                    // (c) B takes the inverse of the constant.
                    let value = children[k].constant_value().expect("constant child");
                    (Operand::Const(!value), k)
                } else if let Some(k) =
                    (0..3).find(|&k| self.compl[children[k].node().index()].is_some())
                {
                    // (f) a complement of this child is already materialized.
                    let addr = self.compl[children[k].node().index()].expect("checked");
                    (Operand::Ram(addr), k)
                } else {
                    // (g) prefer a multiple-fanout child (it is excluded from
                    // serving as destination anyway); (h) otherwise the first.
                    let k = (0..3)
                        .find(|&k| self.remaining_of(children[k]) > 1)
                        .unwrap_or(0);
                    let hint = self.class_of(children[k].node());
                    let addr = self.fresh_complement_of(children[k].node(), true, hint);
                    (Operand::Ram(addr), k)
                }
            }
        }
    }

    /// Destination-Z selection, Fig. 6 cases (a)–(e), over the two children
    /// not consumed by operand B. Returns the destination RRAM and the index
    /// of the child it covers. `id` is the node being translated — the
    /// destination cell ends up holding its result, so fresh allocations
    /// here carry its lifetime hint.
    fn select_destination_z(
        &mut self,
        id: NodeId,
        children: &[Signal; 3],
        rest: [usize; 2],
    ) -> (RamAddr, usize) {
        // (a) complemented last-use child whose complement is materialized:
        // that RRAM already holds the edge's value and is safe to overwrite.
        for &k in &rest {
            let c = children[k];
            if self.is_complemented_child(c)
                && self.remaining_of(c) == 1
                && self.compl[c.node().index()].is_some()
            {
                let addr = self.compl[c.node().index()].take().expect("checked");
                return (addr, k);
            }
        }
        // (b) plain last-use child held in a work RRAM: overwrite in place.
        for &k in &rest {
            let c = children[k];
            if !c.is_complemented() && self.overwritable(c) {
                match self.loc[c.node().index()].take() {
                    Some(Loc::Ram(addr)) => return (addr, k),
                    _ => unreachable!("overwritable implies a RAM location"),
                }
            }
        }
        let hint = self.class_of(id);
        // (c) constant child: allocate and initialize (1 instruction).
        for &k in &rest {
            if let Some(value) = children[k].constant_value() {
                return (self.fresh_const(value, hint), k);
            }
        }
        // (d) complemented child: materialize its complement (2 instructions).
        for &k in &rest {
            let c = children[k];
            if self.is_complemented_child(c) {
                return (self.fresh_complement_of(c.node(), false, hint), k);
            }
        }
        // (e) plain child with other uses (or a primary input): copy it.
        let k = rest[0];
        (self.fresh_copy_of(children[k].node(), hint), k)
    }

    /// Operand-A selection, §4.2.2 cases (a)–(d), for the remaining child.
    fn select_operand_a(&mut self, child: Signal) -> Operand {
        if let Some(value) = child.constant_value() {
            // (a) constant, complement folded into the value.
            Operand::Const(value)
        } else if !child.is_complemented() {
            // (b) plain child: read its RRAM or input directly.
            self.read_operand(child.node())
        } else if let Some(addr) = self.compl[child.node().index()] {
            // (c) complement already materialized.
            Operand::Ram(addr)
        } else {
            // (d) materialize (and cache) the complement.
            let hint = self.class_of(child.node());
            Operand::Ram(self.fresh_complement_of(child.node(), true, hint))
        }
    }

    /// Emits the node's main RM3 instruction and records its location.
    fn finish_node(&mut self, id: NodeId, a: Operand, b: Operand, z: RamAddr) {
        self.emit(a, b, z, format!("X{} ← N{}", z.0 + 1, id.index()));
        self.loc[id.index()] = Some(Loc::Ram(z));
    }

    /// Resolves primary outputs, materializing complemented internal results
    /// so that every output is readable from the array, and finishes the
    /// program. Returns the program, the peak number of simultaneously live
    /// cells, and the maximum per-cell write count.
    pub(crate) fn finalize(mut self) -> (Program, usize, u64) {
        let outputs: Vec<(String, Signal)> = self
            .mig
            .outputs()
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect();
        for (name, signal) in outputs {
            let node = signal.node();
            let loc = match self.mig.node(node) {
                MigNode::Constant => OutputLoc::Const(signal.is_complemented()),
                MigNode::Input(i) => OutputLoc::Input {
                    index: *i,
                    complemented: signal.is_complemented(),
                },
                MigNode::Majority(_) => {
                    if signal.is_complemented() {
                        let addr = match self.compl[node.index()] {
                            Some(addr) => addr,
                            // Output cells stay live to the end of the run.
                            None => self.fresh_complement_of(node, true, LifetimeClass::Long),
                        };
                        OutputLoc::Ram(addr)
                    } else {
                        match self.loc[node.index()] {
                            Some(Loc::Ram(addr)) => OutputLoc::Ram(addr),
                            _ => panic!("primary output `{name}` was never computed"),
                        }
                    }
                }
            };
            self.program.add_output(name, loc);
        }
        let max_cell_writes = self.alloc.max_writes();
        (self.program, self.peak_live, max_cell_writes)
    }
}
