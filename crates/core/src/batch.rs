//! Batch-compilation pipeline: fan a job matrix across CPU cores.
//!
//! The paper's evaluation compiles every benchmark under several option
//! combinations (naive on the initial MIG, naive and smart on the rewritten
//! MIG); regenerating Table 1 serially repeats that per circuit. This
//! module turns the whole experiment into one **job matrix**
//! (circuit × rewrite effort × [`CompilerOptions`]) and executes it in
//! parallel with three guarantees:
//!
//! * **Shared rewriting** — rewriting dominates the pipeline, so jobs that
//!   compile the same `(circuit, effort)` graph share one memoized rewrite
//!   pass instead of each paying for their own.
//! * **Determinism** — results are collected in job order, independent of
//!   scheduling. A batch run is byte-for-byte identical to compiling the
//!   same specs serially (property-tested in `tests/differential.rs`).
//! * **Timing** — every rewrite pass and every compile job reports its own
//!   wall-clock time, and the report carries the end-to-end elapsed time.
//!
//! The module also hosts the Table 1 measurement vocabulary ([`Point`],
//! [`MeasuredRow`], [`measure`], [`measure_suite`]) used by the `plim-bench`
//! harnesses and the `plimc bench` subcommand.
//!
//! ```
//! use plim_compiler::batch::{run_batch, Circuit, JobSpec, RewriteEffort};
//! use plim_compiler::CompilerOptions;
//! use plim_parallel::Parallelism;
//!
//! let mut mig = mig::Mig::new();
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let f = mig.and(a, b);
//! mig.add_output("f", f);
//!
//! let circuits = [Circuit::new("and2", mig)];
//! let specs = [
//!     JobSpec::new(0, RewriteEffort::Raw, CompilerOptions::naive()),
//!     JobSpec::new(0, RewriteEffort::Effort(2), CompilerOptions::new()),
//! ];
//! let report = run_batch(&circuits, &specs, Parallelism::Auto);
//! assert_eq!(report.jobs.len(), 2);
//! assert_eq!(report.rewrites.len(), 1); // one distinct rewrite pass
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::{Duration, Instant};

use mig::analysis::improvement_percent;
use mig::arena::RewriteArena;
use mig::rewrite::rewrite;
use mig::Mig;
use plim_parallel::{par_map, Parallelism};

use crate::benchfile::BenchRecord;
use crate::ir::analysis::{analyze_events, AnalysisConfig};
use crate::{
    compile, compile_full, AllocatorStrategy, Compilation, CompilerOptions, OptLevel, RewriteMode,
    Rm3Program, ScheduleOrder,
};

/// Rewrite effort used throughout the evaluation (the paper fixes 4).
pub const PAPER_EFFORT: usize = 4;

/// Runs a rewrite pass on this worker's thread-local [`RewriteArena`], so a
/// batch reuses one arena (node table, strash map, scratch buffers) per
/// worker thread instead of allocating a fresh engine per `(circuit,
/// effort)` key. Results are identical to [`mig::rewrite::rewrite`]; only
/// the allocation profile differs.
fn rewrite_on_worker_arena(mig: &Mig, effort: usize) -> Mig {
    thread_local! {
        static ARENA: RefCell<RewriteArena> = RefCell::new(RewriteArena::new());
    }
    ARENA.with(|arena| arena.borrow_mut().rewrite(mig, effort))
}

/// One distinct preprocessing pass of a batch. Arena and rebuild passes
/// depend only on `(circuit, effort, mode)`; an equality-saturation pass
/// additionally depends on the full options spec, because the compiling
/// cost function judges candidates under those options (a different
/// backend or opt level can pick a different winner).
type RewriteKey = (usize, usize, RewriteMode, String);

fn rewrite_key(spec: &JobSpec, effort: usize) -> RewriteKey {
    let mode = spec.options.rewrite;
    let scope = match mode {
        RewriteMode::Egraph => spec.options.spec(),
        _ => String::new(),
    };
    (spec.circuit, effort, mode, scope)
}

/// Runs one preprocessing pass: the engine selected by the spec's
/// [`RewriteMode`].
///
/// # Panics
///
/// Panics for [`RewriteMode::Egraph`] when no optimizer hook was installed
/// (call `plim_egraph::install()` at startup).
fn preprocess(mig: &Mig, effort: usize, mode: RewriteMode, options: CompilerOptions) -> Mig {
    match mode {
        RewriteMode::Arena => rewrite_on_worker_arena(mig, effort),
        RewriteMode::Rebuild => mig::rewrite::rewrite_rebuild(mig, effort),
        RewriteMode::Egraph => {
            let optimize = crate::egraph_optimizer().expect(
                "RewriteMode::Egraph needs the equality-saturation hook: call \
                 plim_egraph::install() before compiling",
            );
            let baseline = rewrite_on_worker_arena(mig, effort);
            optimize(mig, &baseline, effort, options)
        }
    }
}

/// A named input circuit of a batch.
#[derive(Debug, Clone)]
pub struct Circuit {
    /// Display name (benchmark name in the harnesses).
    pub name: String,
    /// The logic network to compile.
    pub mig: Mig,
}

impl Circuit {
    /// Creates a named circuit.
    pub fn new(name: impl Into<String>, mig: Mig) -> Self {
        Circuit {
            name: name.into(),
            mig,
        }
    }
}

/// How a job preprocesses its circuit before compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RewriteEffort {
    /// Compile the circuit exactly as provided (the Table 1 naive column).
    Raw,
    /// Run [`mig::rewrite::rewrite`] at this effort first. Jobs with the
    /// same `(circuit, effort)` share one memoized pass.
    Effort(usize),
}

/// One compilation job of a batch: which circuit, at which rewrite effort,
/// under which compiler options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobSpec {
    /// Index into the batch's circuit slice.
    pub circuit: usize,
    /// Preprocessing for this job.
    pub effort: RewriteEffort,
    /// Compiler configuration for this job.
    pub options: CompilerOptions,
}

impl JobSpec {
    /// Creates a job spec.
    pub fn new(circuit: usize, effort: RewriteEffort, options: CompilerOptions) -> Self {
        JobSpec {
            circuit,
            effort,
            options,
        }
    }
}

/// The outcome of one compilation job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The spec this result answers.
    pub spec: JobSpec,
    /// The compiled program with its cost metrics.
    pub compiled: Rm3Program,
    /// The post-optimization IR the program was emitted from. Kept so
    /// downstream consumers (per-target bench annotation, alternative
    /// backends) can re-emit the same compilation without recompiling.
    pub ir: crate::ir::IrProgram,
    /// Wall-clock time of the compile call (excluding any shared rewrite).
    pub compile_time: Duration,
    /// `true` when the static analyzer reported zero diagnostics on the
    /// artifact, its statically re-derived #I/#R/max-writes match the
    /// recorded [`crate::Rm3Stats`], and the emitted program obeys the
    /// machine's initialization discipline.
    pub lint_clean: bool,
}

/// Whether one compilation's artifacts pass the full static-analysis gate
/// at the job's optimization level.
fn job_lint_clean(compilation: &Compilation, opt: OptLevel) -> bool {
    let config = AnalysisConfig::for_level(opt);
    if !analyze_events(&compilation.ir, &config).is_empty() {
        return false;
    }
    let stats = &compilation.compiled.stats;
    let (instructions, rams, max_writes) = crate::ir::replay_metrics(&compilation.ir);
    instructions == stats.instructions
        && rams == stats.rams
        && max_writes == stats.max_cell_writes
        && crate::verify::check_init_discipline(&compilation.compiled).is_ok()
}

/// One distinct rewrite pass executed by a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewritePass {
    /// Index into the batch's circuit slice.
    pub circuit: usize,
    /// Rewrite effort of the pass.
    pub effort: usize,
    /// Majority nodes of the rewritten graph.
    pub nodes: usize,
    /// Wall-clock time of the pass.
    pub time: Duration,
}

/// Everything a batch run produced, in deterministic order.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// One result per input spec, **in spec order** regardless of how jobs
    /// were scheduled across workers.
    pub jobs: Vec<JobResult>,
    /// The distinct rewrite passes, in first-use order.
    pub rewrites: Vec<RewritePass>,
    /// Jobs that reused a memoized rewrite instead of running their own.
    pub rewrite_cache_hits: usize,
    /// Worker threads the batch ran on.
    pub workers: usize,
    /// End-to-end wall-clock time of the batch.
    pub elapsed: Duration,
}

impl BatchReport {
    /// Sum of all compile-job times (CPU-side work, ignoring overlap).
    pub fn total_compile_time(&self) -> Duration {
        self.jobs.iter().map(|job| job.compile_time).sum()
    }

    /// Sum of all rewrite-pass times (CPU-side work, ignoring overlap).
    pub fn total_rewrite_time(&self) -> Duration {
        self.rewrites.iter().map(|pass| pass.time).sum()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs + {} rewrite passes ({} shared) on {} worker{} in {:.2?} \
             (rewrite {:.2?}, compile {:.2?} of CPU work)",
            self.jobs.len(),
            self.rewrites.len(),
            self.rewrite_cache_hits,
            self.workers,
            if self.workers == 1 { "" } else { "s" },
            self.elapsed,
            self.total_rewrite_time(),
            self.total_compile_time(),
        )
    }
}

/// Executes a job matrix over a set of circuits.
///
/// The run has two parallel stages with no barrier inside each stage:
/// first the distinct rewrite passes — keyed by `(circuit, effort,
/// rewrite mode)`, plus the full options spec for equality-saturation jobs
/// — deduplicated in first-use order, then every compile job against
/// either the raw circuit or its memoized rewrite. Results come back in
/// spec order.
///
/// # Panics
///
/// Panics if a spec's `circuit` index is out of range, or if a spec asks
/// for [`RewriteMode::Egraph`] and no optimizer hook is installed.
pub fn run_batch(circuits: &[Circuit], specs: &[JobSpec], parallelism: Parallelism) -> BatchReport {
    let start = Instant::now();
    for spec in specs {
        assert!(
            spec.circuit < circuits.len(),
            "job spec references circuit {} but the batch has {}",
            spec.circuit,
            circuits.len()
        );
    }

    // Distinct rewrite keys in first-use order, so pass numbering (and the
    // report) is stable across runs. Each key carries a representative
    // options value for the engines (equality saturation) that need it.
    let mut keys: Vec<(RewriteKey, CompilerOptions)> = Vec::new();
    let mut rewrite_cache_hits = 0;
    for spec in specs {
        if let RewriteEffort::Effort(effort) = spec.effort {
            let key = rewrite_key(spec, effort);
            if keys.iter().any(|(k, _)| *k == key) {
                rewrite_cache_hits += 1;
            } else {
                keys.push((key, spec.options));
            }
        }
    }

    let workers = parallelism.worker_count(specs.len().max(keys.len()));
    let rewritten: Vec<(Mig, Duration)> = par_map(&keys, parallelism, |_, (key, options)| {
        let (circuit, effort, mode, _) = key;
        let clock = Instant::now();
        let mig = preprocess(&circuits[*circuit].mig, *effort, *mode, *options);
        (mig, clock.elapsed())
    });
    let memo: HashMap<&RewriteKey, &Mig> = keys
        .iter()
        .zip(&rewritten)
        .map(|((key, _), (mig, _))| (key, mig))
        .collect();

    let jobs = par_map(specs, parallelism, |_, spec| {
        let input: &Mig = match spec.effort {
            RewriteEffort::Raw => &circuits[spec.circuit].mig,
            RewriteEffort::Effort(effort) => memo[&rewrite_key(spec, effort)],
        };
        let clock = Instant::now();
        let compilation = compile_full(input, spec.options);
        let compile_time = clock.elapsed();
        let lint_clean = job_lint_clean(&compilation, spec.options.opt);
        JobResult {
            spec: *spec,
            compiled: compilation.compiled,
            ir: compilation.ir,
            compile_time,
            lint_clean,
        }
    });

    let rewrites = keys
        .iter()
        .zip(&rewritten)
        .map(|((key, _), (mig, time))| RewritePass {
            circuit: key.0,
            effort: key.1,
            nodes: mig.num_majority_nodes(),
            time: *time,
        })
        .collect();

    BatchReport {
        jobs,
        rewrites,
        rewrite_cache_hits,
        workers,
        elapsed: start.elapsed(),
    }
}

// ---------------------------------------------------------------------------
// Table 1 measurement vocabulary
// ---------------------------------------------------------------------------

/// Measured `(#N, #I, #R)` of one compilation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Point {
    /// MIG majority nodes translated.
    pub nodes: usize,
    /// RM3 instructions.
    pub instructions: usize,
    /// Work RRAMs.
    pub rams: usize,
}

impl From<&Rm3Program> for Point {
    fn from(compiled: &Rm3Program) -> Self {
        Point {
            nodes: compiled.stats.mig_nodes,
            instructions: compiled.stats.instructions,
            rams: compiled.stats.rams as usize,
        }
    }
}

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct MeasuredRow {
    /// Benchmark name.
    pub name: String,
    /// Primary inputs of the built circuit.
    pub pi: usize,
    /// Primary outputs.
    pub po: usize,
    /// Naive translation of the initial (unoptimized) MIG.
    pub naive: Point,
    /// Naive translation after MIG rewriting.
    pub rewritten: Point,
    /// Smart compilation after MIG rewriting.
    pub compiled: Point,
}

impl MeasuredRow {
    /// Instruction improvement of rewriting over naive, in percent.
    pub fn rewrite_instr_impr(&self) -> f64 {
        improvement_percent(self.naive.instructions, self.rewritten.instructions)
    }

    /// RRAM improvement of rewriting over naive, in percent.
    pub fn rewrite_ram_impr(&self) -> f64 {
        improvement_percent(self.naive.rams, self.rewritten.rams)
    }

    /// Instruction improvement of rewriting + compilation over naive.
    pub fn compiled_instr_impr(&self) -> f64 {
        improvement_percent(self.naive.instructions, self.compiled.instructions)
    }

    /// RRAM improvement of rewriting + compilation over naive.
    pub fn compiled_ram_impr(&self) -> f64 {
        improvement_percent(self.naive.rams, self.compiled.rams)
    }
}

/// Runs the full paper pipeline on one circuit, **serially**: naive
/// compilation of the initial MIG, rewriting (at `effort`), naive
/// compilation of the rewritten MIG, and smart compilation of the rewritten
/// MIG.
///
/// This is the reference implementation the batch pipeline is differential-
/// tested against; [`measure_suite`] produces identical rows in parallel.
pub fn measure(name: &str, mig: &Mig, effort: usize) -> MeasuredRow {
    let naive = compile(mig, CompilerOptions::naive());
    let rewritten_mig = rewrite(mig, effort);
    let rewritten = compile(&rewritten_mig, CompilerOptions::naive());
    let smart = compile(&rewritten_mig, CompilerOptions::new());
    MeasuredRow {
        name: name.to_string(),
        pi: mig.num_inputs(),
        po: mig.num_outputs(),
        naive: Point::from(&naive),
        rewritten: Point::from(&rewritten),
        compiled: Point::from(&smart),
    }
}

/// The three job specs [`measure`] implies for one circuit, in row order.
fn measure_specs(circuit: usize, effort: usize) -> [JobSpec; 3] {
    [
        JobSpec::new(circuit, RewriteEffort::Raw, CompilerOptions::naive()),
        JobSpec::new(
            circuit,
            RewriteEffort::Effort(effort),
            CompilerOptions::naive(),
        ),
        JobSpec::new(
            circuit,
            RewriteEffort::Effort(effort),
            CompilerOptions::new(),
        ),
    ]
}

/// A suite measurement: Table 1 rows plus the underlying batch report.
#[derive(Debug, Clone)]
pub struct SuiteRun {
    /// One row per circuit, in circuit order.
    pub rows: Vec<MeasuredRow>,
    /// The batch that produced the rows (three jobs per circuit).
    pub report: BatchReport,
}

impl SuiteRun {
    /// Wall-clock work attributable to one row: its rewrite pass plus its
    /// three compile jobs.
    pub fn row_time(&self, circuit: usize) -> Duration {
        let rewrite: Duration = self
            .report
            .rewrites
            .iter()
            .filter(|pass| pass.circuit == circuit)
            .map(|pass| pass.time)
            .sum();
        let compile: Duration = self
            .report
            .jobs
            .iter()
            .filter(|job| job.spec.circuit == circuit)
            .map(|job| job.compile_time)
            .sum();
        rewrite + compile
    }
}

/// Measures every circuit through the batch pipeline: per circuit, naive
/// compilation of the raw MIG plus naive and smart compilation of the
/// rewritten MIG (one shared rewrite pass at `effort`).
///
/// Row contents are identical to calling [`measure`] per circuit; only the
/// wall-clock profile differs.
pub fn measure_suite(circuits: &[Circuit], effort: usize, parallelism: Parallelism) -> SuiteRun {
    let specs: Vec<JobSpec> = (0..circuits.len())
        .flat_map(|circuit| measure_specs(circuit, effort))
        .collect();
    let report = run_batch(circuits, &specs, parallelism);
    let rows = circuits
        .iter()
        .enumerate()
        .map(|(index, circuit)| {
            let jobs = &report.jobs[index * 3..index * 3 + 3];
            MeasuredRow {
                name: circuit.name.clone(),
                pi: circuit.mig.num_inputs(),
                po: circuit.mig.num_outputs(),
                naive: Point::from(&jobs[0].compiled),
                rewritten: Point::from(&jobs[1].compiled),
                compiled: Point::from(&jobs[2].compiled),
            }
        })
        .collect();
    SuiteRun { rows, report }
}

/// The seven job specs behind one `BENCH.json` row, in order: the three
/// Table 1 jobs of [`measure_specs`], then the lookahead-scheduling probe,
/// the wear-budget-allocator probe, and the `-O1`/`-O2` pass-pipeline
/// probes on the same rewritten graph (all six rewritten jobs share one
/// memoized rewrite pass).
fn bench_specs(circuit: usize, effort: usize) -> [JobSpec; 7] {
    let [a, b, c] = measure_specs(circuit, effort);
    let rewritten = RewriteEffort::Effort(effort);
    [
        a,
        b,
        c,
        JobSpec::new(
            circuit,
            rewritten,
            CompilerOptions::new().schedule(ScheduleOrder::Lookahead),
        ),
        JobSpec::new(
            circuit,
            rewritten,
            CompilerOptions::new().allocator(AllocatorStrategy::WearLeveled),
        ),
        JobSpec::new(circuit, rewritten, CompilerOptions::new().opt(OptLevel::O1)),
        JobSpec::new(circuit, rewritten, CompilerOptions::new().opt(OptLevel::O2)),
    ]
}

/// A suite measurement extended with the `BENCH.json` rows: Table 1 rows,
/// one [`BenchRecord`] per circuit, and the underlying batch report.
#[derive(Debug, Clone)]
pub struct BenchRun {
    /// One Table 1 row per circuit, in circuit order.
    pub rows: Vec<MeasuredRow>,
    /// One bench-gate record per circuit, in circuit order.
    pub records: Vec<BenchRecord>,
    /// The batch that produced the rows (seven jobs per circuit).
    pub report: BatchReport,
}

impl BenchRun {
    /// The seven compile jobs behind circuit `index`'s record, in spec
    /// order: naive raw, naive rewritten, smart default (`-O0`),
    /// lookahead, wear-leveled, `-O1`, `-O2`. This is the hook the
    /// scenario engine uses to annotate records with fidelity columns
    /// without recompiling.
    pub fn circuit_jobs(&self, index: usize) -> &[JobResult] {
        &self.report.jobs[index * 7..index * 7 + 7]
    }

    /// Wall-clock work attributable to one circuit: its rewrite pass plus
    /// its seven compile jobs.
    pub fn row_time(&self, circuit: usize) -> Duration {
        let rewrite: Duration = self
            .report
            .rewrites
            .iter()
            .filter(|pass| pass.circuit == circuit)
            .map(|pass| pass.time)
            .sum();
        let compile: Duration = self
            .report
            .jobs
            .iter()
            .filter(|job| job.spec.circuit == circuit)
            .map(|job| job.compile_time)
            .sum();
        rewrite + compile
    }
}

/// Measures every circuit for the bench-regression gate: the exact Table 1
/// workload of [`measure_suite`] plus, per circuit, one lookahead-scheduled
/// and one wear-budget-allocated compilation, and the `-O1`/`-O2`
/// pass-pipeline sweeps, all of the same rewritten graph. Row contents are
/// identical to [`measure_suite`]'s; the extra jobs feed the
/// `lookahead_rams`, `wear_max_writes` and `o1_*`/`o2_*` columns of the
/// records.
pub fn bench_suite(circuits: &[Circuit], effort: usize, parallelism: Parallelism) -> BenchRun {
    let specs: Vec<JobSpec> = (0..circuits.len())
        .flat_map(|circuit| bench_specs(circuit, effort))
        .collect();
    let report = run_batch(circuits, &specs, parallelism);
    let mut rows = Vec::with_capacity(circuits.len());
    let mut records = Vec::with_capacity(circuits.len());
    for (index, circuit) in circuits.iter().enumerate() {
        let jobs = &report.jobs[index * 7..index * 7 + 7];
        rows.push(MeasuredRow {
            name: circuit.name.clone(),
            pi: circuit.mig.num_inputs(),
            po: circuit.mig.num_outputs(),
            naive: Point::from(&jobs[0].compiled),
            rewritten: Point::from(&jobs[1].compiled),
            compiled: Point::from(&jobs[2].compiled),
        });
        let smart = &jobs[2].compiled;
        let rewrite_ms = report
            .rewrites
            .iter()
            .filter(|pass| pass.circuit == index)
            .map(|pass| pass.time.as_secs_f64() * 1e3)
            .sum();
        let compile_ms = jobs
            .iter()
            .map(|job| job.compile_time.as_secs_f64() * 1e3)
            .sum();
        records.push(BenchRecord {
            circuit: circuit.name.clone(),
            instructions: smart.stats.instructions as u64,
            rams: u64::from(smart.stats.rams),
            max_writes: smart.stats.max_cell_writes,
            lookahead_rams: u64::from(jobs[3].compiled.stats.rams),
            wear_max_writes: jobs[4].compiled.stats.max_cell_writes,
            o1_instructions: jobs[5].compiled.stats.instructions as u64,
            o1_rams: u64::from(jobs[5].compiled.stats.rams),
            o2_instructions: jobs[6].compiled.stats.instructions as u64,
            o2_rams: u64::from(jobs[6].compiled.stats.rams),
            o2_max_writes: jobs[6].compiled.stats.max_cell_writes,
            rewrite_ms,
            compile_ms,
            // The per-target axis is measured by the backend registry
            // (`plim-backends::annotate_bench`), which lives above this
            // crate; until annotated, a record carries the "skipped"
            // sentinel 0 in every per-target column.
            ambit_ops: 0,
            ambit_cost: 0,
            magic_ops: 0,
            magic_cost: 0,
            // The equality-saturation axis is measured by
            // `plim-egraph::annotate_bench`, which lives above this crate
            // (it compiles candidates through us); sentinel 0 = skipped.
            egraph_instructions: 0,
            egraph_rams: 0,
            // The fidelity axis is measured by the scenario engine
            // (`plim-scenario::annotate_bench`), which lives above this
            // crate; until annotated, a record claims no exhaustive proof.
            verified_exhaustive: false,
            fault_error_rate: 0.0,
            lifetime_invocations: 0,
            // Every artifact the batch produced must come back clean from
            // the static analyzer for the circuit to claim the column.
            lint_clean: jobs.iter().all(|job| job.lint_clean),
        });
    }
    BenchRun {
        rows,
        records,
        report,
    }
}

/// Accumulates the Σ row over measured rows.
pub fn totals(rows: &[MeasuredRow]) -> MeasuredRow {
    let zero = Point {
        nodes: 0,
        instructions: 0,
        rams: 0,
    };
    let mut sum = MeasuredRow {
        name: "Σ".to_string(),
        pi: 0,
        po: 0,
        naive: zero,
        rewritten: zero,
        compiled: zero,
    };
    for row in rows {
        sum.pi += row.pi;
        sum.po += row.po;
        for (acc, point) in [
            (&mut sum.naive, &row.naive),
            (&mut sum.rewritten, &row.rewritten),
            (&mut sum.compiled, &row.compiled),
        ] {
            acc.nodes += point.nodes;
            acc.instructions += point.instructions;
            acc.rams += point.rams;
        }
    }
    sum
}

/// Formats one row in the paper's Table 1 layout.
pub fn format_row(row: &MeasuredRow) -> String {
    format!(
        "{:<11} {:>4}/{:<4} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>7.2}% {:>6} {:>7.2}% | {:>8} {:>7.2}% {:>6} {:>7.2}%",
        row.name,
        row.pi,
        row.po,
        row.naive.nodes,
        row.naive.instructions,
        row.naive.rams,
        row.rewritten.nodes,
        row.rewritten.instructions,
        row.rewrite_instr_impr(),
        row.rewritten.rams,
        row.rewrite_ram_impr(),
        row.compiled.instructions,
        row.compiled_instr_impr(),
        row.compiled.rams,
        row.compiled_ram_impr(),
    )
}

/// The table header matching [`format_row`].
pub fn table_header() -> String {
    format!(
        "{:<11} {:>4}/{:<4} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>8} {:>6} {:>8} | {:>8} {:>8} {:>6} {:>8}\n{}",
        "Benchmark",
        "PI",
        "PO",
        "#N",
        "#I",
        "#R",
        "#N",
        "#I",
        "impr.",
        "#R",
        "impr.",
        "#I",
        "impr.",
        "#R",
        "impr.",
        "-".repeat(132)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_benchmarks::suite::{build, Scale};

    fn circuit(name: &str) -> Circuit {
        Circuit::new(name, build(name, Scale::Reduced).unwrap())
    }

    #[test]
    fn measure_produces_consistent_points() {
        let mig = build("adder", Scale::Reduced).unwrap();
        let row = measure("adder", &mig, 2);
        assert_eq!(row.pi, 16);
        assert_eq!(row.po, 9);
        assert!(row.naive.instructions >= row.naive.nodes);
        assert!(row.rewritten.nodes <= row.naive.nodes);
        // Rewriting must pay off on the AOIG-style adder.
        assert!(row.rewrite_instr_impr() > 0.0);
        assert!(row.compiled.instructions <= row.rewritten.instructions);
    }

    #[test]
    fn totals_accumulate() {
        let mig = build("dec", Scale::Reduced).unwrap();
        let row = measure("dec", &mig, 1);
        let sum = totals(&[row.clone(), row.clone()]);
        assert_eq!(sum.naive.instructions, 2 * row.naive.instructions);
        assert_eq!(sum.pi, 2 * row.pi);
    }

    #[test]
    fn formatting_has_fixed_shape() {
        let mig = build("ctrl", Scale::Reduced).unwrap();
        let row = measure("ctrl", &mig, 1);
        let line = format_row(&row);
        assert!(line.contains('|'));
        assert!(line.contains('%'));
        assert!(table_header().contains("Benchmark"));
    }

    #[test]
    fn batch_shares_rewrites_across_jobs() {
        let circuits = [circuit("ctrl"), circuit("dec")];
        let specs: Vec<JobSpec> = (0..2).flat_map(|c| measure_specs(c, 2)).collect();
        let report = run_batch(&circuits, &specs, Parallelism::Auto);
        assert_eq!(report.jobs.len(), 6);
        // Two circuits × one effort → two passes; each shared by one job.
        assert_eq!(report.rewrites.len(), 2);
        assert_eq!(report.rewrite_cache_hits, 2);
        assert!(report.summary().contains("6 jobs"));
    }

    #[test]
    fn batch_rows_match_serial_measure() {
        let circuits = [circuit("ctrl"), circuit("int2float"), circuit("router")];
        let suite = measure_suite(&circuits, 2, Parallelism::Threads(4));
        assert_eq!(suite.rows.len(), 3);
        for c in &circuits {
            let serial = measure(&c.name, &c.mig, 2);
            let batched = suite.rows.iter().find(|r| r.name == c.name).unwrap();
            assert_eq!(format_row(&serial), format_row(batched), "{}", c.name);
        }
        assert!(suite.row_time(0) <= suite.report.elapsed.max(suite.row_time(0)));
    }

    #[test]
    fn batch_order_is_independent_of_parallelism() {
        let circuits = [circuit("ctrl"), circuit("dec"), circuit("router")];
        let specs: Vec<JobSpec> = (0..3).flat_map(|c| measure_specs(c, 1)).collect();
        let serial = run_batch(&circuits, &specs, Parallelism::Serial);
        let parallel = run_batch(&circuits, &specs, Parallelism::Threads(8));
        for (s, p) in serial.jobs.iter().zip(&parallel.jobs) {
            assert_eq!(s.spec, p.spec);
            assert_eq!(s.compiled.stats, p.compiled.stats);
            assert_eq!(
                s.compiled.program.to_string(),
                p.compiled.program.to_string()
            );
        }
        assert_eq!(serial.rewrites.len(), parallel.rewrites.len());
        for (s, p) in serial.rewrites.iter().zip(&parallel.rewrites) {
            assert_eq!(
                (s.circuit, s.effort, s.nodes),
                (p.circuit, p.effort, p.nodes)
            );
        }
    }

    #[test]
    fn raw_jobs_do_not_trigger_rewrites() {
        let circuits = [circuit("ctrl")];
        let specs = [
            JobSpec::new(0, RewriteEffort::Raw, CompilerOptions::naive()),
            JobSpec::new(0, RewriteEffort::Raw, CompilerOptions::new()),
        ];
        let report = run_batch(&circuits, &specs, Parallelism::Serial);
        assert!(report.rewrites.is_empty());
        assert_eq!(report.rewrite_cache_hits, 0);
    }

    #[test]
    fn bench_suite_rows_match_measure_and_records_are_consistent() {
        let circuits = [circuit("ctrl"), circuit("router")];
        let run = bench_suite(&circuits, 2, Parallelism::Auto);
        assert_eq!(run.rows.len(), 2);
        assert_eq!(run.records.len(), 2);
        for (c, (row, record)) in circuits.iter().zip(run.rows.iter().zip(&run.records)) {
            let serial = measure(&c.name, &c.mig, 2);
            assert_eq!(format_row(&serial), format_row(row), "{}", c.name);
            assert_eq!(record.circuit, c.name);
            assert_eq!(record.instructions, row.compiled.instructions as u64);
            assert_eq!(record.rams, row.compiled.rams as u64);
            assert!(record.max_writes > 0);
            assert!(record.lookahead_rams > 0);
            assert!(record.wear_max_writes > 0);
            // Opt-level monotonicity: exactly what the bench gate enforces.
            assert!(record.o1_instructions <= record.instructions);
            assert!(record.o2_instructions <= record.instructions);
            assert!(record.o2_rams <= record.rams);
            assert!(record.o2_max_writes <= record.max_writes);
            assert!(record.rewrite_ms >= 0.0 && record.compile_ms > 0.0);
        }
        assert!(run.row_time(0) > Duration::ZERO);
        // Seven jobs per circuit, one shared rewrite pass each.
        assert_eq!(run.report.jobs.len(), 14);
        assert_eq!(run.report.rewrites.len(), 2);
    }

    #[test]
    #[should_panic(expected = "references circuit")]
    fn out_of_range_spec_panics() {
        let circuits = [circuit("ctrl")];
        let specs = [JobSpec::new(3, RewriteEffort::Raw, CompilerOptions::new())];
        run_batch(&circuits, &specs, Parallelism::Serial);
    }
}
