//! Static dataflow analysis over the IR event stream: the lint engine.
//!
//! One linear pass over [`IrProgram::events`] tracks a per-cell abstract
//! state — uninitialized / live / released / cached-complement — and turns
//! every violation of the machine's cell discipline into a numbered
//! [`Lint`] diagnostic instead of a hard error. The same state machine
//! backs three consumers:
//!
//! * [`passes::PassManager`](super::passes::PassManager) runs it after
//!   every pass as a translation-validation hook, wholesale-reverting any
//!   pass run that *introduces* a diagnostic;
//! * the `plim-analysis` crate re-exports it and layers program-level
//!   analysis and resource certification on top;
//! * `plimc lint` renders the diagnostics as text or JSON.
//!
//! The engine is deliberately total: it never panics on malformed streams
//! (unknown cells or op indexes become diagnostics too), so it can be
//! pointed at hand-doctored or hostile inputs where
//! [`IrProgram::check`]'s `Result` would stop at the first violation.

use std::fmt;

use mig::NodeId;

use crate::json::Value as Json;
use crate::options::OptLevel;

use super::{CellId, Event, IrOutput, IrProgram, Value};

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; reported, never fatal by
    /// default.
    Warning,
    /// A violation of the cell discipline; artifacts carrying one are
    /// rejected by default.
    Error,
}

impl Severity {
    /// Stable lowercase name (`"warning"` / `"error"`).
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The numbered lints the analyzer can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// `PA0001` — a cell is read (or an output taken) before it holds a
    /// value, or written before its lifetime begins.
    UseBeforeInit,
    /// `PA0002` — a cell is written or read after its release.
    UseAfterRelease,
    /// `PA0003` — a cell is released twice.
    DoubleRelease,
    /// `PA0004` — two simultaneously live lifetimes alias the same
    /// physical cell (the same lowering-pinned address), or one cell is
    /// requested twice. Cross-cell pinned overlap is only checked when
    /// [`AnalysisConfig::pinned_faithful`] is set: `-O2` forwarding merges
    /// lifetimes, after which pinned addresses are informational.
    PinnedAliasing,
    /// `PA0005` — a cached complement is read after its source cell was
    /// recomputed by an op carrying the *same* MIG-node provenance, so the
    /// complement may no longer match.
    StaleComplement,
    /// `PA0006` — a write no later read observes survived an optimized
    /// (`-O1+`) artifact; only checked when
    /// [`AnalysisConfig::expect_optimized`] is set.
    DeadWrite,
    /// `PA0007` — a release of a cell whose lifetime never began.
    ReleaseNeverRequested,
    /// `PA0008` — statically re-derived resources (#I, #R, per-cell wear)
    /// disagree with the recorded `Rm3Stats`; reported by the
    /// certification layer in `plim-analysis`, never by
    /// [`analyze_events`].
    StatsMismatch,
}

/// Number of distinct lints (the length of [`Lint::ALL`]).
pub const LINT_COUNT: usize = 8;

impl Lint {
    /// Every lint, in code order.
    pub const ALL: [Lint; LINT_COUNT] = [
        Lint::UseBeforeInit,
        Lint::UseAfterRelease,
        Lint::DoubleRelease,
        Lint::PinnedAliasing,
        Lint::StaleComplement,
        Lint::DeadWrite,
        Lint::ReleaseNeverRequested,
        Lint::StatsMismatch,
    ];

    /// The stable diagnostic code (`"PA0001"` …).
    pub fn code(self) -> &'static str {
        match self {
            Lint::UseBeforeInit => "PA0001",
            Lint::UseAfterRelease => "PA0002",
            Lint::DoubleRelease => "PA0003",
            Lint::PinnedAliasing => "PA0004",
            Lint::StaleComplement => "PA0005",
            Lint::DeadWrite => "PA0006",
            Lint::ReleaseNeverRequested => "PA0007",
            Lint::StatsMismatch => "PA0008",
        }
    }

    /// Short kebab-case name used in reports and `--deny`/`--allow`.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UseBeforeInit => "use-before-init",
            Lint::UseAfterRelease => "use-after-release",
            Lint::DoubleRelease => "double-release",
            Lint::PinnedAliasing => "pinned-aliasing",
            Lint::StaleComplement => "stale-complement",
            Lint::DeadWrite => "dead-write",
            Lint::ReleaseNeverRequested => "release-never-requested",
            Lint::StatsMismatch => "stats-mismatch",
        }
    }

    /// Default severity.
    pub fn severity(self) -> Severity {
        match self {
            Lint::StaleComplement | Lint::DeadWrite => Severity::Warning,
            _ => Severity::Error,
        }
    }

    /// Looks a lint up by code (`"PA0001"`) or name
    /// (`"use-before-init"`), case-sensitively.
    pub fn from_code(text: &str) -> Option<Lint> {
        Lint::ALL
            .into_iter()
            .find(|lint| lint.code() == text || lint.name() == text)
    }

    /// The lint's ordinal in [`Lint::ALL`] (stable, used for counting).
    pub fn ordinal(self) -> usize {
        Lint::ALL
            .iter()
            .position(|&l| l == self)
            .expect("every lint is in ALL")
    }
}

/// One analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub lint: Lint,
    /// Position in [`IrProgram::events`] (absent for end-of-program
    /// findings such as undefined outputs).
    pub event: Option<usize>,
    /// The cell at fault, when there is a single one.
    pub cell: Option<CellId>,
    /// Source-MIG provenance of the offending op, when known.
    pub node: Option<NodeId>,
    /// Human-readable, one-line description.
    pub message: String,
}

impl Diagnostic {
    /// Renders the diagnostic as a JSON object (the `plimc lint --json`
    /// element format).
    pub fn to_json(&self) -> Json {
        let opt_num = |v: Option<u64>| match v {
            Some(n) => Json::number(n),
            None => Json::Null,
        };
        Json::object([
            ("lint", Json::string(self.lint.code())),
            ("name", Json::string(self.lint.name())),
            ("severity", Json::string(self.lint.severity().name())),
            ("event", opt_num(self.event.map(|e| e as u64))),
            ("cell", opt_num(self.cell.map(|c| u64::from(c.0)))),
            ("node", opt_num(self.node.map(|n| n.index() as u64))),
            ("message", Json::string(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.lint.severity().name(),
            self.lint.code(),
            self.message
        )?;
        if let Some(node) = self.node {
            write!(f, " (node N{})", node.index())?;
        }
        Ok(())
    }
}

/// What the analyzer checks beyond the always-on structural lints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Check cross-cell pinned-address aliasing (`PA0004`). Sound for
    /// streams whose lowering-pinned addresses are still meaningful —
    /// i.e. anything up to `-O1`; `-O2` forwarding merges lifetimes and
    /// re-derives addresses at emission.
    pub pinned_faithful: bool,
    /// Report writes no later read observes (`PA0006`). Only meaningful
    /// for artifacts a dead-write pass has already swept (`-O1+`).
    pub expect_optimized: bool,
}

impl AnalysisConfig {
    /// Only the always-on structural lints — what the pass-pipeline
    /// translation-validation hook runs, since `PA0004`/`PA0006` are
    /// transiently violated mid-pipeline by design.
    pub fn structural() -> Self {
        AnalysisConfig {
            pinned_faithful: false,
            expect_optimized: false,
        }
    }

    /// The full check set appropriate for a finished artifact compiled at
    /// `opt`.
    pub fn for_level(opt: OptLevel) -> Self {
        AnalysisConfig {
            pinned_faithful: opt != OptLevel::O2,
            expect_optimized: opt >= OptLevel::O1,
        }
    }
}

/// Per-cell abstract state of the linear dataflow pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    Uninit,
    Requested,
    Live,
    Released,
}

/// A recorded cached complement: `cell` holds `¬source`, materialized for
/// MIG node `node`; `stale` is set when `source` is recomputed under the
/// same provenance.
#[derive(Debug, Clone, Copy)]
struct Complement {
    source: CellId,
    node: NodeId,
    stale: bool,
}

/// Runs the analyzer over the event stream and returns every finding, in
/// event order (end-of-program findings last).
///
/// A structurally valid stream ([`IrProgram::check`] passes) can still
/// carry `PA0004`–`PA0006` findings; conversely every `check` error maps
/// to one of the structural lints, so `analyze_events(..).is_empty()`
/// implies `check().is_ok()`.
pub fn analyze_events(ir: &IrProgram, config: &AnalysisConfig) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut state = vec![CellState::Uninit; ir.cells.len()];
    let mut complement: Vec<Option<Complement>> = vec![None; ir.cells.len()];
    // The constant a cell provably holds, fed by masking writes only. Used
    // to recognize the complement-materialization idiom (reset, then
    // `z ← ⟨1 s̄ z⟩` over the known-zero cell): a *main* RM3 can carry the
    // same operand shape, but never over a known-zero destination.
    let mut known: Vec<Option<bool>> = vec![None; ir.cells.len()];
    // Physical address -> currently live virtual cell, per the lowering's
    // pinned assignment (only consulted under `pinned_faithful`).
    let mut pinned_live: Vec<Option<CellId>> = Vec::new();
    if config.pinned_faithful {
        let slots = ir
            .cells
            .iter()
            .map(|cell| cell.pinned.index() + 1)
            .max()
            .unwrap_or(0);
        pinned_live = vec![None; slots];
    }

    for (pos, &event) in ir.events.iter().enumerate() {
        match event {
            Event::Request(c) => {
                let Some(s) = state.get_mut(c.index()) else {
                    diags.push(unknown_cell(pos, c));
                    continue;
                };
                if *s != CellState::Uninit {
                    diags.push(Diagnostic {
                        lint: Lint::PinnedAliasing,
                        event: Some(pos),
                        cell: Some(c),
                        node: None,
                        message: format!("event {pos}: %{} requested while already live", c.0),
                    });
                }
                *s = CellState::Requested;
                complement[c.index()] = None;
                known[c.index()] = None;
                if config.pinned_faithful {
                    let addr = ir.cells[c.index()].pinned.index();
                    if let Some(other) = pinned_live[addr] {
                        if other != c {
                            diags.push(Diagnostic {
                                lint: Lint::PinnedAliasing,
                                event: Some(pos),
                                cell: Some(c),
                                node: None,
                                message: format!(
                                    "event {pos}: %{} and live %{} alias physical cell X{addr}",
                                    c.0, other.0
                                ),
                            });
                        }
                    }
                    pinned_live[addr] = Some(c);
                }
            }
            Event::Release(c) => {
                let Some(s) = state.get_mut(c.index()) else {
                    diags.push(unknown_cell(pos, c));
                    continue;
                };
                match *s {
                    CellState::Uninit => diags.push(Diagnostic {
                        lint: Lint::ReleaseNeverRequested,
                        event: Some(pos),
                        cell: Some(c),
                        node: None,
                        message: format!("event {pos}: %{} released but never requested", c.0),
                    }),
                    CellState::Released => diags.push(Diagnostic {
                        lint: Lint::DoubleRelease,
                        event: Some(pos),
                        cell: Some(c),
                        node: None,
                        message: format!("event {pos}: %{} released twice", c.0),
                    }),
                    CellState::Requested | CellState::Live => {}
                }
                *s = CellState::Released;
                if config.pinned_faithful {
                    let addr = ir.cells[c.index()].pinned.index();
                    if pinned_live[addr] == Some(c) {
                        pinned_live[addr] = None;
                    }
                }
            }
            Event::Op(i) => {
                let Some(op) = ir.ops.get(i as usize) else {
                    diags.push(Diagnostic {
                        lint: Lint::UseBeforeInit,
                        event: Some(pos),
                        cell: None,
                        node: None,
                        message: format!("event {pos}: references unknown op {i}"),
                    });
                    continue;
                };
                for c in op.reads() {
                    match state.get(c.index()).copied() {
                        Some(CellState::Live) => {
                            if let Some(entry) = complement.get(c.index()).and_then(|e| *e) {
                                if entry.stale {
                                    diags.push(Diagnostic {
                                        lint: Lint::StaleComplement,
                                        event: Some(pos),
                                        cell: Some(c),
                                        node: op.node,
                                        message: format!(
                                            "event {pos}: op reads %{} caching ¬%{}, \
                                             but %{} was recomputed since",
                                            c.0, entry.source.0, entry.source.0
                                        ),
                                    });
                                }
                            }
                        }
                        Some(CellState::Uninit | CellState::Requested) => {
                            diags.push(Diagnostic {
                                lint: Lint::UseBeforeInit,
                                event: Some(pos),
                                cell: Some(c),
                                node: op.node,
                                message: format!(
                                    "event {pos}: op reads %{} which holds no value",
                                    c.0
                                ),
                            });
                        }
                        Some(CellState::Released) => {
                            diags.push(Diagnostic {
                                lint: Lint::UseAfterRelease,
                                event: Some(pos),
                                cell: Some(c),
                                node: op.node,
                                message: format!(
                                    "event {pos}: op reads %{} after its release",
                                    c.0
                                ),
                            });
                        }
                        None => diags.push(unknown_cell(pos, c)),
                    }
                }
                let Some(s) = state.get_mut(op.z.index()) else {
                    diags.push(unknown_cell(pos, op.z));
                    continue;
                };
                match *s {
                    CellState::Uninit => diags.push(Diagnostic {
                        lint: Lint::UseBeforeInit,
                        event: Some(pos),
                        cell: Some(op.z),
                        node: op.node,
                        message: format!(
                            "event {pos}: op writes %{} before its lifetime begins",
                            op.z.0
                        ),
                    }),
                    CellState::Released => diags.push(Diagnostic {
                        lint: Lint::UseAfterRelease,
                        event: Some(pos),
                        cell: Some(op.z),
                        node: op.node,
                        message: format!("event {pos}: op writes %{} after its release", op.z.0),
                    }),
                    CellState::Requested | CellState::Live => {}
                }
                *s = CellState::Live;
                // `⟨x x̄ z⟩` with equal constants is an identity write: the
                // value is untouched, so neither the complement map nor the
                // known-constant map moves.
                let identity = matches!((op.a, op.b), (Value::Const(x), Value::Const(y)) if x == y);
                if !identity {
                    // Cached-complement bookkeeping. The materialization
                    // idiom is `z ← ⟨1 s̄ z⟩` over a freshly *reset* cell —
                    // that and only that computes ¬s. The same operand
                    // shape on a cell holding a meaningful value is an
                    // ordinary majority op.
                    let was_zero = known[op.z.index()] == Some(false);
                    complement[op.z.index()] = match (op.a, op.b, op.node) {
                        (Value::Const(true), Value::Cell(source), Some(node)) if was_zero => {
                            Some(Complement {
                                source,
                                node,
                                stale: false,
                            })
                        }
                        _ => None,
                    };
                    known[op.z.index()] = match (op.a, op.b) {
                        (Value::Const(x), Value::Const(y)) if x != y => Some(x),
                        _ => None,
                    };
                    // A value-changing write under node provenance `n`
                    // invalidates cached complements of the same cell *for
                    // the same node*: that is a recomputation, which
                    // correct lowering never emits while the complement is
                    // still consumed. Forwarding retargets carry the *new*
                    // node's provenance and so never trip this.
                    if let Some(node) = op.node {
                        for (index, entry) in complement.iter_mut().enumerate() {
                            if index == op.z.index() {
                                continue;
                            }
                            if let Some(entry) = entry {
                                if entry.source == op.z && entry.node == node {
                                    entry.stale = true;
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    for (name, output) in &ir.outputs {
        if let IrOutput::Cell(c) = output {
            if state.get(c.index()).copied() != Some(CellState::Live) {
                diags.push(Diagnostic {
                    lint: Lint::UseBeforeInit,
                    event: None,
                    cell: Some(*c),
                    node: None,
                    message: format!(
                        "output `{name}` reads %{} which is not live at program end",
                        c.0
                    ),
                });
            }
        }
    }

    if config.expect_optimized {
        dead_writes(ir, &mut diags);
    }

    diags.sort_by_key(|d| (d.event.unwrap_or(usize::MAX), d.lint.ordinal()));
    diags
}

/// The backward liveness sweep of the `dead-write` pass, reporting instead
/// of removing: every op it would delete becomes a `PA0006` finding.
fn dead_writes(ir: &IrProgram, diags: &mut Vec<Diagnostic>) {
    let mut needed = vec![false; ir.cells.len()];
    for (_, output) in &ir.outputs {
        if let IrOutput::Cell(c) = output {
            if let Some(slot) = needed.get_mut(c.index()) {
                *slot = true;
            }
        }
    }
    for pos in (0..ir.events.len()).rev() {
        let Some(op) = ir.op_of(ir.events[pos]) else {
            continue;
        };
        let Some(&z_needed) = needed.get(op.z.index()) else {
            continue; // unknown cell: already reported by the forward pass
        };
        if !z_needed {
            diags.push(Diagnostic {
                lint: Lint::DeadWrite,
                event: Some(pos),
                cell: Some(op.z),
                node: op.node,
                message: format!(
                    "event {pos}: write to %{} is never read (dead write in an optimized stream)",
                    op.z.0
                ),
            });
            continue;
        }
        needed[op.z.index()] = !op.masking();
        for value in [op.a, op.b] {
            if let Value::Cell(c) = value {
                if let Some(slot) = needed.get_mut(c.index()) {
                    *slot = true;
                }
            }
        }
    }
}

fn unknown_cell(pos: usize, c: CellId) -> Diagnostic {
    Diagnostic {
        lint: Lint::UseBeforeInit,
        event: Some(pos),
        cell: Some(c),
        node: None,
        message: format!("event {pos}: references unknown cell %{}", c.0),
    }
}

/// Per-lint finding counts, indexed by [`Lint::ordinal`].
pub fn lint_counts(diags: &[Diagnostic]) -> [usize; LINT_COUNT] {
    let mut counts = [0usize; LINT_COUNT];
    for diag in diags {
        counts[diag.lint.ordinal()] += 1;
    }
    counts
}

/// Whether `after` carries more findings of any lint than `before` — the
/// pass-pipeline revert criterion.
pub fn introduces(before: &[usize; LINT_COUNT], after: &[usize; LINT_COUNT]) -> bool {
    before.iter().zip(after.iter()).any(|(b, a)| a > b)
}
