//! Emission: IR → physical [`plim::Program`].
//!
//! The emitter replays the IR's event stream through a fresh
//! [`RramAllocator`] of the program's strategy: a [`Event::Request`]
//! assigns the virtual cell a physical address, a [`Event::Release`]
//! returns it to the free pool, and every [`Event::Op`] becomes one RM3
//! instruction whose destination write is recorded on the allocator's
//! per-cell counters — the same funnel the lowering used, so
//! `max_cell_writes` stays exactly equal to the program's static endurance
//! profile no matter what the passes did to the stream.
//!
//! On an unedited stream the replay performs the identical
//! request/release/write sequence the lowering performed, so `-O0` output
//! is byte-identical to the historical single-step translator — listing
//! comments included, which is why ops carry only the comment's right-hand
//! side and the emitter re-renders the `X<addr> ←` prefix from the replayed
//! address.

use plim::{Instruction, Operand, OutputLoc, Program, RamAddr};

use crate::alloc::RramAllocator;
use crate::program::{Rm3Program, Rm3Stats};

use super::{Event, IrOutput, IrProgram, Value};

/// Replays only the allocator, returning `(#I, #R, max-cell-writes)`
/// without building the program (no listing strings) — the quality gate
/// the pass pipeline consults per trial edit, where full emission would
/// dominate compile time.
pub(crate) fn replay_metrics(ir: &IrProgram) -> (usize, u32, u64) {
    let mut alloc = RramAllocator::new(ir.allocator);
    let mut addr: Vec<Option<RamAddr>> = vec![None; ir.cells.len()];
    let mut instructions = 0usize;
    let mut rams = 0u32;
    for &event in &ir.events {
        match event {
            Event::Request(c) => {
                addr[c.index()] = Some(alloc.request_with_hint(ir.cells[c.index()].hint));
            }
            Event::Release(c) => {
                let a = addr[c.index()].take().expect("release before request");
                alloc.release(a);
            }
            Event::Op(i) => {
                let op = &ir.ops[i as usize];
                let z = addr[op.z.index()].expect("write outside cell lifetime");
                instructions += 1;
                alloc.note_write(z);
                rams = rams.max(z.0 + 1);
                for value in [op.a, op.b] {
                    if let Value::Cell(c) = value {
                        let a = addr[c.index()].expect("read outside cell lifetime");
                        rams = rams.max(a.0 + 1);
                    }
                }
            }
        }
    }
    (instructions, rams, alloc.max_writes())
}

/// Replays the IR into an executable program with its cost metrics.
///
/// # Panics
///
/// Panics if the event stream is malformed (an op touching a cell outside
/// its request/release span); run [`IrProgram::check`] first when in doubt
/// — the pass pipeline does so after every pass.
pub fn emit(ir: &IrProgram) -> Rm3Program {
    let mut alloc = RramAllocator::new(ir.allocator);
    let mut addr: Vec<Option<RamAddr>> = vec![None; ir.cells.len()];
    let mut program = Program::new(ir.num_inputs);
    let mut peak_live = 0usize;

    let operand = |value: Value, addr: &[Option<RamAddr>]| match value {
        Value::Const(v) => Operand::Const(v),
        Value::Input(i) => Operand::Input(i),
        Value::Cell(c) => Operand::Ram(addr[c.index()].expect("read outside cell lifetime")),
    };

    for &event in &ir.events {
        match event {
            Event::Request(c) => {
                let a = alloc.request_with_hint(ir.cells[c.index()].hint);
                addr[c.index()] = Some(a);
                peak_live = peak_live.max(alloc.num_live());
            }
            Event::Release(c) => {
                let a = addr[c.index()].take().expect("release before request");
                alloc.release(a);
            }
            Event::Op(i) => {
                let op = &ir.ops[i as usize];
                let z = addr[op.z.index()].expect("write outside cell lifetime");
                let instruction = Instruction::new(operand(op.a, &addr), operand(op.b, &addr), z);
                alloc.note_write(z);
                program.push_commented(instruction, format!("X{} ← {}", z.0 + 1, op.rhs));
            }
        }
    }

    for (name, output) in &ir.outputs {
        let loc = match *output {
            IrOutput::Cell(c) => {
                OutputLoc::Ram(addr[c.index()].expect("output cell released before program end"))
            }
            IrOutput::Input {
                index,
                complemented,
            } => OutputLoc::Input {
                index,
                complemented,
            },
            IrOutput::Const(v) => OutputLoc::Const(v),
        };
        program.add_output(name.clone(), loc);
    }

    let stats = Rm3Stats {
        instructions: program.len(),
        rams: program.num_rams(),
        mig_nodes: ir.mig_nodes,
        peak_live,
        max_cell_writes: alloc.max_writes(),
    };
    Rm3Program { program, stats }
}
