//! The PLiM intermediate representation: the compiler's middle end.
//!
//! Translation is split into three phases. [`lower`] runs the scheduler and
//! the per-node operand selection exactly as before, but records the result
//! as an [`IrProgram`] instead of a finished [`plim::Program`]: RM3-shaped
//! ops over **virtual cells** ([`CellId`]), each spanning one allocator
//! request/release lifetime, together with the full allocation event stream
//! and the source-MIG provenance of every op. [`passes::PassManager`] then
//! rewrites the stream (dead-write elimination, redundant-initialization
//! removal, in-place-overwrite forwarding, peepholes) under the
//! [`crate::OptLevel`] selected in [`crate::CompilerOptions`], and [`emit`]
//! replays the event stream through a fresh [`crate::alloc::RramAllocator`]
//! to rebuild the physical program — including the exact per-cell write
//! counters the endurance model depends on.
//!
//! At `-O0` no pass runs and the replay reproduces the historical
//! single-step translator byte for byte (listing and asm); that identity is
//! pinned by golden files in `tests/ir_passes.rs`.
//!
//! The IR exists so that instruction-stream optimizations can see what no
//! scheduler can: *physical* cell liveness. The lowering's reference counts
//! overestimate lifetimes — a consumer that reads a cached complement never
//! touches the value cell itself — and the pass pipeline harvests exactly
//! that slack.

use std::fmt::Write as _;

use mig::NodeId;
use plim::RamAddr;

use crate::lifetime::LifetimeClass;
use crate::options::AllocatorStrategy;

pub mod analysis;
mod emit;
mod lower;
pub mod passes;

pub use emit::emit;
pub(crate) use emit::replay_metrics;
pub use lower::lower;

/// A virtual work cell: one allocator request/release lifetime.
///
/// Unlike a physical [`RamAddr`], a virtual cell is never reused — every
/// allocator request during lowering mints a fresh one — so def/use
/// reasoning in the passes is free of false physical aliasing. A cell may
/// still be *written* several times within its lifetime (materialization,
/// the node's main RM3, in-place overwrites by later nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl CellId {
    /// The raw index into [`IrProgram::cells`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An IR operand: what an RM3 slot reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    /// A constant 0/1 applied to the array terminal.
    Const(bool),
    /// Primary input with the given index.
    Input(u32),
    /// A virtual work cell.
    Cell(CellId),
}

impl Value {
    /// The cell this operand reads, if any.
    #[inline]
    pub fn cell(self) -> Option<CellId> {
        match self {
            Value::Cell(c) => Some(c),
            _ => None,
        }
    }
}

/// One RM3-shaped IR op: `z ← ⟨a b̄ z⟩`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrOp {
    /// First operand (read plain).
    pub a: Value,
    /// Second operand (inverted intrinsically by the write).
    pub b: Value,
    /// Destination cell; its old value is the third majority input unless
    /// the op is [masking](IrOp::masking).
    pub z: CellId,
    /// Right-hand side of the listing comment (`N46`, `¬i3`, `1`, …); the
    /// emitter renders the full `X<addr> ← <rhs>` comment from it, so
    /// comments stay correct when a pass retargets the destination.
    pub rhs: String,
    /// The source-MIG node this op helps compute, when known (main ops
    /// carry their own node, materializations the node they copy or
    /// complement).
    pub node: Option<NodeId>,
}

impl IrOp {
    /// `true` when the result is independent of the destination's old value:
    /// both operands are constants and they differ (the reset/set idioms).
    #[inline]
    pub fn masking(&self) -> bool {
        matches!((self.a, self.b), (Value::Const(x), Value::Const(y)) if x != y)
    }

    /// The cells this op reads: `a`, `b`, plus `z`'s old value unless the
    /// op is masking.
    pub fn reads(&self) -> impl Iterator<Item = CellId> + '_ {
        let z_old = if self.masking() { None } else { Some(self.z) };
        self.a.cell().into_iter().chain(self.b.cell()).chain(z_old)
    }
}

/// A virtual cell's lowering-time metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrCell {
    /// The physical address the lowering allocator chose. Informational
    /// after optimization (the emitter re-derives addresses by replaying
    /// the event stream), but at `-O0` the replay reproduces it exactly.
    pub pinned: RamAddr,
    /// Allocation hint replayed to lifetime-aware strategies.
    pub hint: LifetimeClass,
}

/// One entry of the program's ordered event stream.
///
/// The stream is the single source of truth for both instruction order and
/// allocator behavior: emission replays it verbatim, so two IR programs
/// with equal streams produce byte-identical machine programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Execute [`IrProgram::ops`]`[index]`.
    Op(u32),
    /// The cell's lifetime begins: the allocator assigns it a physical
    /// address here.
    Request(CellId),
    /// The cell's lifetime ends: its physical address returns to the free
    /// pool. Cells still holding values at program end (outputs) have no
    /// release.
    Release(CellId),
}

/// Where a primary output lives at program end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrOutput {
    /// In a work cell.
    Cell(CellId),
    /// Equal to a primary input (possibly complemented).
    Input {
        /// Input index.
        index: u32,
        /// Whether the output is the input's complement.
        complemented: bool,
    },
    /// A constant.
    Const(bool),
}

/// A lowered PLiM program in IR form.
#[derive(Debug, Clone)]
pub struct IrProgram {
    /// Primary inputs the program reads.
    pub num_inputs: usize,
    /// Op storage; program order is defined by [`IrProgram::events`], so an
    /// op a pass deleted simply has no event referencing it.
    pub ops: Vec<IrOp>,
    /// Virtual-cell metadata, indexed by [`CellId`].
    pub cells: Vec<IrCell>,
    /// The ordered op/request/release stream.
    pub events: Vec<Event>,
    /// Primary outputs, in declaration order.
    pub outputs: Vec<(String, IrOutput)>,
    /// Number of MIG majority nodes the lowering translated (`#N`).
    pub mig_nodes: usize,
    /// Allocation strategy replayed at emission.
    pub allocator: AllocatorStrategy,
}

impl IrProgram {
    /// Number of instructions the program currently emits (`#I`).
    pub fn num_instructions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Event::Op(_)))
            .count()
    }

    /// The op behind an event, if it is an [`Event::Op`].
    pub(crate) fn op_of(&self, event: Event) -> Option<&IrOp> {
        match event {
            Event::Op(i) => Some(&self.ops[i as usize]),
            _ => None,
        }
    }

    /// Structurally verifies the program; run after every pass.
    ///
    /// Checks, per cell: exactly one request (before every other touch), at
    /// most one release (after every other touch), no reads of undefined
    /// values (the machine's initialization discipline, lifted to virtual
    /// cells), and that output cells are defined at program end.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the first violation.
    pub fn check(&self) -> Result<(), String> {
        #[derive(Clone, Copy, PartialEq)]
        enum State {
            Unborn,
            Requested,
            Defined,
            Released,
        }
        let mut state = vec![State::Unborn; self.cells.len()];
        for (pos, &event) in self.events.iter().enumerate() {
            match event {
                Event::Request(c) => {
                    let s = state
                        .get_mut(c.index())
                        .ok_or(format!("event {pos}: unknown cell %{}", c.0))?;
                    if *s != State::Unborn {
                        return Err(format!("event {pos}: %{} requested twice", c.0));
                    }
                    *s = State::Requested;
                }
                Event::Release(c) => {
                    let s = state
                        .get_mut(c.index())
                        .ok_or(format!("event {pos}: unknown cell %{}", c.0))?;
                    if !matches!(*s, State::Requested | State::Defined) {
                        return Err(format!("event {pos}: %{} released while not live", c.0));
                    }
                    *s = State::Released;
                }
                Event::Op(i) => {
                    let op = self
                        .ops
                        .get(i as usize)
                        .ok_or(format!("event {pos}: unknown op {i}"))?;
                    for c in op.reads() {
                        match state.get(c.index()) {
                            Some(State::Defined) => {}
                            Some(_) => {
                                return Err(format!(
                                    "event {pos}: op reads %{} which holds no value",
                                    c.0
                                ))
                            }
                            None => return Err(format!("event {pos}: unknown cell %{}", c.0)),
                        }
                    }
                    match state.get_mut(op.z.index()) {
                        Some(s @ (State::Requested | State::Defined)) => *s = State::Defined,
                        Some(_) => {
                            return Err(format!(
                                "event {pos}: op writes %{} outside its lifetime",
                                op.z.0
                            ))
                        }
                        None => return Err(format!("event {pos}: unknown cell %{}", op.z.0)),
                    }
                }
            }
        }
        for (name, output) in &self.outputs {
            if let IrOutput::Cell(c) = output {
                match state.get(c.index()) {
                    Some(State::Defined) => {}
                    _ => {
                        return Err(format!(
                            "output `{name}` reads %{} which is not live at program end",
                            c.0
                        ))
                    }
                }
            }
        }
        Ok(())
    }

    /// Renders the program in the stable `plimc --emit ir` text form: a
    /// header, one instruction per line with its def/use annotation and
    /// provenance comment, and the output directory.
    ///
    /// ```text
    /// .ir v1
    /// .inputs 3
    /// .cells 2
    /// 0001: rm3(1, 0, %0)        def %0          ; 1
    /// 0002: rm3(i2, 1, %0)       def %0 use %0   ; i2
    /// .output f = %0
    /// ```
    pub fn dump(&self) -> String {
        let mut out = String::from(".ir v1\n");
        let _ = writeln!(out, ".inputs {}", self.num_inputs);
        let _ = writeln!(out, ".cells {}", self.cells.len());
        let total = self.num_instructions();
        let width = total.to_string().len().max(2);
        let value = |v: &Value| match v {
            Value::Const(x) => format!("{}", *x as u8),
            Value::Input(i) => format!("i{}", i + 1),
            Value::Cell(c) => format!("%{}", c.0),
        };
        let mut index = 0usize;
        for &event in &self.events {
            let Some(op) = self.op_of(event) else {
                continue;
            };
            index += 1;
            let text = format!("rm3({}, {}, %{})", value(&op.a), value(&op.b), op.z.0);
            let mut defuse = format!("def %{}", op.z.0);
            let uses: Vec<String> = op.reads().map(|c| format!("%{}", c.0)).collect();
            if !uses.is_empty() {
                let _ = write!(defuse, " use {}", uses.join(" "));
            }
            let _ = writeln!(out, "{index:0width$}: {text:<26} {defuse:<24} ; {}", op.rhs);
        }
        for (name, output) in &self.outputs {
            let loc = match output {
                IrOutput::Cell(c) => format!("%{}", c.0),
                IrOutput::Input {
                    index,
                    complemented,
                } => format!("{}i{}", if *complemented { "!" } else { "" }, index + 1),
                IrOutput::Const(v) => format!("{}", *v as u8),
            };
            let _ = writeln!(out, ".output {name} = {loc}");
        }
        out
    }
}
