//! Lowering: MIG → IR (scheduling + node translation, §4.2 of the paper).
//!
//! This phase owns everything the original single-step translator did —
//! candidate scheduling (§4.2.1), the smart per-node operand selection of
//! §4.2.2 with its complement cache, and RRAM allocation (§4.2.3) — but
//! records the result as an [`IrProgram`]: every allocator request mints a
//! fresh virtual cell, every instruction becomes an [`IrOp`] over virtual
//! cells, and the interleaved request/op/release stream is kept verbatim so
//! emission can replay it.
//!
//! Each majority node `⟨c₀ c₁ c₂⟩` is translated into at least one RM3
//! instruction `Z ← ⟨A B̄ Z⟩`:
//!
//! * operand **B** is read inverted by the hardware, so a complemented child
//!   edge is "free" there;
//! * destination **Z** must already hold the third child's value and is
//!   overwritten, so reusing a child RRAM is only safe when nobody else
//!   still needs it;
//! * operand **A** is read plain.
//!
//! Children that do not fit their slot cost extra instructions (constant
//! loads, copies, complement materializations) and possibly extra RRAMs.
//! The smart selection implements the case analyses of Fig. 5 (operand B,
//! cases a–h), Fig. 6 (destination Z, cases a–e) and §4.2.2 (operand A,
//! cases a–d), including the *complement cache*: once a child's inverted
//! value has been materialized in an RRAM, it is remembered for future use.

use mig::{Mig, MigNode, NodeId, Signal};
use plim::{Instruction, Operand, RamAddr};

use crate::alloc::RramAllocator;
use crate::candidate::{CandidateQueue, Priorities};
use crate::lifetime::{LifetimeClass, Lifetimes};
use crate::options::{CompilerOptions, OperandSelection, ScheduleOrder};

use super::{CellId, Event, IrCell, IrOp, IrOutput, IrProgram, Value};

/// How many heap-best candidates the lookahead schedule examines per step.
/// Small enough to keep scheduling near-linear, large enough to let the
/// net-release score overrule a stale or myopic heap key.
const LOOKAHEAD_WINDOW: usize = 8;

/// Lowers an MIG into the PLiM IR under the given options (the
/// [`crate::OptLevel`] is ignored here — it selects the passes that run
/// *after* lowering).
///
/// Dangling nodes (unreachable from every primary output) are not
/// translated.
pub fn lower(mig: &Mig, options: CompilerOptions) -> IrProgram {
    let reachable = reachable_majority(mig);
    let lifetimes = Lifetimes::compute(mig);
    let mut translator = Translator::new(mig, options, &lifetimes);
    let mut translated = 0usize;

    match options.schedule {
        ScheduleOrder::Index => {
            for id in mig.majority_ids() {
                if reachable[id.index()] {
                    translator.translate_node(id);
                    translated += 1;
                }
            }
        }
        ScheduleOrder::Priority => {
            translated = run_priority_schedule(mig, &lifetimes, &reachable, &mut translator);
        }
        ScheduleOrder::Lookahead => {
            translated = run_lookahead_schedule(mig, &lifetimes, &reachable, &mut translator);
        }
    }

    let mut ir = translator.finalize();
    ir.mig_nodes = translated;
    ir
}

/// Seeds the candidate queue and the pending-children counters with every
/// reachable majority node whose children are all computed.
fn seed_candidates(
    mig: &Mig,
    priorities: &Priorities,
    reachable: &[bool],
    queue: &mut CandidateQueue,
) -> Vec<u32> {
    let mut uncomputed_children = vec![0u32; mig.len()];
    for id in mig.node_ids() {
        if !reachable[id.index()] {
            continue;
        }
        if let MigNode::Majority(children) = mig.node(id) {
            let pending = children
                .iter()
                .filter(|c| mig.node(c.node()).is_majority())
                .count() as u32;
            uncomputed_children[id.index()] = pending;
            if pending == 0 {
                queue.enqueue(priorities.candidate(id));
            }
        }
    }
    uncomputed_children
}

/// Algorithm 2: maintain a priority queue of candidates (nodes whose
/// children are all computed); repeatedly pop the best candidate, translate
/// it, and enqueue parents that become computable.
fn run_priority_schedule(
    mig: &Mig,
    lifetimes: &Lifetimes,
    reachable: &[bool],
    translator: &mut Translator<'_>,
) -> usize {
    let priorities = Priorities::from_lifetimes(mig, lifetimes);
    let fanouts = mig.fanouts();
    let mut queue = CandidateQueue::new();
    let mut uncomputed_children = seed_candidates(mig, &priorities, reachable, &mut queue);

    let mut translated = 0usize;
    while let Some(mut candidate) = queue.pop() {
        // Lazy dynamic-priority update: the releasing-children count grows
        // as parents are computed, so a stale entry may understate its
        // priority. Refresh and requeue instead of translating.
        let current = translator.releasing_now(candidate.id);
        if current > candidate.releasing_children {
            candidate.releasing_children = current;
            queue.requeue(candidate);
            continue;
        }
        translator.translate_node(candidate.id);
        translated += 1;
        for &parent in &fanouts[candidate.id.index()] {
            if !reachable[parent.index()] {
                continue;
            }
            let pending = &mut uncomputed_children[parent.index()];
            debug_assert!(*pending > 0, "parent counted twice");
            *pending -= 1;
            if *pending == 0 {
                queue.enqueue(priorities.candidate(parent));
            }
        }
    }
    translated
}

/// The lifetime-driven lookahead schedule: like the priority schedule, but
/// each step examines a window of heap-best candidates and picks the one
/// with the best *net* RRAM effect right now — cells actually freed by
/// translating it (value cells and cached complements of dying children),
/// minus a cell when no child can be overwritten in place — breaking ties
/// toward the candidate that unlocks the biggest release one step later.
fn run_lookahead_schedule(
    mig: &Mig,
    lifetimes: &Lifetimes,
    reachable: &[bool],
    translator: &mut Translator<'_>,
) -> usize {
    let priorities = Priorities::from_lifetimes(mig, lifetimes);
    let fanouts = mig.fanouts();
    let mut queue = CandidateQueue::new();
    let mut uncomputed_children = seed_candidates(mig, &priorities, reachable, &mut queue);

    let mut translated = 0usize;
    loop {
        let popped = queue.pop_scored(LOOKAHEAD_WINDOW, |candidate| {
            let freed = translator.released_cells_now(candidate.id);
            let allocates = i64::from(!translator.has_in_place_destination(candidate.id));
            // One step later: the best static release among parents this
            // translation would make computable.
            let unlocked = fanouts[candidate.id.index()]
                .iter()
                .filter(|p| reachable[p.index()] && uncomputed_children[p.index()] == 1)
                .map(|p| i64::from(priorities.releasing(*p)))
                .max()
                .unwrap_or(0);
            // The immediate net effect dominates; the unlocked release only
            // breaks ties (it is at most 3).
            8 * (freed - allocates) + unlocked
        });
        let Some(candidate) = popped else {
            break;
        };
        translator.translate_node(candidate.id);
        translated += 1;
        for &parent in &fanouts[candidate.id.index()] {
            if !reachable[parent.index()] {
                continue;
            }
            let pending = &mut uncomputed_children[parent.index()];
            debug_assert!(*pending > 0, "parent counted twice");
            *pending -= 1;
            if *pending == 0 {
                queue.enqueue(priorities.candidate(parent));
            }
        }
    }
    translated
}

fn reachable_majority(mig: &Mig) -> Vec<bool> {
    let mut reachable = vec![false; mig.len()];
    let mut stack: Vec<NodeId> = mig.outputs().iter().map(|(_, s)| s.node()).collect();
    while let Some(id) = stack.pop() {
        if reachable[id.index()] {
            continue;
        }
        reachable[id.index()] = true;
        if let MigNode::Majority(children) = mig.node(id) {
            stack.extend(children.iter().map(|c| c.node()));
        }
    }
    reachable
}

/// Where a node's value currently resides during translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// The node is the constant (value 0).
    Const,
    /// The node is primary input `i`, readable from the input region.
    Pi(u32),
    /// The node's value has been computed into a work RRAM.
    Ram(RamAddr),
}

/// Incremental translation state shared by the naive and smart lowerings.
#[derive(Debug)]
pub(crate) struct Translator<'a> {
    mig: &'a Mig,
    opts: CompilerOptions,
    /// Lifetime analysis shared with the scheduler; supplies the
    /// allocation hints of the lifetime-aware strategies.
    lifetimes: &'a Lifetimes,
    pub(crate) alloc: RramAllocator,
    /// Current location of each node's value (indexed by node).
    loc: Vec<Option<Loc>>,
    /// RRAM holding the *complement* of each node's value, if materialized.
    compl: Vec<Option<RamAddr>>,
    /// References (parent edges + primary outputs) not yet consumed.
    remaining: Vec<u32>,
    /// The IR under construction.
    ops: Vec<IrOp>,
    cells: Vec<IrCell>,
    events: Vec<Event>,
    /// The live virtual cell behind each physical address.
    current: Vec<Option<CellId>>,
}

impl<'a> Translator<'a> {
    pub(crate) fn new(mig: &'a Mig, opts: CompilerOptions, lifetimes: &'a Lifetimes) -> Self {
        let mut loc = vec![None; mig.len()];
        loc[NodeId::CONSTANT.index()] = Some(Loc::Const);
        for (index, &id) in mig.inputs().iter().enumerate() {
            loc[id.index()] = Some(Loc::Pi(index as u32));
        }
        Translator {
            mig,
            opts,
            lifetimes,
            alloc: RramAllocator::new(opts.allocator),
            loc,
            compl: vec![None; mig.len()],
            remaining: mig.fanout_counts(),
            ops: Vec::new(),
            cells: Vec::new(),
            events: Vec::new(),
            current: Vec::new(),
        }
    }

    /// The virtual cell currently bound to a physical address.
    fn cell_at(&self, addr: RamAddr) -> CellId {
        self.current[addr.index()].expect("physical cell has no live virtual cell")
    }

    /// Translates a physical operand into an IR value.
    fn value_of(&self, operand: Operand) -> Value {
        match operand {
            Operand::Const(v) => Value::Const(v),
            Operand::Input(i) => Value::Input(i),
            Operand::Ram(addr) => Value::Cell(self.cell_at(addr)),
        }
    }

    /// The operand reading a node's (plain) value.
    ///
    /// # Panics
    ///
    /// Panics if the node has not been computed — a scheduling bug.
    fn read_operand(&self, node: NodeId) -> Operand {
        match self.loc[node.index()].expect("operand read before computation") {
            Loc::Const => Operand::Const(false),
            Loc::Pi(i) => Operand::Input(i),
            Loc::Ram(addr) => Operand::Ram(addr),
        }
    }

    /// A short human-readable name of a node for listing comments.
    fn describe(&self, signal: Signal) -> String {
        let bar = if signal.is_complemented() { "¬" } else { "" };
        match self.mig.node(signal.node()) {
            MigNode::Constant => format!("{}", signal.is_complemented() as u8),
            MigNode::Input(i) => format!("{bar}i{}", i + 1),
            MigNode::Majority(_) => format!("{bar}N{}", signal.node().index()),
        }
    }

    /// The single funnel for IR construction: every instruction's
    /// destination write is recorded on the allocator's per-cell counters,
    /// keeping them exactly in sync with the lowered stream (and feeding
    /// the wear-budget reuse strategy mid-lowering). `rhs` is the listing
    /// comment's right-hand side, `node` the op's source-MIG provenance.
    fn push_instruction(&mut self, instruction: Instruction, rhs: String, node: Option<NodeId>) {
        self.alloc.note_write(instruction.z);
        let op = IrOp {
            a: self.value_of(instruction.a),
            b: self.value_of(instruction.b),
            z: self.cell_at(instruction.z),
            rhs,
            node,
        };
        let index = self.ops.len() as u32;
        self.ops.push(op);
        self.events.push(Event::Op(index));
    }

    fn emit(&mut self, a: Operand, b: Operand, z: RamAddr, rhs: String, node: Option<NodeId>) {
        self.push_instruction(Instruction::new(a, b, z), rhs, node);
    }

    /// The expected-lifetime class of a node's value (allocation hint).
    fn class_of(&self, node: NodeId) -> LifetimeClass {
        self.lifetimes.class(node)
    }

    /// Requests a physical cell and mints the virtual cell spanning its
    /// lifetime.
    fn request(&mut self, hint: LifetimeClass) -> RamAddr {
        let addr = self.alloc.request_with_hint(hint);
        let cell = CellId(self.cells.len() as u32);
        self.cells.push(IrCell { pinned: addr, hint });
        if self.current.len() <= addr.index() {
            self.current.resize(addr.index() + 1, None);
        }
        debug_assert!(self.current[addr.index()].is_none(), "cell double-booked");
        self.current[addr.index()] = Some(cell);
        self.events.push(Event::Request(cell));
        addr
    }

    /// Releases a physical cell, ending its virtual cell's lifetime.
    fn release(&mut self, addr: RamAddr) {
        let cell = self.cell_at(addr);
        self.current[addr.index()] = None;
        self.events.push(Event::Release(cell));
        self.alloc.release(addr);
    }

    /// Allocates an RRAM initialized to a constant (1 instruction). `hint`
    /// describes the lifetime of the value the cell will ultimately hold —
    /// that of the consuming node `node`.
    fn fresh_const(&mut self, value: bool, hint: LifetimeClass, node: NodeId) -> RamAddr {
        let addr = self.request(hint);
        let instruction = if value {
            Instruction::set(addr)
        } else {
            Instruction::reset(addr)
        };
        self.push_instruction(instruction, format!("{}", value as u8), Some(node));
        addr
    }

    /// Allocates an RRAM loaded with the *complement* of a node's value
    /// (2 instructions: reset, then `⟨1 v̄ 0⟩ = v̄`). When `cache` is set the
    /// RRAM is remembered as the node's complement for future use. `hint`
    /// describes the lifetime of the value the cell will ultimately hold —
    /// the complemented child's when the cell serves as an operand, the
    /// consuming node's when it serves as the destination.
    fn fresh_complement_of(&mut self, node: NodeId, cache: bool, hint: LifetimeClass) -> RamAddr {
        let addr = self.request(hint);
        let src = self.read_operand(node);
        self.push_instruction(Instruction::reset(addr), "0".to_string(), Some(node));
        let name = self.describe(Signal::new(node, true));
        self.emit(Operand::Const(true), src, addr, name, Some(node));
        if cache {
            self.compl[node.index()] = Some(addr);
        }
        addr
    }

    /// Allocates an RRAM loaded with a *copy* of a node's value
    /// (2 instructions: set, then `⟨v 0 1⟩ = v`). `hint` describes the
    /// lifetime of the value the cell will ultimately hold.
    fn fresh_copy_of(&mut self, node: NodeId, hint: LifetimeClass) -> RamAddr {
        let addr = self.request(hint);
        let src = self.read_operand(node);
        self.push_instruction(Instruction::set(addr), "1".to_string(), Some(node));
        let name = self.describe(Signal::new(node, false));
        self.emit(src, Operand::Const(true), addr, name, Some(node));
        addr
    }

    /// Whether a child edge is a complemented edge to a non-constant node.
    fn is_complemented_child(&self, s: Signal) -> bool {
        !s.is_constant() && s.is_complemented()
    }

    /// References to this child's node not yet consumed (including the one
    /// being translated).
    fn remaining_of(&self, s: Signal) -> u32 {
        self.remaining[s.node().index()]
    }

    /// Whether the child's RRAM may be overwritten: it is an internal node
    /// held in a work RRAM and this is its last use.
    fn overwritable(&self, s: Signal) -> bool {
        self.remaining_of(s) == 1 && matches!(self.loc[s.node().index()], Some(Loc::Ram(_)))
    }

    /// Number of this node's children whose RRAM becomes releasable right
    /// after translating it: majority children with exactly one remaining
    /// reference. This is the *dynamic* version of the paper's
    /// releasing-children count — remaining fanout decreases as parents are
    /// computed, so the count can only grow over time.
    pub(crate) fn releasing_now(&self, id: NodeId) -> u32 {
        let Some(children) = self.mig.node(id).children() else {
            return 0;
        };
        children
            .iter()
            .filter(|c| self.mig.node(c.node()).is_majority() && self.remaining_of(**c) == 1)
            .count() as u32
    }

    /// Number of RRAM cells that would actually return to the free pool if
    /// this node were translated next: for every distinct child whose
    /// remaining references are all consumed by this node, its value cell
    /// (if held in work RRAM) plus its cached complement cell. Unlike
    /// [`Translator::releasing_now`] this counts *cells*, not children, so
    /// it is the quantity the lookahead scheduler optimizes.
    pub(crate) fn released_cells_now(&self, id: NodeId) -> i64 {
        let Some(children) = self.mig.node(id).children() else {
            return 0;
        };
        let mut total = 0i64;
        for (index, child) in children.iter().enumerate() {
            let node = child.node();
            if children[..index].iter().any(|c| c.node() == node) {
                continue; // count each distinct child node once
            }
            let occurrences = children.iter().filter(|c| c.node() == node).count() as u32;
            if self.remaining_of(*child) != occurrences {
                continue; // survives this node
            }
            if matches!(self.loc[node.index()], Some(Loc::Ram(_))) {
                total += 1;
            }
            if self.compl[node.index()].is_some() {
                total += 1;
            }
        }
        total
    }

    /// Whether translating this node now can overwrite one of its children's
    /// cells as the destination `Z` (no new allocation), mirroring the
    /// destination cases (a) and (b) of the smart selection. When `false`,
    /// translating the node costs at least one fresh-or-reused cell.
    pub(crate) fn has_in_place_destination(&self, id: NodeId) -> bool {
        let Some(children) = self.mig.node(id).children() else {
            return false;
        };
        children.iter().any(|c| {
            (self.is_complemented_child(*c)
                && self.remaining_of(*c) == 1
                && self.compl[c.node().index()].is_some())
                || (!c.is_complemented() && self.overwritable(*c))
        })
    }

    /// Translates one majority node into RM3 instructions.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a majority node or a child is uncomputed.
    pub(crate) fn translate_node(&mut self, id: NodeId) {
        let children = *self
            .mig
            .node(id)
            .children()
            .expect("only majority nodes are translated");
        match self.opts.operands {
            OperandSelection::ChildOrder => self.translate_child_order(id, children),
            OperandSelection::Smart => self.translate_smart(id, children),
        }
        for child in children {
            self.consume_reference(child.node());
        }
    }

    /// Decrements a node's pending reference count and releases its RRAMs
    /// when it is no longer needed.
    fn consume_reference(&mut self, node: NodeId) {
        let remaining = &mut self.remaining[node.index()];
        debug_assert!(*remaining > 0, "reference count underflow");
        *remaining -= 1;
        if *remaining == 0 {
            if let Some(Loc::Ram(addr)) = self.loc[node.index()].take() {
                self.release(addr);
            } else {
                // Constants and inputs have nothing to release, but their
                // location must stay valid for later readers… which cannot
                // exist since remaining is 0. Restore for robustness.
                self.loc[node.index()] = match self.mig.node(node) {
                    MigNode::Constant => Some(Loc::Const),
                    MigNode::Input(i) => Some(Loc::Pi(*i)),
                    MigNode::Majority(_) => None,
                };
            }
            if let Some(addr) = self.compl[node.index()].take() {
                self.release(addr);
            }
        }
    }

    /// Naive fixed-slot translation (§3): first child → A, second → B,
    /// third → Z, no complement caching.
    fn translate_child_order(&mut self, id: NodeId, children: [Signal; 3]) {
        let [c0, c1, c2] = children;

        // Operand B: the hardware inverts it, so a complemented child fits
        // directly; otherwise its complement must be materialized.
        let b = if let Some(value) = c1.constant_value() {
            Operand::Const(!value)
        } else if c1.is_complemented() {
            self.read_operand(c1.node())
        } else {
            let hint = self.class_of(c1.node());
            Operand::Ram(self.fresh_complement_of(c1.node(), false, hint))
        };

        // Destination Z must hold the third child's value; its cell ends up
        // holding this node's result, hence the `id` lifetime hint.
        let z_hint = self.class_of(id);
        let z = if let Some(value) = c2.constant_value() {
            self.fresh_const(value, z_hint, id)
        } else if !c2.is_complemented() && self.overwritable(c2) {
            match self.loc[c2.node().index()].take() {
                Some(Loc::Ram(addr)) => addr,
                _ => unreachable!("overwritable implies a RAM location"),
            }
        } else if c2.is_complemented() {
            self.fresh_complement_of(c2.node(), false, z_hint)
        } else {
            self.fresh_copy_of(c2.node(), z_hint)
        };

        // Operand A is read plain.
        let a = if let Some(value) = c0.constant_value() {
            Operand::Const(value)
        } else if !c0.is_complemented() {
            self.read_operand(c0.node())
        } else {
            let hint = self.class_of(c0.node());
            Operand::Ram(self.fresh_complement_of(c0.node(), false, hint))
        };

        self.finish_node(id, a, b, z);
    }

    /// Smart translation implementing the case analyses of §4.2.2.
    fn translate_smart(&mut self, id: NodeId, children: [Signal; 3]) {
        let (b, b_index) = self.select_operand_b(&children);
        let rest: Vec<usize> = (0..3).filter(|&k| k != b_index).collect();
        let (z, z_index) = self.select_destination_z(id, &children, [rest[0], rest[1]]);
        let a_index = rest.into_iter().find(|&k| k != z_index).expect("one left");
        let a = self.select_operand_a(children[a_index]);
        self.finish_node(id, a, b, z);
    }

    /// Operand-B selection, Fig. 5 cases (a)–(h). Returns the operand and
    /// the index of the child it covers.
    fn select_operand_b(&mut self, children: &[Signal; 3]) -> (Operand, usize) {
        let complemented: Vec<usize> = (0..3)
            .filter(|&k| self.is_complemented_child(children[k]))
            .collect();
        let constant = (0..3).find(|&k| children[k].is_constant());

        match complemented.len() {
            // (a) exactly one complemented child: its RRAM/input feeds B.
            1 => {
                let k = complemented[0];
                (self.read_operand(children[k].node()), k)
            }
            // More than one complemented child.
            n if n >= 2 => {
                // (b) with a constant child present, any non-constant
                // complemented child works; like (d), prefer one with
                // multiple fanout since it cannot serve as destination.
                // (d)/(e) without a constant child: same preference.
                let k = complemented
                    .iter()
                    .copied()
                    .find(|&k| self.remaining_of(children[k]) > 1)
                    .unwrap_or(complemented[0]);
                let _ = constant;
                (self.read_operand(children[k].node()), k)
            }
            // No complemented child.
            _ => {
                if let Some(k) = constant {
                    // (c) B takes the inverse of the constant.
                    let value = children[k].constant_value().expect("constant child");
                    (Operand::Const(!value), k)
                } else if let Some(k) =
                    (0..3).find(|&k| self.compl[children[k].node().index()].is_some())
                {
                    // (f) a complement of this child is already materialized.
                    let addr = self.compl[children[k].node().index()].expect("checked");
                    (Operand::Ram(addr), k)
                } else {
                    // (g) prefer a multiple-fanout child (it is excluded from
                    // serving as destination anyway); (h) otherwise the first.
                    let k = (0..3)
                        .find(|&k| self.remaining_of(children[k]) > 1)
                        .unwrap_or(0);
                    let hint = self.class_of(children[k].node());
                    let addr = self.fresh_complement_of(children[k].node(), true, hint);
                    (Operand::Ram(addr), k)
                }
            }
        }
    }

    /// Destination-Z selection, Fig. 6 cases (a)–(e), over the two children
    /// not consumed by operand B. Returns the destination RRAM and the index
    /// of the child it covers. `id` is the node being translated — the
    /// destination cell ends up holding its result, so fresh allocations
    /// here carry its lifetime hint.
    fn select_destination_z(
        &mut self,
        id: NodeId,
        children: &[Signal; 3],
        rest: [usize; 2],
    ) -> (RamAddr, usize) {
        // (a) complemented last-use child whose complement is materialized:
        // that RRAM already holds the edge's value and is safe to overwrite.
        for &k in &rest {
            let c = children[k];
            if self.is_complemented_child(c)
                && self.remaining_of(c) == 1
                && self.compl[c.node().index()].is_some()
            {
                let addr = self.compl[c.node().index()].take().expect("checked");
                return (addr, k);
            }
        }
        // (b) plain last-use child held in a work RRAM: overwrite in place.
        for &k in &rest {
            let c = children[k];
            if !c.is_complemented() && self.overwritable(c) {
                match self.loc[c.node().index()].take() {
                    Some(Loc::Ram(addr)) => return (addr, k),
                    _ => unreachable!("overwritable implies a RAM location"),
                }
            }
        }
        let hint = self.class_of(id);
        // (c) constant child: allocate and initialize (1 instruction).
        for &k in &rest {
            if let Some(value) = children[k].constant_value() {
                return (self.fresh_const(value, hint, id), k);
            }
        }
        // (d) complemented child: materialize its complement (2 instructions).
        for &k in &rest {
            let c = children[k];
            if self.is_complemented_child(c) {
                return (self.fresh_complement_of(c.node(), false, hint), k);
            }
        }
        // (e) plain child with other uses (or a primary input): copy it.
        let k = rest[0];
        (self.fresh_copy_of(children[k].node(), hint), k)
    }

    /// Operand-A selection, §4.2.2 cases (a)–(d), for the remaining child.
    fn select_operand_a(&mut self, child: Signal) -> Operand {
        if let Some(value) = child.constant_value() {
            // (a) constant, complement folded into the value.
            Operand::Const(value)
        } else if !child.is_complemented() {
            // (b) plain child: read its RRAM or input directly.
            self.read_operand(child.node())
        } else if let Some(addr) = self.compl[child.node().index()] {
            // (c) complement already materialized.
            Operand::Ram(addr)
        } else {
            // (d) materialize (and cache) the complement.
            let hint = self.class_of(child.node());
            Operand::Ram(self.fresh_complement_of(child.node(), true, hint))
        }
    }

    /// Emits the node's main RM3 instruction and records its location.
    fn finish_node(&mut self, id: NodeId, a: Operand, b: Operand, z: RamAddr) {
        self.emit(a, b, z, format!("N{}", id.index()), Some(id));
        self.loc[id.index()] = Some(Loc::Ram(z));
    }

    /// Resolves primary outputs, materializing complemented internal results
    /// so that every output is readable from the array, and finishes the
    /// IR program.
    pub(crate) fn finalize(mut self) -> IrProgram {
        let outputs: Vec<(String, Signal)> = self
            .mig
            .outputs()
            .iter()
            .map(|(n, s)| (n.clone(), *s))
            .collect();
        let mut ir_outputs = Vec::with_capacity(outputs.len());
        for (name, signal) in outputs {
            let node = signal.node();
            let loc = match self.mig.node(node) {
                MigNode::Constant => IrOutput::Const(signal.is_complemented()),
                MigNode::Input(i) => IrOutput::Input {
                    index: *i,
                    complemented: signal.is_complemented(),
                },
                MigNode::Majority(_) => {
                    if signal.is_complemented() {
                        let addr = match self.compl[node.index()] {
                            Some(addr) => addr,
                            // Output cells stay live to the end of the run.
                            None => self.fresh_complement_of(node, true, LifetimeClass::Long),
                        };
                        IrOutput::Cell(self.cell_at(addr))
                    } else {
                        match self.loc[node.index()] {
                            Some(Loc::Ram(addr)) => IrOutput::Cell(self.cell_at(addr)),
                            _ => panic!("primary output `{name}` was never computed"),
                        }
                    }
                }
            };
            ir_outputs.push((name, loc));
        }
        IrProgram {
            num_inputs: self.mig.num_inputs(),
            ops: self.ops,
            cells: self.cells,
            events: self.events,
            outputs: ir_outputs,
            mig_nodes: 0, // set by `lower`
            allocator: self.opts.allocator,
        }
    }
}
