//! The optimizing pass pipeline run between lowering and emission.
//!
//! Passes rewrite the IR event stream under the [`OptLevel`] chosen in
//! [`crate::CompilerOptions`]:
//!
//! * [`DeadWrite`] — removes writes whose value no later instruction (and
//!   no output) observes;
//! * [`RedundantInit`] — removes initializations that re-materialize a
//!   constant already resident in the cell, and identity writes;
//! * [`Forward`] — in-place-overwrite forwarding: when a node's destination
//!   value was materialized into a fresh cell (a constant load or a copy)
//!   even though a cell holding one of the instruction's inputs dies
//!   *physically* unread afterwards, the materialization is deleted and the
//!   instruction retargeted to overwrite the dying cell in place, moving it
//!   past that cell's last read. This harvests slack no scheduler can see:
//!   the lowering's reference counts overestimate lifetimes, because
//!   consumers that read a cached complement never touch the value cell;
//! * [`Peephole`] — same-cell fusion in a local window: an instruction
//!   whose result is fully determined by resident constants is folded into
//!   a plain set/reset, and back-to-back re-initializations collapse.
//!
//! `-O0` runs nothing, `-O1` one round of the linear hygiene passes,
//! `-O2` adds forwarding and iterates the whole sequence to a fixpoint.
//! After every pass that edited the stream the [`PassManager`] re-checks
//! the IR structurally and — in debug/test builds — replays it through the
//! machine-simulator equivalence check against the source MIG, so a broken
//! pass fails loudly at the pass boundary, not in some downstream consumer.

use std::fmt;

use mig::Mig;

use crate::backend::{Backend, Cost};
use crate::options::OptLevel;

use super::{analysis, CellId, Event, IrOutput, IrProgram, Value};

/// An IR-to-IR rewrite.
pub trait Pass {
    /// Stable name, reported in [`PassRun`] records and bench output.
    fn name(&self) -> &'static str;
    /// Rewrites the program, returning the number of edits applied
    /// (removed or rewritten instructions). Passes that trial edits score
    /// them with `backend`'s cost model, so the pipeline optimizes for the
    /// architecture that will actually consume the stream.
    fn run(&self, ir: &mut IrProgram, backend: &dyn Backend) -> usize;
}

/// One pass execution's accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassRun {
    /// The pass that ran.
    pub pass: &'static str,
    /// `#I` before the pass.
    pub instructions_before: usize,
    /// `#I` after the pass.
    pub instructions_after: usize,
    /// Edits (removals + rewrites) the pass applied.
    pub edits: usize,
}

impl PassRun {
    /// Instructions this run removed (never negative: passes only shrink
    /// or rewrite the stream).
    pub fn removed(&self) -> usize {
        self.instructions_before - self.instructions_after
    }
}

/// Accounting for a whole pipeline execution.
///
/// The per-run `#I` deltas always sum to the end-to-end delta — each run's
/// `instructions_before` is the previous run's `instructions_after` — which
/// `tests/ir_passes.rs` pins as an invariant.
#[derive(Debug, Clone, Default)]
pub struct PassReport {
    /// Every pass execution, in order (including no-op runs).
    pub runs: Vec<PassRun>,
}

impl PassReport {
    /// Total instructions removed across all runs.
    pub fn total_removed(&self) -> usize {
        self.runs.iter().map(PassRun::removed).sum()
    }
}

impl fmt::Display for PassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut effective: Vec<&PassRun> = self.runs.iter().filter(|r| r.edits > 0).collect();
        if effective.is_empty() {
            return write!(f, "no pass fired");
        }
        effective.sort_by_key(|r| r.pass);
        let mut first = true;
        let mut index = 0;
        while index < effective.len() {
            let pass = effective[index].pass;
            let mut removed = 0;
            let mut edits = 0;
            while index < effective.len() && effective[index].pass == pass {
                removed += effective[index].removed();
                edits += effective[index].edits;
                index += 1;
            }
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{pass}: -{removed} #I ({edits} edits)")?;
        }
        Ok(())
    }
}

/// Maximum pipeline rounds at `-O2`; each round must shrink the stream to
/// continue, so this is a backstop, not a tuning knob.
const MAX_ROUNDS: usize = 8;

/// Runs the pipeline an [`OptLevel`] selects, verifying after every pass.
#[derive(Debug)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    rounds: usize,
}

impl fmt::Debug for dyn Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pass({})", self.name())
    }
}

impl PassManager {
    /// The pipeline of an optimization level.
    ///
    /// Within a round, rewrites run before removals and [`DeadWrite`] runs
    /// last, so the feeder initializations a [`Peephole`] fold orphans are
    /// swept in the same round — the `init + op → init` fusion completes
    /// even in `-O1`'s single round.
    pub fn for_level(opt: OptLevel) -> Self {
        let (passes, rounds): (Vec<Box<dyn Pass>>, usize) = match opt {
            OptLevel::O0 => (Vec::new(), 0),
            OptLevel::O1 => (
                vec![
                    Box::new(Peephole),
                    Box::new(RedundantInit),
                    Box::new(DeadWrite),
                ],
                1,
            ),
            OptLevel::O2 => (
                vec![
                    Box::new(Forward),
                    Box::new(Peephole),
                    Box::new(RedundantInit),
                    Box::new(DeadWrite),
                ],
                MAX_ROUNDS,
            ),
        };
        PassManager { passes, rounds }
    }

    /// Runs the pipeline to completion (one round at `-O1`, fixpoint at
    /// `-O2`), returning the per-pass accounting.
    ///
    /// Trial edits are scored under `backend`'s cost model; for the RM3
    /// backend that model is exactly the historical `(#I, #R, max-writes)`
    /// allocator replay, so every gating decision — and every emitted byte
    /// — is unchanged from the pre-trait pipeline.
    ///
    /// After every pass that edited the stream, the IR is structurally
    /// re-checked, and in debug/test builds the emitted program is verified
    /// equivalent to `mig` on the machine simulator.
    ///
    /// # Panics
    ///
    /// Panics if a pass produces structurally invalid IR or (debug builds)
    /// a program that is not equivalent to the source MIG — both are
    /// compiler bugs that must not reach emitted artifacts.
    pub fn run(&self, ir: &mut IrProgram, mig: &Mig, backend: &dyn Backend) -> PassReport {
        let mut report = PassReport::default();
        // The current stream's cost, threaded across pass runs: each
        // editing pass pays exactly one scoring (for its after-state), and
        // no-op runs pay none.
        let mut current = backend.cost(ir);
        // Translation validation: the analyzer's structural lint counts at
        // pipeline entry. A pass run that raises any count is reverted
        // wholesale, exactly like a quality-gate rejection — the analyzer
        // is the arbiter, the `check` panic below only a backstop for
        // streams so broken the analyzer itself missed them.
        let structural = analysis::AnalysisConfig::structural();
        let baseline = analysis::lint_counts(&analysis::analyze_events(ir, &structural));
        for _ in 0..self.rounds {
            let mut round_edits = 0;
            for pass in &self.passes {
                let instructions_before = ir.num_instructions();
                let snapshot = ir.clone();
                let mut edits = pass.run(ir, backend);
                if edits > 0 {
                    let after = analysis::lint_counts(&analysis::analyze_events(ir, &structural));
                    if analysis::introduces(&baseline, &after) {
                        *ir = snapshot;
                        report.runs.push(PassRun {
                            pass: pass.name(),
                            instructions_before,
                            instructions_after: instructions_before,
                            edits: 0,
                        });
                        continue;
                    }
                    if let Err(error) = ir.check() {
                        panic!("pass `{}` produced invalid IR: {error}", pass.name());
                    }
                    // Quality guard: a pass may only trade instructions
                    // down, never footprint or endurance up. Allocator
                    // replay makes footprint/wear global properties of the
                    // stream, so an edit that shifts reuse the wrong way is
                    // reverted wholesale rather than shipped.
                    let after_cost = backend.cost(ir);
                    if after_cost.worse_than(current) {
                        *ir = snapshot;
                        edits = 0;
                    } else {
                        current = after_cost;
                        #[cfg(debug_assertions)]
                        if let Err(error) =
                            crate::verify::verify(mig, &super::emit(ir), 1, 0xDAC2016)
                        {
                            panic!(
                                "pass `{}` broke machine-simulator equivalence: {error}",
                                pass.name()
                            );
                        }
                    }
                }
                #[cfg(not(debug_assertions))]
                let _ = mig;
                report.runs.push(PassRun {
                    pass: pass.name(),
                    instructions_before,
                    instructions_after: ir.num_instructions(),
                    edits,
                });
                round_edits += edits;
            }
            if round_edits == 0 {
                break;
            }
        }
        report
    }
}

/// Drops request/release events of cells no surviving op or output touches,
/// so emission never allocates for values the passes optimized away.
fn gc_cells(ir: &mut IrProgram) {
    let mut referenced = vec![false; ir.cells.len()];
    for &event in &ir.events {
        if let Event::Op(i) = event {
            let op = &ir.ops[i as usize];
            for value in [op.a, op.b] {
                if let Value::Cell(c) = value {
                    referenced[c.index()] = true;
                }
            }
            referenced[op.z.index()] = true;
        }
    }
    for (_, output) in &ir.outputs {
        if let IrOutput::Cell(c) = output {
            referenced[c.index()] = true;
        }
    }
    ir.events.retain(|event| match event {
        Event::Request(c) | Event::Release(c) => referenced[c.index()],
        Event::Op(_) => true,
    });
}

/// The constant a masking op writes (`None` for non-masking ops).
fn masked_const(op: &super::IrOp) -> Option<bool> {
    match (op.a, op.b) {
        (Value::Const(x), Value::Const(y)) if x != y => Some(x),
        _ => None,
    }
}

/// Dead-write elimination: one backward liveness sweep over virtual cells.
///
/// A write is dead when no later instruction reads the cell — as an
/// operand or as a non-masking destination's old value — before the cell
/// is re-initialized or the program ends, and the cell is not a primary
/// output. Removing a write in the backward sweep also un-marks its own
/// reads, so whole feeder chains fall in a single run.
#[derive(Debug)]
pub struct DeadWrite;

impl Pass for DeadWrite {
    fn name(&self) -> &'static str {
        "dead-write"
    }

    fn run(&self, ir: &mut IrProgram, _backend: &dyn Backend) -> usize {
        let mut needed = vec![false; ir.cells.len()];
        for (_, output) in &ir.outputs {
            if let IrOutput::Cell(c) = output {
                needed[c.index()] = true;
            }
        }
        let mut keep = vec![true; ir.events.len()];
        let mut edits = 0;
        for pos in (0..ir.events.len()).rev() {
            let Some(op) = ir.op_of(ir.events[pos]) else {
                continue;
            };
            if !needed[op.z.index()] {
                keep[pos] = false;
                edits += 1;
                continue;
            }
            needed[op.z.index()] = !op.masking();
            for value in [op.a, op.b] {
                if let Value::Cell(c) = value {
                    needed[c.index()] = true;
                }
            }
        }
        if edits > 0 {
            let mut index = 0;
            ir.events.retain(|_| {
                index += 1;
                keep[index - 1]
            });
            gc_cells(ir);
        }
        edits
    }
}

/// Forward known-constant dataflow shared by [`RedundantInit`] and
/// [`Peephole`]: calls `action` for every op event with the op's known
/// result (if determined) and whether the cell already holds exactly that
/// value. `action` returns `true` to *remove* the op event.
fn const_flow(
    ir: &mut IrProgram,
    mut action: impl FnMut(&mut super::IrOp, Option<bool>, bool) -> bool,
) -> usize {
    let mut known: Vec<Option<bool>> = vec![None; ir.cells.len()];
    let mut defined = vec![false; ir.cells.len()];
    let mut keep = vec![true; ir.events.len()];
    let mut edits = 0;
    // Indexed loop: the body mutates `ir.ops` through the same borrow the
    // events live under, so an iterator over `ir.events` cannot be held.
    #[allow(clippy::needless_range_loop)]
    for pos in 0..ir.events.len() {
        match ir.events[pos] {
            Event::Request(c) => {
                known[c.index()] = None;
                defined[c.index()] = false;
            }
            Event::Release(_) => {}
            Event::Op(i) => {
                let value_of = |v: Value, known: &[Option<bool>]| match v {
                    Value::Const(x) => Some(x),
                    Value::Input(_) => None,
                    Value::Cell(c) => known[c.index()],
                };
                let op = &mut ir.ops[i as usize];
                let z = op.z.index();
                let result = if let Some(v) = masked_const(op) {
                    Some(v)
                } else if matches!((op.a, op.b), (Value::Const(x), Value::Const(y)) if x == y) {
                    // ⟨x x̄ z⟩ = z: an identity write.
                    if defined[z] {
                        known[z]
                    } else {
                        None
                    }
                } else {
                    let p = value_of(op.a, &known);
                    let q = value_of(op.b, &known).map(|v| !v);
                    let r = if defined[z] { known[z] } else { None };
                    match (p, q, r) {
                        (Some(x), Some(y), _) if x == y => Some(x),
                        (Some(x), _, Some(y)) if x == y => Some(x),
                        (_, Some(x), Some(y)) if x == y => Some(x),
                        (Some(x), Some(y), Some(w)) => {
                            Some(usize::from(x) + usize::from(y) + usize::from(w) >= 2)
                        }
                        _ => None,
                    }
                };
                let identity = matches!((op.a, op.b), (Value::Const(x), Value::Const(y)) if x == y)
                    && defined[z];
                let resident = defined[z] && result.is_some() && known[z] == result;
                if (identity || resident) && action(op, result, true)
                    || (!identity && !resident && action(op, result, false))
                {
                    keep[pos] = false;
                    edits += 1;
                    continue; // removed: the cell keeps its previous value
                }
                known[z] = result;
                defined[z] = true;
            }
        }
    }
    if edits > 0 {
        let mut index = 0;
        ir.events.retain(|_| {
            index += 1;
            keep[index - 1]
        });
        gc_cells(ir);
    }
    edits
}

/// Redundant-initialization removal.
///
/// Tracks which constant each cell provably holds and removes ops that
/// re-materialize exactly that value — a reset of a cell already holding 0,
/// a constant-foldable RM3 whose result equals the resident value, or an
/// identity `⟨x x̄ z⟩` write.
#[derive(Debug)]
pub struct RedundantInit;

impl Pass for RedundantInit {
    fn name(&self) -> &'static str {
        "redundant-init"
    }

    fn run(&self, ir: &mut IrProgram, _backend: &dyn Backend) -> usize {
        const_flow(ir, |_op, _result, resident| resident)
    }
}

/// Same-cell peephole fusion.
///
/// Folds a non-masking op whose result is fully determined by resident
/// constants into the plain set/reset idiom. That removes its reads — in
/// particular the destination's old value — which typically leaves the
/// feeding initialization dead for the next [`DeadWrite`] run: the
/// classic `init + op` → `init` fusion of adjacent same-cell ops, done via
/// dataflow so intervening unrelated instructions don't hide the pair.
#[derive(Debug)]
pub struct Peephole;

impl Pass for Peephole {
    fn name(&self) -> &'static str {
        "peephole"
    }

    fn run(&self, ir: &mut IrProgram, _backend: &dyn Backend) -> usize {
        let mut edits = 0;
        const_flow(ir, |op, result, resident| {
            if resident {
                return false; // RedundantInit's case; don't double-handle
            }
            if let Some(v) = result {
                if !op.masking() {
                    op.a = Value::Const(v);
                    op.b = Value::Const(!v);
                    edits += 1;
                }
            }
            false
        });
        edits
    }
}

/// In-place-overwrite forwarding (the `-O2` workhorse).
///
/// Pattern: a node's main RM3 reads a destination value that lowering
/// materialized into a fresh cell — `init c` (1 op) or `set; copy s`
/// (2 ops) — while a cell holding one of the instruction's *plain* inputs
/// is physically dead afterwards: every one of its remaining touches is a
/// plain operand read (never an in-place overwrite), after which it is
/// re-initialized, released, or simply never used again. Majority is
/// symmetric in its two plain contributions (`A` and the destination's old
/// value), so the instruction can swap them: delete the materialization,
/// move the instruction just past the dying cell's last read, and
/// overwrite the dying cell in place. Later uses of the node's value are
/// renamed onto the claimed cell, whose release moves to the end of the
/// merged lifetime.
///
/// Instructions that depend on the moved one (consumers of the node's
/// value scheduled inside the move window, and transitively everything
/// ordered against them through a shared cell) move with it as a block in
/// original relative order, so the forwarding sees through the tight
/// producer-consumer packing the scheduler emits.
#[derive(Debug)]
pub struct Forward;

impl Pass for Forward {
    fn name(&self) -> &'static str {
        "forward"
    }

    fn run(&self, ir: &mut IrProgram, backend: &dyn Backend) -> usize {
        let mut edits = 0;
        // Edits rejected by the quality gate stay rejected: without the
        // memo every restart would re-trial (and re-score) them, turning
        // the pass quadratic on large circuits.
        let mut rejected: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut baseline = backend.cost(ir);
        while forward_one(ir, backend, &mut rejected, &mut baseline) {
            edits += 1;
        }
        if edits > 0 {
            gc_cells(ir);
        }
        edits
    }
}

/// How a position touches a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Touch {
    /// Read as an operand or as a non-masking destination's old value.
    Read,
    /// Masking write: begins a fresh value, old value unread.
    DefMask,
    /// Non-masking write (always paired with a [`Touch::Read`]).
    DefPlain,
}

/// Per-cell event-position index for one forwarding attempt.
struct CellIndex {
    touches: Vec<Vec<(usize, Touch)>>,
    release: Vec<Option<usize>>,
    request: Vec<Option<usize>>,
    is_output: Vec<bool>,
}

impl CellIndex {
    fn build(ir: &IrProgram) -> Self {
        let mut index = CellIndex {
            touches: vec![Vec::new(); ir.cells.len()],
            release: vec![None; ir.cells.len()],
            request: vec![None; ir.cells.len()],
            is_output: vec![false; ir.cells.len()],
        };
        for (pos, &event) in ir.events.iter().enumerate() {
            match event {
                Event::Request(c) => index.request[c.index()] = Some(pos),
                Event::Release(c) => index.release[c.index()] = Some(pos),
                Event::Op(i) => {
                    let op = &ir.ops[i as usize];
                    for value in [op.a, op.b] {
                        if let Value::Cell(c) = value {
                            index.touches[c.index()].push((pos, Touch::Read));
                        }
                    }
                    if op.masking() {
                        index.touches[op.z.index()].push((pos, Touch::DefMask));
                    } else {
                        index.touches[op.z.index()].push((pos, Touch::Read));
                        index.touches[op.z.index()].push((pos, Touch::DefPlain));
                    }
                }
            }
        }
        for (_, output) in &ir.outputs {
            if let IrOutput::Cell(c) = output {
                index.is_output[c.index()] = true;
            }
        }
        index
    }

    /// If every touch of `cell` after `pos` is a plain read (its in-place
    /// overwrite slot goes unused) and the cell is never written again nor
    /// an output, the position of its last such read (`pos` when there is
    /// none); otherwise `None`.
    ///
    /// Any later write disqualifies the cell — including a *masking* one:
    /// lowering never re-initializes a virtual cell mid-lifetime, but a
    /// Peephole fold can turn an interior op into a set/reset, and claiming
    /// such a cell would let the rename put reads of the forwarded value
    /// behind that re-initialization.
    fn unused_slot_last_read(&self, cell: CellId, pos: usize) -> Option<usize> {
        let mut last = pos;
        for &(p, touch) in &self.touches[cell.index()] {
            if p <= pos {
                continue;
            }
            match touch {
                Touch::Read => last = p,
                Touch::DefMask | Touch::DefPlain => return None,
            }
        }
        if self.is_output[cell.index()] {
            None
        } else {
            Some(last)
        }
    }

    /// Whether `cell` is written anywhere in `window` (inclusive bounds).
    fn defined_in(&self, cell: CellId, window: (usize, usize)) -> bool {
        self.touches[cell.index()]
            .iter()
            .any(|&(p, t)| p >= window.0 && p <= window.1 && t != Touch::Read)
    }
}

/// The materialization chain feeding a destination's old value.
enum Chain {
    /// `init c`: one masking op.
    Const { init: usize, value: bool },
    /// `set; ⟨s 1̄ 1⟩`: a copy of `source`.
    Copy {
        init: usize,
        copy: usize,
        source: Value,
    },
}

/// Finds and applies one forwarding edit; `false` when none applies.
/// Candidates in `rejected` (keyed by op index and claimed cell) were
/// already turned down by the quality gate and are not re-trialed;
/// `baseline` carries the current stream's cost across restarts and is
/// updated when an edit commits.
fn forward_one(
    ir: &mut IrProgram,
    backend: &dyn Backend,
    rejected: &mut std::collections::HashSet<(u32, u32)>,
    baseline: &mut Cost,
) -> bool {
    let index = CellIndex::build(ir);
    let before = *baseline;
    for pos in 0..ir.events.len() {
        let Event::Op(ki) = ir.events[pos] else {
            continue;
        };
        let op = &ir.ops[ki as usize];
        if op.masking() {
            continue;
        }
        let (op_a, op_b, x) = (op.a, op.b, op.z);
        // The destination's history must be exactly a materialization chain.
        let mut chain_positions: Vec<usize> = Vec::new();
        for &(p, _) in &index.touches[x.index()] {
            if p >= pos {
                break;
            }
            if chain_positions.last() != Some(&p) {
                chain_positions.push(p);
            }
        }
        let chain = match chain_positions.as_slice() {
            [init] => {
                let init_op = ir.op_of(ir.events[*init]).expect("touch is an op");
                match masked_const(init_op) {
                    Some(value) if init_op.z == x => Chain::Const { init: *init, value },
                    _ => continue,
                }
            }
            [init, copy] => {
                let init_op = ir.op_of(ir.events[*init]).expect("touch is an op");
                let copy_op = ir.op_of(ir.events[*copy]).expect("touch is an op");
                let is_set = masked_const(init_op) == Some(true) && init_op.z == x;
                let is_copy = copy_op.z == x
                    && copy_op.b == Value::Const(true)
                    && !matches!(copy_op.a, Value::Const(_));
                if is_set && is_copy {
                    Chain::Copy {
                        init: *init,
                        copy: *copy,
                        source: copy_op.a,
                    }
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        // Candidate dying cells to overwrite in place: the copy's source,
        // then the op's own plain operand.
        let (z_value, chain_ops): (Value, Vec<usize>) = match &chain {
            Chain::Const { init, value } => (Value::Const(*value), vec![*init]),
            Chain::Copy { init, copy, source } => (*source, vec![*init, *copy]),
        };
        // Both candidates re-read the copy's source at the main op's (new)
        // position rather than at the copy's: the source must still hold
        // the copied value there. A release in the gap is survivable (the
        // src candidate drops it when merging lifetimes), a redefinition is
        // not — and the rot candidate cannot resurrect a released source.
        let chain_start = *chain_ops.first().expect("chains are non-empty");
        let source_gap_def = matches!(z_value, Value::Cell(s)
            if index.defined_in(s, (chain_start + 1, pos)));
        let source_gap_release = matches!(z_value, Value::Cell(s)
            if index.release[s.index()].is_some_and(|r| r > chain_start && r < pos));
        let mut candidates: Vec<(CellId, Value)> = Vec::new();
        if let Value::Cell(s) = z_value {
            // Overwrite the copy source: ⟨a b̄ s⟩ keeps the old-value slot.
            if !source_gap_def {
                candidates.push((s, op_a));
            }
        }
        if let Value::Cell(w) = op_a {
            // Rotate: the old-value contribution moves into the A slot.
            let source_ok = match z_value {
                Value::Cell(_) => !source_gap_def && !source_gap_release,
                _ => true,
            };
            if source_ok {
                candidates.push((w, z_value));
            }
        }
        for (d, new_a) in candidates {
            if d == x
                || Some(d) == op_b.cell()
                || new_a.cell() == Some(d)
                || index.is_output[d.index()]
                || rejected.contains(&(ki, d.0))
            {
                continue;
            }
            let Some(last_read) = index.unused_slot_last_read(d, pos) else {
                continue;
            };
            let Some(moved) = move_set(ir, pos, x, d, new_a, op_b, last_read) else {
                // Memoized like quality rejections: a blocked move rarely
                // unblocks, and re-deriving the dependence closure on every
                // restart made the pass quadratic on large circuits.
                rejected.insert((ki, d.0));
                continue;
            };
            // Trial the edit and commit only if it strictly improves the
            // instruction count without costing footprint or endurance
            // under the active backend's model: lifetime merges shift the
            // allocator's replay, so the effect is global and easiest to
            // judge on the edited stream itself.
            // The edit is applied in place and undone on rejection — the
            // undo log is a handful of operand words, where cloning the
            // whole program (listing strings included) dominated the pass.
            let undo = apply_forward(
                ir,
                &index,
                ki,
                pos,
                chain_ops.clone(),
                d,
                new_a,
                last_read,
                &moved,
            );
            #[cfg(debug_assertions)]
            if let Err(e) = ir.check() {
                panic!(
                    "forwarding produced invalid IR: {e} \
                     (pos={pos} x=%{} d=%{} last_read={last_read} moved={moved:?} chain={chain_ops:?})",
                    d.0, ir.ops[ki as usize].z.0
                );
            }
            let after = backend.cost(ir);
            if after.improves_on(before) {
                *baseline = after;
                return true;
            }
            undo.revert(ir);
            rejected.insert((ki, d.0));
        }
    }
    false
}

/// Reverts one [`apply_forward`] edit.
struct ForwardUndo {
    events: Vec<Event>,
    op: (u32, Value, CellId),
    renamed: Vec<(u32, Value, Value, CellId)>,
    outputs: Vec<usize>,
    x: CellId,
}

impl ForwardUndo {
    fn revert(self, ir: &mut IrProgram) {
        ir.events = self.events;
        let (ki, a, z) = self.op;
        ir.ops[ki as usize].a = a;
        ir.ops[ki as usize].z = z;
        for (i, a, b, z) in self.renamed {
            let op = &mut ir.ops[i as usize];
            op.a = a;
            op.b = b;
            op.z = z;
        }
        for i in self.outputs {
            ir.outputs[i].1 = IrOutput::Cell(self.x);
        }
    }
}

/// Upper bound on instructions dragged along with a forwarded one; a
/// compile-time guard, since the block is rebuilt per edit.
const MOVE_CAP: usize = 16;

/// Computes the set of window ops that must move together with the
/// forwarded instruction so every cell's touch order is preserved, or
/// `None` when the move is illegal.
///
/// The forwarded op (at `pos`, writing `x`, about to be retargeted onto
/// `d`) moves to just after `last_read`. A window op joins the block when
/// it touches a cell the block writes, or writes a cell the block reads —
/// the classic dependence closure, with one twist: reads of `d` must NOT
/// join, because the whole transformation relies on them keeping their
/// place *before* the block overwrites `d`. If the closure would capture a
/// `d`-reader, or grows past [`MOVE_CAP`], the move is rejected.
#[allow(clippy::too_many_arguments)]
fn move_set(
    ir: &IrProgram,
    pos: usize,
    x: CellId,
    d: CellId,
    new_a: Value,
    b: Value,
    last_read: usize,
) -> Option<Vec<usize>> {
    let mut defined: Vec<CellId> = vec![x];
    let mut read: Vec<CellId> = [new_a.cell(), b.cell(), Some(d)]
        .into_iter()
        .flatten()
        .collect();
    let mut moved: Vec<usize> = Vec::new();
    loop {
        let mut grew = false;
        for p in pos + 1..=last_read {
            if moved.contains(&p) {
                continue;
            }
            let Some(op) = ir.op_of(ir.events[p]) else {
                continue;
            };
            let op_reads: Vec<CellId> = op.reads().collect();
            let op_defines = op.z;
            let joins = op_reads.iter().any(|c| defined.contains(c))
                || defined.contains(&op_defines)
                || read.contains(&op_defines);
            if !joins {
                continue;
            }
            if op_reads.contains(&d) {
                return None; // a d-reader may not cross the overwrite
            }
            moved.push(p);
            if moved.len() > MOVE_CAP {
                return None;
            }
            if !defined.contains(&op_defines) {
                defined.push(op_defines);
            }
            for c in op_reads {
                if !read.contains(&c) {
                    read.push(c);
                }
            }
            grew = true;
        }
        if !grew {
            moved.sort_unstable();
            return Some(moved);
        }
    }
}

/// Applies one forwarding edit: rewrites the main op onto the dying cell,
/// deletes the materialization chain, moves the op (and its dependence
/// block) past the cell's last read — dragging releases of the involved
/// cells along — renames the old destination onto the claimed cell, and
/// merges the two lifetimes. Returns the undo log reverting the edit.
#[allow(clippy::too_many_arguments)]
fn apply_forward(
    ir: &mut IrProgram,
    index: &CellIndex,
    ki: u32,
    pos: usize,
    chain_ops: Vec<usize>,
    d: CellId,
    new_a: Value,
    last_read: usize,
    moved: &[usize],
) -> ForwardUndo {
    let x = ir.ops[ki as usize].z;
    let mut undo = ForwardUndo {
        events: ir.events.clone(),
        op: (ki, ir.ops[ki as usize].a, x),
        renamed: Vec::new(),
        outputs: Vec::new(),
        x,
    };
    ir.ops[ki as usize].a = new_a;
    ir.ops[ki as usize].z = d;

    // Rename every later use of the old destination onto the claimed cell.
    for &(p, _) in &index.touches[x.index()] {
        if p <= pos {
            continue;
        }
        if let Event::Op(i) = ir.events[p] {
            if i == ki || undo.renamed.iter().any(|&(j, ..)| j == i) {
                continue;
            }
            let op = &mut ir.ops[i as usize];
            undo.renamed.push((i, op.a, op.b, op.z));
            if op.a == Value::Cell(x) {
                op.a = Value::Cell(d);
            }
            if op.b == Value::Cell(x) {
                op.b = Value::Cell(d);
            }
            if op.z == x {
                op.z = d;
            }
        }
    }
    for (i, (_, output)) in ir.outputs.iter_mut().enumerate() {
        if *output == IrOutput::Cell(x) {
            undo.outputs.push(i);
            *output = IrOutput::Cell(d);
        }
    }

    let mut drop = vec![false; ir.events.len()];
    for p in chain_ops {
        drop[p] = true;
    }
    if let Some(p) = index.request[x.index()] {
        drop[p] = true;
    }
    // Merge lifetimes: the claimed cell stays live until the old
    // destination's release (which is after every touch of the merged
    // cell); its own release is superseded. A missing release — a value
    // held to program end — wins.
    let mut replace: Option<(usize, Event)> = None;
    match (index.release[x.index()], index.release[d.index()]) {
        (Some(rx), Some(rd)) => {
            drop[rd] = true;
            replace = Some((rx, Event::Release(d)));
        }
        (Some(rx), None) => drop[rx] = true,
        (None, Some(rd)) => drop[rd] = true,
        (None, None) => {}
    }
    // The moved block, in original relative order (the forwarded op led it
    // in the original stream, so it stays first). Touch sets per entry let
    // relocated releases re-enter as early as legality allows.
    let block: Vec<usize> = std::iter::once(pos).chain(moved.iter().copied()).collect();
    let touches_cell = |p: usize, c: CellId| -> bool {
        match ir.op_of(ir.events[p]) {
            Some(op) => op.z == c || op.reads().any(|r| r == c),
            None => false,
        }
    };
    // Any release inside the window whose cell the block touches must not
    // fire before the block runs; relocate it to just after the last block
    // entry touching the cell, keeping the lifetime as tight as the move
    // allows (a longer hold can cost a fresh cell downstream).
    let mut relocated: Vec<(usize, usize)> = Vec::new(); // (after-block-index, event pos)
    for (p, &event) in ir
        .events
        .iter()
        .enumerate()
        .take(last_read + 1)
        .skip(pos + 1)
    {
        if let Event::Release(c) = event {
            if drop[p] {
                continue;
            }
            // The old destination was renamed onto the claimed cell, so its
            // release follows the claimed cell's touches.
            let cell = if c == x { d } else { c };
            if let Some(entry) = block.iter().rposition(|&q| touches_cell(q, cell)) {
                relocated.push((entry, p));
            }
        }
    }

    let resolve = |p: usize, event: Event| match replace {
        Some((rp, rep)) if rp == p => rep,
        _ => event,
    };
    let mut events = Vec::with_capacity(ir.events.len());
    for (p, &event) in ir.events.iter().enumerate() {
        let in_block = p == pos || moved.contains(&p) || relocated.iter().any(|&(_, q)| q == p);
        if !in_block && !drop[p] {
            events.push(resolve(p, event));
        }
        if p == last_read {
            for (entry, &q) in block.iter().enumerate() {
                events.push(resolve(q, ir.events[q]));
                for &(after, rel) in &relocated {
                    if after == entry {
                        events.push(resolve(rel, ir.events[rel]));
                    }
                }
            }
        }
    }
    ir.events = events;
    undo
}
