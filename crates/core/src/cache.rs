//! A content-addressed result cache with a byte budget.
//!
//! The compile service (`plimd`) keys finished artifacts by
//! [`CacheKey`] — the canonical structural digest of the input graph
//! ([`mig::canon::structural_digest`]) plus a fingerprint of the request
//! options — and bounds memory with a byte budget: inserting past the
//! budget evicts least-recently-used entries until the new value fits.
//!
//! The cache itself is single-threaded; the service shards one
//! [`LruCache`] per worker so shard-local access needs no further locking
//! discipline. Hit/miss/eviction counters and the live byte total are
//! tracked for the `stats` endpoint.
//!
//! ```
//! use plim_compiler::cache::{CacheKey, LruCache};
//!
//! let mut cache = LruCache::new(1024);
//! let key = CacheKey::new(0xFEED, 0xF00D);
//! assert!(cache.get(&key).is_none());
//! cache.insert(key, "artifact".to_string(), 8);
//! assert_eq!(cache.get(&key).map(String::as_str), Some("artifact"));
//! assert_eq!(cache.stats().hits, 1);
//! ```

use std::collections::HashMap;

/// 128-bit FNV-1a over a byte string — the hash used for exact-text
/// content addressing (the service's first-level index maps
/// `hash(source)` to the canonical structural key, skipping the parser
/// for byte-identical resubmissions). Re-exported from [`mig::canon`] so
/// every content-addressing layer shares one implementation.
pub use mig::canon::fnv128;

/// Content address of one cached compile result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Canonical structural digest of the input graph.
    pub graph: u128,
    /// Fingerprint of everything else that shapes the artifact (rewrite
    /// effort, compiler options, emit kind, …).
    pub options: u64,
}

impl CacheKey {
    /// Creates a key from its two components.
    pub fn new(graph: u128, options: u64) -> Self {
        CacheKey { graph, options }
    }

    /// Compact hex spelling (graph digest then options fingerprint), used
    /// as the `key` field of service responses.
    pub fn hex(&self) -> String {
        format!("{:032x}{:016x}", self.graph, self.options)
    }

    /// The shard index this key maps to among `shards` shards.
    pub fn shard(&self, shards: usize) -> usize {
        debug_assert!(shards > 0);
        // Fold and avalanche: the two components can be correlated (both
        // derived from the same request), so a plain XOR is not enough.
        let mut x = self.graph as u64 ^ (self.graph >> 64) as u64 ^ self.options.rotate_left(32);
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51afd7ed558ccd);
        x ^= x >> 33;
        (x % shards as u64) as usize
    }
}

/// Cumulative counters of one cache (or one shard).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `get` calls that found a live entry.
    pub hits: u64,
    /// `get` calls that found nothing.
    pub misses: u64,
    /// Entries evicted to respect the byte budget.
    pub evictions: u64,
    /// Bytes currently held (sum of entry weights).
    pub bytes: usize,
    /// Entries currently held.
    pub entries: usize,
}

impl CacheStats {
    /// Folds another shard's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.bytes += other.bytes;
        self.entries += other.entries;
    }
}

/// Slab slot of one entry, intrusively linked in recency order.
///
/// `value` is an `Option` so removal can drop the payload *immediately*:
/// a freed slot whose multi-megabyte artifact lingered until the slot's
/// reuse would let real memory sit far above the accounted byte total.
#[derive(Debug)]
struct Entry<V> {
    key: CacheKey,
    value: Option<V>,
    weight: usize,
    /// Slab index of the more recently used neighbor (`usize::MAX` = none).
    prev: usize,
    /// Slab index of the less recently used neighbor (`usize::MAX` = none).
    next: usize,
}

const NONE: usize = usize::MAX;

/// A least-recently-used cache bounded by a byte budget instead of an
/// entry count.
///
/// Every entry carries an explicit *weight* (its memory footprint in
/// bytes, as accounted by the caller). Inserting a value whose weight
/// exceeds the whole budget is a no-op — the value is simply not cached.
#[derive(Debug)]
pub struct LruCache<V> {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    /// Most recently used entry.
    head: usize,
    /// Least recently used entry.
    tail: usize,
    budget: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// Creates a cache that holds at most `budget` bytes of entry weight.
    pub fn new(budget: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            budget,
            stats: CacheStats::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Current counters (hits, misses, evictions, live bytes/entries).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no entry is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, marking the entry most recently used on a hit.
    pub fn get(&mut self, key: &CacheKey) -> Option<&V> {
        match self.map.get(key).copied() {
            Some(index) => {
                self.stats.hits += 1;
                self.unlink(index);
                self.push_front(index);
                self.slab[index].value.as_ref()
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Looks up `key` without touching counters or recency — for re-checks
    /// by a caller that already recorded the lookup via [`LruCache::get`].
    pub fn peek(&self, key: &CacheKey) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&index| self.slab[index].value.as_ref())
    }

    /// Inserts `value` under `key` with the given weight, evicting
    /// least-recently-used entries until the budget holds it. Re-inserting
    /// an existing key replaces the value (and its weight). A value
    /// heavier than the whole budget is not cached at all — and on a
    /// replace, the now-stale old value is dropped rather than kept.
    pub fn insert(&mut self, key: CacheKey, value: V, weight: usize) {
        if weight > self.budget {
            // Uncacheable. This must be checked on the replace path too:
            // falling through would push `bytes` past the budget and the
            // eviction loop below would drain the entire cache.
            if let Some(&index) = self.map.get(&key) {
                self.remove_index(index);
            }
            return;
        }
        if let Some(&index) = self.map.get(&key) {
            self.stats.bytes = self.stats.bytes - self.slab[index].weight + weight;
            self.slab[index].value = Some(value);
            self.slab[index].weight = weight;
            self.unlink(index);
            self.push_front(index);
        } else {
            let entry = Entry {
                key,
                value: Some(value),
                weight,
                prev: NONE,
                next: NONE,
            };
            let index = match self.free.pop() {
                Some(slot) => {
                    self.slab[slot] = entry;
                    slot
                }
                None => {
                    self.slab.push(entry);
                    self.slab.len() - 1
                }
            };
            self.map.insert(key, index);
            self.push_front(index);
            self.stats.bytes += weight;
            self.stats.entries += 1;
        }
        while self.stats.bytes > self.budget {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        let index = self.tail;
        debug_assert_ne!(index, NONE, "over budget with no entries");
        self.remove_index(index);
        self.stats.evictions += 1;
    }

    /// Unlinks and frees one entry (not counted as an eviction). The
    /// payload is dropped here, not when the slot is eventually reused.
    fn remove_index(&mut self, index: usize) {
        self.unlink(index);
        let key = self.slab[index].key;
        self.map.remove(&key);
        self.free.push(index);
        self.stats.bytes -= self.slab[index].weight;
        self.stats.entries -= 1;
        self.slab[index].value = None;
    }

    fn unlink(&mut self, index: usize) {
        let (prev, next) = (self.slab[index].prev, self.slab[index].next);
        if prev == NONE {
            if self.head == index {
                self.head = next;
            }
        } else {
            self.slab[prev].next = next;
        }
        if next == NONE {
            if self.tail == index {
                self.tail = prev;
            }
        } else {
            self.slab[next].prev = prev;
        }
        self.slab[index].prev = NONE;
        self.slab[index].next = NONE;
    }

    fn push_front(&mut self, index: usize) {
        self.slab[index].prev = NONE;
        self.slab[index].next = self.head;
        if self.head != NONE {
            self.slab[self.head].prev = index;
        }
        self.head = index;
        if self.tail == NONE {
            self.tail = index;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CacheKey {
        CacheKey::new(n as u128, n)
    }

    #[test]
    fn insert_and_get_round_trip() {
        let mut cache = LruCache::new(100);
        cache.insert(key(1), "one", 10);
        cache.insert(key(2), "two", 10);
        assert_eq!(cache.get(&key(1)), Some(&"one"));
        assert_eq!(cache.get(&key(2)), Some(&"two"));
        assert_eq!(cache.get(&key(3)), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!((stats.entries, stats.bytes), (2, 20));
    }

    #[test]
    fn peek_does_not_touch_counters_or_recency() {
        let mut cache = LruCache::new(20);
        cache.insert(key(1), "one", 10);
        cache.insert(key(2), "two", 10);
        // Peeking at 1 must NOT refresh it...
        assert_eq!(cache.peek(&key(1)), Some(&"one"));
        assert_eq!(cache.peek(&key(3)), None);
        assert_eq!(cache.stats().hits + cache.stats().misses, 0);
        // ...so it is still the LRU entry and gets evicted first.
        cache.insert(key(3), "three", 10);
        assert_eq!(cache.peek(&key(1)), None);
        assert_eq!(cache.peek(&key(2)), Some(&"two"));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        let mut cache = LruCache::new(30);
        cache.insert(key(1), 1, 10);
        cache.insert(key(2), 2, 10);
        cache.insert(key(3), 3, 10);
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(4), 4, 10);
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert!(cache.get(&key(4)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn heavy_insert_evicts_many() {
        let mut cache = LruCache::new(100);
        for n in 0..10 {
            cache.insert(key(n), n, 10);
        }
        cache.insert(key(99), 99, 95);
        assert!(cache.get(&key(99)).is_some());
        // 95 + 10 > 100, so at most one light entry survives... in fact
        // none: eviction keeps going until the budget holds.
        assert_eq!(cache.stats().bytes, 95);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 10);
    }

    #[test]
    fn oversized_values_are_not_cached() {
        let mut cache = LruCache::new(50);
        cache.insert(key(1), 1, 10);
        cache.insert(key(2), 2, 51);
        assert!(cache.get(&key(2)).is_none());
        assert!(cache.get(&key(1)).is_some(), "existing entries survive");
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn oversized_replace_drops_the_key_without_draining_the_cache() {
        let mut cache = LruCache::new(50);
        cache.insert(key(1), 1, 10);
        cache.insert(key(2), 2, 10);
        // Replacing key 1 with an over-budget value must not wipe key 2
        // (the old buggy path pushed bytes past the budget and the
        // eviction loop drained everything).
        cache.insert(key(1), 99, 51);
        assert!(cache.peek(&key(1)).is_none(), "stale value must be gone");
        assert!(cache.peek(&key(2)).is_some(), "other entries survive");
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().bytes, 10);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinsert_replaces_value_and_weight() {
        let mut cache = LruCache::new(100);
        cache.insert(key(1), "a", 60);
        cache.insert(key(1), "b", 20);
        assert_eq!(cache.get(&key(1)), Some(&"b"));
        assert_eq!(cache.stats().bytes, 20);
        assert_eq!(cache.len(), 1);
        // The freed headroom is usable again.
        cache.insert(key(2), "c", 80);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn eviction_drops_the_payload_immediately() {
        // Freed slots must not pin their (potentially huge) values until
        // reuse — real memory would sit far above the accounted bytes.
        let payload = std::rc::Rc::new(());
        let mut cache = LruCache::new(10);
        cache.insert(key(1), std::rc::Rc::clone(&payload), 10);
        assert_eq!(std::rc::Rc::strong_count(&payload), 2);
        cache.insert(key(2), std::rc::Rc::new(()), 10); // evicts key 1
        assert_eq!(
            std::rc::Rc::strong_count(&payload),
            1,
            "evicted value must be dropped at eviction time"
        );
    }

    #[test]
    fn slots_are_reused_after_eviction() {
        let mut cache = LruCache::new(10);
        for n in 0..100 {
            cache.insert(key(n), n, 10);
        }
        assert_eq!(cache.len(), 1);
        assert!(cache.slab.len() <= 2, "slab must recycle evicted slots");
        assert_eq!(cache.stats().evictions, 99);
        assert!(cache.get(&key(99)).is_some());
    }

    #[test]
    fn zero_weight_entries_and_empty_cache_edge_cases() {
        let mut cache: LruCache<&str> = LruCache::new(0);
        cache.insert(key(1), "w", 1);
        assert!(cache.is_empty());
        cache.insert(key(2), "free", 0);
        assert_eq!(cache.get(&key(2)), Some(&"free"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in 0..64 {
            let k = key(n);
            let shard = k.shard(7);
            assert!(shard < 7);
            assert_eq!(shard, k.shard(7), "routing must be deterministic");
        }
        // Different keys spread over shards (not all on one).
        let shards: std::collections::HashSet<usize> = (0..64).map(|n| key(n).shard(7)).collect();
        assert!(shards.len() > 1);
    }

    #[test]
    fn hex_spelling_is_fixed_width() {
        let k = CacheKey::new(0xABC, 0x123);
        let hex = k.hex();
        assert_eq!(hex.len(), 48);
        assert!(hex.ends_with("0000000000000123"));
    }

    #[test]
    fn fnv128_distinguishes_and_is_stable() {
        assert_eq!(fnv128(b""), 0x6c62272e07bb014262b821756295c58d);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
        assert_eq!(fnv128(b"inputs a b\n"), fnv128(b"inputs a b\n"));
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 3,
            bytes: 4,
            entries: 5,
        };
        a.merge(&a.clone());
        assert_eq!(a.hits, 2);
        assert_eq!(a.bytes, 8);
        assert_eq!(a.entries, 10);
    }
}
