//! The `BENCH.json` artifact and the bench-regression gate.
//!
//! Every quality and speed number the compiler cares about becomes a
//! machine-checked artifact: `plimc bench --json` (and the `pipeline` bench
//! harness) emit one [`BenchRecord`] per suite circuit, CI diffs the fresh
//! run against the committed `benchmarks/baseline.json` with [`gate`], and
//! the job fails when `#I` or `#R` regress or the pipeline slows down past
//! the tolerance. The JSON reader/writer is hand-rolled for exactly this
//! flat schema so the workspace stays dependency-free and offline.
//!
//! A record carries, per circuit:
//!
//! * `instructions` / `rams` / `max_writes` — `#I`, `#R` and the
//!   endurance-limiting cell's write count of the **default** compiler
//!   (priority scheduling, smart translation, FIFO allocation) on the
//!   rewritten MIG; deterministic, diffed exactly;
//! * `lookahead_rams` / `wear_max_writes` — the same circuit under the
//!   lookahead scheduler and under the wear-budget allocator, recording
//!   what the lifetime-driven extensions buy;
//! * `rewrite_ms` / `compile_ms` — wall-clock of the rewrite pass and of
//!   the circuit's compile jobs; gated only in aggregate, with a generous
//!   tolerance, because timings are machine-dependent.

use std::fmt::Write as _;

/// One circuit's row of a `BENCH.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub circuit: String,
    /// `#I` of the default compiler on the rewritten MIG.
    pub instructions: u64,
    /// `#R` of the default compiler on the rewritten MIG.
    pub rams: u64,
    /// Highest per-cell write count under the default compiler.
    pub max_writes: u64,
    /// `#R` under lookahead scheduling (lifetime-driven extension).
    pub lookahead_rams: u64,
    /// Highest per-cell write count under the wear-budget allocator.
    pub wear_max_writes: u64,
    /// Wall-clock of the circuit's rewrite pass, in milliseconds.
    pub rewrite_ms: f64,
    /// Wall-clock of the circuit's compile jobs, in milliseconds.
    pub compile_ms: f64,
}

/// Serializes records as a stable, human-reviewable JSON document.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (index, r) in records.iter().enumerate() {
        let comma = if index + 1 == records.len() { "" } else { "," };
        writeln!(
            out,
            "  {{\"circuit\": \"{}\", \"instructions\": {}, \"rams\": {}, \"max_writes\": {}, \
             \"lookahead_rams\": {}, \"wear_max_writes\": {}, \"rewrite_ms\": {:.3}, \
             \"compile_ms\": {:.3}}}{comma}",
            escape(&r.circuit),
            r.instructions,
            r.rams,
            r.max_writes,
            r.lookahead_rams,
            r.wear_max_writes,
            r.rewrite_ms,
            r.compile_ms,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("]\n");
    out
}

fn escape(text: &str) -> String {
    text.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Parses a `BENCH.json` document produced by [`to_json`] (or edited by
/// hand: unknown keys are ignored, field order is free).
///
/// # Errors
///
/// Returns a one-line description of the first syntax error, missing
/// required field, or type mismatch.
pub fn from_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'[')?;
    let mut records = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b']') {
        p.pos += 1;
    } else {
        loop {
            records.push(p.parse_record()?);
            p.skip_ws();
            match p.next() {
                Some(b',') => p.skip_ws(),
                Some(b']') => break,
                _ => return Err(p.err("expected `,` or `]` after a record")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the record array"));
    }
    Ok(records)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> String {
        format!("BENCH.json: {message} (byte {})", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.next() == Some(byte) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.next() {
                Some(b'"') => {
                    // Collect raw bytes and decode once: pushing `byte as
                    // char` would re-encode each UTF-8 continuation byte as
                    // its own Latin-1 character and mangle non-ASCII names.
                    return String::from_utf8(out)
                        .map_err(|_| self.err("string is not valid UTF-8"));
                }
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    _ => return Err(self.err("unsupported escape in string")),
                },
                Some(b) => out.push(b),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }

    fn parse_record(&mut self) -> Result<BenchRecord, String> {
        self.skip_ws();
        self.expect(b'{')?;
        let mut circuit: Option<String> = None;
        let mut fields: [(&str, Option<f64>); 7] = [
            ("instructions", None),
            ("rams", None),
            ("max_writes", None),
            ("lookahead_rams", None),
            ("wear_max_writes", None),
            ("rewrite_ms", None),
            ("compile_ms", None),
        ];
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                break;
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            if key == "circuit" {
                circuit = Some(self.parse_string()?);
            } else if self.peek() == Some(b'"') {
                self.parse_string()?; // unknown string field: ignore
            } else {
                let value = self.parse_number()?;
                if let Some(slot) = fields.iter_mut().find(|(name, _)| *name == key) {
                    slot.1 = Some(value);
                }
                // unknown numeric fields are ignored
            }
            self.skip_ws();
            match self.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected `,` or `}` in a record")),
            }
        }
        let circuit = circuit.ok_or_else(|| self.err("record is missing `circuit`"))?;
        let get = |name: &str| -> Result<f64, String> {
            fields
                .iter()
                .find(|(n, _)| *n == name)
                .and_then(|(_, v)| *v)
                .ok_or(format!("BENCH.json: `{circuit}` is missing `{name}`"))
        };
        Ok(BenchRecord {
            instructions: get("instructions")? as u64,
            rams: get("rams")? as u64,
            max_writes: get("max_writes")? as u64,
            lookahead_rams: get("lookahead_rams")? as u64,
            wear_max_writes: get("wear_max_writes")? as u64,
            rewrite_ms: get("rewrite_ms")?,
            compile_ms: get("compile_ms")?,
            circuit,
        })
    }
}

/// Outcome of diffing a fresh run against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Human-readable per-circuit notes (improvements, informational
    /// changes, the timing summary).
    pub notes: Vec<String>,
    /// Hard failures: `#I`/`#R` regressions, missing circuits, or a
    /// wall-clock slowdown beyond the tolerance. Empty means the gate is
    /// green.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// `true` when no regression was detected.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `current` against `baseline`.
///
/// Deterministic program-quality metrics gate hard: any increase of
/// `instructions` or `rams` (on the default compiler) for a baseline
/// circuit, or a circuit disappearing from the run, is a regression.
/// Wall-clock gates softly: only the **total** `rewrite_ms + compile_ms`
/// over circuits present in both runs is compared, and only a slowdown
/// beyond `time_tolerance` (e.g. `0.25` for +25 %) fails. The endurance
/// and extension columns (`max_writes`, `lookahead_rams`,
/// `wear_max_writes`) are reported as notes so intentional trade-offs do
/// not need a baseline refresh ceremony.
pub fn gate(baseline: &[BenchRecord], current: &[BenchRecord], time_tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let mut base_time = 0.0f64;
    let mut curr_time = 0.0f64;
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.circuit == b.circuit) else {
            report
                .regressions
                .push(format!("{}: missing from the current run", b.circuit));
            continue;
        };
        base_time += b.rewrite_ms + b.compile_ms;
        curr_time += c.rewrite_ms + c.compile_ms;
        for (metric, old, new) in [
            ("#I", b.instructions, c.instructions),
            ("#R", b.rams, c.rams),
        ] {
            if new > old {
                report
                    .regressions
                    .push(format!("{}: {metric} regressed {old} → {new}", b.circuit));
            } else if new < old {
                report
                    .notes
                    .push(format!("{}: {metric} improved {old} → {new}", b.circuit));
            }
        }
        for (metric, old, new) in [
            ("max_writes", b.max_writes, c.max_writes),
            ("lookahead_rams", b.lookahead_rams, c.lookahead_rams),
            ("wear_max_writes", b.wear_max_writes, c.wear_max_writes),
        ] {
            if new != old {
                report
                    .notes
                    .push(format!("{}: {metric} changed {old} → {new}", b.circuit));
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.circuit == c.circuit) {
            report
                .notes
                .push(format!("{}: new circuit (not in the baseline)", c.circuit));
        }
    }
    if base_time > 0.0 {
        let ratio = curr_time / base_time;
        let line = format!(
            "wall-clock: {base_time:.1} ms baseline vs {curr_time:.1} ms current ({:+.1} %)",
            (ratio - 1.0) * 100.0
        );
        if ratio > 1.0 + time_tolerance {
            report.regressions.push(format!(
                "{line} exceeds the +{:.0} % tolerance",
                time_tolerance * 100.0
            ));
        } else {
            report.notes.push(line);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(circuit: &str, instructions: u64, rams: u64) -> BenchRecord {
        BenchRecord {
            circuit: circuit.to_string(),
            instructions,
            rams,
            max_writes: 9,
            lookahead_rams: rams,
            wear_max_writes: 5,
            rewrite_ms: 1.5,
            compile_ms: 0.5,
        }
    }

    #[test]
    fn json_round_trips() {
        // Quotes, backslashes, and non-ASCII UTF-8 must all survive.
        let records = vec![
            record("adder", 120, 12),
            record("log2\"odd\\", 7, 3),
            record("Σ-µbench", 9, 2),
        ];
        let parsed = from_json(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parser_ignores_unknown_fields_and_order() {
        let text = r#"[{"rams": 3, "note": "hi", "circuit": "x", "instructions": 9,
            "max_writes": 1, "lookahead_rams": 3, "wear_max_writes": 1,
            "compile_ms": 0.25, "rewrite_ms": 1.25, "extra": 42}]"#;
        let parsed = from_json(text).unwrap();
        assert_eq!(parsed[0].circuit, "x");
        assert_eq!(parsed[0].instructions, 9);
        assert_eq!(parsed[0].rewrite_ms, 1.25);
    }

    #[test]
    fn parser_reports_missing_fields_and_syntax_errors() {
        let err = from_json(r#"[{"circuit": "x"}]"#).unwrap_err();
        assert!(err.contains("missing `instructions`"), "{err}");
        assert!(from_json("[").is_err());
        assert!(from_json("[]extra").is_err());
        assert!(from_json(r#"[{"instructions": 1}]"#).is_err());
        assert_eq!(from_json("[]").unwrap(), vec![]);
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let records = vec![record("adder", 120, 12)];
        let report = gate(&records, &records, 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn instruction_regression_fails_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        let current = vec![record("adder", 121, 12)];
        let report = gate(&baseline, &current, 0.25);
        assert!(!report.passed());
        assert!(report.regressions[0].contains("#I regressed 120 → 121"));
    }

    #[test]
    fn ram_regression_and_missing_circuit_fail_the_gate() {
        let baseline = vec![record("adder", 120, 12), record("bar", 50, 6)];
        let current = vec![record("adder", 120, 13)];
        let report = gate(&baseline, &current, 0.25);
        assert_eq!(report.regressions.len(), 2);
        assert!(report.regressions.iter().any(|r| r.contains("#R")));
        assert!(report.regressions.iter().any(|r| r.contains("missing")));
    }

    #[test]
    fn improvements_and_endurance_changes_are_notes() {
        let baseline = vec![record("adder", 120, 12)];
        let mut improved = record("adder", 118, 12);
        improved.wear_max_writes = 4;
        let report = gate(&baseline, &[improved], 0.25);
        assert!(report.passed());
        assert!(report.notes.iter().any(|n| n.contains("#I improved")));
        assert!(report.notes.iter().any(|n| n.contains("wear_max_writes")));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_within_passes() {
        let baseline = vec![record("adder", 120, 12)];
        let mut slow = record("adder", 120, 12);
        slow.compile_ms = 10.0;
        let report = gate(&baseline, &[slow.clone()], 0.25);
        assert!(!report.passed());
        assert!(report.regressions[0].contains("tolerance"));
        // A generous tolerance lets the same run through.
        assert!(gate(&baseline, &[slow], 10.0).passed());
    }
}
