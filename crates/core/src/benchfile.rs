//! The `BENCH.json` artifact and the bench-regression gate.
//!
//! Every quality and speed number the compiler cares about becomes a
//! machine-checked artifact: `plimc bench --json` (and the `pipeline` bench
//! harness) emit one [`BenchRecord`] per suite circuit, CI diffs the fresh
//! run against the committed `benchmarks/baseline.json` with [`gate`], and
//! the job fails when `#I` or `#R` regress or the pipeline slows down past
//! the tolerance. The JSON reader/writer is hand-rolled for exactly this
//! flat schema so the workspace stays dependency-free and offline.
//!
//! A record carries, per circuit:
//!
//! * `instructions` / `rams` / `max_writes` — `#I`, `#R` and the
//!   endurance-limiting cell's write count of the **default** compiler
//!   (priority scheduling, smart translation, FIFO allocation, `-O0`) on
//!   the rewritten MIG; deterministic, diffed exactly;
//! * `lookahead_rams` / `wear_max_writes` — the same circuit under the
//!   lookahead scheduler and under the wear-budget allocator, recording
//!   what the lifetime-driven extensions buy;
//! * `o1_instructions` / `o1_rams` and `o2_instructions` / `o2_rams` /
//!   `o2_max_writes` — the default compiler with the IR pass pipeline at
//!   `-O1` and `-O2`. [`gate`] enforces that a higher level never costs
//!   instructions, cells, or endurance relative to `-O0` — on the current
//!   run itself, baseline or not;
//! * `ambit_ops` / `ambit_cost` and `magic_ops` / `magic_cost` — the
//!   **per-target axis**: instruction count and cost-model units of the
//!   default compiler's IR re-emitted through the `ambit` (bulk-bitwise
//!   DRAM majority) and `magic` (memristive NOR) backends. Filled in by
//!   the backend registry (`plim-backends::annotate_bench`), `0` when
//!   annotation was skipped; [`gate`] fails hard when an annotated column
//!   regresses against an annotated baseline and notes
//!   annotation-coverage changes;
//! * `egraph_instructions` / `egraph_rams` — the **equality-saturation
//!   axis**: `#I` and `#R` of the circuit re-optimized through the
//!   `plim-egraph` engine and compiled at `-O2`. Filled in by
//!   `plim-egraph::annotate_bench`, `0` when annotation was skipped;
//!   [`gate`] applies the same annotated-pairs rule as the per-target
//!   columns **and** checks, on the current run alone, that an annotated
//!   `egraph_instructions` never exceeds `o2_instructions` — the e-graph
//!   extractor falls back to the arena result, so being worse is a bug;
//! * `rewrite_ms` / `compile_ms` — wall-clock of the rewrite pass and of
//!   the circuit's compile jobs; gated only in aggregate, with a generous
//!   tolerance, because timings are machine-dependent;
//! * `verified_exhaustive` / `fault_error_rate` / `lifetime_invocations`
//!   — the **fidelity axis**, filled in by the scenario engine
//!   (`plim-scenario`): whether the circuit's compiled programs were
//!   proven equal to the source MIG over the *entire* input space at every
//!   opt level, the measured output-error rate under the reference
//!   drifted-write fault model, and the simulated invocations until the
//!   first cell exceeds its endurance budget. [`gate`] fails hard when
//!   `verified_exhaustive` regresses from `true` to `false`; the two
//!   measured columns are reported as notes;
//! * `lint_clean` — the **static-analysis axis**: whether every artifact
//!   behind the record came back from the `plim-analysis` lint engine
//!   with zero diagnostics and exactly matching statically re-derived
//!   resources. Like the proof column, [`gate`] fails hard on a
//!   `true → false` flip and notes the opposite direction.
//!
//! Parsing is built on the shared [`crate::json`] layer, so syntax errors
//! carry byte positions and schema errors name the missing or mistyped
//! field and the record it belongs to — `plimc bench-diff` surfaces them
//! verbatim as one-line diagnostics.

use std::fmt::Write as _;

use crate::json::Value;

/// One circuit's row of a `BENCH.json` artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name.
    pub circuit: String,
    /// `#I` of the default compiler on the rewritten MIG.
    pub instructions: u64,
    /// `#R` of the default compiler on the rewritten MIG.
    pub rams: u64,
    /// Highest per-cell write count under the default compiler.
    pub max_writes: u64,
    /// `#R` under lookahead scheduling (lifetime-driven extension).
    pub lookahead_rams: u64,
    /// Highest per-cell write count under the wear-budget allocator.
    pub wear_max_writes: u64,
    /// `#I` of the default compiler at `-O1`.
    pub o1_instructions: u64,
    /// `#R` of the default compiler at `-O1`.
    pub o1_rams: u64,
    /// `#I` of the default compiler at `-O2`.
    pub o2_instructions: u64,
    /// `#R` of the default compiler at `-O2`.
    pub o2_rams: u64,
    /// Highest per-cell write count of the default compiler at `-O2`.
    pub o2_max_writes: u64,
    /// Instructions of the default compiler's IR emitted through the
    /// `ambit` backend (0 when per-target annotation was skipped).
    pub ambit_ops: u64,
    /// Cost-model units of the `ambit` emission (row activations).
    pub ambit_cost: u64,
    /// Instructions of the default compiler's IR emitted through the
    /// `magic` backend (0 when per-target annotation was skipped).
    pub magic_ops: u64,
    /// Cost-model units of the `magic` emission (NOR pulses).
    pub magic_cost: u64,
    /// `#I` of the equality-saturation engine's extraction compiled at
    /// `-O2` (0 when annotation was skipped).
    pub egraph_instructions: u64,
    /// `#R` of the equality-saturation engine's extraction compiled at
    /// `-O2` (0 when annotation was skipped).
    pub egraph_rams: u64,
    /// Wall-clock of the circuit's rewrite pass, in milliseconds.
    pub rewrite_ms: f64,
    /// Wall-clock of the circuit's compile jobs, in milliseconds.
    pub compile_ms: f64,
    /// Whether every opt level's compiled program was proven equal to the
    /// source MIG over the full input space (`false` for circuits beyond
    /// the exhaustive bound, or when annotation was skipped).
    pub verified_exhaustive: bool,
    /// Measured output-error rate (erroneous patterns / patterns) under
    /// the reference drifted-write fault model.
    pub fault_error_rate: f64,
    /// Simulated invocations until the first cell exceeds the reference
    /// endurance budget (0 when annotation was skipped).
    pub lifetime_invocations: u64,
    /// Whether the static analyzer reported zero diagnostics on every
    /// artifact behind this record, with statically re-derived resources
    /// matching the recorded stats exactly.
    pub lint_clean: bool,
}

/// Serializes records as a stable, human-reviewable JSON document.
pub fn to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("[\n");
    for (index, r) in records.iter().enumerate() {
        let comma = if index + 1 == records.len() { "" } else { "," };
        writeln!(
            out,
            "  {{\"circuit\": {}, \"instructions\": {}, \"rams\": {}, \"max_writes\": {}, \
             \"lookahead_rams\": {}, \"wear_max_writes\": {}, \"o1_instructions\": {}, \
             \"o1_rams\": {}, \"o2_instructions\": {}, \"o2_rams\": {}, \"o2_max_writes\": {}, \
             \"ambit_ops\": {}, \"ambit_cost\": {}, \"magic_ops\": {}, \"magic_cost\": {}, \
             \"egraph_instructions\": {}, \"egraph_rams\": {}, \
             \"rewrite_ms\": {:.3}, \"compile_ms\": {:.3}, \"verified_exhaustive\": {}, \
             \"fault_error_rate\": {:.6}, \"lifetime_invocations\": {}, \
             \"lint_clean\": {}}}{comma}",
            // The shared JSON writer (full escaping, including control
            // characters) keeps the round-trip with `from_json` — which
            // parses through the same layer — airtight.
            Value::string(r.circuit.clone()).to_json(),
            r.instructions,
            r.rams,
            r.max_writes,
            r.lookahead_rams,
            r.wear_max_writes,
            r.o1_instructions,
            r.o1_rams,
            r.o2_instructions,
            r.o2_rams,
            r.o2_max_writes,
            r.ambit_ops,
            r.ambit_cost,
            r.magic_ops,
            r.magic_cost,
            r.egraph_instructions,
            r.egraph_rams,
            r.rewrite_ms,
            r.compile_ms,
            r.verified_exhaustive,
            r.fault_error_rate,
            r.lifetime_invocations,
            r.lint_clean,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("]\n");
    out
}

/// The twenty required numeric fields of a record, in schema order
/// (`circuit` and the booleans `verified_exhaustive` / `lint_clean` are
/// handled apart).
const NUMERIC_FIELDS: [&str; 20] = [
    "instructions",
    "rams",
    "max_writes",
    "lookahead_rams",
    "wear_max_writes",
    "o1_instructions",
    "o1_rams",
    "o2_instructions",
    "o2_rams",
    "o2_max_writes",
    "ambit_ops",
    "ambit_cost",
    "magic_ops",
    "magic_cost",
    "egraph_instructions",
    "egraph_rams",
    "rewrite_ms",
    "compile_ms",
    "fault_error_rate",
    "lifetime_invocations",
];

/// Parses a `BENCH.json` document produced by [`to_json`] (or edited by
/// hand: unknown keys are ignored, field order is free).
///
/// # Errors
///
/// Returns a one-line description of the first problem: syntax errors with
/// their byte position (truncated input, duplicate keys, trailing
/// garbage — via [`crate::json`]), a `missing field '<name>'` for an
/// absent required field, or a type mismatch for a non-numeric count.
pub fn from_json(text: &str) -> Result<Vec<BenchRecord>, String> {
    let document = Value::parse(text).map_err(|e| e.to_string())?;
    let Some(items) = document.as_array() else {
        return Err("expected a top-level array of records".to_string());
    };
    items
        .iter()
        .enumerate()
        .map(|(index, item)| parse_record(index, item))
        .collect()
}

fn parse_record(index: usize, item: &Value) -> Result<BenchRecord, String> {
    let Some(members) = item.as_object() else {
        return Err(format!("record {}: expected an object", index + 1));
    };
    // `circuit` first: every later diagnostic names the record by it.
    let circuit = match item.get("circuit") {
        Some(value) => value
            .as_str()
            .ok_or(format!(
                "field 'circuit' must be a string (record {})",
                index + 1
            ))?
            .to_string(),
        None => return Err(format!("missing field 'circuit' (record {})", index + 1)),
    };
    let mut numeric = [None::<f64>; NUMERIC_FIELDS.len()];
    for (key, value) in members {
        if let Some(slot) = NUMERIC_FIELDS.iter().position(|n| n == key) {
            numeric[slot] = Some(value.as_f64().ok_or(format!(
                "field '{key}' must be a number (circuit \"{circuit}\")"
            ))?);
        }
        // Unknown fields (of any type) are ignored for forward compatibility.
    }
    let get = |name: &str| -> Result<f64, String> {
        let slot = NUMERIC_FIELDS
            .iter()
            .position(|n| *n == name)
            .expect("known field");
        numeric[slot].ok_or(format!("missing field '{name}' (circuit \"{circuit}\")"))
    };
    // Checked after the numeric fields so diagnostics keep their
    // long-standing precedence (type errors, then missing counts).
    let boolean = |name: &'static str| -> Result<bool, String> {
        match item.get(name) {
            Some(value) => value.as_bool().ok_or(format!(
                "field '{name}' must be a boolean (circuit \"{circuit}\")"
            )),
            None => Err(format!("missing field '{name}' (circuit \"{circuit}\")")),
        }
    };
    Ok(BenchRecord {
        instructions: get("instructions")? as u64,
        rams: get("rams")? as u64,
        max_writes: get("max_writes")? as u64,
        lookahead_rams: get("lookahead_rams")? as u64,
        wear_max_writes: get("wear_max_writes")? as u64,
        o1_instructions: get("o1_instructions")? as u64,
        o1_rams: get("o1_rams")? as u64,
        o2_instructions: get("o2_instructions")? as u64,
        o2_rams: get("o2_rams")? as u64,
        o2_max_writes: get("o2_max_writes")? as u64,
        ambit_ops: get("ambit_ops")? as u64,
        ambit_cost: get("ambit_cost")? as u64,
        magic_ops: get("magic_ops")? as u64,
        magic_cost: get("magic_cost")? as u64,
        egraph_instructions: get("egraph_instructions")? as u64,
        egraph_rams: get("egraph_rams")? as u64,
        rewrite_ms: get("rewrite_ms")?,
        compile_ms: get("compile_ms")?,
        fault_error_rate: get("fault_error_rate")?,
        lifetime_invocations: get("lifetime_invocations")? as u64,
        verified_exhaustive: boolean("verified_exhaustive")?,
        lint_clean: boolean("lint_clean")?,
        circuit,
    })
}

/// Outcome of diffing a fresh run against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Human-readable per-circuit notes (improvements, informational
    /// changes, the timing summary).
    pub notes: Vec<String>,
    /// Hard failures: `#I`/`#R` regressions, missing circuits, or a
    /// wall-clock slowdown beyond the tolerance. Empty means the gate is
    /// green.
    pub regressions: Vec<String>,
}

impl GateReport {
    /// `true` when no regression was detected.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `current` against `baseline`.
///
/// Deterministic program-quality metrics gate hard: any increase of
/// `instructions`, `rams` or `o2_instructions` (on the default compiler)
/// for a baseline circuit, or a circuit disappearing from the run, is a
/// regression. Independently of the baseline, every *current* record must
/// satisfy opt-level monotonicity — a higher `-O` may never produce more
/// instructions than `-O0`, nor cost cells or endurance at `-O2` — so a
/// pass regression fails CI even right after a baseline refresh.
/// The per-target columns (`ambit_ops`/`ambit_cost`,
/// `magic_ops`/`magic_cost`) and the equality-saturation columns
/// (`egraph_instructions`/`egraph_rams`) gate hard whenever baseline
/// **and** current run annotated them (both nonzero); a `0` on either side
/// means annotation was skipped there, and the coverage change is a note.
/// Additionally, every annotated *current* record must satisfy
/// `egraph_instructions <= o2_instructions` — the extractor falls back to
/// the arena result, so being worse is a bug even after a baseline
/// refresh.
/// Wall-clock gates softly: only the **total** `rewrite_ms + compile_ms`
/// over circuits present in both runs is compared, and only a slowdown
/// beyond `time_tolerance` (e.g. `0.25` for +25 %) fails. The endurance
/// and extension columns (`max_writes`, `lookahead_rams`,
/// `wear_max_writes`, the remaining `o1`/`o2` columns) are reported as
/// notes so intentional trade-offs do not need a baseline refresh
/// ceremony.
///
/// The fidelity axis gates asymmetrically: a circuit whose
/// `verified_exhaustive` flips from `true` to `false` is a regression (a
/// formerly proven circuit lost its proof), the opposite flip is a note,
/// and changes of the measured `fault_error_rate` /
/// `lifetime_invocations` columns are notes (they move with the fault
/// model, not with compiler correctness). The static-analysis column
/// `lint_clean` gates the same way: a formerly clean circuit growing a
/// diagnostic is a regression, a circuit coming clean is a note.
pub fn gate(baseline: &[BenchRecord], current: &[BenchRecord], time_tolerance: f64) -> GateReport {
    let mut report = GateReport::default();
    let mut base_time = 0.0f64;
    let mut curr_time = 0.0f64;
    for c in current {
        // The e-graph extractor falls back to the arena result whenever no
        // candidate wins, so an annotated record where it ends up *worse*
        // than plain `-O2` is a bug regardless of what the baseline says.
        if c.egraph_instructions != 0 && c.egraph_instructions > c.o2_instructions {
            report.regressions.push(format!(
                "{}: egraph_instructions exceeds o2_instructions ({} > {})",
                c.circuit, c.egraph_instructions, c.o2_instructions
            ));
        }
        for (rule, high, low) in [
            (
                "-O1 produces more instructions than -O0",
                c.o1_instructions,
                c.instructions,
            ),
            (
                "-O2 produces more instructions than -O0",
                c.o2_instructions,
                c.instructions,
            ),
            ("-O2 uses more RRAMs than -O0", c.o2_rams, c.rams),
            (
                "-O2 wears cells harder than -O0",
                c.o2_max_writes,
                c.max_writes,
            ),
        ] {
            if high > low {
                report
                    .regressions
                    .push(format!("{}: {rule} ({low} → {high})", c.circuit));
            }
        }
    }
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.circuit == b.circuit) else {
            report
                .regressions
                .push(format!("{}: missing from the current run", b.circuit));
            continue;
        };
        base_time += b.rewrite_ms + b.compile_ms;
        curr_time += c.rewrite_ms + c.compile_ms;
        for (metric, old, new) in [
            ("#I", b.instructions, c.instructions),
            ("#R", b.rams, c.rams),
            ("-O2 #I", b.o2_instructions, c.o2_instructions),
        ] {
            if new > old {
                report
                    .regressions
                    .push(format!("{}: {metric} regressed {old} → {new}", b.circuit));
            } else if new < old {
                report
                    .notes
                    .push(format!("{}: {metric} improved {old} → {new}", b.circuit));
            }
        }
        // Per-target columns gate hard, but only where both runs actually
        // annotated them: `0` means "annotation skipped", and comparing a
        // measured value against a skip would turn coverage changes into
        // phantom regressions.
        for (metric, old, new) in [
            ("ambit_ops", b.ambit_ops, c.ambit_ops),
            ("ambit_cost", b.ambit_cost, c.ambit_cost),
            ("magic_ops", b.magic_ops, c.magic_ops),
            ("magic_cost", b.magic_cost, c.magic_cost),
            (
                "egraph_instructions",
                b.egraph_instructions,
                c.egraph_instructions,
            ),
            ("egraph_rams", b.egraph_rams, c.egraph_rams),
        ] {
            if old == 0 || new == 0 {
                if old != new {
                    report.notes.push(format!(
                        "{}: {metric} annotation coverage changed {old} → {new}",
                        b.circuit
                    ));
                }
            } else if new > old {
                report
                    .regressions
                    .push(format!("{}: {metric} regressed {old} → {new}", b.circuit));
            } else if new < old {
                report
                    .notes
                    .push(format!("{}: {metric} improved {old} → {new}", b.circuit));
            }
        }
        match (b.verified_exhaustive, c.verified_exhaustive) {
            (true, false) => report.regressions.push(format!(
                "{}: verified_exhaustive regressed true → false",
                b.circuit
            )),
            (false, true) => report
                .notes
                .push(format!("{}: now verified exhaustively", b.circuit)),
            _ => {}
        }
        match (b.lint_clean, c.lint_clean) {
            (true, false) => report
                .regressions
                .push(format!("{}: lint_clean regressed true → false", b.circuit)),
            (false, true) => report.notes.push(format!("{}: now lint-clean", b.circuit)),
            _ => {}
        }
        if (b.fault_error_rate - c.fault_error_rate).abs() > f64::EPSILON {
            report.notes.push(format!(
                "{}: fault_error_rate changed {:.6} → {:.6}",
                b.circuit, b.fault_error_rate, c.fault_error_rate
            ));
        }
        if b.lifetime_invocations != c.lifetime_invocations {
            report.notes.push(format!(
                "{}: lifetime_invocations changed {} → {}",
                b.circuit, b.lifetime_invocations, c.lifetime_invocations
            ));
        }
        for (metric, old, new) in [
            ("max_writes", b.max_writes, c.max_writes),
            ("lookahead_rams", b.lookahead_rams, c.lookahead_rams),
            ("wear_max_writes", b.wear_max_writes, c.wear_max_writes),
            ("o1_instructions", b.o1_instructions, c.o1_instructions),
            ("o1_rams", b.o1_rams, c.o1_rams),
            ("o2_rams", b.o2_rams, c.o2_rams),
            ("o2_max_writes", b.o2_max_writes, c.o2_max_writes),
        ] {
            if new != old {
                report
                    .notes
                    .push(format!("{}: {metric} changed {old} → {new}", b.circuit));
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.circuit == c.circuit) {
            report
                .notes
                .push(format!("{}: new circuit (not in the baseline)", c.circuit));
        }
    }
    if base_time > 0.0 {
        let ratio = curr_time / base_time;
        let line = format!(
            "wall-clock: {base_time:.1} ms baseline vs {curr_time:.1} ms current ({:+.1} %)",
            (ratio - 1.0) * 100.0
        );
        if ratio > 1.0 + time_tolerance {
            report.regressions.push(format!(
                "{line} exceeds the +{:.0} % tolerance",
                time_tolerance * 100.0
            ));
        } else {
            report.notes.push(line);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(circuit: &str, instructions: u64, rams: u64) -> BenchRecord {
        BenchRecord {
            circuit: circuit.to_string(),
            instructions,
            rams,
            max_writes: 9,
            lookahead_rams: rams,
            wear_max_writes: 5,
            o1_instructions: instructions,
            o1_rams: rams,
            o2_instructions: instructions.saturating_sub(2),
            o2_rams: rams,
            o2_max_writes: 9,
            ambit_ops: instructions * 5,
            ambit_cost: instructions * 11,
            magic_ops: instructions * 7,
            magic_cost: instructions * 7,
            egraph_instructions: instructions.saturating_sub(3),
            egraph_rams: rams,
            rewrite_ms: 1.5,
            compile_ms: 0.5,
            verified_exhaustive: true,
            fault_error_rate: 0.015625,
            lifetime_invocations: 111_111,
            lint_clean: true,
        }
    }

    #[test]
    fn json_round_trips() {
        // Quotes, backslashes, non-ASCII UTF-8, and control characters
        // must all survive (the strict parser rejects raw control bytes,
        // so the writer must escape them).
        let records = vec![
            record("adder", 120, 12),
            record("log2\"odd\\", 7, 3),
            record("Σ-µbench", 9, 2),
            record("tab\there\nand newline", 4, 1),
        ];
        let parsed = from_json(&to_json(&records)).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parser_ignores_unknown_fields_and_order() {
        let text = r#"[{"rams": 3, "note": "hi", "circuit": "x", "instructions": 9,
            "max_writes": 1, "lookahead_rams": 3, "wear_max_writes": 1,
            "o2_instructions": 8, "o2_rams": 3, "o2_max_writes": 1,
            "o1_instructions": 9, "o1_rams": 3,
            "ambit_ops": 45, "ambit_cost": 99, "magic_ops": 63, "magic_cost": 63,
            "egraph_instructions": 7, "egraph_rams": 3,
            "verified_exhaustive": false, "fault_error_rate": 0.25,
            "lifetime_invocations": 1000, "lint_clean": true,
            "compile_ms": 0.25, "rewrite_ms": 1.25, "extra": 42}]"#;
        let parsed = from_json(text).unwrap();
        assert_eq!(parsed[0].circuit, "x");
        assert_eq!(parsed[0].instructions, 9);
        assert_eq!(parsed[0].o2_instructions, 8);
        assert_eq!(parsed[0].rewrite_ms, 1.25);
        assert!(!parsed[0].verified_exhaustive);
        assert_eq!(parsed[0].fault_error_rate, 0.25);
        assert_eq!(parsed[0].lifetime_invocations, 1000);
    }

    #[test]
    fn fidelity_fields_are_required_and_typed() {
        let mut without = to_json(&[record("adder", 120, 12)]);
        without = without.replace("\"verified_exhaustive\": true, ", "");
        let err = from_json(&without).unwrap_err();
        assert!(err.contains("missing field 'verified_exhaustive'"), "{err}");
        let mistyped = to_json(&[record("adder", 120, 12)]).replace(
            "\"verified_exhaustive\": true",
            "\"verified_exhaustive\": 1",
        );
        let err = from_json(&mistyped).unwrap_err();
        assert!(
            err.contains("field 'verified_exhaustive' must be a boolean"),
            "{err}"
        );
        let without_rate =
            to_json(&[record("adder", 120, 12)]).replace("\"fault_error_rate\": 0.015625, ", "");
        let err = from_json(&without_rate).unwrap_err();
        assert!(err.contains("missing field 'fault_error_rate'"), "{err}");
        let without_lint =
            to_json(&[record("adder", 120, 12)]).replace(", \"lint_clean\": true", "");
        let err = from_json(&without_lint).unwrap_err();
        assert!(err.contains("missing field 'lint_clean'"), "{err}");
        let mistyped_lint = to_json(&[record("adder", 120, 12)])
            .replace("\"lint_clean\": true", "\"lint_clean\": \"yes\"");
        let err = from_json(&mistyped_lint).unwrap_err();
        assert!(
            err.contains("field 'lint_clean' must be a boolean"),
            "{err}"
        );
    }

    #[test]
    fn per_target_regressions_fail_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        for field in ["ambit_ops", "ambit_cost", "magic_ops", "magic_cost"] {
            let mut worse = record("adder", 120, 12);
            match field {
                "ambit_ops" => worse.ambit_ops += 1,
                "ambit_cost" => worse.ambit_cost += 1,
                "magic_ops" => worse.magic_ops += 1,
                _ => worse.magic_cost += 1,
            }
            let report = gate(&baseline, &[worse], 0.25);
            assert!(!report.passed(), "{field} increase must fail");
            assert!(
                report.regressions[0].contains(&format!("{field} regressed")),
                "{:?}",
                report.regressions
            );
        }
        // Improvements are notes.
        let mut better = record("adder", 120, 12);
        better.ambit_cost -= 1;
        let report = gate(&baseline, &[better], 0.25);
        assert!(report.passed());
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("ambit_cost improved")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn egraph_column_regressions_fail_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        for field in ["egraph_instructions", "egraph_rams"] {
            let mut worse = record("adder", 120, 12);
            match field {
                "egraph_instructions" => worse.egraph_instructions += 1,
                _ => worse.egraph_rams += 1,
            }
            let report = gate(&baseline, &[worse], 0.25);
            assert!(!report.passed(), "{field} increase must fail");
            assert!(
                report
                    .regressions
                    .iter()
                    .any(|r| r.contains(&format!("{field} regressed"))),
                "{:?}",
                report.regressions
            );
        }
        // A skipped annotation (0) on either side is a coverage note.
        let mut skipped = record("adder", 120, 12);
        skipped.egraph_instructions = 0;
        skipped.egraph_rams = 0;
        let report = gate(&baseline, &[skipped.clone()], 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("egraph_instructions annotation coverage changed")),
            "{:?}",
            report.notes
        );
        let report = gate(&[skipped], &[record("adder", 120, 12)], 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn egraph_worse_than_o2_fails_even_without_a_baseline_entry() {
        // The fallback guarantees egraph <= -O2; an annotated current
        // record violating that is a bug even on a brand-new circuit.
        let mut broken = record("fresh", 120, 12);
        broken.egraph_instructions = broken.o2_instructions + 1;
        let report = gate(&[], &[broken], 0.25);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("egraph_instructions exceeds o2_instructions"),
            "{:?}",
            report.regressions
        );
        // Unannotated records (0) are exempt from the rule.
        let mut skipped = record("fresh", 120, 12);
        skipped.egraph_instructions = 0;
        assert!(gate(&[], &[skipped], 0.25).passed());
    }

    #[test]
    fn per_target_annotation_coverage_changes_are_notes() {
        // Baseline annotated, current skipped: a note, not a regression —
        // and the reverse direction likewise (0 → measured must not read
        // as a cost explosion).
        let baseline = vec![record("adder", 120, 12)];
        let mut skipped = record("adder", 120, 12);
        skipped.ambit_ops = 0;
        skipped.ambit_cost = 0;
        let report = gate(&baseline, &[skipped.clone()], 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("ambit_ops annotation coverage changed")),
            "{:?}",
            report.notes
        );
        let report = gate(&[skipped], &[record("adder", 120, 12)], 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn lint_clean_regression_fails_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        let mut dirty = record("adder", 120, 12);
        dirty.lint_clean = false;
        let report = gate(&baseline, &[dirty], 0.25);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("lint_clean regressed true → false"),
            "{:?}",
            report.regressions
        );
        // Coming clean is a note, not a failure.
        let mut base_dirty = record("adder", 120, 12);
        base_dirty.lint_clean = false;
        let report = gate(&[base_dirty], &[record("adder", 120, 12)], 0.25);
        assert!(report.passed());
        assert!(
            report.notes.iter().any(|n| n.contains("now lint-clean")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn verified_exhaustive_regression_fails_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        let mut lost = record("adder", 120, 12);
        lost.verified_exhaustive = false;
        let report = gate(&baseline, &[lost], 0.25);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("verified_exhaustive regressed true → false"),
            "{:?}",
            report.regressions
        );
        // The opposite direction is a note, not a failure.
        let mut base_unverified = record("adder", 120, 12);
        base_unverified.verified_exhaustive = false;
        let report = gate(&[base_unverified], &[record("adder", 120, 12)], 0.25);
        assert!(report.passed());
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("now verified exhaustively")),
            "{:?}",
            report.notes
        );
    }

    #[test]
    fn measured_fidelity_changes_are_notes() {
        let baseline = vec![record("adder", 120, 12)];
        let mut moved = record("adder", 120, 12);
        moved.fault_error_rate = 0.5;
        moved.lifetime_invocations = 7;
        let report = gate(&baseline, &[moved], 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("fault_error_rate changed")));
        assert!(report
            .notes
            .iter()
            .any(|n| n.contains("lifetime_invocations changed 111111 → 7")));
    }

    #[test]
    fn opt_level_monotonicity_gates_the_current_run() {
        let baseline = vec![record("adder", 120, 12)];
        // A record whose -O2 column exceeds -O0 fails even when it matches
        // the baseline exactly.
        let mut broken = record("adder", 120, 12);
        broken.o2_instructions = 121;
        let report = gate(&baseline, &[broken.clone()], 0.25);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("-O2 produces more instructions"),
            "{:?}",
            report.regressions
        );
        let report = gate(&[broken.clone()], &[broken], 0.25);
        assert!(!report.passed(), "monotonicity must not need a baseline");
        let mut wear = record("adder", 120, 12);
        wear.o2_max_writes = wear.max_writes + 1;
        assert!(!gate(&baseline, &[wear], 0.25).passed());
        let mut rams = record("adder", 120, 12);
        rams.o2_rams = rams.rams + 1;
        assert!(!gate(&baseline, &[rams], 0.25).passed());
    }

    #[test]
    fn optimized_instruction_regression_fails_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        let mut current = record("adder", 120, 12);
        current.o2_instructions += 1; // 119 → still ≤ 120, monotone
        let report = gate(&baseline, &[current], 0.25);
        assert!(!report.passed());
        assert!(
            report.regressions[0].contains("-O2 #I regressed"),
            "{:?}",
            report.regressions
        );
    }

    #[test]
    fn parser_reports_missing_fields_and_syntax_errors() {
        let err = from_json(r#"[{"circuit": "x"}]"#).unwrap_err();
        assert!(err.contains("missing field 'instructions'"), "{err}");
        assert!(err.contains("circuit \"x\""), "{err}");
        assert!(from_json("[").is_err());
        assert!(from_json("[]extra").is_err());
        let err = from_json(r#"[{"instructions": 1}]"#).unwrap_err();
        assert!(err.contains("missing field 'circuit'"), "{err}");
        assert_eq!(from_json("[]").unwrap(), vec![]);
    }

    #[test]
    fn parser_rejects_truncated_documents_with_positions() {
        // Every prefix of a valid document must fail cleanly, never panic.
        let full = to_json(&[record("adder", 120, 12)]);
        for end in 0..full.len() {
            if let Err(err) = from_json(&full[..end]) {
                assert!(err.starts_with("byte "), "prefix {end}: {err}");
            }
            // Short prefixes that happen to parse (none do for this schema
            // except the empty-array-less ones) would be caught by the
            // missing-field checks above.
        }
        let err = from_json("[{\"circuit\": \"x\"").unwrap_err();
        assert!(err.starts_with("byte "), "{err}");
    }

    #[test]
    fn parser_rejects_duplicate_keys() {
        let err =
            from_json(r#"[{"circuit": "x", "instructions": 1, "instructions": 2}]"#).unwrap_err();
        assert!(err.contains("duplicate key \"instructions\""), "{err}");
        let err = from_json(r#"[{"circuit": "x", "circuit": "y"}]"#).unwrap_err();
        assert!(err.contains("duplicate key \"circuit\""), "{err}");
    }

    #[test]
    fn parser_rejects_non_numeric_counts() {
        let err = from_json(
            r#"[{"circuit": "x", "instructions": "lots", "rams": 3, "max_writes": 1,
                "lookahead_rams": 3, "wear_max_writes": 1, "rewrite_ms": 1.0,
                "compile_ms": 1.0}]"#,
        )
        .unwrap_err();
        assert!(
            err.contains("field 'instructions' must be a number"),
            "{err}"
        );
        let err = from_json(r#"[{"circuit": "x", "rams": true}]"#).unwrap_err();
        assert!(err.contains("field 'rams' must be a number"), "{err}");
        let err = from_json(r#"[{"circuit": 7}]"#).unwrap_err();
        assert!(err.contains("field 'circuit' must be a string"), "{err}");
    }

    #[test]
    fn parser_rejects_non_object_records_and_non_array_documents() {
        let err = from_json("[42]").unwrap_err();
        assert!(err.contains("record 1: expected an object"), "{err}");
        let err = from_json(r#"{"circuit": "x"}"#).unwrap_err();
        assert!(err.contains("top-level array"), "{err}");
    }

    #[test]
    fn identical_runs_pass_the_gate() {
        let records = vec![record("adder", 120, 12)];
        let report = gate(&records, &records, 0.25);
        assert!(report.passed(), "{:?}", report.regressions);
    }

    #[test]
    fn instruction_regression_fails_the_gate() {
        let baseline = vec![record("adder", 120, 12)];
        let current = vec![record("adder", 121, 12)];
        let report = gate(&baseline, &current, 0.25);
        assert!(!report.passed());
        assert!(report.regressions[0].contains("#I regressed 120 → 121"));
    }

    #[test]
    fn ram_regression_and_missing_circuit_fail_the_gate() {
        let baseline = vec![record("adder", 120, 12), record("bar", 50, 6)];
        let current = vec![record("adder", 120, 13)];
        let report = gate(&baseline, &current, 0.25);
        // The record helper annotates egraph_rams = rams, so a RAM bump
        // trips both the #R rule and the egraph column.
        assert_eq!(report.regressions.len(), 3);
        assert!(report.regressions.iter().any(|r| r.contains("#R")));
        assert!(report
            .regressions
            .iter()
            .any(|r| r.contains("egraph_rams regressed")));
        assert!(report.regressions.iter().any(|r| r.contains("missing")));
    }

    #[test]
    fn improvements_and_endurance_changes_are_notes() {
        let baseline = vec![record("adder", 120, 12)];
        let mut improved = record("adder", 118, 12);
        improved.wear_max_writes = 4;
        let report = gate(&baseline, &[improved], 0.25);
        assert!(report.passed());
        assert!(report.notes.iter().any(|n| n.contains("#I improved")));
        assert!(report.notes.iter().any(|n| n.contains("wear_max_writes")));
    }

    #[test]
    fn slowdown_beyond_tolerance_fails_within_passes() {
        let baseline = vec![record("adder", 120, 12)];
        let mut slow = record("adder", 120, 12);
        slow.compile_ms = 10.0;
        let report = gate(&baseline, &[slow.clone()], 0.25);
        assert!(!report.passed());
        assert!(report.regressions[0].contains("tolerance"));
        // A generous tolerance lets the same run through.
        assert!(gate(&baseline, &[slow], 10.0).passed());
    }
}
