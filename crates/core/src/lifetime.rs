//! Liveness/lifetime analysis over the MIG.
//!
//! The scheduler and the allocator both reason about *when a value dies*:
//! the scheduler wants to compute nodes whose children die immediately
//! (releasing their RRAMs), and a lifetime-aware allocator wants to place
//! long-lived values on different cells than short-lived churn. This module
//! computes that information **up front**, once per compilation:
//!
//! * a Sethi–Ullman-style depth-first **post-order** from the primary
//!   outputs — the reference schedule position (`def`) of every node;
//! * each node's **last-use position** — the largest post-order position
//!   among its consumers (`u32::MAX` for nodes kept alive by a primary
//!   output, which never die during translation);
//! * the **lifetime span** `last_use − def`, and a coarse [`LifetimeClass`]
//!   splitting nodes at the mean span.
//!
//! [`crate::candidate::Priorities`] derives its scheduling key from the
//! same post-order, so the analysis is shared rather than recomputed, and
//! the default priority schedule is bit-for-bit unchanged by this layer.

use mig::{Mig, MigNode, NodeId};

/// Coarse expected-lifetime class of a value, used as an allocation hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LifetimeClass {
    /// Dies soon after computation (span below the graph's mean span).
    #[default]
    Short,
    /// Stays live across many other computations, or feeds a primary
    /// output (never released during translation).
    Long,
}

/// Precomputed lifetime information for every node of a graph.
#[derive(Debug, Clone)]
pub struct Lifetimes {
    postorder: Vec<u32>,
    last_use: Vec<u32>,
    span_threshold: u32,
}

impl Lifetimes {
    /// Runs the analysis on a graph.
    pub fn compute(mig: &Mig) -> Self {
        let levels = mig.levels();
        // Depth-first post-order over the output cones, visiting the
        // deepest child of each node first (Sethi–Ullman order): shallow
        // operands are then computed right before their consumer instead
        // of staying live across a deep sibling subtree.
        let mut postorder = vec![u32::MAX; mig.len()];
        let mut next = 0u32;
        let mut stack: Vec<(NodeId, bool)> = mig
            .outputs()
            .iter()
            .rev()
            .map(|(_, s)| (s.node(), false))
            .collect();
        while let Some((id, expanded)) = stack.pop() {
            if postorder[id.index()] != u32::MAX {
                continue;
            }
            if expanded {
                postorder[id.index()] = next;
                next += 1;
                continue;
            }
            if let MigNode::Majority(children) = mig.node(id) {
                stack.push((id, true));
                // Deepest child last on the stack ⇒ visited first.
                let mut kids: Vec<NodeId> = children.iter().map(|c| c.node()).collect();
                kids.sort_by_key(|n| levels[n.index()]);
                for n in kids {
                    if postorder[n.index()] == u32::MAX {
                        stack.push((n, false));
                    }
                }
            } else {
                postorder[id.index()] = next;
                next += 1;
            }
        }

        // Last use: the largest consumer position under the reference
        // schedule. Nodes referenced by a primary output stay live to the
        // end of the program, so their lifetime is unbounded.
        let mut last_use = vec![0u32; mig.len()];
        for id in mig.node_ids() {
            if let MigNode::Majority(children) = mig.node(id) {
                let here = postorder[id.index()];
                if here == u32::MAX {
                    continue; // unreachable consumer
                }
                for child in children {
                    let entry = &mut last_use[child.node().index()];
                    *entry = (*entry).max(here);
                }
            }
        }
        for (_, signal) in mig.outputs() {
            last_use[signal.node().index()] = u32::MAX;
        }

        // Split lifetimes at the mean span of the reachable majority nodes
        // with a bounded lifetime; a graph with no such node keeps the
        // threshold at 0 (everything with a bounded span is Short).
        let mut total = 0u64;
        let mut counted = 0u64;
        for id in mig.node_ids() {
            let i = id.index();
            if !mig.node(id).is_majority() || postorder[i] == u32::MAX || last_use[i] == u32::MAX {
                continue;
            }
            total += last_use[i].saturating_sub(postorder[i]) as u64;
            counted += 1;
        }
        let span_threshold = total.checked_div(counted).unwrap_or(0) as u32;

        Lifetimes {
            postorder,
            last_use,
            span_threshold,
        }
    }

    /// The node's position in the reference (Sethi–Ullman post-order)
    /// schedule; `u32::MAX` for nodes unreachable from every output.
    pub fn postorder(&self, id: NodeId) -> u32 {
        self.postorder[id.index()]
    }

    /// The reference-schedule position of the node's last consumer;
    /// `u32::MAX` when a primary output keeps the node alive forever.
    pub fn last_use(&self, id: NodeId) -> u32 {
        self.last_use[id.index()]
    }

    /// How long the node's value stays live under the reference schedule
    /// (`u32::MAX` for output-pinned nodes).
    pub fn span(&self, id: NodeId) -> u32 {
        let last = self.last_use[id.index()];
        if last == u32::MAX {
            u32::MAX
        } else {
            last.saturating_sub(self.postorder[id.index()])
        }
    }

    /// The span value separating [`LifetimeClass::Short`] from
    /// [`LifetimeClass::Long`] (the mean bounded span).
    pub fn span_threshold(&self) -> u32 {
        self.span_threshold
    }

    /// The coarse lifetime class of the node's value.
    pub fn class(&self, id: NodeId) -> LifetimeClass {
        if self.span(id) > self.span_threshold {
            LifetimeClass::Long
        } else {
            LifetimeClass::Short
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Mig;

    fn chain() -> (Mig, Vec<mig::Signal>) {
        // x0 ── n1 ── n2 ── n3 ── f, with x0 also feeding n3 (long-lived).
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 4);
        let n1 = mig.and(xs[0], xs[1]);
        let n2 = mig.and(n1, xs[2]);
        let n3 = mig.maj(n2, xs[3], xs[0]);
        mig.add_output("f", n3);
        (mig, vec![n1, n2, n3])
    }

    #[test]
    fn postorder_is_a_permutation_of_the_cone() {
        let (mig, _) = chain();
        let lt = Lifetimes::compute(&mig);
        let mut seen: Vec<u32> = mig
            .node_ids()
            .map(|id| lt.postorder(id))
            .filter(|&p| p != u32::MAX)
            .collect();
        seen.sort_unstable();
        for (i, p) in seen.iter().enumerate() {
            assert_eq!(*p, i as u32, "positions must be dense");
        }
    }

    #[test]
    fn children_precede_parents() {
        let (mig, nodes) = chain();
        let lt = Lifetimes::compute(&mig);
        for s in &nodes {
            let children = mig.node(s.node()).children().unwrap();
            for c in children {
                assert!(lt.postorder(c.node()) < lt.postorder(s.node()));
            }
        }
    }

    #[test]
    fn last_use_points_at_the_latest_consumer() {
        let (mig, nodes) = chain();
        let lt = Lifetimes::compute(&mig);
        let [n1, n2, n3] = [nodes[0].node(), nodes[1].node(), nodes[2].node()];
        assert_eq!(lt.last_use(n1), lt.postorder(n2));
        assert_eq!(lt.last_use(n2), lt.postorder(n3));
        // The output pins n3 forever.
        assert_eq!(lt.last_use(n3), u32::MAX);
        assert_eq!(lt.span(n3), u32::MAX);
        assert_eq!(lt.class(n3), LifetimeClass::Long);
    }

    #[test]
    fn spans_are_consistent_with_positions() {
        let (mig, nodes) = chain();
        let lt = Lifetimes::compute(&mig);
        for s in &nodes[..2] {
            let id = s.node();
            assert_eq!(lt.span(id), lt.last_use(id) - lt.postorder(id));
        }
    }

    #[test]
    fn unreachable_nodes_have_no_position() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        let dead = mig.or(a, b);
        mig.add_output("f", f);
        let lt = Lifetimes::compute(&mig);
        assert_eq!(lt.postorder(dead.node()), u32::MAX);
        assert_ne!(lt.postorder(f.node()), u32::MAX);
    }
}
