//! Work-RRAM allocation (§4.2.3 of the paper).
//!
//! The allocator exposes the paper's two-operation interface — *request* an
//! RRAM ready for use and *release* one that is no longer needed — backed by
//! a free list. The paper populates the free list FIFO so that the oldest
//! released cell is reused first, resting recently used cells as long as
//! possible (an endurance-aware wear-leveling policy).

use std::collections::VecDeque;

use plim::RamAddr;

use crate::options::AllocatorStrategy;

/// Free-list allocator for work RRAM cells.
///
/// The number of *fresh* cells ever handed out is the program's RRAM count
/// (`#R` in Table 1 of the paper).
///
/// # Examples
///
/// ```
/// use plim_compiler::{alloc::RramAllocator, AllocatorStrategy};
///
/// let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
/// let a = alloc.request();
/// let b = alloc.request();
/// alloc.release(a);
/// alloc.release(b);
/// assert_eq!(alloc.request(), a); // oldest released first
/// assert_eq!(alloc.num_allocated(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RramAllocator {
    strategy: AllocatorStrategy,
    free: VecDeque<RamAddr>,
    next_fresh: u32,
    live: Vec<bool>,
    live_count: usize,
}

impl RramAllocator {
    /// Creates an allocator with the given reuse strategy.
    pub fn new(strategy: AllocatorStrategy) -> Self {
        RramAllocator {
            strategy,
            free: VecDeque::new(),
            next_fresh: 0,
            live: Vec::new(),
            live_count: 0,
        }
    }

    /// Returns an RRAM cell that is ready for use, reusing a released cell
    /// if the strategy allows, otherwise allocating a fresh one.
    pub fn request(&mut self) -> RamAddr {
        let addr = match self.strategy {
            AllocatorStrategy::Fifo => self.free.pop_front(),
            AllocatorStrategy::Lifo => self.free.pop_back(),
            AllocatorStrategy::Fresh => None,
        }
        .unwrap_or_else(|| {
            let addr = RamAddr(self.next_fresh);
            self.next_fresh += 1;
            self.live.push(false);
            addr
        });
        debug_assert!(!self.live[addr.index()], "allocator handed out a live cell");
        self.live[addr.index()] = true;
        self.live_count += 1;
        addr
    }

    /// Returns a cell to the free list.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cell was not live (double release).
    pub fn release(&mut self, addr: RamAddr) {
        debug_assert!(self.live[addr.index()], "double release of {addr}");
        self.live[addr.index()] = false;
        self.live_count -= 1;
        self.free.push_back(addr);
    }

    /// Total number of distinct cells ever allocated (the `#R` metric).
    pub fn num_allocated(&self) -> u32 {
        self.next_fresh
    }

    /// Number of cells currently live (requested and not released).
    pub fn num_live(&self) -> usize {
        self.live_count
    }

    /// Number of cells currently on the free list.
    pub fn num_free(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_returns_oldest_release() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        let b = alloc.request();
        let c = alloc.request();
        alloc.release(b);
        alloc.release(a);
        alloc.release(c);
        assert_eq!(alloc.request(), b);
        assert_eq!(alloc.request(), a);
        assert_eq!(alloc.request(), c);
        assert_eq!(alloc.num_allocated(), 3);
    }

    #[test]
    fn lifo_returns_newest_release() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Lifo);
        let a = alloc.request();
        let b = alloc.request();
        alloc.release(a);
        alloc.release(b);
        assert_eq!(alloc.request(), b);
        assert_eq!(alloc.request(), a);
        assert_eq!(alloc.num_allocated(), 2);
    }

    #[test]
    fn fresh_never_reuses() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fresh);
        let a = alloc.request();
        alloc.release(a);
        let b = alloc.request();
        assert_ne!(a, b);
        assert_eq!(alloc.num_allocated(), 2);
        assert_eq!(alloc.num_free(), 1);
    }

    #[test]
    fn live_accounting() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        let _b = alloc.request();
        assert_eq!(alloc.num_live(), 2);
        alloc.release(a);
        assert_eq!(alloc.num_live(), 1);
        assert_eq!(alloc.num_free(), 1);
        let _ = alloc.request();
        assert_eq!(alloc.num_live(), 2);
        assert_eq!(alloc.num_free(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    #[cfg(debug_assertions)]
    fn double_release_is_detected() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        alloc.release(a);
        alloc.release(a);
    }
}
