//! Work-RRAM allocation (§4.2.3 of the paper, extended).
//!
//! The allocator exposes the paper's two-operation interface — *request* an
//! RRAM ready for use and *release* one that is no longer needed — backed by
//! a pluggable free-cell pool (the private `FreePool` enum, one variant per
//! [`AllocatorStrategy`]). The paper populates the pool
//! FIFO so that the oldest released cell is reused first, resting recently
//! used cells as long as possible; the extended strategies reuse the same
//! pool interface to level wear explicitly (least-written cell first) or to
//! segregate cells by the expected lifetime of the value they receive.
//!
//! The allocator also keeps **per-cell write counters**: the translator
//! reports every instruction's destination through [`RramAllocator::note_write`],
//! so the counters agree exactly with the program's static endurance profile
//! ([`crate::Rm3Program::static_write_counts`]) and the wear-budget
//! strategy can consult them while the program is still being built.

use std::collections::VecDeque;

use plim::RamAddr;

use crate::lifetime::LifetimeClass;
use crate::options::AllocatorStrategy;

/// The reuse-policy layer: one free-cell pool per [`AllocatorStrategy`].
///
/// Every variant stores released cells and serves them back under its own
/// discipline; a strategy that needs more context receives it at pop time
/// (the lifetime hint of the requesting value, the per-cell write counters).
/// Adding a strategy means adding a variant here — the exhaustive matches
/// below make the compiler point at every site that must learn about it.
#[derive(Debug, Clone)]
enum FreePool {
    /// Oldest-released-first (the paper's endurance-aware rotation).
    Fifo(VecDeque<RamAddr>),
    /// Most-recently-released-first.
    Lifo(Vec<RamAddr>),
    /// Released cells are parked and never served again.
    Fresh(Vec<RamAddr>),
    /// Served least-written-first, consulting the write counters.
    WearLeveled(Vec<RamAddr>),
    /// Two FIFO bins keyed by the lifetime class a cell last held.
    Binned {
        short: VecDeque<RamAddr>,
        long: VecDeque<RamAddr>,
    },
}

impl FreePool {
    fn new(strategy: AllocatorStrategy) -> Self {
        match strategy {
            AllocatorStrategy::Fifo => FreePool::Fifo(VecDeque::new()),
            AllocatorStrategy::Lifo => FreePool::Lifo(Vec::new()),
            AllocatorStrategy::Fresh => FreePool::Fresh(Vec::new()),
            AllocatorStrategy::WearLeveled => FreePool::WearLeveled(Vec::new()),
            AllocatorStrategy::LifetimeBinned => FreePool::Binned {
                short: VecDeque::new(),
                long: VecDeque::new(),
            },
        }
    }

    /// Returns a reusable cell for a value of class `hint`, or `None` when
    /// the caller must allocate a fresh one.
    fn pop(&mut self, hint: LifetimeClass, writes: &[u64]) -> Option<RamAddr> {
        match self {
            FreePool::Fifo(pool) => pool.pop_front(),
            FreePool::Lifo(pool) => pool.pop(),
            FreePool::Fresh(_) => None,
            FreePool::WearLeveled(pool) => {
                let best = pool
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, addr)| (writes[addr.index()], addr.index()))?
                    .0;
                // Order within the pool is irrelevant — only the counters
                // decide — so a swap_remove keeps the scan linear.
                Some(pool.swap_remove(best))
            }
            FreePool::Binned { short, long } => {
                let (preferred, fallback) = match hint {
                    LifetimeClass::Short => (short, long),
                    LifetimeClass::Long => (long, short),
                };
                preferred.pop_front().or_else(|| fallback.pop_front())
            }
        }
    }

    fn push(&mut self, addr: RamAddr, class: LifetimeClass) {
        match self {
            FreePool::Fifo(pool) => pool.push_back(addr),
            FreePool::Lifo(pool) | FreePool::Fresh(pool) | FreePool::WearLeveled(pool) => {
                pool.push(addr);
            }
            FreePool::Binned { short, long } => match class {
                LifetimeClass::Short => short.push_back(addr),
                LifetimeClass::Long => long.push_back(addr),
            },
        }
    }

    fn len(&self) -> usize {
        match self {
            FreePool::Fifo(pool) => pool.len(),
            FreePool::Lifo(pool) | FreePool::Fresh(pool) | FreePool::WearLeveled(pool) => {
                pool.len()
            }
            FreePool::Binned { short, long } => short.len() + long.len(),
        }
    }
}

/// Free-pool allocator for work RRAM cells.
///
/// The number of *fresh* cells ever handed out is the program's RRAM count
/// (`#R` in Table 1 of the paper).
///
/// # Examples
///
/// ```
/// use plim_compiler::{alloc::RramAllocator, AllocatorStrategy};
///
/// let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
/// let a = alloc.request();
/// let b = alloc.request();
/// alloc.release(a);
/// alloc.release(b);
/// assert_eq!(alloc.request(), a); // oldest released first
/// assert_eq!(alloc.num_allocated(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct RramAllocator {
    pool: FreePool,
    next_fresh: u32,
    live: Vec<bool>,
    live_count: usize,
    /// Lifetime class each cell was last requested under (drives the
    /// binned pool's release bookkeeping).
    class: Vec<LifetimeClass>,
    /// Writes recorded per cell via [`RramAllocator::note_write`].
    writes: Vec<u64>,
}

impl RramAllocator {
    /// Creates an allocator with the given reuse strategy.
    pub fn new(strategy: AllocatorStrategy) -> Self {
        RramAllocator {
            pool: FreePool::new(strategy),
            next_fresh: 0,
            live: Vec::new(),
            live_count: 0,
            class: Vec::new(),
            writes: Vec::new(),
        }
    }

    /// Returns an RRAM cell that is ready for use, reusing a released cell
    /// if the strategy allows, otherwise allocating a fresh one. Equivalent
    /// to [`RramAllocator::request_with_hint`] with a
    /// [`LifetimeClass::Short`] hint.
    pub fn request(&mut self) -> RamAddr {
        self.request_with_hint(LifetimeClass::Short)
    }

    /// Like [`RramAllocator::request`], with a hint describing how long the
    /// value placed in the cell is expected to live. Only lifetime-aware
    /// strategies consult the hint; for the others the call is identical to
    /// `request`.
    pub fn request_with_hint(&mut self, hint: LifetimeClass) -> RamAddr {
        let addr = self.pool.pop(hint, &self.writes).unwrap_or_else(|| {
            let addr = RamAddr(self.next_fresh);
            self.next_fresh += 1;
            self.live.push(false);
            self.class.push(LifetimeClass::Short);
            self.writes.push(0);
            addr
        });
        debug_assert!(!self.live[addr.index()], "allocator handed out a live cell");
        self.live[addr.index()] = true;
        self.live_count += 1;
        self.class[addr.index()] = hint;
        addr
    }

    /// Returns a cell to the free pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the cell was not live (double release).
    pub fn release(&mut self, addr: RamAddr) {
        debug_assert!(self.live[addr.index()], "double release of {addr}");
        self.live[addr.index()] = false;
        self.live_count -= 1;
        self.pool.push(addr, self.class[addr.index()]);
    }

    /// Records one write to a cell (every RM3 instruction writes its
    /// destination). The counters feed the wear-budget strategy and the
    /// endurance report.
    pub fn note_write(&mut self, addr: RamAddr) {
        self.writes[addr.index()] += 1;
    }

    /// Per-cell write counts recorded so far, indexed by cell.
    pub fn write_counts(&self) -> &[u64] {
        &self.writes
    }

    /// The highest per-cell write count recorded so far (0 for an empty
    /// program) — the endurance-limiting cell's wear.
    pub fn max_writes(&self) -> u64 {
        self.writes.iter().copied().max().unwrap_or(0)
    }

    /// Total number of distinct cells ever allocated (the `#R` metric).
    pub fn num_allocated(&self) -> u32 {
        self.next_fresh
    }

    /// Number of cells currently live (requested and not released).
    pub fn num_live(&self) -> usize {
        self.live_count
    }

    /// Number of cells currently on the free pool (for the fresh-only
    /// strategy this counts parked, never-reused cells).
    pub fn num_free(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_returns_oldest_release() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        let b = alloc.request();
        let c = alloc.request();
        alloc.release(b);
        alloc.release(a);
        alloc.release(c);
        assert_eq!(alloc.request(), b);
        assert_eq!(alloc.request(), a);
        assert_eq!(alloc.request(), c);
        assert_eq!(alloc.num_allocated(), 3);
    }

    #[test]
    fn lifo_returns_newest_release() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Lifo);
        let a = alloc.request();
        let b = alloc.request();
        alloc.release(a);
        alloc.release(b);
        assert_eq!(alloc.request(), b);
        assert_eq!(alloc.request(), a);
        assert_eq!(alloc.num_allocated(), 2);
    }

    #[test]
    fn fresh_never_reuses() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fresh);
        let a = alloc.request();
        alloc.release(a);
        let b = alloc.request();
        assert_ne!(a, b);
        assert_eq!(alloc.num_allocated(), 2);
        assert_eq!(alloc.num_free(), 1);
    }

    #[test]
    fn wear_leveled_serves_the_least_written_cell() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::WearLeveled);
        let a = alloc.request();
        let b = alloc.request();
        let c = alloc.request();
        alloc.note_write(a);
        alloc.note_write(a);
        alloc.note_write(b);
        alloc.note_write(b);
        alloc.note_write(b);
        alloc.note_write(c);
        alloc.release(a);
        alloc.release(b);
        alloc.release(c);
        // c has 1 write, a has 2, b has 3.
        assert_eq!(alloc.request(), c);
        assert_eq!(alloc.request(), a);
        assert_eq!(alloc.request(), b);
        assert_eq!(alloc.num_allocated(), 3);
        assert_eq!(alloc.write_counts(), &[2, 3, 1]);
        assert_eq!(alloc.max_writes(), 3);
    }

    #[test]
    fn wear_leveled_breaks_write_ties_by_address() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::WearLeveled);
        let a = alloc.request();
        let b = alloc.request();
        alloc.release(b);
        alloc.release(a);
        assert_eq!(alloc.request(), a, "equal wear serves the lowest address");
    }

    #[test]
    fn binned_pool_prefers_the_matching_lifetime_bin() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::LifetimeBinned);
        let s = alloc.request_with_hint(LifetimeClass::Short);
        let l = alloc.request_with_hint(LifetimeClass::Long);
        alloc.release(s);
        alloc.release(l);
        // A long-lived request takes the cell that last held a long value.
        assert_eq!(alloc.request_with_hint(LifetimeClass::Long), l);
        // The short bin still serves short requests.
        assert_eq!(alloc.request_with_hint(LifetimeClass::Short), s);
        alloc.release(s);
        // Cross-bin fallback instead of a fresh allocation.
        assert_eq!(alloc.request_with_hint(LifetimeClass::Long), s);
        assert_eq!(alloc.num_allocated(), 2);
    }

    #[test]
    fn live_accounting() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        let _b = alloc.request();
        assert_eq!(alloc.num_live(), 2);
        alloc.release(a);
        assert_eq!(alloc.num_live(), 1);
        assert_eq!(alloc.num_free(), 1);
        let _ = alloc.request();
        assert_eq!(alloc.num_live(), 2);
        assert_eq!(alloc.num_free(), 0);
    }

    #[test]
    #[should_panic(expected = "double release")]
    #[cfg(debug_assertions)]
    fn double_release_is_detected() {
        let mut alloc = RramAllocator::new(AllocatorStrategy::Fifo);
        let a = alloc.request();
        alloc.release(a);
        alloc.release(a);
    }
}
