//! `plimc` — the PLiM compiler command-line driver.
//!
//! Reads a logic network (MIG text format or ASCII AIGER), optimizes it for
//! the PLiM architecture, compiles it to RM3 instructions, verifies the
//! program against simulation, and emits the requested artifact.
//!
//! ```text
//! plimc [OPTIONS] FILE        (FILE of `-` reads stdin)
//!
//!   --format mig|aag     input format (default: by extension, mig otherwise)
//!   --effort N           rewrite effort, 0 disables rewriting (default 4)
//!   --extended           use rewrite+majority-resynthesis (stronger)
//!   --naive              disable candidate selection (Table 1 baseline)
//!   --schedule index|priority|lookahead
//!                        node scheduling order (default: priority)
//!   --alloc fifo|lifo|fresh|wear|binned
//!                        work-RRAM allocation strategy (default: fifo)
//!   --limit R            fail unless the program fits R work RRAMs
//!   --emit asm|listing|stats|dot|mig
//!                        artifact to print (default: listing)
//!   --no-verify          skip the simulation check
//!
//! plimc bench [OPTIONS]       regenerate Table 1 via the batch pipeline
//!
//!   --reduced            build the small test-scale circuits (fast)
//!   --effort N           rewrite effort (default 4)
//!   --jobs N             cap worker threads (default: all cores)
//!   --serial             compile on one thread
//!   --json PATH          write the BENCH.json bench-gate artifact
//!
//! plimc bench-diff BASELINE CURRENT [--time-tolerance PCT | --no-time-gate]
//!                             diff two BENCH.json files; exit 1 on a
//!                             #I/#R regression, a missing circuit, or a
//!                             wall-clock slowdown beyond PCT % (default 25;
//!                             --no-time-gate reports timing as a note only,
//!                             for runs on a different machine than the
//!                             baseline's)
//! ```

use std::io::Read as _;
use std::process::ExitCode;

use mig::Mig;
use plim_compiler::report::CostReport;
use plim_compiler::{compile, verify::verify, AllocatorStrategy, CompilerOptions, ScheduleOrder};

struct Args {
    file: String,
    format: Option<String>,
    effort: usize,
    extended: bool,
    naive: bool,
    schedule: Option<ScheduleOrder>,
    alloc: Option<AllocatorStrategy>,
    limit: Option<u32>,
    emit: String,
    verify: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        file: String::new(),
        format: None,
        effort: 4,
        extended: false,
        naive: false,
        schedule: None,
        alloc: None,
        limit: None,
        emit: "listing".to_string(),
        verify: true,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--format" => args.format = Some(value("--format")?),
            "--effort" => {
                args.effort = value("--effort")?
                    .parse()
                    .map_err(|_| "--effort needs a number".to_string())?
            }
            "--extended" => args.extended = true,
            "--naive" => args.naive = true,
            "--schedule" => args.schedule = Some(ScheduleOrder::parse(&value("--schedule")?)?),
            "--alloc" => args.alloc = Some(AllocatorStrategy::parse(&value("--alloc")?)?),
            "--limit" => {
                args.limit = Some(
                    value("--limit")?
                        .parse()
                        .map_err(|_| "--limit needs a number".to_string())?,
                )
            }
            "--emit" => args.emit = value("--emit")?,
            "--no-verify" => args.verify = false,
            "--help" | "-h" => return Err("help".to_string()),
            _ if arg.starts_with('-') && arg != "-" => {
                return Err(format!("unknown option `{arg}`"))
            }
            _ if !args.file.is_empty() => {
                return Err(format!(
                    "multiple input files (`{}` and `{arg}`)",
                    args.file
                ))
            }
            _ => args.file = arg,
        }
    }
    if args.file.is_empty() {
        return Err("no input file (use `-` for stdin)".to_string());
    }
    if args.limit.is_some() && (args.schedule.is_some() || args.alloc.is_some()) {
        return Err(
            "--limit explores schedules/allocators itself; drop --schedule/--alloc".to_string(),
        );
    }
    Ok(args)
}

/// Whether the document starts with the binary-AIGER magic: an `aig`
/// keyword followed by at least the five numeric header fields
/// `M I L O A`. Requiring the numeric fields keeps text inputs that merely
/// begin with the letters `aig` (say, a MIG node named `aig`) from being
/// misdetected. The binary format delta-encodes its AND section, so it
/// cannot be fed to any of the text parsers.
fn is_binary_aiger(bytes: &[u8]) -> bool {
    let first_line = bytes.split(|&b| b == b'\n').next().unwrap_or(bytes);
    let mut fields = first_line.split(|&b| b == b' ').filter(|f| !f.is_empty());
    if fields.next() != Some(b"aig") {
        return false;
    }
    let mut numeric_fields = 0;
    for field in fields {
        if !field.iter().all(u8::is_ascii_digit) {
            return false;
        }
        numeric_fields += 1;
    }
    numeric_fields >= 5
}

fn read_input(args: &Args) -> Result<Mig, String> {
    let bytes = if args.file == "-" {
        let mut buffer = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buffer)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buffer
    } else {
        std::fs::read(&args.file).map_err(|e| format!("reading {}: {e}", args.file))?
    };
    let format = args.format.clone().unwrap_or_else(|| {
        if args.file.ends_with(".aag") {
            "aag".to_string()
        } else {
            "mig".to_string()
        }
    });
    // Sniff the binary-AIGER magic unless the user explicitly forced a
    // non-AIGER format: the payload is not text, so the AIGER parser (or
    // the MIG parser the extension default falls through to) would produce
    // a baffling first-line error or a UTF-8 failure instead of this
    // diagnosis.
    let forced_non_aiger = args.format.as_deref().is_some_and(|f| f != "aag");
    if !forced_non_aiger && is_binary_aiger(&bytes) {
        return Err(
            "binary AIGER is not supported; convert to ASCII with `aigtoaig input.aig output.aag`"
                .to_string(),
        );
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{}: input is not valid UTF-8 text", args.file))?;
    match format.as_str() {
        "aag" => mig::aiger::parse_aiger(&text).map_err(|e| format!("aiger: {e}")),
        "mig" => mig::io::parse_mig(&text).map_err(|e| format!("mig: {e}")),
        other => Err(format!("unknown format `{other}`")),
    }
}

fn run() -> Result<(), String> {
    let args = parse_args()?;
    let input = read_input(&args)?;

    let optimized = if args.effort == 0 {
        input.cleaned()
    } else if args.extended {
        mig::resynth::rewrite_extended(&input, args.effort)
    } else {
        mig::rewrite::rewrite(&input, args.effort)
    };

    let compiled = match args.limit {
        Some(limit) => plim_compiler::constrained::compile_with_ram_limit(&optimized, limit)
            .map_err(|e| e.to_string())?,
        None => {
            let mut options = if args.naive {
                CompilerOptions::naive()
            } else {
                CompilerOptions::new()
            };
            if let Some(schedule) = args.schedule {
                options = options.schedule(schedule);
            }
            if let Some(alloc) = args.alloc {
                options = options.allocator(alloc);
            }
            compile(&optimized, options)
        }
    };

    if args.verify {
        verify(&optimized, &compiled, 4, 0xDAC2016).map_err(|e| format!("verification: {e}"))?;
    }

    match args.emit.as_str() {
        "listing" => print!("{}", compiled.program),
        "asm" => print!("{}", plim::asm::write_asm(&compiled.program)),
        "stats" => println!("{}", CostReport::analyze(&compiled)),
        "dot" => print!("{}", mig::dot::to_dot(&optimized)),
        "mig" => print!("{}", mig::io::write_mig(&optimized)),
        other => return Err(format!("unknown --emit `{other}`")),
    }
    Ok(())
}

/// The `plimc bench` subcommand: regenerates Table 1 through the parallel
/// batch-compilation pipeline, optionally emitting the `BENCH.json`
/// bench-gate artifact.
#[cfg(feature = "suite")]
fn run_bench(args: &[String]) -> Result<(), String> {
    use plim_compiler::batch::{self, Circuit};
    use plim_parallel::Parallelism;

    let mut reduced = false;
    let mut effort = 4usize;
    let mut parallelism = Parallelism::Auto;
    let mut json: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--serial" => parallelism = Parallelism::Serial,
            "--effort" => {
                effort = value("--effort")?
                    .parse()
                    .map_err(|_| "--effort needs a number".to_string())?
            }
            "--jobs" => {
                parallelism = Parallelism::from_jobs(Some(
                    value("--jobs")?
                        .parse()
                        .map_err(|_| "--jobs needs a number".to_string())?,
                ))
            }
            "--json" => json = Some(value("--json")?.clone()),
            other => return Err(format!("unknown bench option `{other}`")),
        }
    }

    use plim_benchmarks::suite::{self, Scale};
    let scale = if reduced { Scale::Reduced } else { Scale::Full };
    let circuits: Vec<Circuit> = suite::ALL
        .iter()
        .map(|&name| Circuit::new(name, suite::build(name, scale).expect("known benchmark")))
        .collect();

    println!(
        "Table 1 via batch pipeline (scale: {}, rewrite effort: {effort})",
        if reduced { "reduced" } else { "full" }
    );
    println!("{}", batch::table_header());
    let run = batch::bench_suite(&circuits, effort, parallelism);
    for (index, row) in run.rows.iter().enumerate() {
        println!("{}   [{:.1?}]", batch::format_row(row), run.row_time(index));
    }
    println!("{}", "-".repeat(132));
    println!("{}", batch::format_row(&batch::totals(&run.rows)));
    println!();
    println!("batch: {}", run.report.summary());
    if let Some(path) = json {
        let document = plim_compiler::benchfile::to_json(&run.records);
        std::fs::write(&path, document).map_err(|e| format!("writing {path}: {e}"))?;
        println!("bench records written to {path}");
    }
    Ok(())
}

#[cfg(not(feature = "suite"))]
fn run_bench(_args: &[String]) -> Result<(), String> {
    Err("`plimc bench` requires the `suite` feature (enabled by default)".to_string())
}

/// The `plimc bench-diff` subcommand: the bench-regression gate. Exits
/// nonzero when the current run regresses `#I`/`#R`, loses a circuit, or
/// slows down beyond the tolerance.
fn run_bench_diff(args: &[String]) -> Result<(), String> {
    use plim_compiler::benchfile;

    let mut files: Vec<&String> = Vec::new();
    let mut tolerance = 25.0f64;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--time-tolerance" => {
                tolerance = iter
                    .next()
                    .ok_or("--time-tolerance requires a value")?
                    .parse()
                    .map_err(|_| "--time-tolerance needs a number (percent)".to_string())?
            }
            // Timing becomes a note: the right mode when the current run's
            // machine differs from the baseline's (e.g. hosted CI runners
            // diffing a dev-machine baseline), where even a wide tolerance
            // flakes on millisecond-scale totals.
            "--no-time-gate" => tolerance = f64::INFINITY,
            _ if arg.starts_with('-') => return Err(format!("unknown bench-diff option `{arg}`")),
            _ => files.push(arg),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        return Err("bench-diff needs exactly two files: BASELINE CURRENT".to_string());
    };
    let read = |path: &String| -> Result<Vec<benchfile::BenchRecord>, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        benchfile::from_json(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = read(baseline_path)?;
    let current = read(current_path)?;
    let report = benchfile::gate(&baseline, &current, tolerance / 100.0);
    for note in &report.notes {
        println!("note: {note}");
    }
    for regression in &report.regressions {
        println!("REGRESSION: {regression}");
    }
    if report.passed() {
        let time_rule = if tolerance.is_finite() {
            format!("time tolerance +{tolerance:.0} %")
        } else {
            "time gate off".to_string()
        };
        println!("bench gate: OK ({} circuits, {time_rule})", baseline.len());
        Ok(())
    } else {
        Err(format!(
            "bench gate failed with {} regression(s) against {baseline_path}",
            report.regressions.len()
        ))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("bench") => run_bench(&args[1..]),
        Some("bench-diff") => run_bench_diff(&args[1..]),
        _ => run(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) if message == "help" => {
            eprintln!("usage: plimc [--format mig|aag] [--effort N] [--extended] [--naive]");
            eprintln!("             [--schedule index|priority|lookahead] [--alloc fifo|lifo|fresh|wear|binned]");
            eprintln!(
                "             [--limit R] [--emit asm|listing|stats|dot|mig] [--no-verify] FILE"
            );
            eprintln!(
                "       plimc bench [--reduced] [--effort N] [--jobs N] [--serial] [--json PATH]"
            );
            eprintln!("       plimc bench-diff BASELINE CURRENT [--time-tolerance PCT]");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("plimc: {message}");
            ExitCode::FAILURE
        }
    }
}
