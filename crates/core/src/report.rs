//! Cost reports for compiled programs.
//!
//! Aggregates the metrics a PLiM deployment cares about: instruction
//! breakdown, RRAM usage, static endurance, and the architectural
//! latency/energy estimate of [`plim::controller`].

use std::fmt;

use plim::controller::CostModel;
use plim::endurance::EnduranceStats;
use plim::Operand;

use crate::program::Rm3Program;

/// Instruction breakdown by operand shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InstructionMix {
    /// Both operands constant: initialization (reset/set/constant loads).
    pub initialization: usize,
    /// Exactly one constant operand: copies, complement materializations,
    /// and AND/OR-shaped logic.
    pub single_operand: usize,
    /// Both operands from the array: full three-input majority steps.
    pub dual_operand: usize,
}

/// A full cost report.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Instructions (`#I`).
    pub instructions: usize,
    /// Work RRAMs (`#R`).
    pub rams: u32,
    /// MIG nodes translated (`#N`).
    pub mig_nodes: usize,
    /// Instructions per node (overhead factor; 1.0 is the ideal case).
    pub instructions_per_node: f64,
    /// Breakdown by operand shape.
    pub mix: InstructionMix,
    /// Static per-execution endurance statistics.
    pub endurance: EnduranceStats,
    /// Architectural latency estimate (ns) under the given cost model.
    pub latency_ns: f64,
    /// Architectural energy estimate (pJ) under the given cost model.
    pub energy_pj: f64,
}

impl CostReport {
    /// Analyzes a compiled program under the default RRAM cost model.
    pub fn analyze(compiled: &Rm3Program) -> Self {
        Self::analyze_with(compiled, CostModel::default())
    }

    /// Analyzes a compiled program under a specific cost model.
    pub fn analyze_with(compiled: &Rm3Program, cost: CostModel) -> Self {
        let mut mix = InstructionMix::default();
        let mut reads = 0u64;
        for instruction in compiled.program.instructions() {
            let const_count = [instruction.a, instruction.b]
                .iter()
                .filter(|o| matches!(o, Operand::Const(_)))
                .count();
            match const_count {
                2 => mix.initialization += 1,
                1 => mix.single_operand += 1,
                _ => mix.dual_operand += 1,
            }
            reads += cost.fetch_words + (2 - const_count as u64);
        }
        let writes = compiled.program.len() as u64;
        let nodes = compiled.stats.mig_nodes;
        CostReport {
            instructions: compiled.stats.instructions,
            rams: compiled.stats.rams,
            mig_nodes: nodes,
            instructions_per_node: if nodes == 0 {
                0.0
            } else {
                compiled.stats.instructions as f64 / nodes as f64
            },
            mix,
            endurance: compiled.static_endurance(),
            latency_ns: reads as f64 * cost.read_ns + writes as f64 * cost.write_ns,
            energy_pj: reads as f64 * cost.read_pj + writes as f64 * cost.write_pj,
        }
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "instructions: {} ({:.2} per node, {} nodes)",
            self.instructions, self.instructions_per_node, self.mig_nodes
        )?;
        writeln!(
            f,
            "  init: {}  single-operand: {}  dual-operand: {}",
            self.mix.initialization, self.mix.single_operand, self.mix.dual_operand
        )?;
        writeln!(f, "work RRAMs: {}", self.rams)?;
        writeln!(f, "endurance: {}", self.endurance)?;
        write!(
            f,
            "estimated: {:.1} ns, {:.1} pJ per execution",
            self.latency_ns, self.energy_pj
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::options::CompilerOptions;
    use mig::Mig;

    fn compiled_sample() -> Rm3Program {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        mig.add_output("f", m);
        compile(&mig, CompilerOptions::new())
    }

    #[test]
    fn mix_sums_to_instruction_count() {
        let compiled = compiled_sample();
        let report = CostReport::analyze(&compiled);
        assert_eq!(
            report.mix.initialization + report.mix.single_operand + report.mix.dual_operand,
            report.instructions
        );
        assert_eq!(report.instructions, compiled.stats.instructions);
    }

    #[test]
    fn per_node_factor_and_costs_are_positive() {
        let report = CostReport::analyze(&compiled_sample());
        assert!(report.instructions_per_node >= 1.0);
        assert!(report.latency_ns > 0.0);
        assert!(report.energy_pj > 0.0);
        assert!(report.endurance.total_writes as usize == report.instructions);
    }

    #[test]
    fn endurance_report_agrees_with_allocator_counters() {
        // The allocator records every destination write during translation;
        // the endurance section of the report must see the same wear.
        let compiled = compiled_sample();
        let report = CostReport::analyze(&compiled);
        assert_eq!(report.endurance.max_writes, compiled.stats.max_cell_writes);
    }

    #[test]
    fn display_has_all_sections() {
        let text = CostReport::analyze(&compiled_sample()).to_string();
        assert!(text.contains("instructions:"));
        assert!(text.contains("work RRAMs:"));
        assert!(text.contains("endurance:"));
        assert!(text.contains("estimated:"));
    }

    #[test]
    fn empty_program_reports_zero() {
        let compiled = Rm3Program {
            program: plim::Program::new(0),
            stats: crate::program::Rm3Stats::default(),
        };
        let report = CostReport::analyze(&compiled);
        assert_eq!(report.instructions, 0);
        assert_eq!(report.instructions_per_node, 0.0);
    }
}
