//! Pluggable emission backends: one IR, many in-memory targets.
//!
//! PR 5 split translation into lower → optimize → emit, leaving emission as
//! the only target-specific phase. This module opens that seam: a
//! [`Backend`] consumes the optimized [`IrProgram`] event stream and
//! produces a target-native [`Artifact`], scores trial edits for the pass
//! pipeline through its own [`Cost`] model, and executes its artifact
//! bit-parallel so exhaustive equivalence proofs work on every target.
//!
//! The built-in [`Rm3Backend`] is the paper's ReRAM target and delegates to
//! [`crate::ir::emit`] unchanged, so `-O0` RM3 output stays byte-identical
//! to the pre-trait compiler (the goldens in `tests/golden/` pin this).
//! Additional targets — the Ambit-style bulk-bitwise and MAGIC NOR-style
//! backends live in the `plim-backends` crate — announce themselves through
//! [`register`]; [`Target`] names resolve against that registry, which is
//! also what `plimc targets` and the service's stats advertisement list.

use std::fmt;
use std::sync::RwLock;

use crate::ir::IrProgram;
use crate::program::Rm3Program;

/// The cost of a program under a backend's model.
///
/// The pass pipeline's quality gates compare these triples exactly the way
/// they compared the hard-coded `(#I, #R, max-writes)` metrics before the
/// trait existed: [`Cost::worse_than`] reverts a pass, [`Cost::improves_on`]
/// commits a forwarding edit. For the RM3 backend the fields are exactly the
/// historical metrics, which keeps every gating decision — and therefore
/// every emitted byte — unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Native instruction count (`#I` for RM3, row operations for Ambit,
    /// NOR steps for MAGIC).
    pub instructions: usize,
    /// Memory footprint in the target's allocation unit (work RRAMs for
    /// RM3, subarray rows for Ambit, memristor cells for MAGIC).
    pub footprint: u32,
    /// Highest write count on one cell/row in a single execution (the
    /// endurance-limiting element).
    pub wear: u64,
    /// Weighted execution cost: instructions × their per-instruction cost
    /// from [`Backend::instruction_set`] (row activations for Ambit).
    pub units: u64,
}

impl Cost {
    /// `true` when this cost regresses `other` on any gated axis — the pass
    /// pipeline's revert condition.
    #[must_use]
    pub fn worse_than(self, other: Cost) -> bool {
        self.instructions > other.instructions
            || self.footprint > other.footprint
            || self.wear > other.wear
    }

    /// `true` when this cost strictly improves instruction count without
    /// regressing footprint or wear — the forwarding pass's commit
    /// condition.
    #[must_use]
    pub fn improves_on(self, other: Cost) -> bool {
        self.instructions < other.instructions
            && self.footprint <= other.footprint
            && self.wear <= other.wear
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#I={} #R={} maxw={} units={}",
            self.instructions, self.footprint, self.wear, self.units
        )
    }
}

/// One instruction of a backend's native instruction set, with its unit
/// cost under the backend's model (`plimc targets` prints these).
#[derive(Debug, Clone, Copy)]
pub struct InstructionInfo {
    /// Assembly mnemonic.
    pub mnemonic: &'static str,
    /// Cost in [`Cost::units`] per executed instruction.
    pub cost: u64,
    /// One-line semantics.
    pub summary: &'static str,
}

/// A target-native compiled program: what a [`Backend`] emits.
///
/// Besides rendering (listing/stats), an artifact must *execute*
/// bit-parallel — 64 input patterns per step, one lane per bit — so
/// [`crate::verify::verify_exhaustive_artifact`] can prove it equivalent to
/// the source MIG without knowing anything about the target's semantics.
pub trait Artifact {
    /// Name of the target that produced this artifact.
    fn target(&self) -> &'static str;

    /// Number of primary inputs the artifact reads.
    fn num_inputs(&self) -> usize;

    /// Cost of the artifact under its backend's model.
    fn cost(&self) -> Cost;

    /// Target-native assembly listing.
    fn listing(&self) -> String;

    /// Human-readable stats block (the `--emit stats` form).
    fn stats_text(&self) -> String;

    /// Declared primary-output names, in order.
    fn output_names(&self) -> Vec<String>;

    /// Executes the artifact on 64 input patterns at once: `inputs[i]`
    /// carries input `i`'s value for lanes 0–63; the result carries one
    /// word per declared output.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the artifact is malformed (reads an
    /// out-of-range row, wrong input count).
    fn run_wide(&self, inputs: &[u64]) -> Result<Vec<u64>, String>;
}

/// An emission backend: lowers the optimized IR event stream onto one
/// in-memory computing architecture.
///
/// Implementations must be stateless (`Sync`, shared as `&'static`): one
/// registered instance serves every compile on every thread.
pub trait Backend: Sync {
    /// The registry/CLI name (`rm3`, `ambit`, `magic`).
    fn name(&self) -> &'static str;

    /// One-line description shown by `plimc targets`.
    fn description(&self) -> &'static str;

    /// The target's native instruction set with per-instruction costs.
    fn instruction_set(&self) -> &'static [InstructionInfo];

    /// Scores the IR under this backend's cost model **without** building
    /// the artifact — called per trial edit by the pass pipeline, where
    /// full emission would dominate compile time.
    fn cost(&self, ir: &IrProgram) -> Cost;

    /// Emits the target-native artifact.
    fn emit(&self, ir: &IrProgram) -> Box<dyn Artifact>;
}

/// The built-in reference backend: the paper's ReRAM RM3 target.
///
/// Delegates to [`crate::ir::emit`] and the allocator-replay metrics the
/// pass pipeline always used, so compiling through the trait is
/// byte-identical to the pre-trait compiler at every `-O` level.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rm3Backend;

/// RM3's instruction set: a single resistive-majority instruction.
const RM3_ISA: [InstructionInfo; 1] = [InstructionInfo {
    mnemonic: "rm3",
    cost: 1,
    summary: "Z ← ⟨A B̄ Z⟩ (3-input resistive majority, B inverted intrinsically)",
}];

impl Backend for Rm3Backend {
    fn name(&self) -> &'static str {
        "rm3"
    }

    fn description(&self) -> &'static str {
        "ReRAM resistive-majority PLiM computer (the paper's architecture)"
    }

    fn instruction_set(&self) -> &'static [InstructionInfo] {
        &RM3_ISA
    }

    fn cost(&self, ir: &IrProgram) -> Cost {
        let (instructions, footprint, wear) = crate::ir::replay_metrics(ir);
        Cost {
            instructions,
            footprint,
            wear,
            units: instructions as u64,
        }
    }

    fn emit(&self, ir: &IrProgram) -> Box<dyn Artifact> {
        Box::new(Rm3Artifact {
            compiled: crate::ir::emit(ir),
        })
    }
}

/// The RM3 backend's artifact: the classic [`Rm3Program`] behind the
/// [`Artifact`] interface.
#[derive(Debug, Clone)]
pub struct Rm3Artifact {
    /// The wrapped physical program.
    pub compiled: Rm3Program,
}

impl Artifact for Rm3Artifact {
    fn target(&self) -> &'static str {
        "rm3"
    }

    fn num_inputs(&self) -> usize {
        self.compiled.program.num_inputs()
    }

    fn cost(&self) -> Cost {
        Cost {
            instructions: self.compiled.stats.instructions,
            footprint: self.compiled.stats.rams,
            wear: self.compiled.stats.max_cell_writes,
            units: self.compiled.stats.instructions as u64,
        }
    }

    fn listing(&self) -> String {
        self.compiled.program.to_string()
    }

    fn stats_text(&self) -> String {
        format!("{}\n", self.compiled.stats)
    }

    fn output_names(&self) -> Vec<String> {
        self.compiled
            .program
            .outputs()
            .iter()
            .map(|(name, _)| name.clone())
            .collect()
    }

    fn run_wide(&self, inputs: &[u64]) -> Result<Vec<u64>, String> {
        use plim::wide::WideMachine;
        use plim::RamAddr;
        let mut machine = WideMachine::<u64>::new();
        // Poison the work array so a read of a never-written cell cannot
        // masquerade as a correct zero (same discipline as `verify`).
        machine.ensure_cells(self.compiled.program.num_rams() as usize);
        for addr in 0..self.compiled.program.num_rams() {
            machine.write_cell(RamAddr(addr), 0xAAAA_AAAA_AAAA_AAAA ^ u64::from(addr));
        }
        machine
            .run(&self.compiled.program, inputs)
            .map_err(|e| e.to_string())
    }
}

/// The one registered RM3 backend instance.
static RM3_BACKEND: Rm3Backend = Rm3Backend;

/// Backends registered beyond the built-in RM3 one.
static EXTRA: RwLock<Vec<&'static dyn Backend>> = RwLock::new(Vec::new());

/// Registers a backend with the global target registry.
///
/// Registration is idempotent per name: a second backend under an existing
/// name is ignored, so library users and test binaries can call their
/// `install()` hooks freely. The RM3 backend is always registered.
pub fn register(backend: &'static dyn Backend) {
    let mut extra = EXTRA.write().expect("backend registry poisoned");
    if backend.name() == RM3_BACKEND.name() || extra.iter().any(|b| b.name() == backend.name()) {
        return;
    }
    extra.push(backend);
}

/// Every registered backend, RM3 first, then registration order.
pub fn backends() -> Vec<&'static dyn Backend> {
    let mut all: Vec<&'static dyn Backend> = vec![&RM3_BACKEND];
    all.extend(
        EXTRA
            .read()
            .expect("backend registry poisoned")
            .iter()
            .copied(),
    );
    all
}

/// A compilation target: a name resolved against the backend registry.
///
/// `Copy`-cheap (it carries only the backend's static name) so it can live
/// inside [`crate::CompilerOptions`]; the default is [`Target::RM3`], which
/// keeps every existing call site compiling the paper's architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Target(&'static str);

impl Target {
    /// The built-in RM3 target (always registered).
    pub const RM3: Target = Target("rm3");

    /// The registry/CLI/spec name of the target.
    #[must_use]
    pub fn name(self) -> &'static str {
        self.0
    }

    /// The backend behind this target.
    ///
    /// # Panics
    ///
    /// Panics if the backend was never registered — impossible for targets
    /// obtained through [`Target::parse`] or [`Target::all`].
    #[must_use]
    pub fn backend(self) -> &'static dyn Backend {
        backends()
            .into_iter()
            .find(|b| b.name() == self.0)
            .expect("target backend not registered")
    }

    /// Every registered target, in registry order (RM3 first).
    #[must_use]
    pub fn all() -> Vec<Target> {
        backends().into_iter().map(|b| Target(b.name())).collect()
    }

    /// Parses a registry name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message listing the registered target names when
    /// `name` is not one of them (the `--schedule`/`--alloc` convention).
    pub fn parse(name: &str) -> Result<Self, String> {
        let all = backends();
        all.iter()
            .find(|b| b.name() == name)
            .map(|b| Target(b.name()))
            .ok_or_else(|| {
                let names: Vec<&str> = all.iter().map(|b| b.name()).collect();
                format!("unknown target `{name}` (expected {})", names.join("|"))
            })
    }
}

impl Default for Target {
    fn default() -> Self {
        Target::RM3
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::CompilerOptions;

    /// A do-nothing backend for registry tests.
    struct Dummy;

    impl Backend for Dummy {
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn description(&self) -> &'static str {
            "test backend"
        }
        fn instruction_set(&self) -> &'static [InstructionInfo] {
            &[]
        }
        fn cost(&self, _ir: &IrProgram) -> Cost {
            Cost::default()
        }
        fn emit(&self, ir: &IrProgram) -> Box<dyn Artifact> {
            Rm3Backend.emit(ir)
        }
    }

    #[test]
    fn rm3_is_always_registered_and_is_the_default() {
        assert_eq!(Target::default(), Target::RM3);
        assert_eq!(Target::parse("rm3"), Ok(Target::RM3));
        assert_eq!(Target::RM3.backend().name(), "rm3");
        assert!(Target::all().contains(&Target::RM3));
    }

    #[test]
    fn unknown_targets_list_the_valid_names() {
        let err = Target::parse("tpu").unwrap_err();
        assert!(err.contains("unknown target `tpu`"), "{err}");
        assert!(err.contains("rm3"), "{err}");
    }

    #[test]
    fn registration_is_idempotent_per_name() {
        static DUMMY: Dummy = Dummy;
        let before = backends().len();
        register(&DUMMY);
        let after_first = backends().len();
        register(&DUMMY);
        assert_eq!(backends().len(), after_first);
        assert!(after_first >= before);
        assert_eq!(Target::parse("dummy").unwrap().name(), "dummy");
    }

    #[test]
    fn cost_gates_mirror_the_historical_tuple_comparisons() {
        let base = Cost {
            instructions: 10,
            footprint: 4,
            wear: 6,
            units: 10,
        };
        assert!(!base.worse_than(base));
        assert!(Cost {
            instructions: 11,
            ..base
        }
        .worse_than(base));
        assert!(Cost {
            footprint: 5,
            ..base
        }
        .worse_than(base));
        assert!(Cost { wear: 7, ..base }.worse_than(base));
        assert!(Cost {
            instructions: 9,
            ..base
        }
        .improves_on(base));
        assert!(!base.improves_on(base));
        assert!(!Cost {
            instructions: 9,
            footprint: 5,
            ..base
        }
        .improves_on(base));
    }

    #[test]
    fn rm3_backend_cost_equals_emitted_stats() {
        let mut mig = mig::Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let f = mig.maj(a, b, c);
        let g = mig.xor(a, c);
        mig.add_output("f", f);
        mig.add_output("g", g);
        let compilation = crate::compile_full(&mig, CompilerOptions::new());
        let backend = Rm3Backend;
        let cost = backend.cost(&compilation.ir);
        assert_eq!(cost.instructions, compilation.compiled.stats.instructions);
        assert_eq!(cost.footprint, compilation.compiled.stats.rams);
        assert_eq!(cost.wear, compilation.compiled.stats.max_cell_writes);
        // And the artifact is the same program, byte for byte.
        let artifact = backend.emit(&compilation.ir);
        assert_eq!(artifact.listing(), compilation.compiled.program.to_string());
        assert_eq!(artifact.cost(), cost);
        assert_eq!(artifact.target(), "rm3");
        assert_eq!(artifact.num_inputs(), 3);
        assert_eq!(artifact.output_names(), ["f", "g"]);
    }

    #[test]
    fn rm3_artifact_runs_wide_like_the_machine() {
        let mut mig = mig::Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let f = mig.and(a, b);
        mig.add_output("f", f);
        let compilation = crate::compile_full(&mig, CompilerOptions::new());
        let artifact = Rm3Backend.emit(&compilation.ir);
        let got = artifact.run_wide(&[0b1100, 0b1010]).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0] & 0b1111, 0b1000);
        assert!(artifact.run_wide(&[0]).is_err(), "input count mismatch");
    }
}
