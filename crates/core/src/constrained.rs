//! Compilation under an RRAM budget.
//!
//! The paper's conclusion names "a limited number of RRAMs" as the next
//! constraint to support. This module provides a budget-aware driver: it
//! explores the compiler's scheduling/allocation space from the most to the
//! least RRAM-frugal configuration and returns the first program that fits
//! the budget, or an error carrying the best program found so that callers
//! can inspect how far away the budget is.

use std::fmt;

use mig::Mig;

use crate::compile::{compile_full, Compilation};
use crate::options::{
    AllocatorStrategy, CompilerOptions, OperandSelection, OptLevel, ScheduleOrder,
};
use crate::program::Rm3Program;

/// Error returned when no explored configuration fits the budget.
#[derive(Debug)]
pub struct RamLimitError {
    /// The requested budget.
    pub limit: u32,
    /// The most frugal program found (its `stats.rams` exceeds `limit`).
    pub best: Rm3Program,
}

impl fmt::Display for RamLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no schedule fits {} work RRAMs; best found uses {}",
            self.limit, self.best.stats.rams
        )
    }
}

impl std::error::Error for RamLimitError {}

/// Compiles `mig` into a program using at most `limit` work RRAMs.
///
/// Configurations are explored from the most RRAM-frugal (priority
/// scheduling, FIFO reuse, smart translation) toward alternatives whose
/// different traversal orders occasionally fit tighter budgets. The
/// instruction count is a secondary criterion: among fitting programs the
/// first (most instruction-efficient configuration) is returned.
///
/// # Errors
///
/// Returns [`RamLimitError`] with the most frugal program found when the
/// budget cannot be met.
///
/// # Examples
///
/// ```
/// use mig::Mig;
/// use plim_compiler::constrained::compile_with_ram_limit;
///
/// let mut mig = Mig::new();
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let f = mig.and(a, b);
/// mig.add_output("f", f);
/// let compiled = compile_with_ram_limit(&mig, 2).unwrap();
/// assert!(compiled.stats.rams <= 2);
/// assert!(compile_with_ram_limit(&mig, 0).is_err());
/// ```
// The Err variant intentionally carries the full best-effort program so
// callers can inspect how far from the budget they landed.
#[allow(clippy::result_large_err)]
pub fn compile_with_ram_limit(mig: &Mig, limit: u32) -> Result<Rm3Program, RamLimitError> {
    compile_with_ram_limit_at(mig, limit, OptLevel::O0).map(|c| c.compiled)
}

/// Like [`compile_with_ram_limit`], running the IR pass pipeline at `opt`
/// on every explored configuration — forwarding merges cell lifetimes, so
/// higher levels can fit budgets the unoptimized stream misses. Returns the
/// full [`Compilation`] so callers can emit IR artifacts of the winner.
///
/// # Errors
///
/// Returns [`RamLimitError`] with the most frugal program found when the
/// budget cannot be met.
#[allow(clippy::result_large_err)]
pub fn compile_with_ram_limit_at(
    mig: &Mig,
    limit: u32,
    opt: OptLevel,
) -> Result<Compilation, RamLimitError> {
    let configurations = [
        CompilerOptions::new().opt(opt),
        CompilerOptions::new()
            .schedule(ScheduleOrder::Index)
            .opt(opt),
        CompilerOptions::new()
            .schedule(ScheduleOrder::Index)
            .operands(OperandSelection::ChildOrder)
            .opt(opt),
    ];
    let mut best: Option<Compilation> = None;
    for options in configurations {
        debug_assert_eq!(options.allocator, AllocatorStrategy::Fifo);
        let compilation = compile_full(mig, options);
        if compilation.compiled.stats.rams <= limit {
            return Ok(compilation);
        }
        if best
            .as_ref()
            .is_none_or(|b| compilation.compiled.stats.rams < b.compiled.stats.rams)
        {
            best = Some(compilation);
        }
    }
    Err(RamLimitError {
        limit,
        best: best
            .expect("at least one configuration was compiled")
            .compiled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn sample() -> Mig {
        let mut mig = Mig::new();
        let xs = mig.add_inputs("x", 6);
        let mut acc = xs[0];
        for &x in &xs[1..] {
            let or = mig.or(acc, x);
            let and = mig.and(acc, x);
            acc = mig.and(or, !and);
        }
        mig.add_output("f", acc);
        mig
    }

    #[test]
    fn generous_budget_succeeds() {
        let mig = sample();
        let unconstrained = compile(&mig, CompilerOptions::new());
        let compiled = compile_with_ram_limit(&mig, unconstrained.stats.rams).unwrap();
        assert!(compiled.stats.rams <= unconstrained.stats.rams);
        crate::verify::verify(&mig, &compiled, 4, 0).unwrap();
    }

    #[test]
    fn impossible_budget_reports_best_effort() {
        let mig = sample();
        let err = compile_with_ram_limit(&mig, 1).unwrap_err();
        assert!(err.best.stats.rams > 1);
        assert!(err.to_string().contains("no schedule fits 1"));
    }

    #[test]
    fn returned_program_is_functional() {
        let mig = sample();
        let unconstrained = compile(&mig, CompilerOptions::new());
        // A slightly tight budget may force a different configuration; the
        // result must still be correct.
        for limit in [unconstrained.stats.rams, unconstrained.stats.rams + 5] {
            let compiled = compile_with_ram_limit(&mig, limit).unwrap();
            crate::verify::verify(&mig, &compiled, 4, 1).unwrap();
        }
    }
}
