//! Compiler configuration.

use crate::backend::Target;

/// Strategy of the work-RRAM allocator (§4.2.3 of the paper, extended).
///
/// Every strategy is a policy over the same free-cell pool maintained by
/// [`crate::alloc::RramAllocator`]; adding one means adding a variant here
/// and a matching arm to the allocator's pool (the compiler, CLI, ablation
/// harness and bench gate pick it up through [`AllocatorStrategy::ALL`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorStrategy {
    /// Free list served oldest-released-first. This is the paper's choice:
    /// recently released cells rest longest, spreading writes across the
    /// array and addressing RRAM endurance.
    #[default]
    Fifo,
    /// Free list served most-recently-released-first. Minimizes the working
    /// set just as well but concentrates writes on few cells; provided as an
    /// ablation baseline for the endurance claim.
    Lifo,
    /// Never reuse released cells. Every request allocates a fresh RRAM —
    /// the upper bound on `#R`.
    Fresh,
    /// Wear-budget reuse: serve the free cell with the fewest recorded
    /// writes (ties to the lowest address). Uses the allocator's per-cell
    /// write counters to level wear harder than FIFO rotation.
    WearLeveled,
    /// Lifetime-binned reuse: cells that last held a long-lived value are
    /// kept apart from short-lived churn, so the hottest slots rotate
    /// within their own pool (requests carry a
    /// [`crate::lifetime::LifetimeClass`] hint).
    LifetimeBinned,
}

impl AllocatorStrategy {
    /// Every strategy, in a stable sweep order.
    pub const ALL: [AllocatorStrategy; 5] = [
        AllocatorStrategy::Fifo,
        AllocatorStrategy::Lifo,
        AllocatorStrategy::Fresh,
        AllocatorStrategy::WearLeveled,
        AllocatorStrategy::LifetimeBinned,
    ];

    /// The command-line name of the strategy.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorStrategy::Fifo => "fifo",
            AllocatorStrategy::Lifo => "lifo",
            AllocatorStrategy::Fresh => "fresh",
            AllocatorStrategy::WearLeveled => "wear",
            AllocatorStrategy::LifetimeBinned => "binned",
        }
    }

    /// Parses a command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid strategies when `name`
    /// is not one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        AllocatorStrategy::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| {
                format!("unknown allocator `{name}` (expected fifo|lifo|fresh|wear|binned)")
            })
    }
}

/// Order in which computable MIG nodes are translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleOrder {
    /// Topological index order (the paper's naive baseline: "the candidate
    /// selection scheme is disabled").
    Index,
    /// The priority queue of §4.2.1: prefer candidates with more releasing
    /// children, then candidates whose parents sit on lower levels.
    #[default]
    Priority,
    /// Lifetime-driven lookahead on top of the priority queue: among the
    /// heap-best candidates, pick the one with the best *net* RRAM effect —
    /// cells freed right now, minus cells the translation must newly
    /// allocate, plus the best release unlocked one step later.
    Lookahead,
}

impl ScheduleOrder {
    /// Every schedule, in a stable sweep order.
    pub const ALL: [ScheduleOrder; 3] = [
        ScheduleOrder::Index,
        ScheduleOrder::Priority,
        ScheduleOrder::Lookahead,
    ];

    /// The command-line name of the schedule.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleOrder::Index => "index",
            ScheduleOrder::Priority => "priority",
            ScheduleOrder::Lookahead => "lookahead",
        }
    }

    /// Parses a command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid schedules when `name`
    /// is not one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        ScheduleOrder::ALL
            .into_iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| format!("unknown schedule `{name}` (expected index|priority|lookahead)"))
    }
}

/// How hard the post-lowering IR pass pipeline works on the instruction
/// stream (the `-O` levels of `plimc`).
///
/// Levels select which [`crate::ir::passes`] run between lowering and
/// emission. [`OptLevel::O0`] runs none: the emitted program is
/// byte-identical to the historical single-step translator, which is why it
/// is the default — reproducing the paper stays the baseline contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum OptLevel {
    /// No IR passes; byte-identical to the pre-IR translator output.
    #[default]
    O0,
    /// One round of the cheap linear hygiene passes: dead-write
    /// elimination, redundant-initialization removal, and the same-cell
    /// peephole. Never reorders instructions.
    O1,
    /// Everything in `-O1` plus in-place-overwrite forwarding (which may
    /// move an instruction later to claim a dying cell), iterated with the
    /// hygiene passes to a fixpoint.
    O2,
}

impl OptLevel {
    /// Every level, in ascending-aggressiveness order.
    pub const ALL: [OptLevel; 3] = [OptLevel::O0, OptLevel::O1, OptLevel::O2];

    /// The wire/command-line name of the level (`o0`, `o1`, `o2`).
    pub fn name(self) -> &'static str {
        match self {
            OptLevel::O0 => "o0",
            OptLevel::O1 => "o1",
            OptLevel::O2 => "o2",
        }
    }

    /// Parses a wire/command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid levels when `name` is
    /// not one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        OptLevel::ALL
            .into_iter()
            .find(|level| level.name() == name)
            .ok_or_else(|| format!("unknown opt level `{name}` (expected o0|o1|o2)"))
    }
}

/// Which MIG rewrite engine runs ahead of translation.
///
/// All three engines apply the paper's axioms (Ω.C/Ω.A/Ω.M plus
/// distributivity and inverter propagation); they differ in *how* the
/// rewrite space is explored. The mode is part of [`CompilerOptions`] —
/// and therefore of the options spec and the service cache key — because
/// the optimized MIG, and with it every downstream artifact, depends on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RewriteMode {
    /// The in-place arena engine of Algorithm 1: greedy local application
    /// of the axiom cycle, fastest, the paper-reproduction default.
    #[default]
    Arena,
    /// The historical copy-and-rebuild engine: same greedy cycle expressed
    /// as whole-graph rebuild passes. Kept as a differential baseline for
    /// the arena engine.
    Rebuild,
    /// Equality saturation: the arena result is refined through the
    /// `plim-egraph` e-graph, which saturates the axiom set under a
    /// deterministic budget and extracts the candidate with the cheapest
    /// *compiled* cost under the active backend. Never worse than `Arena`
    /// by construction (the arena result is always a candidate). Requires
    /// [`install_egraph_optimizer`] to have been called (done by
    /// `plim_egraph::install()`).
    Egraph,
}

impl RewriteMode {
    /// Every mode, in a stable sweep order.
    pub const ALL: [RewriteMode; 3] = [
        RewriteMode::Arena,
        RewriteMode::Rebuild,
        RewriteMode::Egraph,
    ];

    /// The wire/command-line name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            RewriteMode::Arena => "arena",
            RewriteMode::Rebuild => "rebuild",
            RewriteMode::Egraph => "egraph",
        }
    }

    /// Parses a wire/command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid modes when `name` is
    /// not one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        RewriteMode::ALL
            .into_iter()
            .find(|m| m.name() == name)
            .ok_or_else(|| format!("unknown rewrite mode `{name}` (expected arena|rebuild|egraph)"))
    }
}

/// Signature of the equality-saturation optimizer hook: given the raw
/// input MIG, the arena-rewritten baseline, the rewrite effort and the
/// active compile options, return the extraction the caller should
/// compile (the baseline itself when saturation finds nothing better).
pub type EgraphOptimizer =
    fn(raw: &mig::Mig, baseline: &mig::Mig, effort: usize, options: CompilerOptions) -> mig::Mig;

static EGRAPH_OPTIMIZER: std::sync::OnceLock<EgraphOptimizer> = std::sync::OnceLock::new();

/// Registers the equality-saturation optimizer behind
/// [`RewriteMode::Egraph`].
///
/// `plim-compiler` cannot depend on `plim-egraph` (the e-graph crate
/// scores candidates by compiling them through this crate), so the
/// optimizer is injected at startup — `plim_egraph::install()` calls this,
/// mirroring the `plim_backends::install()` registry idiom. Idempotent:
/// the first registration wins and later calls are no-ops.
pub fn install_egraph_optimizer(optimizer: EgraphOptimizer) {
    let _ = EGRAPH_OPTIMIZER.set(optimizer);
}

/// The registered equality-saturation optimizer, if any.
#[must_use]
pub fn egraph_optimizer() -> Option<EgraphOptimizer> {
    EGRAPH_OPTIMIZER.get().copied()
}

/// How RM3 operands and the destination are chosen for each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperandSelection {
    /// Fixed child order: first child → `A`, second → `B`, third → `Z`
    /// (the naive translation illustrated in §3 of the paper).
    ChildOrder,
    /// The case analysis of §4.2.2 (operand-B cases a–h, destination-Z cases
    /// a–e, operand-A cases a–d), including complement-value caching.
    #[default]
    Smart,
}

impl OperandSelection {
    /// Every policy, in a stable sweep order.
    pub const ALL: [OperandSelection; 2] = [OperandSelection::ChildOrder, OperandSelection::Smart];

    /// The wire/command-line name of the policy.
    pub fn name(self) -> &'static str {
        match self {
            OperandSelection::ChildOrder => "child-order",
            OperandSelection::Smart => "smart",
        }
    }

    /// Parses a wire/command-line name.
    ///
    /// # Errors
    ///
    /// Returns a one-line message naming the valid policies when `name` is
    /// not one of them.
    pub fn parse(name: &str) -> Result<Self, String> {
        OperandSelection::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| format!("unknown operand policy `{name}` (expected child-order|smart)"))
    }
}

/// Options controlling the MIG → PLiM translation.
///
/// The defaults correspond to the paper's full proposed compiler; use
/// [`CompilerOptions::naive`] for the Table 1 baseline. The lifetime-driven
/// extensions (lookahead scheduling, wear-budget and lifetime-binned
/// allocation) are opt-in so the default output stays byte-identical to the
/// paper reproduction.
///
/// # Examples
///
/// ```
/// use plim_compiler::{AllocatorStrategy, CompilerOptions};
///
/// let opts = CompilerOptions::new().allocator(AllocatorStrategy::Lifo);
/// assert_eq!(opts.allocator, AllocatorStrategy::Lifo);
/// assert_eq!(CompilerOptions::naive().schedule, plim_compiler::ScheduleOrder::Index);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompilerOptions {
    /// Node scheduling order.
    pub schedule: ScheduleOrder,
    /// Operand/destination selection policy.
    pub operands: OperandSelection,
    /// Work-RRAM allocation strategy.
    pub allocator: AllocatorStrategy,
    /// IR pass-pipeline level run between lowering and emission.
    pub opt: OptLevel,
    /// Emission target: which registered [`crate::backend::Backend`]
    /// consumes the optimized IR (and scores the pass pipeline's trial
    /// edits). Defaults to [`Target::RM3`], the paper's architecture.
    pub target: Target,
    /// MIG rewrite engine run ahead of translation. Defaults to
    /// [`RewriteMode::Arena`], Algorithm 1's greedy in-place engine.
    pub rewrite: RewriteMode,
}

impl CompilerOptions {
    /// The paper's proposed compiler: priority scheduling, smart operand
    /// selection, FIFO allocation.
    pub fn new() -> Self {
        CompilerOptions::default()
    }

    /// The naive baseline of Table 1: "only the candidate selection scheme
    /// is disabled" — index-order scheduling with the smart per-node
    /// translation and FIFO allocation. (The even more naive fixed
    /// child-order translation illustrated in §3 is available via
    /// [`OperandSelection::ChildOrder`].)
    pub fn naive() -> Self {
        CompilerOptions {
            schedule: ScheduleOrder::Index,
            operands: OperandSelection::Smart,
            allocator: AllocatorStrategy::Fifo,
            opt: OptLevel::O0,
            target: Target::RM3,
            rewrite: RewriteMode::Arena,
        }
    }

    /// Sets the scheduling order.
    pub fn schedule(mut self, schedule: ScheduleOrder) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the operand-selection policy.
    pub fn operands(mut self, operands: OperandSelection) -> Self {
        self.operands = operands;
        self
    }

    /// Sets the allocation strategy.
    pub fn allocator(mut self, allocator: AllocatorStrategy) -> Self {
        self.allocator = allocator;
        self
    }

    /// Sets the IR pass-pipeline level.
    pub fn opt(mut self, opt: OptLevel) -> Self {
        self.opt = opt;
        self
    }

    /// Sets the emission target.
    pub fn target(mut self, target: Target) -> Self {
        self.target = target;
        self
    }

    /// Sets the MIG rewrite engine.
    pub fn rewrite(mut self, rewrite: RewriteMode) -> Self {
        self.rewrite = rewrite;
        self
    }

    /// The canonical wire spelling of this configuration
    /// (`schedule+operands+allocator+opt+target+rewrite`, e.g.
    /// `priority+smart+fifo+o0+rm3+arena`), used by the compile-service
    /// protocol and as part of the result-cache fingerprint. **Every**
    /// field of the options must appear here: the service derives its
    /// cache key from this spelling, so a field that does not reach the
    /// spec would let a warm cache hit serve a program compiled under
    /// different options — or, worse, for a different target or rewrite
    /// engine. Round-trips through [`CompilerOptions::parse_spec`].
    pub fn spec(&self) -> String {
        format!(
            "{}+{}+{}+{}+{}+{}",
            self.schedule.name(),
            self.operands.name(),
            self.allocator.name(),
            self.opt.name(),
            self.target.name(),
            self.rewrite.name()
        )
    }

    /// Parses the [`CompilerOptions::spec`] spelling.
    ///
    /// The historical three-part (`schedule+operands+allocator`),
    /// four-part (`…+opt`) and five-part (`…+target`) spellings are still
    /// accepted and imply `o0`, the RM3 target and the arena rewrite
    /// engine respectively, so requests from older clients keep compiling
    /// — and keep hitting the same cache entries as an explicit
    /// `-O0 --target rm3 --rewrite arena`.
    ///
    /// # Errors
    ///
    /// Returns a one-line message when the spec is not three to six
    /// `+`-separated component names.
    pub fn parse_spec(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split('+').collect();
        let (schedule, operands, allocator, opt, target, rewrite) = match parts.as_slice() {
            [schedule, operands, allocator] => (
                schedule,
                operands,
                allocator,
                OptLevel::O0,
                Target::RM3,
                RewriteMode::Arena,
            ),
            [schedule, operands, allocator, opt] => (
                schedule,
                operands,
                allocator,
                OptLevel::parse(opt)?,
                Target::RM3,
                RewriteMode::Arena,
            ),
            [schedule, operands, allocator, opt, target] => (
                schedule,
                operands,
                allocator,
                OptLevel::parse(opt)?,
                Target::parse(target)?,
                RewriteMode::Arena,
            ),
            [schedule, operands, allocator, opt, target, rewrite] => (
                schedule,
                operands,
                allocator,
                OptLevel::parse(opt)?,
                Target::parse(target)?,
                RewriteMode::parse(rewrite)?,
            ),
            _ => {
                return Err(format!(
                "bad options spec `{spec}` (expected schedule+operands+allocator[+opt][+target][+rewrite])"
            ))
            }
        };
        Ok(CompilerOptions {
            schedule: ScheduleOrder::parse(schedule)?,
            operands: OperandSelection::parse(operands)?,
            allocator: AllocatorStrategy::parse(allocator)?,
            opt,
            target,
            rewrite,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_proposed_compiler() {
        let opts = CompilerOptions::new();
        assert_eq!(opts.schedule, ScheduleOrder::Priority);
        assert_eq!(opts.operands, OperandSelection::Smart);
        assert_eq!(opts.allocator, AllocatorStrategy::Fifo);
    }

    #[test]
    fn naive_preset_disables_candidate_selection_only() {
        let opts = CompilerOptions::naive();
        assert_eq!(opts.schedule, ScheduleOrder::Index);
        assert_eq!(opts.operands, OperandSelection::Smart);
        assert_eq!(opts.allocator, AllocatorStrategy::Fifo);
    }

    #[test]
    fn builder_chains() {
        let opts = CompilerOptions::new()
            .schedule(ScheduleOrder::Index)
            .operands(OperandSelection::ChildOrder)
            .allocator(AllocatorStrategy::Fresh);
        assert_eq!(opts.allocator, AllocatorStrategy::Fresh);
        assert_eq!(opts.schedule, ScheduleOrder::Index);
    }

    #[test]
    fn names_round_trip_through_parse() {
        for strategy in AllocatorStrategy::ALL {
            assert_eq!(AllocatorStrategy::parse(strategy.name()), Ok(strategy));
        }
        for schedule in ScheduleOrder::ALL {
            assert_eq!(ScheduleOrder::parse(schedule.name()), Ok(schedule));
        }
        for policy in OperandSelection::ALL {
            assert_eq!(OperandSelection::parse(policy.name()), Ok(policy));
        }
        for mode in RewriteMode::ALL {
            assert_eq!(RewriteMode::parse(mode.name()), Ok(mode));
        }
    }

    #[test]
    fn specs_round_trip_for_every_combination() {
        for schedule in ScheduleOrder::ALL {
            for operands in OperandSelection::ALL {
                for allocator in AllocatorStrategy::ALL {
                    for opt in OptLevel::ALL {
                        for target in Target::all() {
                            for rewrite in RewriteMode::ALL {
                                let options = CompilerOptions {
                                    schedule,
                                    operands,
                                    allocator,
                                    opt,
                                    target,
                                    rewrite,
                                };
                                assert_eq!(
                                    CompilerOptions::parse_spec(&options.spec()),
                                    Ok(options)
                                );
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(
            CompilerOptions::new().spec(),
            "priority+smart+fifo+o0+rm3+arena"
        );
    }

    #[test]
    fn three_to_five_part_specs_imply_o0_rm3_and_arena() {
        let options = CompilerOptions::parse_spec("priority+smart+fifo").unwrap();
        assert_eq!(options, CompilerOptions::new());
        assert_eq!(options.opt, OptLevel::O0);
        assert_eq!(options.target, Target::RM3);
        assert_eq!(options.rewrite, RewriteMode::Arena);
        let four = CompilerOptions::parse_spec("priority+smart+fifo+o2").unwrap();
        assert_eq!(four.opt, OptLevel::O2);
        assert_eq!(four.target, Target::RM3);
        // Back-compat keys stay *identical* to the explicit spellings, so
        // an old client and a new one share cache entries.
        assert_eq!(four, CompilerOptions::new().opt(OptLevel::O2));
        let five = CompilerOptions::parse_spec("priority+smart+fifo+o2+rm3").unwrap();
        assert_eq!(five, four);
        assert_eq!(five.rewrite, RewriteMode::Arena);
        let six = CompilerOptions::parse_spec("priority+smart+fifo+o2+rm3+egraph").unwrap();
        assert_eq!(six.rewrite, RewriteMode::Egraph);
        assert_ne!(six.spec(), five.spec());
        let err = CompilerOptions::parse_spec("priority+smart+fifo+o7").unwrap_err();
        assert!(err.contains("o7") && err.contains("o0|o1|o2"), "{err}");
        let err = CompilerOptions::parse_spec("priority+smart+fifo+o0+gpu").unwrap_err();
        assert!(err.contains("gpu") && err.contains("rm3"), "{err}");
        let err = CompilerOptions::parse_spec("priority+smart+fifo+o0+rm3+loop").unwrap_err();
        assert!(err.contains("loop") && err.contains("egraph"), "{err}");
    }

    #[test]
    fn opt_levels_round_trip_and_order() {
        for level in OptLevel::ALL {
            assert_eq!(OptLevel::parse(level.name()), Ok(level));
        }
        assert!(OptLevel::O0 < OptLevel::O1 && OptLevel::O1 < OptLevel::O2);
        assert!(OptLevel::parse("3").is_err());
    }

    #[test]
    fn bad_specs_are_rejected_with_context() {
        let err = CompilerOptions::parse_spec("priority+smart").unwrap_err();
        assert!(err.contains("schedule+operands+allocator"), "{err}");
        let err = CompilerOptions::parse_spec("priority+smart+zigzag").unwrap_err();
        assert!(err.contains("zigzag"), "{err}");
        let err = CompilerOptions::parse_spec("priority+sideways+fifo").unwrap_err();
        assert!(err.contains("sideways"), "{err}");
    }

    #[test]
    fn unknown_names_list_the_valid_ones() {
        let err = AllocatorStrategy::parse("zigzag").unwrap_err();
        assert!(err.contains("zigzag") && err.contains("wear"), "{err}");
        let err = ScheduleOrder::parse("random").unwrap_err();
        assert!(err.contains("random") && err.contains("lookahead"), "{err}");
    }
}
