//! Compiler configuration.

/// Strategy of the work-RRAM allocator (§4.2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocatorStrategy {
    /// Free list served oldest-released-first. This is the paper's choice:
    /// recently released cells rest longest, spreading writes across the
    /// array and addressing RRAM endurance.
    #[default]
    Fifo,
    /// Free list served most-recently-released-first. Minimizes the working
    /// set just as well but concentrates writes on few cells; provided as an
    /// ablation baseline for the endurance claim.
    Lifo,
    /// Never reuse released cells. Every request allocates a fresh RRAM —
    /// the upper bound on `#R`.
    Fresh,
}

/// Order in which computable MIG nodes are translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScheduleOrder {
    /// Topological index order (the paper's naive baseline: "the candidate
    /// selection scheme is disabled").
    Index,
    /// The priority queue of §4.2.1: prefer candidates with more releasing
    /// children, then candidates whose parents sit on lower levels.
    #[default]
    Priority,
}

/// How RM3 operands and the destination are chosen for each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OperandSelection {
    /// Fixed child order: first child → `A`, second → `B`, third → `Z`
    /// (the naive translation illustrated in §3 of the paper).
    ChildOrder,
    /// The case analysis of §4.2.2 (operand-B cases a–h, destination-Z cases
    /// a–e, operand-A cases a–d), including complement-value caching.
    #[default]
    Smart,
}

/// Options controlling the MIG → PLiM translation.
///
/// The defaults correspond to the paper's full proposed compiler; use
/// [`CompilerOptions::naive`] for the Table 1 baseline.
///
/// # Examples
///
/// ```
/// use plim_compiler::{AllocatorStrategy, CompilerOptions};
///
/// let opts = CompilerOptions::new().allocator(AllocatorStrategy::Lifo);
/// assert_eq!(opts.allocator, AllocatorStrategy::Lifo);
/// assert_eq!(CompilerOptions::naive().schedule, plim_compiler::ScheduleOrder::Index);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompilerOptions {
    /// Node scheduling order.
    pub schedule: ScheduleOrder,
    /// Operand/destination selection policy.
    pub operands: OperandSelection,
    /// Work-RRAM allocation strategy.
    pub allocator: AllocatorStrategy,
}

impl CompilerOptions {
    /// The paper's proposed compiler: priority scheduling, smart operand
    /// selection, FIFO allocation.
    pub fn new() -> Self {
        CompilerOptions::default()
    }

    /// The naive baseline of Table 1: "only the candidate selection scheme
    /// is disabled" — index-order scheduling with the smart per-node
    /// translation and FIFO allocation. (The even more naive fixed
    /// child-order translation illustrated in §3 is available via
    /// [`OperandSelection::ChildOrder`].)
    pub fn naive() -> Self {
        CompilerOptions {
            schedule: ScheduleOrder::Index,
            operands: OperandSelection::Smart,
            allocator: AllocatorStrategy::Fifo,
        }
    }

    /// Sets the scheduling order.
    pub fn schedule(mut self, schedule: ScheduleOrder) -> Self {
        self.schedule = schedule;
        self
    }

    /// Sets the operand-selection policy.
    pub fn operands(mut self, operands: OperandSelection) -> Self {
        self.operands = operands;
        self
    }

    /// Sets the allocation strategy.
    pub fn allocator(mut self, allocator: AllocatorStrategy) -> Self {
        self.allocator = allocator;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_proposed_compiler() {
        let opts = CompilerOptions::new();
        assert_eq!(opts.schedule, ScheduleOrder::Priority);
        assert_eq!(opts.operands, OperandSelection::Smart);
        assert_eq!(opts.allocator, AllocatorStrategy::Fifo);
    }

    #[test]
    fn naive_preset_disables_candidate_selection_only() {
        let opts = CompilerOptions::naive();
        assert_eq!(opts.schedule, ScheduleOrder::Index);
        assert_eq!(opts.operands, OperandSelection::Smart);
        assert_eq!(opts.allocator, AllocatorStrategy::Fifo);
    }

    #[test]
    fn builder_chains() {
        let opts = CompilerOptions::new()
            .schedule(ScheduleOrder::Index)
            .operands(OperandSelection::ChildOrder)
            .allocator(AllocatorStrategy::Fresh);
        assert_eq!(opts.allocator, AllocatorStrategy::Fresh);
        assert_eq!(opts.schedule, ScheduleOrder::Index);
    }
}
