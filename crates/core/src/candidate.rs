//! Candidate selection (§4.2.1 of the paper).
//!
//! Algorithm 2 keeps a priority queue of *candidates* — MIG nodes whose
//! children have all been computed. The ordering follows two principles:
//!
//! 1. **Release early**: prefer candidates with more *releasing children*
//!    (children with single fanout, whose RRAMs can be freed immediately
//!    after the candidate is computed — Fig. 4a).
//! 2. **Allocate late**: prefer candidates whose parents sit on lower
//!    levels, i.e. whose results will be consumed soon, so their RRAMs stay
//!    blocked for a short time (Fig. 4b).
//!
//! The paper states these as pairwise comparison rules that do not induce a
//! total order. Our heap key realizes them as: the (dynamically refreshed)
//! releasing-children count first (principle 1), then the node's position
//! in a Sethi–Ullman-style **depth-first post-order from the primary
//! outputs** (principle 2 — a node early in that order is consumed soon
//! after computation), then the paper's parent-level rule, enqueue recency,
//! and node index. The post-order component is what makes the schedule
//! robust across circuit families; a literal greedy interpretation of the
//! two rules alone degenerates on tree-shaped circuits (see the `ablation`
//! harness).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mig::{Mig, MigNode, NodeId};

use crate::lifetime::Lifetimes;

/// Priority information of one candidate node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Candidate {
    /// Position in the depth-first post-order from the outputs (lower is
    /// scheduled first).
    pub postorder: u32,
    /// Number of children with single (static) fanout.
    pub releasing_children: u32,
    /// The highest level among the node's parents (lower is better). Nodes
    /// feeding only primary outputs use `u32::MAX` (consumed last).
    pub max_parent_level: u32,
    /// Enqueue recency (assigned by the queue): later-enabled candidates
    /// are preferred on remaining ties.
    pub seq: u64,
    /// The node.
    pub id: NodeId,
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert the ascending components.
        self.releasing_children
            .cmp(&other.releasing_children)
            .then_with(|| other.postorder.cmp(&self.postorder))
            .then_with(|| other.max_parent_level.cmp(&self.max_parent_level))
            .then_with(|| self.seq.cmp(&other.seq))
            .then_with(|| other.id.cmp(&self.id))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Precomputed static priorities for every node of a graph.
#[derive(Debug)]
pub struct Priorities {
    postorder: Vec<u32>,
    releasing: Vec<u32>,
    max_parent_level: Vec<u32>,
}

impl Priorities {
    /// Computes priorities from static fanout counts and levels, running
    /// a fresh lifetime analysis for the post-order component.
    pub fn compute(mig: &Mig) -> Self {
        Priorities::from_lifetimes(mig, &Lifetimes::compute(mig))
    }

    /// Computes priorities on top of an already-run lifetime analysis
    /// (whose post-order supplies the Sethi–Ullman scheduling component).
    pub fn from_lifetimes(mig: &Mig, lifetimes: &Lifetimes) -> Self {
        let fanout = mig.fanout_counts();
        let levels = mig.levels();
        let mut releasing = vec![0u32; mig.len()];
        let mut max_parent_level = vec![u32::MAX; mig.len()];
        for id in mig.node_ids() {
            if let MigNode::Majority(children) = mig.node(id) {
                let mut count = 0;
                for child in children {
                    let n = child.node();
                    if mig.node(n).is_majority() && fanout[n.index()] == 1 {
                        count += 1;
                    }
                    let entry = &mut max_parent_level[n.index()];
                    let level = levels[id.index()];
                    if *entry == u32::MAX || level > *entry {
                        *entry = level;
                    }
                }
                releasing[id.index()] = count;
            }
        }
        let postorder = mig.node_ids().map(|id| lifetimes.postorder(id)).collect();
        Priorities {
            postorder,
            releasing,
            max_parent_level,
        }
    }

    /// The static releasing-children count of a node.
    pub fn releasing(&self, id: NodeId) -> u32 {
        self.releasing[id.index()]
    }

    /// The candidate record for `id` (sequence number assigned on enqueue).
    pub fn candidate(&self, id: NodeId) -> Candidate {
        Candidate {
            postorder: self.postorder[id.index()],
            releasing_children: self.releasing[id.index()],
            max_parent_level: self.max_parent_level[id.index()],
            seq: 0,
            id,
        }
    }
}

/// The candidate priority queue of Algorithm 2.
#[derive(Debug, Default)]
pub struct CandidateQueue {
    heap: BinaryHeap<Candidate>,
    next_seq: u64,
}

impl CandidateQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CandidateQueue::default()
    }

    /// Inserts a candidate, stamping its enqueue sequence number.
    pub fn enqueue(&mut self, mut candidate: Candidate) {
        candidate.seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(candidate);
    }

    /// Re-inserts a candidate whose priority was refreshed, keeping its
    /// original recency stamp (used by the lazy dynamic-priority update).
    pub fn requeue(&mut self, candidate: Candidate) {
        self.heap.push(candidate);
    }

    /// Removes and returns the best candidate.
    pub fn pop(&mut self) -> Option<Candidate> {
        self.heap.pop()
    }

    /// Lookahead pop: examines up to `window` heap-best candidates, scores
    /// each with `score` (higher wins; the heap order breaks ties), removes
    /// and returns the winner and pushes the rest back.
    ///
    /// The scoring closure sees live translation state, so this is where
    /// dynamic knowledge — "how many RRAMs does scheduling this node free
    /// *now* vs. one step later" — enters the schedule without rebuilding
    /// the heap on every release.
    pub fn pop_scored(
        &mut self,
        window: usize,
        mut score: impl FnMut(&Candidate) -> i64,
    ) -> Option<Candidate> {
        let mut drawn: Vec<Candidate> = Vec::with_capacity(window.max(1));
        while drawn.len() < window.max(1) {
            match self.heap.pop() {
                Some(candidate) => drawn.push(candidate),
                None => break,
            }
        }
        if drawn.is_empty() {
            return None;
        }
        let mut best = 0;
        let mut best_score = score(&drawn[0]);
        for (index, candidate) in drawn.iter().enumerate().skip(1) {
            let s = score(candidate);
            // Strictly-greater keeps the heap order as the tiebreak: drawn
            // candidates come out of the heap best-first.
            if s > best_score {
                best = index;
                best_score = s;
            }
        }
        let winner = drawn.swap_remove(best);
        for candidate in drawn {
            self.heap.push(candidate);
        }
        Some(winner)
    }

    /// Number of queued candidates.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no candidates are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig::Mig;

    fn cand(releasing: u32, level: u32, index: usize) -> Candidate {
        Candidate {
            postorder: 0,
            releasing_children: releasing,
            max_parent_level: level,
            seq: 0,
            id: NodeId::from_index(index),
        }
    }

    #[test]
    fn more_releasing_children_wins() {
        let mut q = CandidateQueue::new();
        q.enqueue(cand(1, 0, 1));
        q.enqueue(cand(3, 9, 2));
        q.enqueue(cand(2, 0, 3));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(2));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(3));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(1));
        assert!(q.pop().is_none());
    }

    #[test]
    fn lower_parent_level_breaks_ties() {
        let mut q = CandidateQueue::new();
        q.enqueue(cand(1, 5, 1));
        q.enqueue(cand(1, 2, 2));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(2));
    }

    #[test]
    fn index_breaks_remaining_ties() {
        let mut q = CandidateQueue::new();
        q.enqueue(cand(1, 2, 9));
        q.enqueue(cand(1, 2, 4));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(4));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_scored_overrides_heap_order_within_the_window() {
        let mut q = CandidateQueue::new();
        q.enqueue(cand(3, 0, 1)); // heap-best
        q.enqueue(cand(2, 0, 2));
        q.enqueue(cand(1, 0, 3)); // scorer's favourite
        let popped = q
            .pop_scored(3, |c| if c.id == NodeId::from_index(3) { 10 } else { 0 })
            .unwrap();
        assert_eq!(popped.id, NodeId::from_index(3));
        // The losers go back; heap order resumes.
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(1));
        assert_eq!(q.pop().unwrap().id, NodeId::from_index(2));
        assert!(q.pop_scored(4, |_| 0).is_none());
    }

    #[test]
    fn pop_scored_ties_keep_heap_order() {
        let mut q = CandidateQueue::new();
        q.enqueue(cand(5, 0, 1));
        q.enqueue(cand(4, 0, 2));
        let popped = q.pop_scored(2, |_| 7).unwrap();
        assert_eq!(popped.id, NodeId::from_index(1));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn priorities_count_releasing_children() {
        let mut mig = Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        let x = mig.and(a, b); // fanout 1 (used by top only)
        let y = mig.and(c, d); // fanout 2 (top and output)
        let top = mig.maj(x, y, a);
        mig.add_output("f", top);
        mig.add_output("g", y);
        let pr = Priorities::compute(&mig);
        let cand_top = pr.candidate(top.node());
        // x is a releasing child of top; y is not (fanout 2); a is an input.
        assert_eq!(cand_top.releasing_children, 1);
        // top feeds only outputs.
        assert_eq!(cand_top.max_parent_level, u32::MAX);
        // x's only parent is top (level 2).
        assert_eq!(pr.candidate(x.node()).max_parent_level, 2);
    }
}
