//! Deterministic row placement shared by the alternative backends.
//!
//! Both targets keep the compiler's allocation discipline: the IR event
//! stream is replayed through a fresh [`RramAllocator`] of the program's
//! strategy, so a virtual cell occupies the same physical row the RM3
//! emitter would have chosen. Backends add their own scratch rows above
//! the work region.

use plim_compiler::alloc::RramAllocator;
use plim_compiler::ir::{Event, IrProgram};

/// Physical placement of an IR program's virtual cells.
pub(crate) struct Rows {
    /// Row of each virtual cell, indexed by `CellId`. A cell's row is
    /// stable across its whole lifetime; slots of never-requested cells
    /// are unused.
    pub cell_row: Vec<u32>,
    /// Rows of the work region (scratch rows live above this).
    pub work_rows: u32,
}

/// Replays the event stream's request/release sequence, assigning every
/// virtual cell its physical row.
pub(crate) fn assign_rows(ir: &IrProgram) -> Rows {
    let mut alloc = RramAllocator::new(ir.allocator);
    let mut cell_row = vec![0u32; ir.cells.len()];
    let mut live = vec![None; ir.cells.len()];
    let mut work_rows = 0u32;
    for &event in &ir.events {
        match event {
            Event::Request(c) => {
                let addr = alloc.request_with_hint(ir.cells[c.index()].hint);
                cell_row[c.index()] = addr.0;
                live[c.index()] = Some(addr);
                work_rows = work_rows.max(addr.0 + 1);
            }
            Event::Release(c) => {
                let addr = live[c.index()].take().expect("release before request");
                alloc.release(addr);
            }
            Event::Op(_) => {}
        }
    }
    Rows {
        cell_row,
        work_rows,
    }
}

/// Where a primary output lives at program end, in physical-row terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutLoc {
    /// In a work row.
    Row(u32),
    /// Equal to a primary input (possibly complemented).
    Input {
        /// Input index.
        index: u32,
        /// Whether the output is the input's complement.
        complemented: bool,
    },
    /// A constant.
    Const(bool),
}

/// Maps the IR's virtual-cell outputs onto physical rows.
pub(crate) fn lower_outputs(ir: &IrProgram, rows: &Rows) -> Vec<(String, OutLoc)> {
    use plim_compiler::ir::IrOutput;
    ir.outputs
        .iter()
        .map(|(name, output)| {
            let loc = match *output {
                IrOutput::Cell(c) => OutLoc::Row(rows.cell_row[c.index()]),
                IrOutput::Input {
                    index,
                    complemented,
                } => OutLoc::Input {
                    index,
                    complemented,
                },
                IrOutput::Const(v) => OutLoc::Const(v),
            };
            (name.clone(), loc)
        })
        .collect()
}

/// Reads the declared outputs from the final row state, one 64-lane word
/// per output.
pub(crate) fn read_outputs(outputs: &[(String, OutLoc)], rows: &[u64], inputs: &[u64]) -> Vec<u64> {
    outputs
        .iter()
        .map(|(_, loc)| match *loc {
            OutLoc::Row(r) => rows[r as usize],
            OutLoc::Input {
                index,
                complemented,
            } => {
                let word = inputs[index as usize];
                if complemented {
                    !word
                } else {
                    word
                }
            }
            OutLoc::Const(v) => {
                if v {
                    u64::MAX
                } else {
                    0
                }
            }
        })
        .collect()
}

/// A poisoned row image: every row pre-filled with a nonzero pattern so a
/// read of a never-written row cannot masquerade as a correct zero (the
/// same discipline the RM3 verifier uses).
pub(crate) fn poisoned_rows(count: u32) -> Vec<u64> {
    (0..count)
        .map(|r| 0xAAAA_AAAA_AAAA_AAAA ^ u64::from(r))
        .collect()
}

/// Renders an output directory block (`.output f = r5` / `!i3` / `1`).
pub(crate) fn render_outputs(out: &mut String, outputs: &[(String, OutLoc)]) {
    use std::fmt::Write as _;
    for (name, loc) in outputs {
        let text = match *loc {
            OutLoc::Row(r) => format!("r{r}"),
            OutLoc::Input {
                index,
                complemented,
            } => format!("{}i{}", if complemented { "!" } else { "" }, index + 1),
            OutLoc::Const(v) => format!("{}", u8::from(v)),
        };
        let _ = writeln!(out, ".output {name} = {text}");
    }
}
