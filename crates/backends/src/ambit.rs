//! The `ambit` backend: bulk-bitwise in-DRAM majority (Ambit-style).
//!
//! Ambit computes bitwise Boolean functions inside DRAM by activating
//! rows: a **triple-row activation** (TRA) drives three rows onto the
//! shared bitlines simultaneously, and the charge-sharing result — the
//! bitwise majority of the three — is written back into *all three* rows
//! (the operation is destructive). RowClone provides fast row-to-row
//! copies, and dual-contact cells give an inverted read.
//!
//! Emission maps each RM3-shaped IR op `z ← ⟨a b̄ z⟩` onto that substrate:
//!
//! 1. copy operand `A` into scratch row `T0` (RowClone, or `set`/`reset`
//!    for constants),
//! 2. copy operand `B` **inverted** into `T1` (dual-contact read),
//! 3. copy the destination's old value into `T2`,
//! 4. `tra T0 T1 T2` — all three scratch rows now hold the majority,
//! 5. copy `T0` back into the destination row.
//!
//! Masking ops (both operands constant and differing — the reset/set
//! idioms) collapse to a single `set`/`reset` of the destination, since
//! `⟨a b̄ x⟩ = a` when `a = ¬b`.
//!
//! Work rows come from the compiler's allocator replay
//! ([`crate::rows::assign_rows`]), so placement honors the IR's lifetime
//! discipline; `T0`–`T2` live directly above the work region. The cost
//! model counts **row activations**: 1 per `set`/`reset`, 2 per copy
//! (activate source, activate destination), 3 per TRA.

use std::fmt::Write as _;

use plim_compiler::ir::{Event, IrProgram, Value};
use plim_compiler::{Artifact, Backend, Cost, InstructionInfo};

use crate::rows::{
    assign_rows, lower_outputs, poisoned_rows, read_outputs, render_outputs, OutLoc,
};

/// Where a row operation reads from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    /// A primary-input row.
    Input(u32),
    /// A work or scratch row.
    Row(u32),
}

/// One Ambit instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Fill a row with all-ones.
    Set(u32),
    /// Fill a row with all-zeros.
    Reset(u32),
    /// RowClone copy into a row.
    Copy(Src, u32),
    /// Inverted (dual-contact) copy into a row.
    Not(Src, u32),
    /// Triple-row activation: all three rows ← their bitwise majority.
    Tra(u32, u32, u32),
}

impl Op {
    /// Row activations this instruction costs.
    fn activations(self) -> u64 {
        match self {
            Op::Set(_) | Op::Reset(_) => 1,
            Op::Copy(..) | Op::Not(..) => 2,
            Op::Tra(..) => 3,
        }
    }
}

/// The Ambit backend's instruction set.
const AMBIT_ISA: [InstructionInfo; 5] = [
    InstructionInfo {
        mnemonic: "set",
        cost: 1,
        summary: "fill a row with all-ones (one activation)",
    },
    InstructionInfo {
        mnemonic: "reset",
        cost: 1,
        summary: "fill a row with all-zeros (one activation)",
    },
    InstructionInfo {
        mnemonic: "copy",
        cost: 2,
        summary: "RowClone row-to-row copy (activate source, activate destination)",
    },
    InstructionInfo {
        mnemonic: "not",
        cost: 2,
        summary: "inverted copy through a dual-contact row",
    },
    InstructionInfo {
        mnemonic: "tra",
        cost: 3,
        summary: "triple-row activation: all three rows ← bitwise majority (destructive)",
    },
];

/// The Ambit-style bulk-bitwise DRAM backend.
#[derive(Debug, Clone, Copy, Default)]
pub struct AmbitBackend;

impl Backend for AmbitBackend {
    fn name(&self) -> &'static str {
        "ambit"
    }

    fn description(&self) -> &'static str {
        "bulk-bitwise in-DRAM majority via triple-row activation (Ambit-style)"
    }

    fn instruction_set(&self) -> &'static [InstructionInfo] {
        &AMBIT_ISA
    }

    fn cost(&self, ir: &IrProgram) -> Cost {
        lower(ir).cost
    }

    fn emit(&self, ir: &IrProgram) -> Box<dyn Artifact> {
        Box::new(lower(ir))
    }
}

/// An emitted Ambit program.
#[derive(Debug, Clone)]
pub struct AmbitArtifact {
    num_inputs: usize,
    /// Total rows: work region plus the `T0`–`T2` scratch group.
    rows: u32,
    ops: Vec<Op>,
    outputs: Vec<(String, OutLoc)>,
    cost: Cost,
}

/// Lowers the IR event stream onto the Ambit substrate.
fn lower(ir: &IrProgram) -> AmbitArtifact {
    let rows = assign_rows(ir);
    let (t0, t1, t2) = (rows.work_rows, rows.work_rows + 1, rows.work_rows + 2);
    let mut ops = Vec::new();
    let mut uses_scratch = false;
    let src = |value: Value, rows: &crate::rows::Rows| match value {
        Value::Input(i) => Src::Input(i),
        Value::Cell(c) => Src::Row(rows.cell_row[c.index()]),
        Value::Const(_) => unreachable!("constants are lowered to set/reset"),
    };
    for &event in &ir.events {
        let Event::Op(index) = event else { continue };
        let op = &ir.ops[index as usize];
        let z = rows.cell_row[op.z.index()];
        if op.masking() {
            // ⟨a b̄ x⟩ = a when a = ¬b: a single row initialization.
            let Value::Const(v) = op.a else {
                unreachable!("masking ops have constant operands")
            };
            ops.push(if v { Op::Set(z) } else { Op::Reset(z) });
            continue;
        }
        uses_scratch = true;
        match op.a {
            Value::Const(v) => ops.push(if v { Op::Set(t0) } else { Op::Reset(t0) }),
            other => ops.push(Op::Copy(src(other, &rows), t0)),
        }
        match op.b {
            // B is inverted intrinsically by RM3; `set` for false keeps it so.
            Value::Const(v) => ops.push(if v { Op::Reset(t1) } else { Op::Set(t1) }),
            other => ops.push(Op::Not(src(other, &rows), t1)),
        }
        ops.push(Op::Copy(Src::Row(z), t2));
        ops.push(Op::Tra(t0, t1, t2));
        ops.push(Op::Copy(Src::Row(t0), z));
    }
    let total_rows = rows.work_rows + if uses_scratch { 3 } else { 0 };

    // Wear: writes per row, scratch included (every copy/set/tra writes its
    // destination; a TRA writes all three group rows).
    let mut writes = vec![0u64; total_rows as usize];
    for op in &ops {
        match *op {
            Op::Set(r) | Op::Reset(r) | Op::Copy(_, r) | Op::Not(_, r) => {
                writes[r as usize] += 1;
            }
            Op::Tra(a, b, c) => {
                writes[a as usize] += 1;
                writes[b as usize] += 1;
                writes[c as usize] += 1;
            }
        }
    }
    let cost = Cost {
        instructions: ops.len(),
        footprint: total_rows,
        wear: writes.iter().copied().max().unwrap_or(0),
        units: ops.iter().map(|op| op.activations()).sum(),
    };
    AmbitArtifact {
        num_inputs: ir.num_inputs,
        rows: total_rows,
        outputs: lower_outputs(ir, &rows),
        ops,
        cost,
    }
}

impl Artifact for AmbitArtifact {
    fn target(&self) -> &'static str {
        "ambit"
    }

    fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    fn cost(&self) -> Cost {
        self.cost
    }

    fn listing(&self) -> String {
        let mut out = String::from(".ambit v1\n");
        let _ = writeln!(out, ".inputs {}", self.num_inputs);
        let _ = writeln!(out, ".rows {} (3 scratch)", self.rows);
        let width = self.ops.len().to_string().len().max(2);
        let src = |s: Src| match s {
            Src::Input(i) => format!("i{}", i + 1),
            Src::Row(r) => format!("r{r}"),
        };
        for (index, op) in self.ops.iter().enumerate() {
            let text = match *op {
                Op::Set(r) => format!("set r{r}"),
                Op::Reset(r) => format!("reset r{r}"),
                Op::Copy(s, d) => format!("copy {} r{d}", src(s)),
                Op::Not(s, d) => format!("not {} r{d}", src(s)),
                Op::Tra(a, b, c) => format!("tra r{a} r{b} r{c}"),
            };
            let _ = writeln!(out, "{:0width$}: {text}", index + 1);
        }
        render_outputs(&mut out, &self.outputs);
        out
    }

    fn stats_text(&self) -> String {
        format!(
            "target=ambit ops={} rows={} maxw={} activations={}\n",
            self.cost.instructions, self.cost.footprint, self.cost.wear, self.cost.units
        )
    }

    fn output_names(&self) -> Vec<String> {
        self.outputs.iter().map(|(name, _)| name.clone()).collect()
    }

    fn run_wide(&self, inputs: &[u64]) -> Result<Vec<u64>, String> {
        if inputs.len() != self.num_inputs {
            return Err(format!(
                "expected {} input words, got {}",
                self.num_inputs,
                inputs.len()
            ));
        }
        let mut rows = poisoned_rows(self.rows);
        let read = |s: Src, rows: &[u64]| match s {
            Src::Input(i) => inputs[i as usize],
            Src::Row(r) => rows[r as usize],
        };
        for op in &self.ops {
            match *op {
                Op::Set(r) => rows[r as usize] = u64::MAX,
                Op::Reset(r) => rows[r as usize] = 0,
                Op::Copy(s, d) => rows[d as usize] = read(s, &rows),
                Op::Not(s, d) => rows[d as usize] = !read(s, &rows),
                Op::Tra(a, b, c) => {
                    let (x, y, z) = (rows[a as usize], rows[b as usize], rows[c as usize]);
                    let maj = (x & y) | (x & z) | (y & z);
                    rows[a as usize] = maj;
                    rows[b as usize] = maj;
                    rows[c as usize] = maj;
                }
            }
        }
        Ok(read_outputs(&self.outputs, &rows, inputs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use plim_compiler::verify::verify_exhaustive_artifact;
    use plim_compiler::{compile_full, CompilerOptions, OptLevel};

    fn fig3b() -> mig::Mig {
        let mut mig = mig::Mig::new();
        let i1 = mig.add_input("i1");
        let i2 = mig.add_input("i2");
        let i3 = mig.add_input("i3");
        let n1 = mig.maj(mig::Signal::FALSE, i1, i2);
        let n2 = mig.maj(mig::Signal::TRUE, !i2, i3);
        let n3 = mig.maj(i1, i2, i3);
        let n4 = mig.maj(mig::Signal::TRUE, n1, i3);
        let n5 = mig.maj(n1, !n2, n3);
        let n6 = mig.maj(n4, !n5, n1);
        mig.add_output("f", n6);
        mig
    }

    #[test]
    fn emits_equivalent_programs_at_every_opt_level() {
        let mig = fig3b();
        for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
            let compilation = compile_full(&mig, CompilerOptions::new().opt(opt));
            let artifact = AmbitBackend.emit(&compilation.ir);
            verify_exhaustive_artifact(&mig, artifact.as_ref()).unwrap();
        }
    }

    #[test]
    fn cost_matches_the_emitted_artifact() {
        let mig = fig3b();
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = AmbitBackend.emit(&compilation.ir);
        assert_eq!(AmbitBackend.cost(&compilation.ir), artifact.cost());
        // Five row ops per non-masking RM3 op, one per masking op, so the
        // instruction count strictly exceeds RM3's.
        let rm3 = compilation.compiled.stats.instructions;
        assert!(artifact.cost().instructions > rm3);
        assert!(artifact.cost().units > artifact.cost().instructions as u64);
    }

    #[test]
    fn listing_names_the_scratch_group_and_outputs() {
        let mig = fig3b();
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = AmbitBackend.emit(&compilation.ir);
        let listing = artifact.listing();
        assert!(listing.starts_with(".ambit v1\n"), "{listing}");
        assert!(listing.contains("tra r"), "{listing}");
        assert!(listing.contains(".output f = "), "{listing}");
        assert_eq!(artifact.output_names(), ["f"]);
        assert_eq!(artifact.target(), "ambit");
    }

    #[test]
    fn run_wide_rejects_wrong_input_counts() {
        let mig = fig3b();
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = AmbitBackend.emit(&compilation.ir);
        assert!(artifact.run_wide(&[0, 0]).is_err());
    }

    #[test]
    fn passthrough_and_constant_outputs_survive() {
        let mut mig = mig::Mig::new();
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        mig.add_output("x", a);
        mig.add_output("nx", !a);
        mig.add_output("one", mig::Signal::TRUE);
        let f = mig.or(a, b);
        mig.add_output("f", f);
        let compilation = compile_full(&mig, CompilerOptions::new());
        let artifact = AmbitBackend.emit(&compilation.ir);
        verify_exhaustive_artifact(&mig, artifact.as_ref()).unwrap();
    }
}
